#ifndef QASCA_UTIL_TABLE_H_
#define QASCA_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace qasca::util {

/// Column-aligned text table used by the benchmark harnesses to print the
/// same rows/series the paper reports. Cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begins a new row; subsequent Cell() calls fill it left to right.
  Table& AddRow();
  Table& Cell(const std::string& text);
  Table& Cell(double value, int precision = 4);
  /// Formats `value` as a percentage ("86.40%").
  Table& Percent(double value, int precision = 2);
  Table& Cell(int64_t value);

  /// Renders with aligned columns to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  /// Renders as comma-separated values, convenient for replotting.
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Figure 3(a) ... ==") so multi-figure bench
/// binaries stay readable.
void PrintSection(const std::string& title);

}  // namespace qasca::util

#endif  // QASCA_UTIL_TABLE_H_
