#ifndef QASCA_UTIL_MUTEX_H_
#define QASCA_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace qasca::util {

class CondVar;

/// std::mutex wrapper annotated as a Clang thread-safety capability, so
/// QASCA_GUARDED_BY(mutex_) members and QASCA_REQUIRES(mutex_) functions
/// are checked at compile time under the `analyze` preset
/// (-Wthread-safety -Werror=thread-safety). libstdc++'s std::mutex carries
/// no capability attributes, which is why the project bans raw std::mutex
/// members outside this header (tools/analyze.py lock-annotations pass)
/// and routes every lock through this type.
///
/// Same cost as std::mutex: every method is an inline forward.
class QASCA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QASCA_ACQUIRE() { mu_.lock(); }
  void Unlock() QASCA_RELEASE() { mu_.unlock(); }
  bool TryLock() QASCA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (scoped capability). Prefer this over manual
/// Lock/Unlock pairs; the analysis then proves the lock is held for the
/// full scope and released on every path.
class QASCA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QASCA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() QASCA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. Wait() must be called with
/// the mutex held (enforced by QASCA_REQUIRES); it atomically releases the
/// mutex while blocked and reacquires it before returning, exactly like
/// std::condition_variable. Callers loop over their predicate explicitly —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(mutex_);
///
/// — rather than passing predicate lambdas, so the guarded reads stay
/// inside the annotated scope the analysis can see.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) QASCA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock without unlocking: ownership stays with the caller's
    // MutexLock, and the capability state never changes across Wait().
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_MUTEX_H_
