#include <gtest/gtest.h>

#include "simulation/dataset.h"
#include "simulation/simulated_worker.h"

namespace qasca {
namespace {

TEST(DifficultyTest, ZeroDifficultyFollowsLatentModel) {
  util::Rng rng(1);
  SimulatedWorker worker{0, WorkerModel::Wp(0.9, 2)};
  int correct = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (worker.AnswerQuestion(0, rng, 0.0) == 0) ++correct;
  }
  EXPECT_NEAR(correct / static_cast<double>(trials), 0.9, 0.01);
}

TEST(DifficultyTest, FullDifficultyIsUniformRegardlessOfSkill) {
  util::Rng rng(2);
  SimulatedWorker worker{0, WorkerModel::PerfectWp(2)};
  int correct = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (worker.AnswerQuestion(0, rng, 1.0) == 0) ++correct;
  }
  EXPECT_NEAR(correct / static_cast<double>(trials), 0.5, 0.01);
}

TEST(DifficultyTest, PartialDifficultyInterpolates) {
  util::Rng rng(3);
  SimulatedWorker worker{0, WorkerModel::Wp(0.9, 2)};
  int correct = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    if (worker.AnswerQuestion(0, rng, 0.5) == 0) ++correct;
  }
  // Effective accuracy = 0.5*0.5 + 0.5*0.9 = 0.7.
  EXPECT_NEAR(correct / static_cast<double>(trials), 0.7, 0.01);
}

TEST(DifficultyTest, GeneratorRespectsTrimodalBounds) {
  util::Rng rng(4);
  ApplicationSpec spec = FilmPostersApp();
  spec.num_questions = 5000;
  std::vector<double> difficulty = GenerateQuestionDifficulty(spec, rng);
  ASSERT_EQ(difficulty.size(), 5000u);
  int easy = 0;
  int hard = 0;
  int ambiguous = 0;
  for (double d : difficulty) {
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, 1.0);
    if (d <= spec.easy_difficulty_max) {
      ++easy;
    } else if (d >= spec.ambiguous_difficulty_min) {
      ++ambiguous;
    } else {
      ASSERT_GE(d, spec.hard_difficulty_min);
      ASSERT_LE(d, spec.hard_difficulty_max);
      ++hard;
    }
  }
  // Mode frequencies track the spec proportions.
  EXPECT_NEAR(ambiguous / 5000.0, spec.ambiguous_fraction, 0.02);
  EXPECT_NEAR(hard / 5000.0, spec.hard_fraction, 0.03);
  EXPECT_NEAR(easy / 5000.0,
              1.0 - spec.ambiguous_fraction - spec.hard_fraction, 0.03);
}

TEST(DifficultyTest, SpammerPoolFractionMatchesSpec) {
  util::Rng rng(5);
  WorkerPoolSpec spec;
  spec.num_workers = 1000;
  spec.num_labels = 2;
  spec.spammer_fraction = 0.2;
  int spammers = 0;
  for (const SimulatedWorker& worker : GenerateWorkerPool(spec, rng)) {
    // Spammer CMs have identical rows (answer independent of truth).
    std::vector<double> cm = worker.latent.AsConfusionMatrix();
    if (cm[0] == cm[2] && cm[1] == cm[3]) ++spammers;
  }
  EXPECT_NEAR(spammers / 1000.0, 0.2, 0.035);
}

TEST(DifficultyDeathTest, OutOfRangeDifficultyAborts) {
  util::Rng rng(6);
  SimulatedWorker worker{0, WorkerModel::Wp(0.9, 2)};
  EXPECT_DEATH((void)worker.AnswerQuestion(0, rng, 1.5), "Check failed");
}

}  // namespace
}  // namespace qasca
