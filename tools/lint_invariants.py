#!/usr/bin/env python3
"""Static lints for the QASCA tree. Two rules:

1. Distribution-row mutations must be validator-aware: any translation unit
   under src/core/ or src/model/ that constructs or mutates
   probability-distribution rows — calls to SetRow / SetRowNormalized, or
   manual normalisation loops — must reference the invariant subsystem:
   include util/invariants.h, call an invariants::Check* validator, or use
   QASCA_DCHECK_OK / QASCA_CHECK_OK. This keeps every producer of
   probability mass wired to a mechanical proof of row-stochasticity
   (ISSUE 1; see DESIGN.md "Correctness tooling").

2. Span names must be registered: every util::Span constructed under src/
   must name its stage via a tnames::kSpan* constant declared in
   util/telemetry_names.h — never a raw string literal or an unregistered
   identifier — so stage names cannot drift between the engine, the benches
   and the docs (ISSUE 3; see DESIGN.md "Telemetry").

Exit status: 0 when clean, 1 when any file violates a rule, 2 on usage
errors. Intended to run from tools/run_checks.sh.
"""

import argparse
import re
import sys
from pathlib import Path

# Call sites that create or overwrite a probability distribution row.
MUTATION_PATTERNS = [
    re.compile(r"\bSetRowNormalized\s*\("),
    re.compile(r"\bSetRow\s*\("),
    re.compile(r"\bNormalizeInPlace\s*\("),
]

# Evidence that the file participates in the invariant subsystem.
VALIDATOR_PATTERNS = [
    re.compile(r'#include\s+"util/invariants\.h"'),
    re.compile(r"\binvariants::Check\w+\s*\("),
    re.compile(r"\bQASCA_DCHECK_OK\s*\("),
    re.compile(r"\bQASCA_CHECK_OK\s*\("),
]

# Files exempt from the rule. distribution_matrix.h only *declares* the
# mutators (definitions live in the .cc, which is covered).
ALLOWLIST = {
    "src/core/distribution_matrix.h",
}

LINTED_ROOTS = ("src/core", "src/model")

# --- span-name lint -------------------------------------------------------
# Every util::Span construction in the tree; group 1 is the name argument.
SPAN_CONSTRUCTION = re.compile(
    r"\bSpan\s+\w+\s*\(\s*[^,()]+,\s*([^)]+?)\s*\)")
# Declarations in util/telemetry_names.h look like:
#   inline constexpr char kSpanAssignHit[] = "assign_hit";
SPAN_NAME_DECL = re.compile(
    r"inline\s+constexpr\s+char\s+(kSpan\w+)\s*\[\]")
SPAN_LINT_ROOT = "src"
# telemetry.{h,cc} define Span itself; telemetry_names.h declares the names.
SPAN_ALLOWLIST = {
    "src/util/telemetry.h",
    "src/util/telemetry.cc",
    "src/util/telemetry_names.h",
}


def registered_span_names(repo_root: Path) -> set[str]:
    names_header = repo_root / "src/util/telemetry_names.h"
    if not names_header.is_file():
        return set()
    return set(SPAN_NAME_DECL.findall(
        names_header.read_text(encoding="utf-8")))


def lint_span_names(path: Path, repo_root: Path,
                    registered: set[str]) -> list[str]:
    rel = path.relative_to(repo_root).as_posix()
    if rel in SPAN_ALLOWLIST:
        return []
    text = strip_comments(path.read_text(encoding="utf-8"))
    failures = []
    for match in SPAN_CONSTRUCTION.finditer(text):
        arg = match.group(1).strip()
        # The constant may be qualified (util::tnames::kSpanX, tnames::kSpanX).
        identifier = arg.rsplit("::", 1)[-1]
        if identifier not in registered:
            failures.append(
                f"{rel}: Span constructed with unregistered name {arg!r} — "
                "declare it as a tnames::kSpan* constant in "
                "util/telemetry_names.h")
    return failures


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments so commented-out code cannot satisfy
    or trigger the lint."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def lint_file(path: Path, repo_root: Path) -> list[str]:
    rel = path.relative_to(repo_root).as_posix()
    if rel in ALLOWLIST:
        return []
    text = strip_comments(path.read_text(encoding="utf-8"))
    mutations = [p.pattern for p in MUTATION_PATTERNS if p.search(text)]
    if not mutations:
        return []
    if any(p.search(text) for p in VALIDATOR_PATTERNS):
        return []
    return [
        f"{rel}: mutates distribution rows (matched {', '.join(mutations)}) "
        "without referencing util/invariants.h or a Check* validator"
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (defaults to the parent of tools/)",
    )
    args = parser.parse_args()
    repo_root = args.repo_root.resolve()

    failures: list[str] = []
    checked = 0
    for root in LINTED_ROOTS:
        base = repo_root / root
        if not base.is_dir():
            print(f"lint_invariants: missing directory {base}", file=sys.stderr)
            return 2
        for path in sorted(base.rglob("*.cc")) + sorted(base.rglob("*.h")):
            checked += 1
            failures.extend(lint_file(path, repo_root))

    registered = registered_span_names(repo_root)
    if not registered:
        print("lint_invariants: no kSpan* names found in "
              "src/util/telemetry_names.h", file=sys.stderr)
        return 2
    span_base = repo_root / SPAN_LINT_ROOT
    for path in sorted(span_base.rglob("*.cc")) + sorted(span_base.rglob("*.h")):
        checked += 1
        failures.extend(lint_span_names(path, repo_root, registered))

    if failures:
        print("lint_invariants: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"lint_invariants: OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
