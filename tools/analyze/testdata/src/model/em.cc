// hot-path-alloc fixture. The file name mirrors the real E-step kernel
// (src/model/em.cc) because that is how the pass scopes itself to the hot
// files. push_back without a reserve in the same function and a container
// constructed per loop iteration must fire; the pre-sized producer and the
// allow'd growth must not.

#include <cstddef>
#include <vector>

std::vector<int> GrowsUnreserved(std::size_t n) {
  std::vector<int> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));  // analyze:expect(hot-path-alloc)
  }
  return out;
}

std::vector<int> GrowsReserved(std::size_t n) {
  std::vector<int> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));
  }
  return out;
}

void ConstructsPerIteration(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> scratch(8, 0.0);  // analyze:expect(hot-path-alloc)
    scratch[0] = static_cast<double>(i);
  }
}

void AllowedGrowth(std::vector<int>& out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));  // analyze:allow(hot-path-alloc)
  }
}
