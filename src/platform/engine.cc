#include "platform/engine.h"

#include <algorithm>

#include "util/invariants.h"
#include "util/logging.h"
#include "util/stats.h"

namespace qasca {

TaskAssignmentEngine::TaskAssignmentEngine(
    AppConfig config, std::unique_ptr<AssignmentStrategy> strategy,
    uint64_t seed)
    : config_(std::move(config)),
      strategy_(std::move(strategy)),
      metric_(config_.metric.Make()),
      database_(config_.num_questions, config_.num_labels),
      rng_(seed) {
  util::Status status = config_.Validate();
  QASCA_CHECK(status.ok()) << status.ToString();
  QASCA_CHECK(strategy_ != nullptr);
  config_.em.worker_kind = config_.worker_kind;
}

util::StatusOr<std::vector<QuestionIndex>> TaskAssignmentEngine::RequestHit(
    WorkerId worker) {
  if (BudgetExhausted()) {
    return util::Status::ResourceExhausted("budget spent: no HITs left");
  }
  if (open_hits_.contains(worker)) {
    return util::Status::FailedPrecondition(
        "worker already holds an open HIT");
  }
  std::vector<QuestionIndex> candidates = database_.CandidatesFor(worker);
  const int k = config_.questions_per_hit;
  if (static_cast<int>(candidates.size()) < k) {
    return util::Status::NotFound(
        "fewer than k unassigned questions remain for this worker");
  }

  WorkerModel typical = ComputeTypicalWorker();
  StrategyContext context;
  context.database = &database_;
  context.metric = &config_.metric;
  context.worker = worker;
  const WorkerModel& model = ModelFor(worker);
  context.worker_model = &model;
  context.typical_worker = &typical;
  context.rng = &rng_;

  util::Stopwatch stopwatch;
  std::vector<QuestionIndex> selected =
      strategy_->SelectQuestions(context, candidates, k);
  last_assignment_seconds_ = stopwatch.ElapsedSeconds();
  max_assignment_seconds_ =
      std::max(max_assignment_seconds_, last_assignment_seconds_);

  // Every HIT leaving the engine must be exactly k distinct in-range
  // questions, and each must come from the candidate set the strategy was
  // given. Always on: a malformed HIT reaching the platform corrupts the
  // answer set silently.
  QASCA_CHECK_OK(
      invariants::CheckAssignment(selected, k, config_.num_questions));
#if QASCA_ENABLE_DCHECKS
  for (QuestionIndex question : selected) {
    QASCA_DCHECK(std::find(candidates.begin(), candidates.end(), question) !=
                 candidates.end())
        << "strategy selected question " << question
        << " outside the candidate set";
  }
#endif
  database_.MarkAssigned(worker, selected);
  trace_.RecordAssignment(worker, selected);
  open_hits_.emplace(worker, selected);
  ++assigned_hits_;
  return selected;
}

util::Status TaskAssignmentEngine::CompleteHit(
    WorkerId worker, const std::vector<LabelIndex>& labels) {
  auto it = open_hits_.find(worker);
  if (it == open_hits_.end()) {
    return util::Status::NotFound("worker has no open HIT");
  }
  const std::vector<QuestionIndex>& questions = it->second;
  if (labels.size() != questions.size()) {
    return util::Status::InvalidArgument(
        "answer count does not match HIT size");
  }
  for (LabelIndex label : labels) {
    if (label < 0 || label >= config_.num_labels) {
      return util::Status::InvalidArgument("answer label out of range");
    }
  }
  // Step A: update the answer set D.
  for (size_t q = 0; q < questions.size(); ++q) {
    database_.RecordAnswer(questions[q], worker, labels[q]);
  }
  trace_.RecordCompletion(worker, questions, labels);
  open_hits_.erase(it);
  ++completed_hits_;

  // Steps B + C: re-estimate worker models and prior with EM, then refresh
  // Qc from the fitted posterior.
  database_.SetParameters(
      config_.warm_start_em
          ? RunEmWarmStart(database_.answers(), config_.num_labels,
                           config_.em, database_.parameters())
          : RunEm(database_.answers(), config_.num_labels, config_.em));
  // The refreshed Qc is what every later assignment decision reads; a
  // denormalised row here corrupts all of them without crashing.
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(database_.current()));
  return util::Status::Ok();
}

ResultVector TaskAssignmentEngine::CurrentResults() const {
  return metric_->OptimalResult(database_.current());
}

double TaskAssignmentEngine::QualityAgainstTruth(
    const GroundTruthVector& truth) const {
  return metric_->EvaluateAgainstTruth(truth, CurrentResults());
}

const WorkerModel& TaskAssignmentEngine::ModelFor(WorkerId worker) const {
  return database_.parameters().WorkerFor(worker);
}

WorkerModel TaskAssignmentEngine::ComputeTypicalWorker() const {
  const auto& workers = database_.parameters().workers;
  if (workers.empty()) {
    return WorkerModel::Wp(0.75, config_.num_labels);
  }
  double total_quality = 0.0;
  for (const auto& [id, model] : workers) {
    std::vector<double> cm = model.AsConfusionMatrix();
    double diagonal = 0.0;
    for (int j = 0; j < config_.num_labels; ++j) {
      diagonal += cm[static_cast<size_t>(j) * config_.num_labels + j];
    }
    total_quality += diagonal / config_.num_labels;
  }
  return WorkerModel::Wp(
      std::clamp(total_quality / static_cast<double>(workers.size()), 0.0,
                 1.0),
      config_.num_labels);
}

}  // namespace qasca
