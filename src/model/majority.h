#ifndef QASCA_MODEL_MAJORITY_H_
#define QASCA_MODEL_MAJORITY_H_

#include <vector>

#include "core/distribution_matrix.h"
#include "core/types.h"

namespace qasca {

/// Majority voting — the aggregation AMT itself applies (Section 1) and the
/// natural lower baseline for the EM pipeline. Ties are broken toward the
/// smaller label index; unanswered questions fall back to label 0.
ResultVector MajorityVote(const AnswerSet& answers, int num_labels);

/// Soft majority: each question's label distribution is its (Laplace
/// `smoothing`-smoothed) vote share. Useful as a model-free distribution
/// matrix and as the Dawid-Skene bootstrap.
DistributionMatrix VoteShareDistribution(const AnswerSet& answers,
                                         int num_labels,
                                         double smoothing = 1.0);

}  // namespace qasca

#endif  // QASCA_MODEL_MAJORITY_H_
