#ifndef QASCA_CORE_ASSIGNMENT_FSCORE_ONLINE_H_
#define QASCA_CORE_ASSIGNMENT_FSCORE_ONLINE_H_

#include "core/assignment/assignment.h"

namespace qasca {

/// Options for the F-score Online Assignment Algorithm.
struct FScoreAssignmentOptions {
  /// Target label (the paper's L_1).
  LabelIndex target_label = 0;
  /// Emphasis parameter alpha in (0,1).
  double alpha = 0.5;
  /// If true, initialise delta with F(Qc) = max_R F-score*(Qc, R, alpha)
  /// computed by Algorithm 1 (the paper's delta'_init, Section 6.1.3, shown
  /// in Figure 4(a) to avoid the slowdown of delta_init = 0 at large alpha).
  /// If false, start from delta_init = 0.
  bool warm_start = true;
};

/// The F-score Online Assignment Algorithm (Section 4.2, Algorithms 2–3).
///
/// Iteratively lifts delta toward delta* = max_X max_R F-score*(Q^X, R, alpha)
/// (Eq. 13). Each Update step (Definition 2) thresholds Qc/Qw rows at
/// delta*alpha to fix the tentative result vectors, reduces the resulting
/// maximisation over feasible X to a 0-1 fractional program with an
/// exactly-k constraint (Theorem 4), and solves it with the Dinkelbach
/// framework. Theorem 3 guarantees monotone convergence to delta*, at which
/// point the maximising X* is returned.
///
/// Complexity O(u * v * n) where u is the number of Update calls and v the
/// Dinkelbach iterations per call; the paper observes u*v <= 10.
AssignmentResult AssignFScoreOnline(const AssignmentRequest& request,
                                    const FScoreAssignmentOptions& options);

}  // namespace qasca

#endif  // QASCA_CORE_ASSIGNMENT_FSCORE_ONLINE_H_
