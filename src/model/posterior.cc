#include "model/posterior.h"

#include <algorithm>

#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {
namespace {

// Scales `weights` to sum to one and returns the pre-normalisation total.
// A non-positive total (all labels ruled out, which can happen with
// degenerate 0/1 worker models giving contradictory answers) falls back to
// uniform rather than abort: the data is inconsistent with the model, not
// with the caller.
double NormalizeInPlace(std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    std::fill(weights.begin(), weights.end(),
              1.0 / static_cast<double>(weights.size()));
    return total;
  }
  for (double& w : weights) w /= total;
  return total;
}

}  // namespace

std::vector<double> ComputePosteriorRow(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const WorkerModelLookup& models,
                                        double* marginal) {
  const int num_labels = static_cast<int>(prior.size());
  QASCA_CHECK_GT(num_labels, 0);
  std::vector<double> weights(prior.begin(), prior.end());
  for (const Answer& answer : answers) {
    const WorkerModel& model = models(answer.worker);
    QASCA_CHECK_EQ(model.num_labels(), num_labels);
    for (int j = 0; j < num_labels; ++j) {
      weights[j] *= model.AnswerProbability(answer.label, j);
    }
  }
  double total = NormalizeInPlace(weights);
  if (marginal != nullptr) *marginal = total;
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(weights));
  return weights;
}

DistributionMatrix ComputeCurrentDistribution(
    const AnswerSet& answers, const std::vector<double>& prior,
    const WorkerModelLookup& models) {
  const int n = static_cast<int>(answers.size());
  const int num_labels = static_cast<int>(prior.size());
  DistributionMatrix qc(n, num_labels);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row = ComputePosteriorRow(answers[i], prior, models);
    qc.SetRow(i, row);
  }
  return qc;
}

std::vector<double> EstimateWorkerRow(std::span<const double> current_row,
                                      const WorkerModel& model, QwMode mode,
                                      util::Rng& rng) {
  const int num_labels = static_cast<int>(current_row.size());
  QASCA_CHECK_EQ(model.num_labels(), num_labels);

  // Predicted answer distribution P(a = j' | D_i) (Eq. 17). For WP models
  // the double sum collapses to a closed form — O(l) instead of O(l^2),
  // which matters for many-label applications like CompanyLogo (l = 214).
  std::vector<double> answer_distribution(num_labels, 0.0);
  if (model.kind() == WorkerModel::Kind::kWorkerProbability &&
      num_labels > 1) {
    double m = model.worker_probability();
    double off = (1.0 - m) / (num_labels - 1);
    for (int answered = 0; answered < num_labels; ++answered) {
      answer_distribution[answered] =
          m * current_row[answered] + off * (1.0 - current_row[answered]);
    }
  } else {
    for (int answered = 0; answered < num_labels; ++answered) {
      for (int truth = 0; truth < num_labels; ++truth) {
        answer_distribution[answered] +=
            model.AnswerProbability(answered, truth) * current_row[truth];
      }
    }
  }

  auto conditioned = [&](LabelIndex answered) {
    // Qw_{i,j} proportional to Qc_{i,j} * P(a = answered | t = j) (Eq. 18).
    std::vector<double> weights(num_labels);
    for (int j = 0; j < num_labels; ++j) {
      weights[j] = current_row[j] * model.AnswerProbability(answered, j);
    }
    NormalizeInPlace(weights);
    return weights;
  };

  if (mode == QwMode::kSampled) {
    LabelIndex sampled = rng.SampleWeighted(answer_distribution);
    return conditioned(sampled);
  }

  // kExpected: mixture of the conditioned posteriors weighted by the
  // predicted answer distribution.
  std::vector<double> expected(num_labels, 0.0);
  for (int answered = 0; answered < num_labels; ++answered) {
    if (answer_distribution[answered] <= 0.0) continue;
    std::vector<double> weights = conditioned(answered);
    for (int j = 0; j < num_labels; ++j) {
      expected[j] += answer_distribution[answered] * weights[j];
    }
  }
  NormalizeInPlace(expected);
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(expected));
  return expected;
}

DistributionMatrix EstimateWorkerDistribution(
    const DistributionMatrix& current, const WorkerModel& model,
    const std::vector<QuestionIndex>& candidates, QwMode mode,
    util::Rng& rng) {
  DistributionMatrix qw = current;
  for (QuestionIndex i : candidates) {
    std::vector<double> row =
        EstimateWorkerRow(current.Row(i), model, mode, rng);
    qw.SetRow(i, row);
  }
  return qw;
}

}  // namespace qasca
