#ifndef QASCA_PLATFORM_ENGINE_H_
#define QASCA_PLATFORM_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/metrics/metric.h"
#include "platform/app_config.h"
#include "platform/database.h"
#include "platform/strategy.h"
#include "platform/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace qasca {

/// The QASCA engine: App Manager + Task Assignment + Database wired
/// together (Figure 1, Appendix A). Drives the two workflows of Figure 2:
///
///  * HIT request  — compute the worker's candidate set S^w, hand Qc and the
///    worker's fitted model to the assignment strategy, dynamically batch
///    the chosen k questions into a HIT;
///  * HIT completion — append the worker's answers to D, re-estimate the
///    parameters (worker models + prior) with EM, and refresh Qc.
///
/// The engine is strategy-pluggable so that the five comparison systems of
/// Section 6.2.1 run under the identical platform harness; QASCA itself is
/// the QascaStrategy.
class TaskAssignmentEngine {
 public:
  /// `config` must Validate(); `seed` drives all stochastic choices
  /// (Qw sampling, tie-breaking) deterministically.
  TaskAssignmentEngine(AppConfig config,
                       std::unique_ptr<AssignmentStrategy> strategy,
                       uint64_t seed);

  /// HIT request event. Fails with ResourceExhausted once the budget's
  /// B/b HITs have been assigned, FailedPrecondition if the worker already
  /// holds an open HIT, and NotFound if fewer than k questions remain in
  /// the worker's candidate set.
  util::StatusOr<std::vector<QuestionIndex>> RequestHit(WorkerId worker);

  /// HIT completion event. `labels` must parallel the question list the
  /// worker received from RequestHit.
  util::Status CompleteHit(WorkerId worker,
                           const std::vector<LabelIndex>& labels);

  /// The results the requester would receive now: the metric-optimal result
  /// vector R* for the current Qc.
  ResultVector CurrentResults() const;

  /// Convenience for experiments: the true quality F(T, R*) of the current
  /// results against known ground truth.
  double QualityAgainstTruth(const GroundTruthVector& truth) const;

  const AppConfig& config() const { return config_; }
  const Database& database() const { return database_; }
  /// Ordered log of every assignment and completion this engine served.
  const EventTrace& trace() const { return trace_; }
  const EvaluationMetric& metric() const { return *metric_; }
  const AssignmentStrategy& strategy() const { return *strategy_; }

  int assigned_hits() const noexcept { return assigned_hits_; }
  int completed_hits() const noexcept { return completed_hits_; }
  /// HITs the remaining budget still affords.
  int remaining_hits() const noexcept {
    return config_.TotalHits() - assigned_hits_;
  }
  bool BudgetExhausted() const noexcept { return remaining_hits() <= 0; }

  /// Wall-clock seconds spent inside the strategy on the most recent /
  /// slowest HIT request (Figure 6(a) reports the worst case).
  double last_assignment_seconds() const noexcept {
    return last_assignment_seconds_;
  }
  double max_assignment_seconds() const noexcept {
    return max_assignment_seconds_;
  }

 private:
  /// Fitted model for `worker` (perfect if unseen).
  const WorkerModel& ModelFor(WorkerId worker) const;

  /// Representative worker for worker-agnostic policies: a WP model at the
  /// mean diagonal quality of all fitted workers (0.75 before any fit).
  WorkerModel ComputeTypicalWorker() const;

  AppConfig config_;
  std::unique_ptr<AssignmentStrategy> strategy_;
  std::unique_ptr<EvaluationMetric> metric_;
  Database database_;
  EventTrace trace_;
  util::Rng rng_;
  std::unordered_map<WorkerId, std::vector<QuestionIndex>> open_hits_;
  int assigned_hits_ = 0;
  int completed_hits_ = 0;
  double last_assignment_seconds_ = 0.0;
  double max_assignment_seconds_ = 0.0;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_ENGINE_H_
