#!/usr/bin/env bash
# Standing correctness gate for the QASCA tree (ISSUE 1, extended by
# ISSUE 4, ISSUE 5, ISSUE 6 and ISSUE 7; documented in README.md and
# DESIGN.md §10 "Static analysis" / §11 "Robustness" / §12 "Assignment
# kernels").
#
# Every stage prints a uniform "[stage N] PASS" / "[stage N] FAIL" line and
# the script exits non-zero at the first failure. Stages that need a tool
# the host lacks (clang-tidy, clang++) print "[stage N] SKIP" with the
# reason instead — they are hard requirements on CI hosts that have clang.
#
#   1. tools/analyze.py            — semantic multi-pass analyzer, grounded
#                                    on build*/compile_commands.json
#                                    (invariants, span-names, determinism,
#                                    clock-discipline, include-hygiene,
#                                    lock-annotations, lock-order,
#                                    shared-state-escape,
#                                    guarded-by-coverage, global-state,
#                                    noexcept-audit, status-discard,
#                                    api-layering, float-determinism,
#                                    hot-path-alloc); exit 1 on any
#                                    non-baselined error
#                                    (tools/analyze/baseline.json) or a
#                                    stale tools/analyze/lock_order.json
#   2. tools/analyze.py --self-test — the analyzer proves its own passes
#                                    fire (and suppressions hold) against
#                                    tools/analyze/testdata/, and that
#                                    finding IDs, the JSON schema and the
#                                    baseline mechanism stay stable
#   3. lock-order ranking freshness: the checked-in
#      tools/analyze/lock_order.json must byte-match what the analyzer
#      computes from the current tree (regenerate with
#      `python3 tools/analyze.py --write-lock-order`)
#   4. warning-clean Release build (-Wall -Wextra -Werror, DCHECKs off)
#   5. clang-tidy over the release compile database's TU set with the
#      project .clang-tidy profile
#   6. `analyze` preset build: clang++ -Wthread-safety -Werror=thread-safety
#      over the annotated tree (util::Mutex / QASCA_GUARDED_BY contracts)
#   7. asan-ubsan preset: full build + ctest, every QASCA_DCHECK invariant
#      enabled and sanitizer reports fatal
#   8. faults suite under the same asan-ubsan build: the tests labelled
#      "faults" (seeded lifecycle stress harness, lease/recovery units,
#      fail-point registry, golden-trace byte-identity) — the
#      fault-injection branches only exist with DCHECKs on, so this is
#      the build that exercises them
#   9. kernel-equivalence suite under the same asan-ubsan build, replayed
#      once per QASCA_KERNEL_ISA override (scalar, sse2, avx2): the tests
#      labelled "kernels" prove every SIMD dispatch path makes
#      byte-identical assignment decisions (DESIGN.md §12)
#  10. tsan preset over the tests labelled "threads" (thread-pool,
#      thread-annotations, telemetry, lock-rank, engine-determinism and
#      lifecycle stress suites); --tsan widens this stage to the full
#      tsan suite
#  11. serving conformance suite (ISSUE 10, DESIGN.md §14): the tests
#      labelled "serving" — the multi-app AppManager concurrency
#      conformance suite (one schedule replayed at 1/2/4/8 threads with
#      bit-identical per-app decision hashes and fingerprints, batching
#      equivalence, cross-app isolation, mid-storm crash recovery) —
#      under BOTH sanitizer builds: TSan for the data races the turnstile
#      harness provokes, asan-ubsan for the DCHECK'd engine invariants
#  12. observability smoke (ISSUE 8): qasca_sim --trace-out /
#      --provenance-out on the release build, then structural validation of
#      the Chrome trace JSON (sorted ts, balanced B/E per tid, nested
#      stages) and the provenance JSONL, and a bench_diff run over the two
#      newest checked-in BENCH_*.json baselines
#  13. telemetry-overhead smoke: disabled-telemetry instrumentation on a
#      hot loop must cost < 2%; also drives the enabled+flight-recorder
#      path (informational cost, recorder must capture events)
#
# Usage:
#
#   tools/run_checks.sh [--quick] [--tsan]
#
# --quick limits stage 6's ctest run to tests labelled "invariants"
# (the probabilistic-invariant suite plus the integration runs that sweep
# the whole engine) instead of the full suite.

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc)}"
QUICK=0
RUN_TSAN=0
for arg in "$@"; do
  case "${arg}" in
    --quick) QUICK=1 ;;
    --tsan) RUN_TSAN=1 ;;
    *)
      echo "usage: tools/run_checks.sh [--quick] [--tsan]" >&2
      exit 2
      ;;
  esac
done

STAGE=0
stage_begin() {
  STAGE=$((STAGE + 1))
  printf '\n[stage %d] %s\n' "${STAGE}" "$*"
}
stage_pass() { printf '[stage %d] PASS\n' "${STAGE}"; }
stage_fail() {
  printf '[stage %d] FAIL\n' "${STAGE}"
  exit 1
}
stage_skip() { printf '[stage %d] SKIP (%s)\n' "${STAGE}" "$*"; }
# Runs the stage body; FAIL (and exit) on non-zero status.
run() { "$@" || stage_fail; }

stage_begin "static analyzer (tools/analyze.py, compile-DB-grounded)"
# The analyzer grounds its file universe on the newest
# build*/compile_commands.json (TUs + quoted-include closure). Configure the
# release preset first if no build tree has exported one yet, so the checked
# set is exactly the compiled set rather than a filesystem glob.
if ! compgen -G "build*/compile_commands.json" >/dev/null; then
  run cmake --preset release >/dev/null
fi
run python3 tools/analyze.py
stage_pass

stage_begin "static analyzer self-test (tools/analyze/testdata/)"
run python3 tools/analyze.py --self-test
stage_pass

stage_begin "lock-order ranking freshness (tools/analyze/lock_order.json)"
# Stronger than the lock-order pass's own staleness finding (which compares
# nodes and edges): the checked-in artifact must be byte-for-byte what
# --write-lock-order would regenerate, so a hand-edited ranking cannot
# drift from the graph the analyzer actually computed.
run python3 - <<'EOF'
import json
import sys
from pathlib import Path

sys.path.insert(0, "tools")
from analyze.driver import ground_tree
from analyze.passes.lock_order import LOCK_ORDER_JSON, compute_lock_order

tree, _orphans, _notes = ground_tree(Path.cwd(), None, use_cache=True)
computed = compute_lock_order(tree)
try:
    recorded = json.loads(Path(LOCK_ORDER_JSON).read_text(encoding="utf-8"))
except (OSError, ValueError):
    recorded = None
if computed != recorded:
    print("lock_order.json is stale — regenerate with `python3 "
          "tools/analyze.py --write-lock-order` and realign "
          "src/util/lock_ranks.h")
    sys.exit(1)
state = "CYCLIC" if computed["cyclic"] else "acyclic"
print(f"lock order fresh: {len(computed['nodes'])} locks, "
      f"{len(computed['edges'])} edges, {state}")
EOF
stage_pass

stage_begin "warning-clean Release build (-Werror)"
run cmake --preset release -DQASCA_WERROR=ON >/dev/null
run cmake --build --preset release -j "${JOBS}"
stage_pass

stage_begin "clang-tidy (compile-DB TU set, profile: .clang-tidy)"
if command -v clang-tidy >/dev/null 2>&1; then
  # The release compile database supplies both the flags and the file list:
  # tidy checks exactly the TUs the real build compiles (src/ only — tests
  # and benches carry their own mocks), not whatever a filesystem glob
  # happens to find.
  run cmake --preset release >/dev/null
  tidy_tus() {
    python3 - <<'EOF'
import json, os
for entry in json.load(open("build-release/compile_commands.json")):
    path = os.path.relpath(os.path.join(entry["directory"], entry["file"]))
    if path.startswith("src/"):
        print(path, end="\0")
EOF
  }
  tidy_tus |
    xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build-release --quiet ||
    stage_fail
  stage_pass
else
  stage_skip "clang-tidy not installed on this host"
fi

stage_begin "thread-safety analysis (analyze preset: clang++ -Wthread-safety -Werror=thread-safety)"
if command -v clang++ >/dev/null 2>&1; then
  run cmake --preset analyze >/dev/null
  run cmake --build --preset analyze -j "${JOBS}"
  stage_pass
else
  stage_skip "clang++ not installed on this host; annotations compile as no-ops under gcc"
fi

stage_begin "asan-ubsan preset (DCHECK invariants on, reports fatal)"
run cmake --preset asan-ubsan >/dev/null
run cmake --build --preset asan-ubsan -j "${JOBS}"
if [[ "${QUICK}" -eq 1 ]]; then
  run ctest --preset asan-ubsan-invariants -j "${JOBS}"
else
  run ctest --preset asan-ubsan -j "${JOBS}"
fi
stage_pass

stage_begin "faults suite under asan-ubsan (lifecycle stress, lease/recovery, fail points)"
# Reuses the stage-6 sanitizer build; the `faults` label selects the
# fault-injection slice (ISSUE 5): the seeded lifecycle stress harness,
# the lease/recovery unit tests, the fail-point registry tests and the
# golden-trace byte-identity check. Always runs — --quick narrows stage 6,
# not this gate: crash-recovery bugs are exactly what a quick run skips.
run ctest --preset asan-ubsan-faults -j "${JOBS}"
stage_pass

stage_begin "kernel-equivalence suite under asan-ubsan, per QASCA_KERNEL_ISA override"
# Reuses the stage-6 sanitizer build. The `kernels` label selects the
# bit-identity suite (ISSUE 7, DESIGN.md §12): per-kernel ISA equivalence,
# overlay/cache units and full-engine equivalence runs. Replaying it with
# each QASCA_KERNEL_ISA value covers the env-var dispatch path itself
# (parsing, unsupported-ISA fallback) that in-process SetIsaForTesting
# cannot reach; unsupported ISAs fall back with a warning, so every
# iteration is safe on every host.
for isa in scalar sse2 avx2; do
  QASCA_KERNEL_ISA="${isa}" ctest --preset asan-ubsan-kernels -j "${JOBS}" ||
    stage_fail
done
stage_pass

if [[ "${RUN_TSAN}" -eq 1 ]]; then
  stage_begin "tsan preset (full suite)"
else
  stage_begin "tsan preset (threads-labelled tests; --tsan runs the full suite)"
fi
run cmake --preset tsan >/dev/null
run cmake --build --preset tsan -j "${JOBS}"
if [[ "${RUN_TSAN}" -eq 1 ]]; then
  run ctest --preset tsan -j "${JOBS}"
else
  run ctest --preset tsan-threads -j "${JOBS}"
fi
stage_pass

stage_begin "serving conformance suite (multi-app AppManager, TSan + asan-ubsan)"
# Reuses the tsan build from the previous stage and the asan-ubsan build
# from stage 7. The `serving` label selects the concurrency conformance
# suite (ISSUE 10): bit-identical per-app decision hashes across thread
# counts, batching equivalence, cross-app isolation and mid-storm crash
# recovery. TSan proves the shard/turnstile locking really synchronises
# the racing submitters; asan-ubsan re-runs the suite with every DCHECK'd
# engine invariant armed. (The ranking these locks follow is pinned by
# stage 3's lock-order freshness gate.)
run ctest --preset tsan-serving -j "${JOBS}"
run ctest --preset asan-ubsan-serving -j "${JOBS}"
stage_pass

stage_begin "observability smoke (trace export, provenance JSONL, bench diff)"
# Exercises the flight-recorder stack end to end on the release build: one
# instrumented sim run exports both artifacts, then the validation below
# re-checks the structural contract the unit tests pin (valid JSON, globally
# sorted timestamps, balanced begin/end per thread, the nested stage set)
# against the real engine rather than a synthetic recorder.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "${OBS_DIR}"' EXIT
run cmake --build --preset release -j "${JOBS}" --target qasca_sim
run ./build-release/tools/qasca_sim \
  --trace-out "${OBS_DIR}/trace.json" \
  --provenance-out "${OBS_DIR}/provenance.jsonl"
run python3 - "${OBS_DIR}/trace.json" "${OBS_DIR}/provenance.jsonl" <<'EOF'
import collections
import json
import sys

trace_path, provenance_path = sys.argv[1], sys.argv[2]
with open(trace_path, encoding="utf-8") as f:
    events = json.load(f)["traceEvents"]
assert events, "trace export is empty"
ts = [e["ts"] for e in events]
assert ts == sorted(ts), "trace timestamps are not globally sorted"
stacks = collections.defaultdict(list)
names = set()
for e in events:
    assert e["ph"] in ("B", "E"), f"unexpected phase {e['ph']!r}"
    names.add(e["name"])
    if e["ph"] == "B":
        stacks[e["tid"]].append(e["name"])
    else:
        assert stacks[e["tid"]], f"orphan E for {e['name']!r}"
        top = stacks[e["tid"]].pop()
        assert top == e["name"], f"unbalanced: B {top!r} closed by {e['name']!r}"
assert all(not s for s in stacks.values()), "unclosed B events in export"
required = {"assign_hit", "estimate_qw", "qw_overlay_fill", "topk_scan"}
assert required <= names, f"missing stages: {sorted(required - names)}"

records = []
with open(provenance_path, encoding="utf-8") as f:
    for line in f:
        records.append(json.loads(line))
assert records, "provenance export is empty"
for r in records:
    assert r["questions"], "provenance record with no questions"
    assert len(r["questions"]) == len(r["scores"]), "questions/scores mismatch"
print(f"observability smoke: {len(events)} trace events across "
      f"{len(names)} stages, {len(records)} provenance records")
EOF
# Perf-regression gate over the two newest *checked-in* bench baselines
# (git ls-files, not a filesystem glob: a stray locally generated
# BENCH_*.json must not change which pair the gate compares, or the check
# stops being idempotent across machines). The loose threshold absorbs
# machine-to-machine noise in the snapshots; the point is catching
# order-of-magnitude slides between recorded PRs.
BENCH_BASELINES=($(git ls-files 'BENCH_*.json' | sort -V | tail -2))
if [[ "${#BENCH_BASELINES[@]}" -eq 2 ]]; then
  run python3 tools/bench_diff.py \
    "${BENCH_BASELINES[0]}" "${BENCH_BASELINES[1]}" --threshold 0.5
else
  echo "fewer than two BENCH_*.json baselines; skipping bench diff"
fi
stage_pass

stage_begin "telemetry-overhead smoke (disabled instruments < 2%)"
run cmake --build --preset release -j "${JOBS}" --target bench_telemetry_overhead
run ./build-release/bench/bench_telemetry_overhead
stage_pass

printf '\nAll checks passed (%d stages).\n' "${STAGE}"
