#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qasca::util {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  QASCA_CHECK_LT(lo, hi);
  QASCA_CHECK_GT(buckets, 0);
}

void Histogram::Add(double value) {
  double unit = (value - lo_) / (hi_ - lo_);
  int bucket = static_cast<int>(unit * buckets());
  bucket = std::clamp(bucket, 0, buckets() - 1);
  ++counts_[bucket];
  ++total_;
}

double Histogram::BucketLow(int bucket) const {
  return lo_ + (hi_ - lo_) * bucket / buckets();
}

double Histogram::BucketHigh(int bucket) const {
  return lo_ + (hi_ - lo_) * (bucket + 1) / buckets();
}

}  // namespace qasca::util
