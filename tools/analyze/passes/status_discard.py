"""Pass `status-discard`: a Status/StatusOr result must never be dropped.

Every recoverable failure in this codebase travels as util::Status /
util::StatusOr (DESIGN.md §7); a call site that drops the returned Status
converts a reportable failure into silent corruption — the exact bug class
that let LifecycleJournal::Append report durability it did not have. The
compiler enforces the same contract through QASCA_NODISCARD
(src/util/attributes.h) on the Status types and the Status-returning
platform APIs; this pass closes the gaps [[nodiscard]] cannot see (macro
expansions, builds on compilers where the attribute is softened, code
compiled out of the current configuration).

Mechanics: the semantic frontend indexes every function the tree declares
with a Status/StatusOr return type (declarations and out-of-class
definitions, across all TUs and headers), then inspects every call whose
callee matches one of those names. A call is a violation when it forms a
full-expression statement whose value is discarded. Sanctioned discards:

  * `(void)Foo();` — the explicit annotation; pair it with a comment
    saying why the failure is ignorable;
  * any use at all: assignment, `QASCA_CHECK_OK(...)` /
    `QASCA_RETURN_IF_ERROR(...)` (the call sits inside the macro's
    parentheses, so its result is consumed), chaining (`Foo().ok()`),
    comparison, `return`.

Matching is by unqualified callee name, so an unrelated void function that
shares a name with a Status-returning one would false-positive; name such
helpers distinctly or suppress with `// analyze:allow(status-discard)`.
"""

from __future__ import annotations

from ..base import ERROR, Finding, SourceTree


class StatusDiscardPass:
    name = "status-discard"
    description = ("calls to Status/StatusOr-returning functions must "
                   "consume the result (use it, propagate it, or cast to "
                   "(void) with a reason comment)")
    severity = ERROR
    roots = ("src",)

    def run(self, tree: SourceTree) -> list[Finding]:
        sources = tree.files(self.roots)
        returns_status: set[str] = set()
        for source in sources:
            returns_status.update(tree.model(source).status_functions)
        findings: list[Finding] = []
        for source in sources:
            for call in tree.model(source).calls:
                if not call.discarded or call.void_cast:
                    continue
                if call.name not in returns_status:
                    continue
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=call.line,
                    message=(f"result of Status-returning {call.name}() is "
                             "discarded — handle it, propagate it, or cast "
                             "to (void) with a reason comment")))
        return findings
