#include "model/em.h"

#include <vector>

#include <gtest/gtest.h>

#include "simulation/simulated_worker.h"
#include "util/rng.h"

namespace qasca {
namespace {

// Builds a synthetic answer set: `num_workers` workers with planted WP
// qualities answer every question in `truth` `answers_each` times.
AnswerSet PlantAnswers(const GroundTruthVector& truth, int num_labels,
                       const std::vector<double>& worker_quality,
                       util::Rng& rng) {
  AnswerSet answers(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    for (size_t w = 0; w < worker_quality.size(); ++w) {
      WorkerModel model =
          WorkerModel::Wp(worker_quality[w], num_labels);
      SimulatedWorker worker{static_cast<WorkerId>(w), model};
      answers[i].push_back(
          Answer{static_cast<WorkerId>(w),
                 worker.AnswerQuestion(truth[i], rng)});
    }
  }
  return answers;
}

GroundTruthVector RandomTruth(int n, int num_labels, util::Rng& rng) {
  GroundTruthVector truth(n);
  for (int i = 0; i < n; ++i) truth[i] = rng.UniformInt(num_labels);
  return truth;
}

TEST(EmTest, EmptyAnswerSetStaysUniform) {
  EmOptions options;
  EmResult result = RunEm(AnswerSet(4), 2, options);
  EXPECT_TRUE(result.workers.empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.posterior.At(i, 0), 0.5, 1e-9);
  }
}

TEST(EmTest, FallbackModelIsPerfect) {
  EmOptions options;
  options.worker_kind = WorkerModel::Kind::kWorkerProbability;
  EmResult result = RunEm(AnswerSet(2), 2, options);
  EXPECT_DOUBLE_EQ(result.WorkerFor(123).AnswerProbability(0, 0), 1.0);
}

TEST(EmTest, RecoversLabelsFromReliableCrowd) {
  util::Rng rng(21);
  GroundTruthVector truth = RandomTruth(100, 2, rng);
  AnswerSet answers =
      PlantAnswers(truth, 2, std::vector<double>(7, 0.85), rng);
  EmOptions options;
  EmResult result = RunEm(answers, 2, options);
  int correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (result.posterior.ArgMaxLabel(static_cast<int>(i)) == truth[i]) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 97);
}

TEST(EmTest, RecoversPlantedWorkerQualities) {
  util::Rng rng(22);
  GroundTruthVector truth = RandomTruth(400, 2, rng);
  std::vector<double> quality = {0.9, 0.9, 0.6, 0.9, 0.55};
  AnswerSet answers = PlantAnswers(truth, 2, quality, rng);
  EmOptions options;
  options.worker_kind = WorkerModel::Kind::kWorkerProbability;
  EmResult result = RunEm(answers, 2, options);
  for (size_t w = 0; w < quality.size(); ++w) {
    double fitted =
        result.WorkerFor(static_cast<WorkerId>(w)).worker_probability();
    EXPECT_NEAR(fitted, quality[w], 0.07) << "worker " << w;
  }
}

TEST(EmTest, ConfusionMatrixModeRecoversAsymmetry) {
  // Workers answer label 1 perfectly but err half the time on label 0:
  // a planted asymmetric CM the fitted CM must reflect.
  util::Rng rng(23);
  GroundTruthVector truth = RandomTruth(600, 2, rng);
  WorkerModel planted = WorkerModel::Cm({0.6, 0.4, 0.05, 0.95}, 2);
  AnswerSet answers(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    for (int w = 0; w < 5; ++w) {
      SimulatedWorker worker{w, planted};
      answers[i].push_back(Answer{w, worker.AnswerQuestion(truth[i], rng)});
    }
  }
  EmOptions options;
  EmResult result = RunEm(answers, 2, options);
  for (int w = 0; w < 5; ++w) {
    std::vector<double> cm = result.WorkerFor(w).AsConfusionMatrix();
    EXPECT_NEAR(cm[0], 0.6, 0.1) << "worker " << w;   // M[0][0]
    EXPECT_NEAR(cm[3], 0.95, 0.1) << "worker " << w;  // M[1][1]
    EXPECT_GT(cm[3], cm[0]);
  }
}

TEST(EmTest, EstimatesPriorFromSkewedTruth) {
  util::Rng rng(24);
  GroundTruthVector truth(300);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.Uniform() < 0.8 ? 0 : 1;
  }
  AnswerSet answers =
      PlantAnswers(truth, 2, std::vector<double>(5, 0.85), rng);
  EmOptions options;
  EmResult result = RunEm(answers, 2, options);
  EXPECT_NEAR(result.prior[0], 0.8, 0.06);
}

TEST(EmTest, FixedPriorStaysUniform) {
  util::Rng rng(25);
  GroundTruthVector truth(100);
  for (auto& t : truth) t = 0;  // extremely skewed truth
  AnswerSet answers =
      PlantAnswers(truth, 2, std::vector<double>(4, 0.9), rng);
  EmOptions options;
  options.estimate_prior = false;
  EmResult result = RunEm(answers, 2, options);
  EXPECT_DOUBLE_EQ(result.prior[0], 0.5);
}

TEST(EmTest, ConvergesWithinIterationBudget) {
  util::Rng rng(26);
  GroundTruthVector truth = RandomTruth(200, 3, rng);
  AnswerSet answers =
      PlantAnswers(truth, 3, std::vector<double>(6, 0.8), rng);
  EmOptions options;
  options.max_iterations = 50;
  EmResult result = RunEm(answers, 3, options);
  EXPECT_LT(result.iterations, 50);
}

TEST(EmTest, PosteriorStaysNormalized) {
  util::Rng rng(27);
  GroundTruthVector truth = RandomTruth(50, 3, rng);
  AnswerSet answers =
      PlantAnswers(truth, 3, std::vector<double>(3, 0.7), rng);
  EmOptions options;
  EmResult result = RunEm(answers, 3, options);
  EXPECT_TRUE(result.posterior.IsNormalized(1e-9));
}

TEST(EmTest, WarmStartMatchesColdFitQuality) {
  util::Rng rng(29);
  GroundTruthVector truth = RandomTruth(300, 2, rng);
  AnswerSet answers =
      PlantAnswers(truth, 2, std::vector<double>(6, 0.85), rng);
  EmOptions options;
  EmResult cold = RunEm(answers, 2, options);
  EmResult warm = RunEmWarmStart(answers, 2, options, cold);
  // Restarting from the fixed point must stay at the fixed point,
  // converging immediately.
  EXPECT_LE(warm.iterations, 2);
  for (int i = 0; i < 300; ++i) {
    EXPECT_NEAR(warm.posterior.At(i, 0), cold.posterior.At(i, 0), 1e-4);
  }
}

TEST(EmTest, WarmStartConvergesFasterOnIncrementalAnswers) {
  util::Rng rng(30);
  GroundTruthVector truth = RandomTruth(300, 2, rng);
  AnswerSet answers =
      PlantAnswers(truth, 2, std::vector<double>(6, 0.8), rng);
  EmOptions options;
  EmResult previous = RunEm(answers, 2, options);
  // A handful of new answers arrive.
  for (int i = 0; i < 8; ++i) {
    answers[i].push_back(Answer{0, truth[i]});
  }
  EmResult warm = RunEmWarmStart(answers, 2, options, previous);
  EmResult cold = RunEm(answers, 2, options);
  EXPECT_LE(warm.iterations, cold.iterations);
  // Same fixed point either way.
  int agree = 0;
  for (int i = 0; i < 300; ++i) {
    if (warm.posterior.ArgMaxLabel(i) == cold.posterior.ArgMaxLabel(i)) {
      ++agree;
    }
  }
  EXPECT_GE(agree, 298);
}

TEST(EmTest, WarmStartWithMismatchedShapeFallsBackToCold) {
  util::Rng rng(31);
  GroundTruthVector truth = RandomTruth(50, 2, rng);
  AnswerSet answers =
      PlantAnswers(truth, 2, std::vector<double>(4, 0.8), rng);
  EmOptions options;
  EmResult tiny = RunEm(AnswerSet(3), 2, options);  // wrong n
  EmResult result = RunEmWarmStart(answers, 2, options, tiny);
  EXPECT_EQ(result.posterior.num_questions(), 50);
  EXPECT_TRUE(result.posterior.IsNormalized(1e-9));
}

TEST(EmTest, BeatsMajorityVoteWithHeterogeneousWorkers) {
  // A reliable minority should outvote an unreliable majority once EM has
  // learned who is who — the core value of Dawid–Skene over majority vote.
  util::Rng rng(28);
  GroundTruthVector truth = RandomTruth(500, 2, rng);
  std::vector<double> quality = {0.95, 0.95, 0.55, 0.55, 0.55};
  AnswerSet answers = PlantAnswers(truth, 2, quality, rng);

  int majority_correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    int votes[2] = {0, 0};
    for (const Answer& a : answers[i]) ++votes[a.label];
    if ((votes[truth[i]] > votes[1 - truth[i]])) ++majority_correct;
  }

  EmOptions options;
  EmResult result = RunEm(answers, 2, options);
  int em_correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (result.posterior.ArgMaxLabel(static_cast<int>(i)) == truth[i]) {
      ++em_correct;
    }
  }
  EXPECT_GT(em_correct, majority_correct);
}

}  // namespace
}  // namespace qasca
