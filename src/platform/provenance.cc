#include "platform/provenance.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/kernels/kernels.h"
#include "util/json.h"
#include "util/logging.h"

namespace qasca {
namespace {

// --- minimal JSONL field extraction --------------------------------------
// The dump format is fixed (ToJsonLines below emits every key, in order,
// with no nesting beyond the two flat arrays), so parsing scans for
// '"key":' and reads the scalar or array after it — no general JSON parser
// needed for the round-trip.

// Returns the character offset just past `"key":`, or npos.
size_t FindKey(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const size_t pos = line.find(needle);
  return pos == std::string_view::npos ? std::string_view::npos
                                       : pos + needle.size();
}

util::Status ParseDouble(std::string_view line, std::string_view key,
                         double* out) {
  const size_t pos = FindKey(line, key);
  if (pos == std::string_view::npos) {
    return util::Status::InvalidArgument("provenance line missing key \"" +
                                         std::string(key) + "\"");
  }
  const std::string token(line.substr(pos, line.find_first_of(",]}", pos) -
                                               pos));
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) {
    return util::Status::InvalidArgument("provenance key \"" +
                                         std::string(key) +
                                         "\" has a non-numeric value");
  }
  return util::Status::Ok();
}

util::Status ParseU64(std::string_view line, std::string_view key,
                      uint64_t* out) {
  double value = 0.0;
  QASCA_RETURN_IF_ERROR(ParseDouble(line, key, &value));
  *out = static_cast<uint64_t>(value);
  return util::Status::Ok();
}

util::Status ParseInt(std::string_view line, std::string_view key, int* out) {
  double value = 0.0;
  QASCA_RETURN_IF_ERROR(ParseDouble(line, key, &value));
  *out = static_cast<int>(value);
  return util::Status::Ok();
}

util::Status ParseBool(std::string_view line, std::string_view key,
                       bool* out) {
  const size_t pos = FindKey(line, key);
  if (pos == std::string_view::npos) {
    return util::Status::InvalidArgument("provenance line missing key \"" +
                                         std::string(key) + "\"");
  }
  if (line.substr(pos, 4) == "true") {
    *out = true;
  } else if (line.substr(pos, 5) == "false") {
    *out = false;
  } else {
    return util::Status::InvalidArgument("provenance key \"" +
                                         std::string(key) +
                                         "\" has a non-boolean value");
  }
  return util::Status::Ok();
}

// Parses the flat numeric array after `"key":[` into `out` via `parse_one`.
template <typename T>
util::Status ParseArray(std::string_view line, std::string_view key,
                        std::vector<T>* out) {
  size_t pos = FindKey(line, key);
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '[') {
    return util::Status::InvalidArgument("provenance line missing array \"" +
                                         std::string(key) + "\"");
  }
  const size_t close = line.find(']', pos);
  if (close == std::string_view::npos) {
    return util::Status::InvalidArgument("provenance array \"" +
                                         std::string(key) + "\" unterminated");
  }
  out->clear();
  ++pos;  // past '['
  while (pos < close) {
    const size_t comma = std::min(line.find(',', pos), close);
    const std::string token(line.substr(pos, comma - pos));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      return util::Status::InvalidArgument("provenance array \"" +
                                           std::string(key) +
                                           "\" has a non-numeric element");
    }
    out->push_back(static_cast<T>(value));
    pos = comma + 1;
  }
  return util::Status::Ok();
}

void AppendRecordJson(std::string& out, const DecisionProvenance& record) {
  out += "{\"seq\":";
  out += std::to_string(record.seq);
  out += ",\"trace\":";
  out += std::to_string(record.trace_id);
  out += ",\"hit\":";
  out += std::to_string(record.hit_id);
  out += ",\"worker\":";
  out += std::to_string(record.worker);
  out += ",\"questions\":[";
  for (size_t i = 0; i < record.questions.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(record.questions[i]);
  }
  out += "],\"scores\":[";
  for (size_t i = 0; i < record.scores.size(); ++i) {
    if (i > 0) out += ',';
    util::AppendJsonNumber(out, record.scores[i]);
  }
  out += "],\"objective\":";
  util::AppendJsonNumber(out, record.objective);
  out += ",\"outer_iterations\":";
  out += std::to_string(record.outer_iterations);
  out += ",\"inner_iterations\":";
  out += std::to_string(record.inner_iterations);
  out += ",\"candidates\":";
  out += std::to_string(record.candidates);
  out += ",\"overlay_rows\":";
  out += std::to_string(record.overlay_rows);
  out += ",\"used_overlay\":";
  out += record.used_overlay ? "true" : "false";
  out += ",\"cache_hit\":";
  out += record.likelihood_cache_hit ? "true" : "false";
  out += ",\"em_generation\":";
  out += std::to_string(record.em_generation);
  out += ",\"kernel_isa\":";
  out += std::to_string(record.kernel_isa);
  out += ",\"kernel_isa_name\":";
  util::AppendJsonString(
      out, kernels::IsaName(static_cast<kernels::Isa>(record.kernel_isa)));
  out += ",\"journal_seq\":";
  out += std::to_string(record.journal_seq);
  out += ",\"ticks\":";
  out += std::to_string(record.now_ticks);
  out += ",\"deadline\":";
  out += std::to_string(record.lease_deadline);
  out += "}";
}

util::Status ParseRecord(std::string_view line, DecisionProvenance* record) {
  QASCA_RETURN_IF_ERROR(ParseU64(line, "seq", &record->seq));
  QASCA_RETURN_IF_ERROR(ParseU64(line, "trace", &record->trace_id));
  QASCA_RETURN_IF_ERROR(ParseU64(line, "hit", &record->hit_id));
  QASCA_RETURN_IF_ERROR(ParseInt(line, "worker", &record->worker));
  QASCA_RETURN_IF_ERROR(ParseArray(line, "questions", &record->questions));
  QASCA_RETURN_IF_ERROR(ParseArray(line, "scores", &record->scores));
  QASCA_RETURN_IF_ERROR(ParseDouble(line, "objective", &record->objective));
  QASCA_RETURN_IF_ERROR(
      ParseInt(line, "outer_iterations", &record->outer_iterations));
  QASCA_RETURN_IF_ERROR(
      ParseInt(line, "inner_iterations", &record->inner_iterations));
  QASCA_RETURN_IF_ERROR(ParseInt(line, "candidates", &record->candidates));
  QASCA_RETURN_IF_ERROR(
      ParseInt(line, "overlay_rows", &record->overlay_rows));
  QASCA_RETURN_IF_ERROR(
      ParseBool(line, "used_overlay", &record->used_overlay));
  QASCA_RETURN_IF_ERROR(
      ParseBool(line, "cache_hit", &record->likelihood_cache_hit));
  QASCA_RETURN_IF_ERROR(
      ParseU64(line, "em_generation", &record->em_generation));
  QASCA_RETURN_IF_ERROR(ParseInt(line, "kernel_isa", &record->kernel_isa));
  QASCA_RETURN_IF_ERROR(
      ParseU64(line, "journal_seq", &record->journal_seq));
  QASCA_RETURN_IF_ERROR(ParseU64(line, "ticks", &record->now_ticks));
  QASCA_RETURN_IF_ERROR(
      ParseU64(line, "deadline", &record->lease_deadline));
  if (record->questions.size() != record->scores.size()) {
    return util::Status::InvalidArgument(
        "provenance questions/scores arrays differ in length");
  }
  return util::Status::Ok();
}

}  // namespace

ProvenanceLog::ProvenanceLog(int capacity)
    : capacity_(std::max(1, capacity)) {
  ring_.reserve(static_cast<size_t>(capacity_));
}

void ProvenanceLog::Record(DecisionProvenance record) {
  record.seq = static_cast<uint64_t>(total_);
  if (static_cast<int>(ring_.size()) < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[static_cast<size_t>(total_ % capacity_)] = std::move(record);
  }
  ++total_;
}

int ProvenanceLog::size() const noexcept {
  return static_cast<int>(ring_.size());
}

const DecisionProvenance& ProvenanceLog::at(int i) const {
  QASCA_CHECK(i >= 0 && i < size());
  const int64_t start = total_ >= capacity_ ? total_ % capacity_ : 0;
  return ring_[static_cast<size_t>((start + i) % size())];
}

std::string ProvenanceLog::ToJsonLines() const {
  std::string out;
  for (int i = 0; i < size(); ++i) {
    AppendRecordJson(out, at(i));
    out += '\n';
  }
  return out;
}

util::StatusOr<std::vector<DecisionProvenance>> ProvenanceLog::ParseJsonLines(
    std::string_view text) {
  std::vector<DecisionProvenance> records;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = std::min(text.find('\n', pos), text.size());
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    DecisionProvenance record;
    QASCA_RETURN_IF_ERROR(ParseRecord(line, &record));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace qasca
