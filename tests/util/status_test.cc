#include "util/status.h"

#include <gtest/gtest.h>

namespace qasca::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, AlreadyExistsFormatsLikeTheOtherCodes) {
  Status status = Status::AlreadyExists("duplicate completion");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.ToString(), "AlreadyExists: duplicate completion");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 7;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Status FailsThrough() {
  QASCA_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status status = FailsThrough();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(StatusDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = Status::Internal("boom");
  EXPECT_DEATH((void)result.value(), "boom");
}

}  // namespace
}  // namespace qasca::util
