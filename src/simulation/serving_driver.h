#ifndef QASCA_SIMULATION_SERVING_DRIVER_H_
#define QASCA_SIMULATION_SERVING_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "platform/app_manager.h"
#include "util/status.h"

namespace qasca {

/// Knobs for a generated multi-app serving workload: N apps, each with its
/// own worker pool and its own interleaved stream of HIT requests,
/// completions, batched requests, clock ticks and (optionally) mid-storm
/// crash + recovery events.
struct ServingWorkloadOptions {
  int apps = 4;
  int workers_per_app = 6;
  /// Events in each app's stream (the global schedule interleaves all of
  /// them in a seeded order).
  int events_per_app = 120;
  int num_questions = 40;
  int num_labels = 2;
  int questions_per_hit = 2;
  int em_refresh_interval = 4;
  /// 0 disables lease expiry.
  uint64_t lease_timeout_ticks = 7;
  /// Fractions of an app's events that are clock ticks / batched requests;
  /// the rest are single serve events (request, or completion if the
  /// worker holds an open HIT).
  double tick_fraction = 0.15;
  double batch_fraction = 0.1;
  int batch_size = 3;
  /// Percentage of simulated answers that match the ground truth
  /// (truth(q) = q mod num_labels); the rest are hash-deterministic noise.
  int answer_accuracy_pct = 80;
  /// Every Nth event of an app's stream is a crash + journal recovery of
  /// that app (0 disables; requires persistence_dir).
  int crash_every = 0;
  /// Per-app observability (each app gets its own registry / SLO tracker).
  bool telemetry = false;
  double slo_p95_assign_ms = 0.0;
  bool provenance = false;
  /// Directory for per-app journals; empty disables persistence.
  std::string persistence_dir;
};

/// A generated multi-app schedule: one event stream per app, interleaved
/// into a single global order by a seeded shuffle that preserves each
/// app's internal order. The schedule is data — the same schedule can be
/// executed serially or by any number of threads, and per-app results must
/// be bit-identical (the conformance suite's core claim).
struct ServingEvent {
  enum class Kind {
    /// Request a HIT for `worker` — or complete the worker's open HIT if
    /// the driver's lane model says one is outstanding.
    kServe,
    /// Batched requests for `batch` (workers with open HITs are skipped).
    kBatch,
    /// Advance the app's virtual clock by `ticks`.
    kTick,
    /// Crash the app and recover it from its journal.
    kCrashRecover,
  };
  Kind kind = Kind::kServe;
  AppId app = 0;
  /// Position in the app's stream; the turnstile the concurrent driver
  /// serialises on.
  uint32_t app_seq = 0;
  WorkerId worker = 0;
  std::vector<WorkerId> batch;
  uint64_t ticks = 1;
};

class ServingSchedule {
 public:
  /// Deterministically generates the interleaved multi-app schedule for
  /// (options, seed).
  static ServingSchedule Generate(const ServingWorkloadOptions& options,
                                  uint64_t seed);

  const std::vector<ServingEvent>& events() const { return events_; }
  int apps() const { return apps_; }

 private:
  std::vector<ServingEvent> events_;
  int apps_ = 0;
};

/// Registers `options.apps` QASCA apps (QascaStrategy, per-app seed derived
/// from `seed`) into `manager`. Returns the first error status, if any.
QASCA_NODISCARD
util::Status BuildServingApps(AppManager& manager,
                              const ServingWorkloadOptions& options,
                              uint64_t seed);

/// Per-app and aggregate outcome of one schedule execution.
struct ServingRunResult {
  /// FNV-1a fold, in app-stream order, of every decision the app's engine
  /// made (selected questions, completion outcomes, expiry counts, crash
  /// recoveries). Bit-identical across thread counts by construction of
  /// the per-app turnstiles.
  std::vector<uint64_t> decision_hashes;
  /// AppManager::AppStateFingerprint per app after the run.
  std::vector<uint64_t> fingerprints;
  int64_t assignments = 0;
  int64_t completions = 0;
  int64_t rejects = 0;
  int64_t leases_expired = 0;
  int64_t crash_recoveries = 0;
  int64_t batches = 0;
  /// Wall-clock seconds for the whole schedule execution (bench input;
  /// never feeds a decision).
  double elapsed_seconds = 0.0;
};

/// Executes `schedule` against `manager` with `num_threads` worker threads
/// (1 = inline serial execution). Threads claim events from the global
/// order and serialise per app on a turnstile, so any thread count
/// preserves each app's event order — the per-app decision hashes and
/// fingerprints must match the serial run bit for bit.
ServingRunResult RunServingSchedule(AppManager& manager,
                                    const ServingSchedule& schedule,
                                    const ServingWorkloadOptions& options,
                                    int num_threads);

/// The deterministic simulated answer the driver submits for (worker,
/// question): ground truth (question mod num_labels) with probability
/// answer_accuracy_pct, hash-noise otherwise. Pure function — independent
/// of execution order, which is what keeps completions bit-identical
/// across interleavings.
LabelIndex ServingAnswerFor(AppId app, WorkerId worker, QuestionIndex question,
                            const ServingWorkloadOptions& options);

}  // namespace qasca

#endif  // QASCA_SIMULATION_SERVING_DRIVER_H_
