// Unit coverage for the HIT-lifecycle robustness layer (ISSUE 5): every
// new Status branch in Engine::CompleteHit / Engine::Recover, the lease
// expiry/requeue mechanics, the telemetry counters they increment, and the
// journal's crash points (fail-point driven, so those tests are compiled
// out with QASCA_ENABLE_FAILPOINTS=0). The end-to-end seeded storm lives in
// tests/integration/lifecycle_stress_test.cc; this file isolates each
// branch.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "util/failpoint.h"

namespace qasca {
namespace {

AppConfig LeaseConfig(const std::string& persistence = "") {
  AppConfig config;
  config.name = "lease_test";
  config.num_questions = 12;
  config.num_labels = 2;
  config.questions_per_hit = 2;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 30;
  config.metric = MetricSpec::Accuracy();
  config.em.max_iterations = 6;
  config.telemetry_enabled = true;
  config.lease_timeout_ticks = 2;
  config.persistence_path = persistence;
  return config;
}

std::unique_ptr<TaskAssignmentEngine> MakeEngine(AppConfig config,
                                                 uint64_t seed = 1) {
  return std::make_unique<TaskAssignmentEngine>(
      std::move(config), std::make_unique<QascaStrategy>(), seed);
}

std::string FreshJournalPrefix(const std::string& name) {
  const std::string prefix = ::testing::TempDir() + "/qasca_" + name;
  std::remove((prefix + ".snapshot").c_str());
  std::remove((prefix + ".log").c_str());
  return prefix;
}

int64_t CounterValue(const TaskAssignmentEngine& engine,
                     const std::string& name) {
  for (const auto& counter : engine.TelemetrySnapshot().counters) {
    if (counter.name == name) return counter.value;
  }
  return -1;  // instrument not present
}

std::vector<LabelIndex> LabelsFor(const std::vector<QuestionIndex>& hit) {
  return std::vector<LabelIndex>(hit.size(), 0);
}

// --- leases ---------------------------------------------------------------

TEST(LeaseTest, LeaseExpiresRequeuesQuestionsAndRefundsBudget) {
  auto engine = MakeEngine(LeaseConfig());
  auto hit = engine->RequestHit(7);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(engine->open_hit_count(), 1);
  const int remaining_after_assign = engine->remaining_hits();

  EXPECT_EQ(engine->Tick(1), 0);  // deadline is assign-time + 2
  EXPECT_EQ(engine->Tick(1), 1);  // now it expires
  EXPECT_EQ(engine->open_hit_count(), 0);
  EXPECT_EQ(engine->leases_expired(), 1);
  EXPECT_EQ(engine->questions_requeued(), 2);
  EXPECT_EQ(engine->remaining_hits(), remaining_after_assign + 1);
  EXPECT_EQ(engine->trace().CountOf(EventTrace::Kind::kLeaseExpired), 1);
  EXPECT_EQ(CounterValue(*engine, "hit.lease_expired"), 1);
  EXPECT_EQ(CounterValue(*engine, "hit.questions_requeued"), 2);

  // The questions re-entered the worker's candidate set: with n = 12 and
  // k = 2 the worker can fill 6 HITs again from scratch.
  for (int round = 0; round < 6; ++round) {
    auto next = engine->RequestHit(7);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(engine->CompleteHit(7, LabelsFor(*next)).ok());
  }
}

TEST(LeaseTest, ZeroTimeoutNeverExpires) {
  AppConfig config = LeaseConfig();
  config.lease_timeout_ticks = 0;
  auto engine = MakeEngine(std::move(config));
  ASSERT_TRUE(engine->RequestHit(1).ok());
  EXPECT_EQ(engine->Tick(1000), 0);
  EXPECT_EQ(engine->open_hit_count(), 1);
  EXPECT_EQ(engine->leases_expired(), 0);
}

TEST(LeaseTest, LateCompletionIsRejectedUntilANewHitSupersedes) {
  auto engine = MakeEngine(LeaseConfig());
  auto hit = engine->RequestHit(3);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(engine->Tick(2), 1);

  // The stale answers arrive after the lease expired.
  util::Status late = engine->CompleteHit(3, LabelsFor(*hit));
  EXPECT_EQ(late.code(), util::StatusCode::kFailedPrecondition)
      << late.ToString();
  EXPECT_EQ(engine->late_completions_rejected(), 1);
  EXPECT_EQ(CounterValue(*engine, "hit.late_completion_rejected"), 1);
  EXPECT_EQ(engine->completed_hits(), 0);

  // A new assignment closes the rejection window; completing the new HIT
  // is business as usual.
  auto fresh = engine->RequestHit(3);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(engine->CompleteHit(3, LabelsFor(*fresh)).ok());
  EXPECT_EQ(engine->late_completions_rejected(), 1);
}

// --- idempotent completion ------------------------------------------------

TEST(DuplicateCompletionTest, RedeliveredCallbackIsDroppedWithoutCounting) {
  auto engine = MakeEngine(LeaseConfig());
  auto hit = engine->RequestHit(5);
  ASSERT_TRUE(hit.ok());
  const std::vector<LabelIndex> labels = LabelsFor(*hit);
  ASSERT_TRUE(engine->CompleteHit(5, labels).ok());
  const int answers_before = engine->database().AnswerCount((*hit)[0]);
  const int64_t recorded_before = CounterValue(*engine, "db.answers_recorded");

  util::Status duplicate = engine->CompleteHit(5, labels);
  EXPECT_EQ(duplicate.code(), util::StatusCode::kAlreadyExists)
      << duplicate.ToString();
  EXPECT_EQ(engine->duplicates_dropped(), 1);
  EXPECT_EQ(CounterValue(*engine, "hit.duplicate_dropped"), 1);
  // Never double-counted: D, the completion tally and the EM inputs are
  // untouched.
  EXPECT_EQ(engine->completed_hits(), 1);
  EXPECT_EQ(engine->database().AnswerCount((*hit)[0]), answers_before);
  EXPECT_EQ(CounterValue(*engine, "db.answers_recorded"), recorded_before);

  // A third delivery is still dropped.
  EXPECT_EQ(engine->CompleteHit(5, labels).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(engine->duplicates_dropped(), 2);
}

TEST(DuplicateCompletionTest, UnknownWorkerIsStillNotFound) {
  auto engine = MakeEngine(LeaseConfig());
  EXPECT_EQ(engine->CompleteHit(42, {0, 0}).code(),
            util::StatusCode::kNotFound);
}

TEST(DuplicateCompletionTest, DifferentAnswersFromIdleWorkerAreNotFound) {
  auto engine = MakeEngine(LeaseConfig());
  auto hit = engine->RequestHit(5);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(engine->CompleteHit(5, {0, 0}).ok());
  // Same worker, no open HIT, answers that match no completed record: not a
  // redelivery, just an unknown completion.
  EXPECT_EQ(engine->CompleteHit(5, {1, 1}).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine->duplicates_dropped(), 0);
}

// --- crash recovery -------------------------------------------------------

TEST(RecoveryTest, RecoverWithoutPersistenceIsFailedPrecondition) {
  auto engine = MakeEngine(LeaseConfig());
  EXPECT_EQ(engine->Recover().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, ReplayReproducesStateAndRngStream) {
  const std::string prefix = FreshJournalPrefix("recovery_basic");
  const AppConfig config = LeaseConfig(prefix);

  // Reference run: journal six lifecycle events, remember the state and
  // the next decision the engine would have made.
  auto original = MakeEngine(config);
  for (WorkerId worker = 0; worker < 2; ++worker) {
    auto hit = original->RequestHit(worker);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(original->CompleteHit(worker, LabelsFor(*hit)).ok());
  }
  original->Tick(1);
  auto abandoned = original->RequestHit(9);  // stays open across the crash
  ASSERT_TRUE(abandoned.ok());
  const uint64_t fingerprint = original->StateFingerprint();
  auto next_decision = original->RequestHit(4);
  ASSERT_TRUE(next_decision.ok());
  original.reset();

  // Crash: a fresh engine replays the journal. Note the journal now also
  // holds the worker-4 assignment; recovery replays it too, so compare the
  // pre-assignment fingerprint against a recovery of a journal truncated at
  // the crash... simplest faithful check: recover everything and verify the
  // full final state, then confirm determinism by recovering twice.
  auto recovered = MakeEngine(config);
  util::Status status = recovered->Recover();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(recovered->completed_hits(), 2);
  EXPECT_EQ(recovered->open_hit_count(), 2);  // workers 9 and 4
  EXPECT_EQ(recovered->now_ticks(), 1u);
  EXPECT_EQ(CounterValue(*recovered, "journal.events_replayed"), 7);
  const uint64_t recovered_fingerprint = recovered->StateFingerprint();
  recovered.reset();

  auto again = MakeEngine(config);
  ASSERT_TRUE(again->Recover().ok());
  EXPECT_EQ(again->StateFingerprint(), recovered_fingerprint);
  // And the fingerprint taken mid-run differs from the final one (the
  // fingerprint actually discriminates states).
  EXPECT_NE(fingerprint, recovered_fingerprint);
}

TEST(RecoveryTest, MismatchedSeedDivergesWithInternal) {
  const std::string prefix = FreshJournalPrefix("recovery_seed");
  const AppConfig config = LeaseConfig(prefix);
  {
    // Varied answers drive Qc away from uniform; once rows differ, the
    // seed-dependent sampled Qw steers which questions win Top-K Benefit,
    // so a wrong-seed replay must diverge from the journaled selections.
    auto original = MakeEngine(config, /*seed=*/1);
    for (int round = 0; round < 10; ++round) {
      const WorkerId worker = round % 4;
      auto hit = original->RequestHit(worker);
      ASSERT_TRUE(hit.ok()) << hit.status().ToString();
      std::vector<LabelIndex> labels;
      for (size_t i = 0; i < hit->size(); ++i) {
        labels.push_back(static_cast<LabelIndex>((round + i) % 2));
      }
      ASSERT_TRUE(original->CompleteHit(worker, labels).ok());
    }
  }
  auto wrong_seed = MakeEngine(config, /*seed=*/2);
  util::Status status = wrong_seed->Recover();
  EXPECT_EQ(status.code(), util::StatusCode::kInternal) << status.ToString();
}

#if QASCA_ENABLE_FAILPOINTS

class CrashPointTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FailPoints::Global().DisarmAll(); }
};

// Runs `events` lifecycle steps, arms `fail_point` before the final step so
// that step's journal append is lost/torn, and verifies recovery lands on
// the state just before the lost step.
void RunCrashPoint(const char* name, const std::string& fail_point) {
  const std::string prefix = FreshJournalPrefix(name);
  const AppConfig config = LeaseConfig(prefix);

  auto engine = MakeEngine(config);
  for (WorkerId worker = 0; worker < 2; ++worker) {
    auto hit = engine->RequestHit(worker);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(engine->CompleteHit(worker, LabelsFor(*hit)).ok());
  }
  const uint64_t durable_fingerprint = engine->StateFingerprint();

  util::FailPoints::Global().Arm(fail_point);
  ASSERT_TRUE(engine->RequestHit(5).ok());  // this append never survives
  EXPECT_EQ(util::FailPoints::Global().TriggeredCount(fail_point), 1u);
  EXPECT_GE(CounterValue(*engine, "failpoint.triggered"), 1);
  engine.reset();
  util::FailPoints::Global().DisarmAll();

  auto recovered = MakeEngine(config);
  ASSERT_TRUE(recovered->Recover().ok());
  EXPECT_EQ(recovered->StateFingerprint(), durable_fingerprint)
      << "recovery after " << fail_point
      << " must land on the last durable state";
}

TEST_F(CrashPointTest, DroppedAppendLosesOnlyTheTail) {
  RunCrashPoint("crash_drop", "journal.drop_append");
}

TEST_F(CrashPointTest, TornAppendLosesOnlyTheTail) {
  RunCrashPoint("crash_torn", "journal.torn_append");
}

TEST_F(CrashPointTest, CrashBetweenCompactionRenameAndTruncateDedupes) {
  const std::string prefix = FreshJournalPrefix("crash_compact");
  const AppConfig config = LeaseConfig(prefix);
  uint64_t fingerprint = 0;
  {
    auto engine = MakeEngine(config);
    for (WorkerId worker = 0; worker < 2; ++worker) {
      auto hit = engine->RequestHit(worker);
      ASSERT_TRUE(hit.ok());
      ASSERT_TRUE(engine->CompleteHit(worker, LabelsFor(*hit)).ok());
    }
    fingerprint = engine->StateFingerprint();
  }
  // The next engine's construction-time compaction renames the snapshot
  // but "crashes" before truncating the log: the log now repeats events
  // the snapshot already covers.
  util::FailPoints::Global().Arm("journal.compact_skip_truncate");
  {
    auto engine = MakeEngine(config);
    ASSERT_TRUE(engine->Recover().ok());
    EXPECT_EQ(engine->StateFingerprint(), fingerprint);
  }
  util::FailPoints::Global().DisarmAll();
  // And the stale log entries must be deduped by seq on the next load too.
  auto engine = MakeEngine(config);
  ASSERT_TRUE(engine->Recover().ok());
  EXPECT_EQ(engine->StateFingerprint(), fingerprint);
}

#endif  // QASCA_ENABLE_FAILPOINTS

}  // namespace
}  // namespace qasca
