#include "platform/app_config.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

AppConfig ValidConfig() {
  AppConfig config;
  config.num_questions = 100;
  config.num_labels = 2;
  config.questions_per_hit = 4;
  config.pay_per_hit = 0.02;
  config.budget = 1.0;
  return config;
}

TEST(AppConfigTest, ValidConfigPasses) {
  EXPECT_TRUE(ValidConfig().Validate().ok());
}

TEST(AppConfigTest, TotalHitsIsBudgetOverPay) {
  AppConfig config = ValidConfig();
  EXPECT_EQ(config.TotalHits(), 50);
}

TEST(AppConfigTest, TotalHitsRoundsCurrencyNoise) {
  AppConfig config = ValidConfig();
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 750;  // binary-inexact product
  EXPECT_EQ(config.TotalHits(), 750);
}

TEST(AppConfigTest, RejectsZeroQuestions) {
  AppConfig config = ValidConfig();
  config.num_questions = 0;
  EXPECT_EQ(config.Validate().code(), util::StatusCode::kInvalidArgument);
}

TEST(AppConfigTest, RejectsSingleLabel) {
  AppConfig config = ValidConfig();
  config.num_labels = 1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AppConfigTest, RejectsHitLargerThanPool) {
  AppConfig config = ValidConfig();
  config.questions_per_hit = 101;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AppConfigTest, RejectsNonPositivePay) {
  AppConfig config = ValidConfig();
  config.pay_per_hit = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AppConfigTest, RejectsBudgetBelowOneHit) {
  AppConfig config = ValidConfig();
  config.budget = 0.01;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AppConfigTest, RejectsBadFScoreAlpha) {
  AppConfig config = ValidConfig();
  config.metric = MetricSpec::FScore(0.5);
  config.metric.alpha = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AppConfigTest, RejectsTargetLabelOutOfRange) {
  AppConfig config = ValidConfig();
  config.metric = MetricSpec::FScore(0.5, /*target_label=*/2);
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AppConfigTest, AcceptsFScoreMetric) {
  AppConfig config = ValidConfig();
  config.metric = MetricSpec::FScore(0.75, 1);
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace qasca
