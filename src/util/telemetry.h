#ifndef QASCA_UTIL_TELEMETRY_H_
#define QASCA_UTIL_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace qasca::util {

class FlightRecorder;
class MetricRegistry;

/// Shared bucketing for every latency instrument: buckets indexed by
/// bit_width(nanoseconds), so bucket b holds durations in [2^(b-1), 2^b) ns
/// and bucket 0 holds sub-nanosecond (clock-resolution) samples. 65 buckets
/// cover the full uint64 nanosecond range.
inline constexpr int kLog2LatencyBuckets = 65;

/// Monotone event counter. Add() is wait-free (one relaxed fetch_add) and a
/// single predictable branch when the owning registry is disabled, so
/// instruments can sit on the per-HIT hot path unconditionally.
class Counter {
 public:
  void Add(int64_t delta = 1) noexcept {
    if (enabled_) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricRegistry;
  Counter(std::string name, bool enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  bool enabled_;
  std::atomic<int64_t> value_{0};
};

/// Last-value-wins gauge (e.g. open HITs, latest refresh drift).
class Gauge {
 public:
  void Set(double value) noexcept {
    if (enabled_) value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricRegistry;
  Gauge(std::string name, bool enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  bool enabled_;
  std::atomic<double> value_{0.0};
};

/// Latency distribution of one stage: exact count / mean / min / max via
/// RunningStats plus a log2-of-nanoseconds bucket Histogram for quantile
/// estimates (p50/p95/p99). Thread-safe; each Record takes one short
/// mutex-guarded update, which is negligible against the stages measured
/// (every span covers at least a full kernel sweep).
class LatencyHistogram {
 public:
  void RecordSeconds(double seconds) noexcept QASCA_EXCLUDES(mutex_);

  int64_t count() const QASCA_EXCLUDES(mutex_);
  double total_seconds() const QASCA_EXCLUDES(mutex_);
  double mean_seconds() const QASCA_EXCLUDES(mutex_);
  double max_seconds() const QASCA_EXCLUDES(mutex_);
  /// Quantile estimate in seconds: exact min/max at p<=0 / p>=1, otherwise
  /// linear interpolation of the rank's position within the log2 bucket
  /// that holds it (error bounded by the bucket width), clamped to the
  /// observed [min, max].
  double Percentile(double p) const QASCA_EXCLUDES(mutex_);

  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricRegistry;
  LatencyHistogram(std::string name, bool enabled)
      : name_(std::move(name)),
        enabled_(enabled),
        log2_ns_(0.0, kLog2LatencyBuckets, kLog2LatencyBuckets) {}

  double PercentileLocked(double p) const QASCA_REQUIRES(mutex_);

  const std::string name_;
  const bool enabled_;
  mutable Mutex mutex_{lock_ranks::kLatencyHistogram};
  RunningStats stats_ QASCA_GUARDED_BY(mutex_);  // seconds
  Histogram log2_ns_ QASCA_GUARDED_BY(mutex_);
};

/// Sliding-window latency percentiles: the last `window` samples as log2-ns
/// bucket indices in a ring, plus an incrementally maintained bucket-count
/// array — O(1) per record, O(kLog2LatencyBuckets) per percentile query.
/// Lifetime aggregates answer "how fast is this stage overall"; this
/// answers "how fast is it *right now*", which is what an SLO needs
/// (DESIGN.md §13). One byte per window slot, so a 512-sample window costs
/// 512 bytes.
///
/// Thread-safe like LatencyHistogram: one short mutex-guarded update per
/// record.
class WindowedLatency {
 public:
  void RecordSeconds(double seconds) noexcept QASCA_EXCLUDES(mutex_);

  /// Samples ever recorded (not just those still in the window).
  int64_t count() const QASCA_EXCLUDES(mutex_);
  /// Window size in samples.
  int window() const noexcept { return window_; }
  /// Quantile estimate in seconds over the samples currently in the window
  /// (linear interpolation inside the holding log2 bucket, like
  /// LatencyHistogram::Percentile). 0 when the window is empty.
  double Percentile(double p) const QASCA_EXCLUDES(mutex_);

  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricRegistry;
  WindowedLatency(std::string name, bool enabled, int window);

  const std::string name_;
  const bool enabled_;
  const int window_;
  mutable Mutex mutex_{lock_ranks::kWindowedLatency};
  /// Ring of log2 bucket indices, one per retained sample.
  std::vector<uint8_t> ring_ QASCA_GUARDED_BY(mutex_);
  int64_t total_ QASCA_GUARDED_BY(mutex_) = 0;
  /// Bucket counts over the samples currently in the ring.
  std::array<int32_t, kLog2LatencyBuckets> buckets_ QASCA_GUARDED_BY(mutex_);
};

/// Snapshot structs: the stable, lock-free-to-read view the exporters and
/// Engine::TelemetrySnapshot() hand out.
struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct LatencySnapshot {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};
struct WindowSnapshot {
  std::string name;
  int window = 0;
  int64_t count = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};
struct TelemetrySnapshot {
  bool enabled = false;
  std::vector<CounterSnapshot> counters;   // name-sorted
  std::vector<GaugeSnapshot> gauges;       // name-sorted
  std::vector<LatencySnapshot> latencies;  // name-sorted
  std::vector<WindowSnapshot> windows;     // name-sorted
};

/// Process- or engine-scoped registry of named instruments. Get* is
/// get-or-create (mutex-guarded map lookup; hot paths resolve instruments
/// once and keep the pointer — returned pointers are stable for the
/// registry's lifetime). A disabled registry hands out instruments whose
/// mutators are no-ops, so instrumented code never branches on telemetry
/// configuration itself.
///
/// Instrument names must come from util/telemetry_names.h (span names are
/// lint-enforced; see tools/lint_invariants.py).
class MetricRegistry {
 public:
  explicit MetricRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  bool enabled() const noexcept { return enabled_; }

  Counter* GetCounter(std::string_view name) QASCA_EXCLUDES(mutex_);
  Gauge* GetGauge(std::string_view name) QASCA_EXCLUDES(mutex_);
  LatencyHistogram* GetLatency(std::string_view name) QASCA_EXCLUDES(mutex_);
  /// Get-or-create a sliding-window latency instrument. `window` applies on
  /// creation only; later calls return the existing instrument regardless.
  WindowedLatency* GetWindowed(std::string_view name, int window)
      QASCA_EXCLUDES(mutex_);

  /// Attaches a flight recorder: every enabled Span additionally appends
  /// begin/end events to it (util/flight_recorder.h). Must be called before
  /// the registry is shared across threads (the engine attaches in its
  /// constructor); pass nullptr to detach. The registry does not own the
  /// recorder.
  void AttachFlightRecorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  FlightRecorder* flight_recorder() const noexcept { return recorder_; }

  TelemetrySnapshot Snapshot() const QASCA_EXCLUDES(mutex_);

  /// One JSON object: {"enabled":..,"counters":{..},"gauges":{..},
  /// "latencies":{"name":{"count":..,"p50_ms":..,...},..}}. Consumed by
  /// bench_hotpath_scaling / BENCH_PR3.json.
  std::string ToJson() const;

  /// Prometheus text exposition: counters/gauges plus one summary per
  /// latency histogram (quantile 0.5/0.95/0.99, _count, _sum). Names are
  /// sanitised ('.' -> '_') and prefixed "qasca_".
  std::string ToPrometheusText() const;

  /// Human-readable per-stage report (aligned tables) for CLI output
  /// (tools/qasca_sim --telemetry).
  std::string ToReport() const;

 private:
  template <typename T>
  T* GetOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
                 std::string_view name) QASCA_EXCLUDES(mutex_);

  const bool enabled_;
  // Written once before the registry goes concurrent (see
  // AttachFlightRecorder), read on every enabled span.
  FlightRecorder* recorder_ = nullptr;
  mutable Mutex mutex_{lock_ranks::kMetricRegistry};
  // std::map keeps exports deterministically name-sorted. The pointed-to
  // instruments are internally synchronised (atomics / their own mutex_),
  // so only the maps themselves are guarded.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      QASCA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      QASCA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_ QASCA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<WindowedLatency>, std::less<>>
      windows_ QASCA_GUARDED_BY(mutex_);
};

/// RAII scoped timer in the spirit of Dapper-style span tracing: on
/// destruction records the elapsed wall time into the registry's latency
/// histogram of the same name. Spans nest — each thread tracks its active
/// span, so a span opened inside another (assign_hit -> estimate_qw ->
/// dinkelbach_inner) knows its parent and depth. With a null or disabled
/// registry construction is two branches and no clock read.
///
/// The `name` argument must be a tnames::kSpan* constant from
/// util/telemetry_names.h (lint-enforced).
class Span {
 public:
  // The disabled path is fully inline — two predictable branches, no clock
  // read, no out-of-line call — so instrumented hot loops cost nothing when
  // telemetry is off (bench_telemetry_overhead enforces < 2%).
  Span(MetricRegistry* registry, const char* name) noexcept : name_(name) {
    if (registry != nullptr && registry->enabled()) Start(registry);
  }
  ~Span() {
    if (histogram_ != nullptr) Finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  const char* name() const noexcept { return name_; }
  /// Nesting depth: 0 for a root span. 0 when disabled.
  int depth() const noexcept { return depth_; }
  const Span* parent() const noexcept { return parent_; }

  /// The innermost span currently active on this thread (nullptr outside
  /// any enabled span).
  static const Span* current() noexcept;

 private:
  void Start(MetricRegistry* registry) noexcept;
  void Finish() noexcept;

  const char* name_;
  LatencyHistogram* histogram_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  const Span* parent_ = nullptr;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// Tracks one stage against a p95 latency target over a sliding window:
/// records every sample into a WindowedLatency, counts samples over the
/// target, publishes the window p95 as a gauge, and counts *breach
/// transitions* (window p95 crossing from <= target to > target), so
/// "how many times did we blow the SLO" is one counter read rather than a
/// log dive. All instruments live in the owning registry under the caller's
/// registered names, so they ride the existing exports.
///
/// RecordSeconds must be called from one thread at a time (the engine's
/// external-synchronization contract); reads are safe from anywhere via the
/// registry instruments.
class SloTracker {
 public:
  struct Options {
    /// The p95 target in seconds; samples and the window p95 are judged
    /// against this.
    double target_p95_seconds = 0.0;
    /// Sliding-window size in samples for the p95 estimate.
    int window = 512;
  };
  /// Instrument names (tnames constants) the tracker publishes under.
  struct Instruments {
    const char* window_name;        // WindowedLatency
    const char* over_target_name;   // Counter: samples over target
    const char* breaches_name;      // Counter: breach transitions
    const char* window_p95_name;    // Gauge: current window p95, in ms
  };

  SloTracker(MetricRegistry* registry, const Instruments& instruments,
             const Options& options);

  void RecordSeconds(double seconds) noexcept;

  /// Current window p95 in seconds.
  double WindowP95() const { return window_->Percentile(0.95); }
  bool in_breach() const noexcept { return in_breach_; }
  int64_t breaches() const noexcept { return breaches_; }
  int64_t samples_over_target() const noexcept {
    return samples_over_target_;
  }
  double target_p95_seconds() const noexcept {
    return options_.target_p95_seconds;
  }

 private:
  Options options_;
  WindowedLatency* window_;
  Counter* over_target_;
  Counter* breach_counter_;
  Gauge* window_p95_gauge_;
  bool in_breach_ = false;
  int64_t breaches_ = 0;
  int64_t samples_over_target_ = 0;
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_TELEMETRY_H_
