#ifndef QASCA_PLATFORM_APP_CONFIG_H_
#define QASCA_PLATFORM_APP_CONFIG_H_

#include <string>

#include "core/metrics/metric.h"
#include "model/em.h"
#include "model/posterior.h"
#include "util/attributes.h"
#include "util/status.h"

namespace qasca {

/// Everything a requester supplies when deploying an application — the
/// contents of the paper's Configuration File plus question-set shape
/// (Appendix A): n questions with l labels, k questions per HIT, payment b
/// per HIT, total budget B, and the evaluation metric.
///
/// Threading contract: a value type, immutable once handed to the engine;
/// const references are safe to read from any thread.
struct AppConfig {
  std::string name = "app";
  /// Number of questions n.
  int num_questions = 0;
  /// Number of labels l (>= 2).
  int num_labels = 2;
  /// Questions per HIT (the paper's k).
  int questions_per_hit = 4;
  /// Payment per HIT in dollars (the paper's b).
  double pay_per_hit = 0.02;
  /// Total invested budget in dollars (the paper's B). The engine stops
  /// issuing HITs once B/b HITs have been assigned.
  double budget = 1.0;
  /// The application-driven evaluation metric.
  MetricSpec metric = MetricSpec::Accuracy();
  /// Worker-model parameterisation fitted by EM on HIT completion.
  WorkerModel::Kind worker_kind = WorkerModel::Kind::kConfusionMatrix;
  /// How Qw rows are derived (Section 5.3; the paper samples).
  QwMode qw_mode = QwMode::kSampled;
  /// EM settings used on each HIT-completion event.
  EmOptions em;
  /// Warm-start each EM refit from the previous fit's worker models.
  /// Cheaper per completion, but OFF by default: in the sparse early phase
  /// (a handful of answers per worker) a warm start can lock in a bad early
  /// local optimum that the cold vote bootstrap would wash out, noticeably
  /// hurting end quality. Enable only when seeding from a mature fit.
  bool warm_start_em = false;
  /// Worker threads for the hot kernels (EM E-step, Qw estimation, benefit
  /// scans). 1 = exact serial execution with no pool at all. Any value
  /// produces byte-identical assignment decisions (fixed-grain chunking and
  /// counter-based per-question RNG streams; see DESIGN.md "Threading and
  /// incrementality").
  int num_threads = 1;
  /// Full EM refits run every this-many HIT completions; completions in
  /// between only re-derive the posterior rows of the k questions the
  /// completed HIT touched, under the frozen worker models and prior
  /// (Eq. 5's posterior update only changes rows whose answer set changed).
  /// 1 = refit on every completion (the paper's batch-global behaviour).
  int em_refresh_interval = 1;
  /// Enables the engine's telemetry layer (util::MetricRegistry): per-stage
  /// latency spans (assign_hit, estimate_qw, em_full_refit, ...), hot-path
  /// counters (EM iterations, Dinkelbach iterations, Qw samples) and gauges.
  /// OFF by default; when disabled every instrument is a dead branch and no
  /// clock is read, and decisions are byte-identical either way (telemetry
  /// never touches the RNG streams — guarded by the determinism suite).
  bool telemetry_enabled = false;
  /// Memoise per-worker likelihood tables across HIT requests, invalidated
  /// on every full EM refit (model/likelihood_cache.h). Pure memoisation:
  /// decisions are bit-identical with the cache on or off (the
  /// kernel-equivalence suite pins this); OFF only costs a per-request
  /// table rebuild.
  bool likelihood_cache_enabled = true;
  /// Estimate Qw through the zero-copy overlay (candidate rows only,
  /// reusable scratch — DESIGN.md §12) instead of the legacy full deep copy
  /// of Qc. Bit-identical selections either way; the flag exists for the
  /// equivalence suite and the legacy bench mode.
  bool use_qw_overlay = true;
  /// Assignment-lease timeout in virtual-clock ticks: a HIT not completed
  /// within this many ticks of its assignment (time advances only through
  /// Engine::Tick) expires — its questions return to the worker's candidate
  /// pool, the budget is refunded, and a late completion is rejected.
  /// 0 = leases never expire (the paper's idealised lifecycle; default).
  uint64_t lease_timeout_ticks = 0;
  /// Path prefix for the crash-recovery lifecycle journal
  /// ("<prefix>.snapshot" + "<prefix>.log", DESIGN.md §11). Every
  /// assignment, completion and tick is appended so Engine::Recover can
  /// replay a crashed engine to a bit-identical state. Empty = persistence
  /// off (default).
  std::string persistence_path;
  /// Always-on agreement bound between the incremental Qc and the next full
  /// EM refit: the max absolute cell difference must stay below this, else
  /// the engine aborts. Generous by design: a refit sees fresher worker
  /// models, and on a sparsely-answered contested question that can
  /// legitimately flip the posterior (measured flips reach ~0.9 at small
  /// scale), so tight bounds would abort on correct behaviour. A violation
  /// means the incremental path asserts near-certainty the refit
  /// contradicts — a logic error (stale or forgotten rows), not noise.
  double em_drift_tolerance = 0.95;
  /// Enables the flight recorder (util/flight_recorder.h): every telemetry
  /// span additionally appends begin/end events to a fixed-capacity ring,
  /// exportable as Chrome/Perfetto trace JSON (qasca_sim --trace-out).
  /// Implies the telemetry registry is live even when telemetry_enabled is
  /// false. OFF by default; decisions are byte-identical either way
  /// (DeterminismTest.TracingNeverChangesDecisions).
  bool flight_recorder_enabled = false;
  /// Flight-recorder ring capacity in events (one span = two events).
  int flight_recorder_capacity = 65536;
  /// Record a DecisionProvenance entry (platform/provenance.h) for every
  /// assignment: chosen questions + benefit scores, kernel ISA, overlay and
  /// cache usage, EM generation, lease/journal sequencing. Dumpable as
  /// JSONL (qasca_sim --provenance-out). OFF by default.
  bool provenance_enabled = false;
  /// Provenance ring capacity in records (one per assignment).
  int provenance_capacity = 4096;
  /// p95 assignment-latency SLO target in milliseconds, tracked by a
  /// util::SloTracker over a sliding window of the last
  /// latency_window_samples assignments (breach counters + window-p95
  /// gauge under the slo.assign_hit.* names). 0 disables tracking
  /// (default). Implies the telemetry registry is live.
  double slo_p95_assign_ms = 0.0;
  /// Sliding-window size in samples for the SLO tracker's percentiles.
  int latency_window_samples = 512;

  /// Total number of HITs the budget affords: m = B / b (rounded to the
  /// nearest whole HIT to absorb floating-point currency arithmetic).
  int TotalHits() const {
    return pay_per_hit > 0 ? static_cast<int>(budget / pay_per_hit + 0.5) : 0;
  }

  /// Checks the configuration for structural errors.
  QASCA_NODISCARD util::Status Validate() const;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_APP_CONFIG_H_
