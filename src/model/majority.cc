#include "model/majority.h"

#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {

ResultVector MajorityVote(const AnswerSet& answers, int num_labels) {
  QASCA_CHECK_GT(num_labels, 0);
  ResultVector result(answers.size(), 0);
  std::vector<int> votes(num_labels);
  for (size_t i = 0; i < answers.size(); ++i) {
    std::fill(votes.begin(), votes.end(), 0);
    for (const Answer& answer : answers[i]) {
      QASCA_CHECK_GE(answer.label, 0);
      QASCA_CHECK_LT(answer.label, num_labels);
      ++votes[answer.label];
    }
    int best = 0;
    for (int j = 1; j < num_labels; ++j) {
      if (votes[j] > votes[best]) best = j;
    }
    result[i] = best;
  }
  return result;
}

DistributionMatrix VoteShareDistribution(const AnswerSet& answers,
                                         int num_labels, double smoothing) {
  QASCA_CHECK_GE(smoothing, 0.0);
  DistributionMatrix distribution(static_cast<int>(answers.size()),
                                  num_labels);
  std::vector<double> votes(num_labels);
  for (size_t i = 0; i < answers.size(); ++i) {
    std::fill(votes.begin(), votes.end(), smoothing);
    for (const Answer& answer : answers[i]) votes[answer.label] += 1.0;
    const double total = util::DeterministicSum(
        0, num_labels, [&](int j) { return votes[j]; });
    if (total <= 0.0) continue;  // keep the uniform initialisation
    distribution.SetRowNormalized(static_cast<int>(i), votes);
  }
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(distribution));
  return distribution;
}

}  // namespace qasca
