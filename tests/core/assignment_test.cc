#include "core/assignment/assignment.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/brute_force.h"
#include "core/metrics/accuracy.h"

namespace qasca {
namespace {

DistributionMatrix Constant(int n, double p) {
  DistributionMatrix q(n, 2);
  for (int i = 0; i < n; ++i) q.SetRow(i, std::vector<double>{p, 1.0 - p});
  return q;
}

TEST(AssignmentTest, BuildAssignmentMatrixMixesRows) {
  DistributionMatrix qc = Constant(4, 0.5);
  DistributionMatrix qw = Constant(4, 0.9);
  DistributionMatrix qx = BuildAssignmentMatrix(qc, qw, {1, 3});
  EXPECT_DOUBLE_EQ(qx.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(qx.At(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(qx.At(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(qx.At(3, 0), 0.9);
}

TEST(AssignmentTest, BuildAssignmentMatrixEmptySelection) {
  DistributionMatrix qc = Constant(3, 0.7);
  DistributionMatrix qw = Constant(3, 0.1);
  DistributionMatrix qx = BuildAssignmentMatrix(qc, qw, {});
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(qx.At(i, 0), 0.7);
}

TEST(AssignmentTest, ValidateAcceptsWellFormedRequest) {
  DistributionMatrix qc = Constant(5, 0.5);
  DistributionMatrix qw = Constant(5, 0.6);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 2, 4};
  request.k = 2;
  ValidateRequest(request);  // Must not abort.
}

TEST(AssignmentDeathTest, ValidateRejectsDuplicates) {
  DistributionMatrix qc = Constant(5, 0.5);
  DistributionMatrix qw = Constant(5, 0.6);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 2, 2};
  request.k = 2;
  EXPECT_DEATH(ValidateRequest(request), "duplicate");
}

TEST(AssignmentDeathTest, ValidateRejectsKTooLarge) {
  DistributionMatrix qc = Constant(5, 0.5);
  DistributionMatrix qw = Constant(5, 0.6);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1};
  request.k = 3;
  EXPECT_DEATH(ValidateRequest(request), "Check failed");
}

TEST(AssignmentDeathTest, ValidateRejectsOutOfRangeCandidate) {
  DistributionMatrix qc = Constant(3, 0.5);
  DistributionMatrix qw = Constant(3, 0.6);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 7};
  request.k = 1;
  EXPECT_DEATH(ValidateRequest(request), "Check failed");
}

TEST(AssignmentTest, BruteForceEnumeratesAllCombinations) {
  DistributionMatrix qc = Constant(5, 0.5);
  DistributionMatrix qw = Constant(5, 0.8);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 2, 3};
  request.k = 2;
  AccuracyMetric metric;
  AssignmentResult result = AssignBruteForce(request, metric);
  EXPECT_EQ(result.outer_iterations, 6);  // C(4,2)
  EXPECT_EQ(result.selected.size(), 2u);
}

TEST(AssignmentTest, BruteForcePicksStrictlyBestQuestion) {
  // Only question 2's row improves under the worker; it must be selected.
  DistributionMatrix qc = Constant(4, 0.6);
  DistributionMatrix qw = Constant(4, 0.6);
  qw.SetRow(2, std::vector<double>{0.95, 0.05});
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 2, 3};
  request.k = 1;
  AccuracyMetric metric;
  AssignmentResult result = AssignBruteForce(request, metric);
  EXPECT_EQ(result.selected, (std::vector<QuestionIndex>{2}));
}

}  // namespace
}  // namespace qasca
