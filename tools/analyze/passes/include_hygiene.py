"""Pass `include-hygiene`: canonical guards and own-header-first includes.

Two mechanically-checkable halves of header hygiene:

  * every header under src/ opens with the canonical include guard derived
    from its path (src/core/types.h -> QASCA_CORE_TYPES_H_), so guards can
    never collide after a file move;
  * every .cc under src/ whose companion header exists includes that header
    as its *first* include, which is what actually exercises the header's
    self-containedness on every build.

Full self-containedness ("include what you use") cannot be proven by
regex; it is enforced by the generated header_selfcontained check — one
synthesized TU per public header, built by the `header_selfcontained`
target and run as a tier-1 ctest (see tools/CMakeLists.txt).

Include directives come from the semantic frontend's per-file model
(tree.model(source).includes) — the same edges the api-layering pass
walks — so the two passes can never disagree about what a file includes.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceFile, SourceTree

GUARD_IFNDEF = re.compile(r"^[ \t]*#\s*ifndef\s+(\w+)", re.MULTILINE)


def canonical_guard(rel: str) -> str:
    # src/core/assignment/topk_benefit.h -> QASCA_CORE_ASSIGNMENT_TOPK_BENEFIT_H_
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts).replace(".", "_").upper()
    return f"QASCA_{stem}_"


class IncludeHygienePass:
    name = "include-hygiene"
    description = ("headers carry canonical QASCA_*_H_ guards; every .cc "
                   "includes its own header first (self-containedness "
                   "proven by the generated header_selfcontained ctest)")
    severity = ERROR
    roots = ("src",)

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            if source.rel.endswith(".h"):
                findings.extend(self._check_guard(source))
            elif source.rel.endswith(".cc"):
                findings.extend(self._check_own_header(tree, source))
        return findings

    def _check_guard(self, source: SourceFile) -> list[Finding]:
        expected = canonical_guard(source.rel)
        match = GUARD_IFNDEF.search(source.code)
        if match is None:
            return [Finding(
                pass_name=self.name, severity=self.severity,
                path=source.rel, line=1,
                message=f"missing include guard (expected #ifndef {expected})")]
        if match.group(1) != expected:
            return [Finding(
                pass_name=self.name, severity=self.severity,
                path=source.rel, line=source.line_of(match.start()),
                message=(f"include guard {match.group(1)} does not match the "
                         f"canonical {expected}"))]
        return []

    def _check_own_header(self, tree: SourceTree,
                          source: SourceFile) -> list[Finding]:
        own = source.rel[:-3] + ".h"
        if tree.file(own) is None:
            return []  # no companion header (main files, benches)
        own_spelling = own[len("src/"):] if own.startswith("src/") else own
        includes = tree.model(source).includes
        first = includes[0] if includes else None
        if first is None or first.target != own_spelling:
            got = first.target if first else "nothing"
            return [Finding(
                pass_name=self.name, severity=self.severity,
                path=source.rel,
                line=first.line if first else 1,
                message=(f'first include must be the companion header '
                         f'"{own_spelling}" (found {got}); own-header-first '
                         "keeps every header self-contained"))]
        return []
