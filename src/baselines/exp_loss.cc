#include "baselines/exp_loss.h"

#include <algorithm>
#include <span>

#include "baselines/scoring.h"
#include "platform/database.h"
#include "util/logging.h"

namespace qasca {

std::vector<QuestionIndex> ExpLossStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.database != nullptr);
  QASCA_CHECK(context.rng != nullptr);
  const DistributionMatrix& qc = context.database->current();

  std::vector<double> scores(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::span<const double> row = qc.Row(candidates[c]);
    scores[c] = 1.0 - *std::max_element(row.begin(), row.end());
  }
  return baselines_internal::TopKByScore(candidates, scores, k, *context.rng);
}

}  // namespace qasca
