#include "core/metrics/fscore.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace qasca {
namespace {

DistributionMatrix MakeBinary(const std::vector<double>& target_probs) {
  DistributionMatrix q(static_cast<int>(target_probs.size()), 2);
  for (size_t i = 0; i < target_probs.size(); ++i) {
    q.SetRow(static_cast<int>(i),
             std::vector<double>{target_probs[i], 1.0 - target_probs[i]});
  }
  return q;
}

DistributionMatrix RandomBinary(int n, util::Rng& rng) {
  std::vector<double> p(n);
  for (double& x : p) x = rng.Uniform();
  return MakeBinary(p);
}

ResultVector RandomResult(int n, util::Rng& rng) {
  ResultVector r(n);
  for (int i = 0; i < n; ++i) r[i] = rng.UniformInt(2);
  return r;
}

TEST(FScoreTest, GroundTruthBalancedExample) {
  // Precision = 2/3, Recall = 2/4: balanced F-score = 2*P*R/(P+R) = 4/7.
  FScoreMetric metric(0.5);
  GroundTruthVector truth = {0, 0, 0, 0, 1, 1};
  ResultVector result = {0, 0, 1, 1, 0, 1};
  EXPECT_NEAR(metric.EvaluateAgainstTruth(truth, result), 4.0 / 7.0, 1e-12);
}

TEST(FScoreTest, AlphaOneSidedLimits) {
  // alpha near 1 approaches Precision; alpha near 0 approaches Recall.
  GroundTruthVector truth = {0, 0, 0, 0, 1, 1};
  ResultVector result = {0, 0, 1, 1, 0, 1};
  FScoreMetric precisionish(0.999);
  FScoreMetric recallish(0.001);
  EXPECT_NEAR(precisionish.EvaluateAgainstTruth(truth, result), 2.0 / 3.0,
              1e-2);
  EXPECT_NEAR(recallish.EvaluateAgainstTruth(truth, result), 0.5, 1e-2);
}

TEST(FScoreTest, ZeroDenominatorConvention) {
  FScoreMetric metric(0.5);
  // No returned targets and no true targets: define F = 0.
  EXPECT_DOUBLE_EQ(metric.EvaluateAgainstTruth({1, 1}, {1, 1}), 0.0);
}

TEST(FScoreTest, Example2ArgmaxVersusOptimalExpectedFScore) {
  // Example 2: Q = [[0.35,0.65],[0.55,0.45]], alpha = 0.5.
  DistributionMatrix q = MakeBinary({0.35, 0.55});
  // Argmax result R-tilde = [2,1]: E[F] = 48.58%.
  EXPECT_NEAR(BruteForceExpectedFScore(q, {1, 0}, 0.5), 0.4858, 2e-4);
  // Optimal R* = [1,1]: E[F] = 53.58%.
  EXPECT_NEAR(BruteForceExpectedFScore(q, {0, 0}, 0.5), 0.5358, 2e-4);
}

TEST(FScoreTest, Example2ApproximationValues) {
  // Section 3.2.2: on Q-hat = [[0.35,0.65],[0.9,0.1]] with R-hat* = [2,1],
  // E[F] = 79.5% while F-score* = 80%.
  DistributionMatrix q = MakeBinary({0.35, 0.9});
  FScoreMetric metric(0.5);
  EXPECT_NEAR(BruteForceExpectedFScore(q, {1, 0}, 0.5), 0.795, 1e-3);
  EXPECT_NEAR(metric.Evaluate(q, {1, 0}), 0.80, 1e-12);
}

TEST(FScoreTest, Example3DinkelbachOnQHat) {
  // Example 3: lambda converges 0 -> 0.77 -> 0.8 -> 0.8; threshold
  // theta = 0.4; R* = [2,1].
  DistributionMatrix q = MakeBinary({0.35, 0.9});
  FScoreMetric metric(0.5);
  FScoreMetric::QualityResult result = metric.ComputeQuality(q);
  EXPECT_NEAR(result.lambda, 0.8, 1e-9);
  EXPECT_EQ(result.optimal_result, (ResultVector{1, 0}));
  EXPECT_EQ(result.iterations, 3);
}

TEST(FScoreTest, Example3DinkelbachOnQ) {
  // Example 3 second part: lambda* = 0.62, theta = 0.31, R* = [1,1].
  DistributionMatrix q = MakeBinary({0.35, 0.55});
  FScoreMetric metric(0.5);
  FScoreMetric::QualityResult result = metric.ComputeQuality(q);
  EXPECT_NEAR(result.lambda, 0.9 / 1.45, 1e-9);  // 0.6207 (paper rounds 0.62)
  EXPECT_EQ(result.optimal_result, (ResultVector{0, 0}));
}

TEST(FScoreTest, ExactDpMatchesBruteForceEnumeration) {
  util::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 2 + rng.UniformInt(9);  // 2..10
    DistributionMatrix q = RandomBinary(n, rng);
    ResultVector r = RandomResult(n, rng);
    double alpha = rng.Uniform(0.05, 0.95);
    EXPECT_NEAR(ExactExpectedFScore(q, r, alpha),
                BruteForceExpectedFScore(q, r, alpha), 1e-10)
        << "n=" << n << " alpha=" << alpha;
  }
}

TEST(FScoreTest, ApproximationErrorShrinksWithN) {
  // |F-score* - E[F]| = O(1/n) (Section 3.2.2, Figure 3(c)).
  util::Rng rng(12);
  FScoreMetric metric(0.5);
  double error_small = 0.0;
  double error_large = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    DistributionMatrix q_small = RandomBinary(20, rng);
    ResultVector r_small = RandomResult(20, rng);
    error_small += std::fabs(metric.Evaluate(q_small, r_small) -
                             ExactExpectedFScore(q_small, r_small, 0.5));
    DistributionMatrix q_large = RandomBinary(400, rng);
    ResultVector r_large = RandomResult(400, rng);
    error_large += std::fabs(metric.Evaluate(q_large, r_large) -
                             ExactExpectedFScore(q_large, r_large, 0.5));
  }
  EXPECT_LT(error_large, error_small);
  EXPECT_LT(error_large / trials, 1e-3);
}

TEST(FScoreTest, PrecisionApproximationIsExactAtAlphaOneLimit) {
  // Section 6.1.2: E[Precision] equals F-score* at alpha -> 1 exactly.
  util::Rng rng(13);
  double alpha = 0.999999;
  for (int trial = 0; trial < 10; ++trial) {
    DistributionMatrix q = RandomBinary(12, rng);
    ResultVector r = RandomResult(12, rng);
    // Ensure at least one returned target so Precision is defined.
    r[0] = 0;
    FScoreMetric metric(alpha);
    EXPECT_NEAR(metric.Evaluate(q, r),
                BruteForceExpectedFScore(q, r, alpha), 1e-4);
  }
}

class OptimalResultSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimalResultSweep, Theorem2OptimalBeatsEnumeration) {
  // For random Q and alpha, the Algorithm 1 result must attain the maximum
  // of F-score*(Q, R, alpha) over all 2^n result vectors.
  util::Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    int n = 2 + rng.UniformInt(7);  // 2..8
    DistributionMatrix q = RandomBinary(n, rng);
    double alpha = rng.Uniform(0.05, 0.95);
    FScoreMetric metric(alpha);
    FScoreMetric::QualityResult result = metric.ComputeQuality(q);

    double best = 0.0;
    ResultVector r(n);
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      for (int i = 0; i < n; ++i) r[i] = (mask >> i) & 1u ? 0 : 1;
      best = std::max(best, metric.Evaluate(q, r));
    }
    EXPECT_NEAR(result.lambda, best, 1e-9) << "n=" << n << " alpha=" << alpha;
    EXPECT_NEAR(metric.Evaluate(q, result.optimal_result), best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalResultSweep, ::testing::Range(0, 10));

TEST(FScoreTest, ThresholdStructureOfOptimalResult) {
  // Theorem 2: the optimal result is a threshold rule on Q_{i,1} at
  // lambda* * alpha.
  util::Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    DistributionMatrix q = RandomBinary(30, rng);
    double alpha = rng.Uniform(0.1, 0.9);
    FScoreMetric metric(alpha);
    FScoreMetric::QualityResult result = metric.ComputeQuality(q);
    double threshold = result.lambda * alpha;
    for (int i = 0; i < 30; ++i) {
      if (q.At(i, 0) >= threshold + 1e-12) {
        EXPECT_EQ(result.optimal_result[i], 0);
      } else if (q.At(i, 0) < threshold - 1e-12) {
        EXPECT_EQ(result.optimal_result[i], 1);
      }
    }
  }
}

TEST(FScoreTest, ConvergesWithinFifteenIterationsAtScale) {
  // Section 6.1.2 observes c <= 15 at n = 2000.
  util::Rng rng(15);
  DistributionMatrix q = RandomBinary(2000, rng);
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    FScoreMetric metric(alpha);
    EXPECT_LE(metric.ComputeQuality(q).iterations, 15) << "alpha=" << alpha;
  }
}

TEST(FScoreTest, AllZeroTargetProbabilities) {
  FScoreMetric metric(0.5);
  DistributionMatrix q = MakeBinary({0.0, 0.0, 0.0});
  FScoreMetric::QualityResult result = metric.ComputeQuality(q);
  EXPECT_DOUBLE_EQ(result.lambda, 0.0);
  EXPECT_EQ(result.optimal_result, (ResultVector{1, 1, 1}));
}

TEST(FScoreTest, CertainTargetsGivePerfectScore) {
  FScoreMetric metric(0.5);
  DistributionMatrix q = MakeBinary({1.0, 1.0});
  EXPECT_NEAR(metric.Quality(q), 1.0, 1e-12);
}

TEST(FScoreTest, MultiLabelTargetReduction) {
  // With l > 2 labels only the target column matters (Appendix J).
  DistributionMatrix q(2, 4);
  q.SetRow(0, std::vector<double>{0.7, 0.1, 0.1, 0.1});
  q.SetRow(1, std::vector<double>{0.2, 0.3, 0.3, 0.2});
  DistributionMatrix binary = MakeBinary({0.7, 0.2});
  FScoreMetric metric(0.5, /*target_label=*/0);
  EXPECT_NEAR(metric.Quality(q), metric.Quality(binary), 1e-12);
}

TEST(FScoreTest, TargetLabelOtherThanZero) {
  DistributionMatrix q(2, 3);
  q.SetRow(0, std::vector<double>{0.1, 0.8, 0.1});
  q.SetRow(1, std::vector<double>{0.3, 0.6, 0.1});
  FScoreMetric metric(0.5, /*target_label=*/1);
  FScoreMetric::QualityResult result = metric.ComputeQuality(q);
  EXPECT_GT(result.lambda, 0.5);
  EXPECT_EQ(result.optimal_result[0], 1);
}

TEST(FScoreTest, FScoreStarEndpointsArePrecisionAndRecall) {
  // The free function admits the closed interval: alpha = 1 is Precision*
  // (expected precision of the returned targets), alpha = 0 is Recall*.
  DistributionMatrix q = MakeBinary({0.9, 0.4, 0.2});
  ResultVector r = {0, 0, 1};
  // Precision* = (0.9 + 0.4) / 2.
  EXPECT_NEAR(FScoreStar(q, r, 1.0), 1.3 / 2.0, 1e-12);
  // Recall* = (0.9 + 0.4) / (0.9 + 0.4 + 0.2).
  EXPECT_NEAR(FScoreStar(q, r, 0.0), 1.3 / 1.5, 1e-12);
}

TEST(FScoreTest, SolveQualityAtRecallEndpointReturnsEverything) {
  // At alpha = 0 (pure Recall*) the optimum returns every question as
  // target and scores 1.
  DistributionMatrix q = MakeBinary({0.9, 0.4, 0.2});
  FScoreQualityResult result = SolveFScoreQuality(q, 0.0);
  EXPECT_NEAR(result.lambda, 1.0, 1e-12);
  EXPECT_EQ(result.optimal_result, (ResultVector{0, 0, 0}));
}

TEST(FScoreTest, SolveQualityAtPrecisionEndpointReturnsTopQuestion) {
  // At alpha = 1 (pure Precision*) the optimum returns only the questions
  // with the maximal target probability.
  DistributionMatrix q = MakeBinary({0.9, 0.4, 0.2});
  FScoreQualityResult result = SolveFScoreQuality(q, 1.0);
  EXPECT_NEAR(result.lambda, 0.9, 1e-12);
  EXPECT_EQ(result.optimal_result, (ResultVector{0, 1, 1}));
}

TEST(FScoreTest, NameMentionsAlpha) {
  EXPECT_EQ(FScoreMetric(0.75).name(), "F-score(alpha=0.75)");
}

TEST(FScoreDeathTest, InvalidAlphaAborts) {
  EXPECT_DEATH(FScoreMetric metric(0.0), "alpha");
  EXPECT_DEATH(FScoreMetric metric(1.0), "alpha");
}

}  // namespace
}  // namespace qasca
