#include "model/worker_stats.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(WorkerStatsTest, CountsAndAgreement) {
  AnswerSet answers(3);
  answers[0] = {{1, 0}, {2, 1}};
  answers[1] = {{1, 1}};
  answers[2] = {{2, 0}};
  ResultVector results = {0, 1, 1};
  EmResult parameters;  // no fitted workers -> perfect fallback

  std::vector<WorkerSummary> summaries =
      SummarizeWorkers(answers, parameters, results);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].worker, 1);
  EXPECT_EQ(summaries[0].answer_count, 2);
  EXPECT_DOUBLE_EQ(summaries[0].agreement_with_results, 1.0);  // both match
  EXPECT_EQ(summaries[1].worker, 2);
  EXPECT_EQ(summaries[1].answer_count, 2);
  EXPECT_DOUBLE_EQ(summaries[1].agreement_with_results, 0.0);  // both differ
}

TEST(WorkerStatsTest, EstimatedQualityFromFittedModels) {
  AnswerSet answers(1);
  answers[0] = {{7, 0}};
  EmResult parameters;
  parameters.workers.emplace(7, WorkerModel::Cm({0.9, 0.1, 0.3, 0.7}, 2));
  std::vector<WorkerSummary> summaries =
      SummarizeWorkers(answers, parameters, {0});
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_NEAR(summaries[0].estimated_quality, 0.8, 1e-12);  // (0.9+0.7)/2
}

TEST(WorkerStatsTest, UnfittedWorkerUsesFallback) {
  AnswerSet answers(1);
  answers[0] = {{5, 0}};
  EmResult parameters;  // fallback = perfect WP(2)
  std::vector<WorkerSummary> summaries =
      SummarizeWorkers(answers, parameters, {0});
  EXPECT_DOUBLE_EQ(summaries[0].estimated_quality, 1.0);
}

TEST(WorkerStatsTest, SpammerShortlistSortedByQuality) {
  std::vector<WorkerSummary> summaries(3);
  summaries[0] = {1, 10, 0.9, 0.85};
  summaries[1] = {2, 10, 0.5, 0.52};
  summaries[2] = {3, 10, 0.4, 0.49};
  std::vector<WorkerSummary> suspects = SuspectedSpammers(summaries, 0.6);
  ASSERT_EQ(suspects.size(), 2u);
  EXPECT_EQ(suspects[0].worker, 3);  // lowest quality first
  EXPECT_EQ(suspects[1].worker, 2);
}

TEST(WorkerStatsTest, EmptyAnswerSetGivesEmptySummary) {
  EmResult parameters;
  EXPECT_TRUE(SummarizeWorkers(AnswerSet(4), parameters,
                               ResultVector(4, 0))
                  .empty());
}

TEST(WorkerStatsDeathTest, ShapeMismatchAborts) {
  EmResult parameters;
  EXPECT_DEATH(SummarizeWorkers(AnswerSet(3), parameters, ResultVector(2, 0)),
               "Check failed");
}

}  // namespace
}  // namespace qasca
