#include "model/worker_model.h"

#include <vector>

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(WorkerModelTest, WpDiagonalAndOffDiagonal) {
  WorkerModel model = WorkerModel::Wp(0.6, 3);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(2, 0), 0.2);
}

TEST(WorkerModelTest, WpRowsSumToOne) {
  WorkerModel model = WorkerModel::Wp(0.73, 4);
  for (int truth = 0; truth < 4; ++truth) {
    double total = 0.0;
    for (int answered = 0; answered < 4; ++answered) {
      total += model.AnswerProbability(answered, truth);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(WorkerModelTest, PerfectWpNeverErrs) {
  WorkerModel model = WorkerModel::PerfectWp(3);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(0, 1), 0.0);
}

TEST(WorkerModelTest, CmLookupIsRowTruthColumnAnswer) {
  // Section 5.2's example CM: [[0.6,0.4],[0.3,0.7]].
  WorkerModel model = WorkerModel::Cm({0.6, 0.4, 0.3, 0.7}, 2);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(1, 0), 0.4);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(model.AnswerProbability(1, 1), 0.7);
}

TEST(WorkerModelTest, PerfectCmIsIdentity) {
  WorkerModel model = WorkerModel::PerfectCm(3);
  for (int t = 0; t < 3; ++t) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(model.AnswerProbability(a, t), t == a ? 1.0 : 0.0);
    }
  }
}

TEST(WorkerModelTest, WpExpandsToEquivalentCm) {
  WorkerModel wp = WorkerModel::Wp(0.7, 3);
  std::vector<double> cm = wp.AsConfusionMatrix();
  WorkerModel expanded = WorkerModel::Cm(cm, 3);
  for (int t = 0; t < 3; ++t) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(expanded.AnswerProbability(a, t),
                       wp.AnswerProbability(a, t));
    }
  }
}

TEST(WorkerModelTest, DeviationOfIdenticalModelsIsZero) {
  WorkerModel a = WorkerModel::Cm({0.8, 0.2, 0.1, 0.9}, 2);
  EXPECT_DOUBLE_EQ(a.Deviation(a), 0.0);
}

TEST(WorkerModelTest, DeviationIsSymmetricMeanAbsolute) {
  WorkerModel a = WorkerModel::Cm({0.8, 0.2, 0.1, 0.9}, 2);
  WorkerModel b = WorkerModel::Cm({0.6, 0.4, 0.3, 0.7}, 2);
  // |0.2|*4 entries / 4 = 0.2.
  EXPECT_NEAR(a.Deviation(b), 0.2, 1e-12);
  EXPECT_NEAR(b.Deviation(a), 0.2, 1e-12);
}

TEST(WorkerModelTest, DeviationAcrossKinds) {
  WorkerModel wp = WorkerModel::Wp(0.8, 2);
  WorkerModel cm = WorkerModel::Cm({0.8, 0.2, 0.2, 0.8}, 2);
  EXPECT_NEAR(wp.Deviation(cm), 0.0, 1e-12);
}

TEST(WorkerModelDeathTest, CmRowsMustSumToOne) {
  EXPECT_DEATH(WorkerModel::Cm({0.5, 0.4, 0.3, 0.7}, 2), "sums to");
}

TEST(WorkerModelDeathTest, WpOutOfRangeAborts) {
  EXPECT_DEATH(WorkerModel::Wp(1.5, 2), "Check failed");
}

TEST(WorkerModelDeathTest, WorkerProbabilityOnCmAborts) {
  WorkerModel cm = WorkerModel::PerfectCm(2);
  EXPECT_DEATH((void)cm.worker_probability(), "Check failed");
}

}  // namespace
}  // namespace qasca
