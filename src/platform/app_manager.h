#ifndef QASCA_PLATFORM_APP_MANAGER_H_
#define QASCA_PLATFORM_APP_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/app_config.h"
#include "platform/engine.h"
#include "platform/strategy.h"
#include "util/attributes.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qasca {

/// Application handle returned by AppManager::RegisterApp; dense indices in
/// registration order.
using AppId = int;

/// The multi-application serving front end of the deployed QASCA system
/// (Figure 2 / Appendix A): hosts N registered applications, each a full
/// TaskAssignmentEngine — its own decision core, lifecycle journal and
/// telemetry scope — and accepts interleaved HIT-request / HIT-completion
/// calls from many worker threads at once.
///
/// Concurrency model — per-app sharding: every app lives in its own
/// AppShard behind its own ranked util::Mutex. A serving call resolves the
/// app id to its shard under the (briefly held) registry lock, releases it,
/// then takes the shard lock for the engine call. Calls against different
/// apps run fully in parallel; calls against the same app serialise in
/// arrival order, which is exactly the engine's external-synchronisation
/// contract — and what makes lease expiry racing a completion safe (both
/// mutate the same lease/budget state; behind the shard lock the race
/// becomes an ordering, and the budget refunds at most once).
///
/// Determinism: the per-app engine remains a pure function of (config,
/// seed, per-app event order). Any interleaving that preserves each app's
/// event order yields bit-identical per-app state — the conformance suite
/// (tests/platform/app_manager_test.cc) replays one schedule at 1/2/4/8
/// threads and asserts identical fingerprints and decision hashes.
///
/// Journal scoping: a non-empty AppConfig::persistence_path is suffixed
/// ".app<id>" at registration so sibling apps never share a journal file;
/// re-registering the same apps in the same order after a process restart
/// reattaches each app to its own journal.
///
/// Method names deliberately do not reuse engine method names
/// (RequestHit → SubmitHitRequest, …): the lock-order analyzer matches
/// callees by unqualified name, and a front-end method that both held the
/// shard lock and shared a name with an engine method reachable under it
/// would read as a fictitious self-deadlock.
///
/// Threading contract: every public method is safe to call from any thread.
/// The registry lock (`mu_`, rank kAppManagerRegistry) guards the app
/// table and is never held while a shard lock is taken; each shard's lock
/// (rank kAppShard) guards that app's engine and is held for the duration
/// of one engine call (or one batch). Registration is append-only: shards
/// are never removed, so a resolved shard pointer stays valid for the
/// manager's lifetime.
class AppManager {
 public:
  /// Builds the app's strategy; invoked at registration and again on every
  /// CrashAndRecoverApp (the rebuilt engine needs a fresh strategy
  /// instance). Must be pure: two invocations must yield strategies that
  /// decide identically given identical inputs.
  using StrategyFactory = std::function<std::unique_ptr<AssignmentStrategy>()>;

  struct AppOptions {
    AppConfig config;
    StrategyFactory strategy_factory;
    /// Seed for the app's decision RNG stream; independent per app.
    uint64_t seed = 0;
  };

  AppManager() = default;
  AppManager(const AppManager&) = delete;
  AppManager& operator=(const AppManager&) = delete;

  /// Registers an app and starts serving it. Validates the config (before
  /// journal-path scoping) and requires a strategy factory. Returns the
  /// app's dense id.
  QASCA_NODISCARD
  util::StatusOr<AppId> RegisterApp(AppOptions options);

  /// Apps registered so far.
  int app_count() const;

  /// HIT request for `worker` against app `app` (engine RequestHit
  /// semantics). InvalidArgument for an unknown app id.
  QASCA_NODISCARD
  util::StatusOr<std::vector<QuestionIndex>> SubmitHitRequest(
      AppId app, WorkerId worker);

  /// Serves `workers`' HIT requests as one batch under one shard-lock hold
  /// and one serve_batch span: the Qc snapshot and warmed EM shared state
  /// are amortised across the batch. Decisions are byte-identical to
  /// submitting the same requests serially in batch order (pinned by
  /// AppManagerTest.BatchMatchesSerialInBatchOrder). One result slot per
  /// worker, in order; per-request failures do not abort the batch.
  QASCA_NODISCARD
  util::StatusOr<std::vector<util::StatusOr<std::vector<QuestionIndex>>>>
  SubmitHitRequestBatch(AppId app, const std::vector<WorkerId>& workers);

  /// HIT completion for `worker` against app `app` (engine CompleteHit
  /// semantics, including idempotent duplicate drop and late rejection).
  QASCA_NODISCARD
  util::Status SubmitHitCompletion(AppId app, WorkerId worker,
                                   const std::vector<LabelIndex>& labels);

  /// Advances app `app`'s virtual clock by `ticks` (> 0), expiring due
  /// leases (engine Tick semantics). Returns the number of leases expired.
  QASCA_NODISCARD
  util::StatusOr<int> AdvanceAppClock(AppId app, uint64_t ticks = 1);

  /// Simulates a crash of app `app` and recovers it from its journal while
  /// sibling apps keep serving: discards the in-memory engine, rebuilds it
  /// from the registered (config, factory, seed), and replays the journal.
  /// The app's shard lock is held throughout, so concurrent submissions to
  /// the same app simply wait and then hit the recovered engine.
  /// FailedPrecondition if the app has no journal. The fail point
  /// "app_manager.crash_recover" aborts the recovery before the engine is
  /// discarded (fault-injection suite).
  QASCA_NODISCARD
  util::Status CrashAndRecoverApp(AppId app);

  /// The app's engine StateFingerprint (serialised against in-flight
  /// calls). The conformance suite's bit-identity witness.
  QASCA_NODISCARD
  util::StatusOr<uint64_t> AppStateFingerprint(AppId app) const;

  /// The app's telemetry registry rendered as JSON (engine
  /// MetricRegistry::ToJson), serialised against in-flight calls.
  QASCA_NODISCARD
  util::StatusOr<std::string> AppTelemetryJson(AppId app) const;

  /// Point-in-time lifecycle counters for one app, read under its shard
  /// lock so the set is mutually consistent.
  struct AppStats {
    int assigned_hits = 0;
    int completed_hits = 0;
    int open_hits = 0;
    int leases_expired = 0;
    int duplicates_dropped = 0;
    int late_completions_rejected = 0;
    /// Decision-provenance records retained (0 if provenance is off).
    int provenance_records = 0;
    /// Sliding-window p95 assignment latency in seconds (0 if no SLO
    /// tracker is configured).
    double window_p95_seconds = 0.0;
    double max_assignment_seconds = 0.0;
  };
  QASCA_NODISCARD
  util::StatusOr<AppStats> StatsFor(AppId app) const;

  /// Runs `fn` against the app's engine under the shard lock — serialised
  /// read access for tests and tools that need engine internals (trace,
  /// provenance, database) without racing the serving threads. `fn` must
  /// not retain the reference past the call.
  QASCA_NODISCARD
  util::Status InspectApp(
      AppId app,
      const std::function<void(const TaskAssignmentEngine&)>& fn) const;

 private:
  /// One hosted application: the engine and everything needed to rebuild
  /// it after a simulated crash.
  struct AppShard {
    mutable util::Mutex mu{util::lock_ranks::kAppShard};
    std::unique_ptr<TaskAssignmentEngine> engine QASCA_GUARDED_BY(mu);
    /// Registration-time inputs, written once under `mu` at registration
    /// and read-only afterwards (CrashAndRecoverApp rebuilds from them).
    AppConfig config QASCA_GUARDED_BY(mu);
    StrategyFactory strategy_factory QASCA_GUARDED_BY(mu);
    uint64_t seed QASCA_GUARDED_BY(mu) = 0;
  };

  /// Resolves an app id to its shard under the registry lock; nullptr for
  /// an out-of-range id. The pointer stays valid forever (append-only
  /// registry of heap-allocated shards).
  AppShard* ShardFor(AppId app) const;

  static std::unique_ptr<TaskAssignmentEngine> BuildEngine(
      const AppShard& shard) QASCA_REQUIRES(shard.mu);

  mutable util::Mutex mu_{util::lock_ranks::kAppManagerRegistry};
  std::vector<std::unique_ptr<AppShard>> shards_ QASCA_GUARDED_BY(mu_);
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_APP_MANAGER_H_
