#ifndef QASCA_UTIL_FOLD_H_
#define QASCA_UTIL_FOLD_H_

#include <utility>

namespace qasca::util {

/// The serial blessed fold helpers (DESIGN.md §10, float-determinism).
///
/// QASCA's assignment decisions are pinned by golden-trace hashes, and
/// floating-point addition is not associative, so the *order* of every
/// accumulation that can reach a decision is part of the engine's
/// contract. These helpers centralise the serial orders the codebase is
/// allowed to use — strictly left-to-right over [begin, end) — the same
/// way util::ParallelSum (util/thread_pool.h) centralises the chunked
/// order. A future vectorised or compensated summation then changes one
/// audited definition instead of every loop, and the float-determinism
/// analyzer pass can flag any raw `+=` fold that bypasses the audit.

/// Sum of term(i) for i in [begin, end), folded strictly left to right.
/// `term` is called exactly once per index, in order.
template <typename Term>
double DeterministicSum(int begin, int end, Term&& term) {
  double total = 0.0;
  for (int i = begin; i < end; ++i) total += term(i);
  return total;
}

/// General left-to-right fold: state = step(state, i) for i in [begin,
/// end), in order. For accumulations that carry more than one number
/// (e.g. a numerator/denominator pair) through the loop.
template <typename State, typename Step>
State DeterministicFold(State state, int begin, int end, Step&& step) {
  for (int i = begin; i < end; ++i) state = step(std::move(state), i);
  return state;
}

}  // namespace qasca::util

#endif  // QASCA_UTIL_FOLD_H_
