"""Pass registry. Order is report order; names are the suppression keys."""

from .api_layering import ApiLayeringPass
from .clock_discipline import ClockDisciplinePass
from .determinism import DeterminismPass
from .float_determinism import FloatDeterminismPass
from .global_state import GlobalStatePass
from .guarded_by_coverage import GuardedByCoveragePass
from .hot_path_alloc import HotPathAllocPass
from .include_hygiene import IncludeHygienePass
from .invariants import InvariantsPass
from .lock_annotations import LockAnnotationsPass
from .lock_order import LockOrderPass
from .noexcept_audit import NoexceptAuditPass
from .shared_state_escape import SharedStateEscapePass
from .span_names import SpanNamesPass
from .status_discard import StatusDiscardPass

ALL_PASSES = (
    InvariantsPass(),
    SpanNamesPass(),
    DeterminismPass(),
    ClockDisciplinePass(),
    IncludeHygienePass(),
    LockAnnotationsPass(),
    LockOrderPass(),
    SharedStateEscapePass(),
    GuardedByCoveragePass(),
    GlobalStatePass(),
    NoexceptAuditPass(),
    StatusDiscardPass(),
    ApiLayeringPass(),
    FloatDeterminismPass(),
    HotPathAllocPass(),
)


def by_name(names):
    index = {p.name: p for p in ALL_PASSES}
    unknown = [n for n in names if n not in index]
    if unknown:
        raise KeyError(", ".join(unknown))
    return tuple(index[n] for n in names)
