// Positive invariant coverage: full simulated engine runs under both metric
// families. In Debug / sanitizer builds (QASCA_DCHECKS=ON) these runs
// exercise every threaded invariant — normalized Qc/Qw rows on each SetRow,
// Dinkelbach lambda monotonicity per iteration, EM log-likelihood ascent per
// round, and HIT shape on every assignment — so simply completing without an
// abort is the assertion that matters. The explicit EXPECTs below keep the
// test meaningful in Release builds too.

#include <vector>

#include <gtest/gtest.h>

#include "simulation/experiment.h"
#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {
namespace {

TEST(InvariantsEngineTest, AccuracyAppRunsWithAllInvariantsLive) {
  ApplicationSpec spec = FilmPostersApp();
  spec.num_questions = 60;
  spec.workers.num_workers = 8;
  ExperimentOptions options;
  options.seed = 71;
  options.checkpoints = 3;
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[3]};  // QASCA
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  ASSERT_EQ(result.systems.size(), 1u);
  EXPECT_EQ(result.systems[0].completed_hits.back(), spec.TotalHits());
  EXPECT_GT(result.systems[0].final_quality, 0.5);
}

TEST(InvariantsEngineTest, FScoreAppRunsWithAllInvariantsLive) {
  ApplicationSpec spec = EntityResolutionApp();
  spec.num_questions = 80;
  spec.workers.num_workers = 10;
  ExperimentOptions options;
  options.seed = 73;
  options.checkpoints = 3;
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[3]};
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  ASSERT_EQ(result.systems.size(), 1u);
  EXPECT_EQ(result.systems[0].completed_hits.back(), spec.TotalHits());
  EXPECT_GT(result.systems[0].final_quality, 0.3);
}

TEST(InvariantsEngineTest, EverySystemSurvivesInvariantSweep) {
  // All six comparison systems drive the same engine; a policy that ever
  // emits a malformed HIT or denormalised matrix dies here in Debug mode.
  ApplicationSpec spec = NegativeSentimentApp();
  spec.num_questions = 40;
  spec.workers.num_workers = 6;
  ExperimentOptions options;
  options.seed = 79;
  options.checkpoints = 2;
  ExperimentResult result =
      RunParallelExperiment(spec, DefaultSystems(), options);
  ASSERT_EQ(result.systems.size(), 6u);
  for (const SystemTrace& trace : result.systems) {
    EXPECT_EQ(trace.completed_hits.back(), spec.TotalHits()) << trace.name;
  }
}

TEST(InvariantsEngineTest, ReportsBuildFlavour) {
  // Not an assertion — documents in the test log whether this binary has
  // DCHECK invariants compiled in (debug/asan presets) or out (release).
  RecordProperty("dchecks_enabled", util::kDChecksEnabled ? "yes" : "no");
  SUCCEED();
}

}  // namespace
}  // namespace qasca
