#include "util/thread_pool.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qasca::util {
namespace {

TEST(ThreadPoolTest, ChunkArithmetic) {
  EXPECT_EQ(NumChunks(0, 0, 4), 0);
  EXPECT_EQ(NumChunks(0, 1, 4), 1);
  EXPECT_EQ(NumChunks(0, 4, 4), 1);
  EXPECT_EQ(NumChunks(0, 5, 4), 2);
  EXPECT_EQ(NumChunks(3, 11, 4), 2);
  EXPECT_EQ(NumChunks(5, 3, 4), 0);  // empty range
  EXPECT_EQ(ChunkIndex(0, 0, 4), 0);
  EXPECT_EQ(ChunkIndex(0, 3, 4), 0);
  EXPECT_EQ(ChunkIndex(0, 4, 4), 1);
  EXPECT_EQ(ChunkIndex(3, 7, 4), 1);
}

TEST(ThreadPoolTest, SizeOneRunsInlineOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.ParallelFor(0, 10, 3, [&](int b, int e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (int i = b; i < e; ++i) order.push_back(i);
  });
  // Serial fallback visits the chunks in chunk order: 0..9 ascending.
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int grain : {1, 3, 64, 1000}) {
      std::mutex mutex;
      std::multiset<int> seen;
      pool.ParallelFor(5, 143, grain, [&](int b, int e) {
        ASSERT_LT(b, e);
        ASSERT_LE(e - b, grain);
        std::lock_guard<std::mutex> lock(mutex);
        for (int i = b; i < e; ++i) seen.insert(i);
      });
      ASSERT_EQ(seen.size(), 138u) << threads << " threads, grain " << grain;
      for (int i = 5; i < 143; ++i) {
        ASSERT_EQ(seen.count(i), 1u) << "index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeCallsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(7, 7, 2, [&](int, int) { calls++; });
  pool.ParallelFor(9, 3, 2, [&](int, int) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ActuallyRunsOnWorkerThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  // Enough chunks that at least one must land off the calling thread (the
  // calling thread only blocks; workers do all chunk execution).
  pool.ParallelFor(0, 64, 1, [&](int, int) {
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
  EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 100, 7, [&](int b, int e) {
      for (int i = b; i < e; ++i) total += i;
    });
  }
  EXPECT_EQ(total.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, FreeFunctionNullPoolIsSerial) {
  std::vector<int> order;
  ParallelFor(nullptr, 2, 9, 3, [&](int b, int e) {
    for (int i = b; i < e; ++i) order.push_back(i);
  });
  ASSERT_EQ(order.size(), 7u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i) + 2);
  }
}

// The determinism contract: ParallelSum folds per-chunk partials in chunk
// order, so the result is bit-identical for every pool size — on a workload
// where float addition order otherwise changes the answer.
TEST(ThreadPoolTest, ParallelSumBitIdenticalAcrossPoolSizes) {
  const int n = 10007;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) {
    // Wildly varying magnitudes make fp addition order-sensitive.
    values[i] = (i % 2 ? 1.0 : -1.0) * std::pow(10.0, (i * 7) % 13) /
                (i + 1.0);
  }
  auto chunk_sum = [&](int b, int e) {
    double s = 0.0;
    for (int i = b; i < e; ++i) s += values[i];
    return s;
  };
  const double serial = ParallelSum(nullptr, 0, n, 128, chunk_sum);
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double parallel = ParallelSum(&pool, 0, n, 128, chunk_sum);
      // Bit identity, not tolerance: the fold order is canonical.
      EXPECT_EQ(serial, parallel) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace qasca::util
