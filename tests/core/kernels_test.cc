#include "core/kernels/kernels.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/qw_overlay.h"
#include "util/fold.h"
#include "util/rng.h"

namespace qasca {
namespace {

using kernels::Isa;

// Deterministic positive test data: reproducible on any host, strictly
// positive (the kernels serve probability rows) and irregular enough that a
// wrong fold order or a fused multiply-add changes at least one bit.
std::vector<double> TestRow(int n, uint64_t salt) {
  std::vector<double> row(static_cast<size_t>(n));
  uint64_t state = salt * 0x9e3779b97f4a7c15ull + 1;
  for (int i = 0; i < n; ++i) {
    state ^= state >> 30;
    state *= 0xbf58476d1ce4e5b9ull;
    state ^= state >> 27;
    // In (0, 1]: irregular mantissas, no zeros.
    row[static_cast<size_t>(i)] =
        static_cast<double>((state >> 11) + 1) / 9007199254740993.0;
  }
  return row;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (kernels::IsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

// Restores the dispatch the rest of the binary resolved, whatever a test
// repointed it to.
class IsaGuard {
 public:
  IsaGuard() : saved_(kernels::ActiveIsa()) {}
  ~IsaGuard() { kernels::SetIsaForTesting(saved_); }

 private:
  Isa saved_;
};

// The sizes swept by every equivalence test: all the remainder classes of
// the 4-lane schedule plus a few cache-line-straddling lengths.
std::vector<int> TestSizes() {
  std::vector<int> sizes;
  for (int n = 1; n <= 19; ++n) sizes.push_back(n);
  for (int n : {24, 31, 32, 33, 48, 63, 64, 65, 67}) sizes.push_back(n);
  return sizes;
}

TEST(KernelDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(kernels::IsaSupported(Isa::kScalar));
  EXPECT_TRUE(kernels::IsaSupported(kernels::ActiveIsa()));
}

TEST(KernelDispatchTest, IsaNamesAreStable) {
  EXPECT_STREQ(kernels::IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(kernels::IsaName(Isa::kSse2), "sse2");
  EXPECT_STREQ(kernels::IsaName(Isa::kAvx2), "avx2");
}

TEST(KernelDispatchTest, SetIsaForTestingRepointsDispatch) {
  IsaGuard guard;
  for (Isa isa : SupportedIsas()) {
    kernels::SetIsaForTesting(isa);
    EXPECT_EQ(kernels::ActiveIsa(), isa);
  }
}

// The bit-identity contract (kernels.h): every ISA path returns the exact
// doubles the scalar path returns, for every kernel and every size. All
// comparisons below are EXPECT_EQ on doubles — exact equality, never NEAR.
TEST(KernelEquivalenceTest, RowSumBitIdenticalAcrossIsas) {
  IsaGuard guard;
  for (int n : TestSizes()) {
    const std::vector<double> x = TestRow(n, /*salt=*/static_cast<uint64_t>(n));
    kernels::SetIsaForTesting(Isa::kScalar);
    const double reference = kernels::RowSum(x.data(), n);
    for (Isa isa : SupportedIsas()) {
      kernels::SetIsaForTesting(isa);
      EXPECT_EQ(kernels::RowSum(x.data(), n), reference)
          << "n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelEquivalenceTest, RowSumMatchesFourLaneSchedule) {
  // The schedule is part of the contract, not an implementation detail:
  // acc[i % 4] += x[i] over full 4-blocks, merged ((acc0+acc1)+acc2)+acc3,
  // then a left-to-right tail.
  IsaGuard guard;
  for (int n : TestSizes()) {
    const std::vector<double> x = TestRow(n, /*salt=*/91u + n);
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    const int main = n - (n % 4);
    for (int i = 0; i < main; ++i) acc[i % 4] += x[static_cast<size_t>(i)];
    double expected = ((acc[0] + acc[1]) + acc[2]) + acc[3];
    for (int i = main; i < n; ++i) expected += x[static_cast<size_t>(i)];
    for (Isa isa : SupportedIsas()) {
      kernels::SetIsaForTesting(isa);
      EXPECT_EQ(kernels::RowSum(x.data(), n), expected)
          << "n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelEquivalenceTest, RowSumEqualsDeterministicSumForShortRows) {
  // For n <= 4 the schedule degenerates to a strict left-to-right sum, so
  // label rows of golden-trace width (l = 2) keep their historical value.
  IsaGuard guard;
  for (int n = 1; n <= 4; ++n) {
    const std::vector<double> x = TestRow(n, /*salt=*/300u + n);
    const double serial = util::DeterministicSum(
        0, n, [&](int i) { return x[static_cast<size_t>(i)]; });
    for (Isa isa : SupportedIsas()) {
      kernels::SetIsaForTesting(isa);
      EXPECT_EQ(kernels::RowSum(x.data(), n), serial) << "n=" << n;
    }
  }
}

TEST(KernelEquivalenceTest, RowMaxMatchesStdMaxElement) {
  IsaGuard guard;
  for (int n : TestSizes()) {
    const std::vector<double> x = TestRow(n, /*salt=*/700u + n);
    const double reference = *std::max_element(x.begin(), x.end());
    for (Isa isa : SupportedIsas()) {
      kernels::SetIsaForTesting(isa);
      EXPECT_EQ(kernels::RowMax(x.data(), n), reference)
          << "n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelEquivalenceTest, ElementwiseKernelsBitIdenticalAcrossIsas) {
  // MulRow / MulRowInPlace / DivRow / AxpyRow / WpAnswerDistribution are
  // exact per IEEE-754: each lane is the same correctly-rounded expression
  // as the scalar loop, with contraction disabled. So every ISA must agree
  // with the scalar path bit-for-bit on every element.
  IsaGuard guard;
  for (int n : TestSizes()) {
    const std::vector<double> a = TestRow(n, /*salt=*/1000u + n);
    const std::vector<double> b = TestRow(n, /*salt=*/2000u + n);
    const double divisor = 0.37 + 0.01 * n;
    const double scale = 0.59 + 0.003 * n;
    const double m = 0.81;
    const double off = (1.0 - m) / 3.0;

    std::vector<double> mul_ref(a.size()), axpy_ref(b), wp_ref(a.size());
    std::vector<double> div_ref(a), mulin_ref(a);
    kernels::SetIsaForTesting(Isa::kScalar);
    kernels::MulRow(mul_ref.data(), a.data(), b.data(), n);
    kernels::MulRowInPlace(mulin_ref.data(), b.data(), n);
    kernels::DivRow(div_ref.data(), n, divisor);
    kernels::AxpyRow(axpy_ref.data(), scale, a.data(), n);
    kernels::WpAnswerDistribution(a.data(), n, m, off, wp_ref.data());

    for (Isa isa : SupportedIsas()) {
      kernels::SetIsaForTesting(isa);
      std::vector<double> mul(a.size()), axpy(b), wp(a.size());
      std::vector<double> div(a), mulin(a);
      kernels::MulRow(mul.data(), a.data(), b.data(), n);
      kernels::MulRowInPlace(mulin.data(), b.data(), n);
      kernels::DivRow(div.data(), n, divisor);
      kernels::AxpyRow(axpy.data(), scale, a.data(), n);
      kernels::WpAnswerDistribution(a.data(), n, m, off, wp.data());
      const char* name = kernels::IsaName(isa);
      EXPECT_EQ(mul, mul_ref) << "MulRow n=" << n << " isa=" << name;
      EXPECT_EQ(mulin, mulin_ref) << "MulRowInPlace n=" << n << " " << name;
      EXPECT_EQ(div, div_ref) << "DivRow n=" << n << " isa=" << name;
      EXPECT_EQ(axpy, axpy_ref) << "AxpyRow n=" << n << " isa=" << name;
      EXPECT_EQ(wp, wp_ref) << "WpAnswerDistribution n=" << n << " " << name;
    }
  }
}

TEST(KernelEquivalenceTest, ElementwiseKernelsMatchScalarExpressions) {
  // And the scalar expressions themselves are pinned: out = a*b, in /= d
  // (true division), acc += s*x (multiply then add).
  for (int n : {1, 2, 3, 4, 7, 16, 33}) {
    const std::vector<double> a = TestRow(n, /*salt=*/4000u + n);
    const std::vector<double> b = TestRow(n, /*salt=*/5000u + n);
    const double divisor = 1.7;
    const double scale = 0.21;
    std::vector<double> mul(a.size()), axpy(b), div(a);
    kernels::MulRow(mul.data(), a.data(), b.data(), n);
    kernels::DivRow(div.data(), n, divisor);
    kernels::AxpyRow(axpy.data(), scale, a.data(), n);
    for (int i = 0; i < n; ++i) {
      const size_t s = static_cast<size_t>(i);
      EXPECT_EQ(mul[s], a[s] * b[s]);
      EXPECT_EQ(div[s], a[s] / divisor);
      EXPECT_EQ(axpy[s], b[s] + scale * a[s]);
    }
  }
}

TEST(KernelEquivalenceTest, CmAnswerDistributionAscendingTruthOrder) {
  // Each output lane accumulates cm[truth][answered] * row[truth] in
  // ascending-truth order on every ISA — the exact order the legacy
  // answered-major loop produced.
  IsaGuard guard;
  for (int l : {2, 3, 4, 5, 8}) {
    const std::vector<double> cm =
        TestRow(l * l, /*salt=*/6000u + static_cast<uint64_t>(l));
    const std::vector<double> row = TestRow(l, /*salt=*/7000u + l);
    std::vector<double> expected(static_cast<size_t>(l), 0.0);
    for (int truth = 0; truth < l; ++truth) {
      for (int answered = 0; answered < l; ++answered) {
        expected[static_cast<size_t>(answered)] +=
            cm[static_cast<size_t>(truth * l + answered)] *
            row[static_cast<size_t>(truth)];
      }
    }
    for (Isa isa : SupportedIsas()) {
      kernels::SetIsaForTesting(isa);
      std::vector<double> out(static_cast<size_t>(l));
      kernels::CmAnswerDistribution(cm.data(), row.data(), l, out.data());
      EXPECT_EQ(out, expected) << "l=" << l
                               << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(QwOverlayTest, StampedRowsReadBackWrittenValues) {
  QwOverlay overlay;
  overlay.Begin(/*num_questions=*/10, /*num_labels=*/3, /*rows=*/2);
  overlay.Stamp(4, /*slot=*/0);
  overlay.Stamp(7, /*slot=*/1);
  double* r0 = overlay.MutableRow(0);
  double* r1 = overlay.MutableRow(1);
  r0[0] = 0.5;
  r0[1] = 0.25;
  r0[2] = 0.25;
  r1[0] = 0.1;
  r1[1] = 0.2;
  r1[2] = 0.7;
  ASSERT_TRUE(overlay.Contains(4));
  ASSERT_TRUE(overlay.Contains(7));
  EXPECT_EQ(overlay.Row(4)[0], 0.5);
  EXPECT_EQ(overlay.Row(4)[2], 0.25);
  EXPECT_EQ(overlay.Row(7)[2], 0.7);
  EXPECT_EQ(overlay.Row(4).size(), 3u);
}

TEST(QwOverlayTest, UnstampedRowsFallThrough) {
  // Contains() is the fall-through predicate AssignmentRequest::EstimatedRow
  // keys on: false means "read the base matrix".
  QwOverlay overlay;
  overlay.Begin(/*num_questions=*/6, /*num_labels=*/2, /*rows=*/1);
  overlay.Stamp(3, /*slot=*/0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(overlay.Contains(i), i == 3) << "i=" << i;
  }
}

TEST(QwOverlayTest, BeginInvalidatesPreviousEpoch) {
  QwOverlay overlay;
  overlay.Begin(/*num_questions=*/5, /*num_labels=*/2, /*rows=*/2);
  overlay.Stamp(1, 0);
  overlay.Stamp(2, 1);
  EXPECT_TRUE(overlay.Contains(1));
  overlay.Begin(5, 2, /*rows=*/1);
  // O(1) invalidation: nothing from the previous request survives.
  EXPECT_FALSE(overlay.Contains(1));
  EXPECT_FALSE(overlay.Contains(2));
  overlay.Stamp(2, 0);
  EXPECT_TRUE(overlay.Contains(2));
  EXPECT_FALSE(overlay.Contains(1));
}

TEST(QwOverlayTest, ShapeChangeResetsStamps) {
  QwOverlay overlay;
  overlay.Begin(/*num_questions=*/4, /*num_labels=*/2, /*rows=*/1);
  overlay.Stamp(0, 0);
  overlay.Begin(/*num_questions=*/8, /*num_labels=*/3, /*rows=*/1);
  EXPECT_EQ(overlay.num_questions(), 8);
  EXPECT_EQ(overlay.num_labels(), 3);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(overlay.Contains(i));
}

TEST(QwOverlayTest, CountsMaterializedRows) {
  QwOverlay overlay;
  overlay.Begin(10, 2, /*rows=*/3);
  EXPECT_EQ(overlay.rows_materialized(), 3);
  EXPECT_EQ(overlay.total_rows_materialized(), 3);
  overlay.Begin(10, 2, /*rows=*/5);
  EXPECT_EQ(overlay.rows_materialized(), 5);
  EXPECT_EQ(overlay.total_rows_materialized(), 8);
}

TEST(QwOverlayTest, QualityChannelArmsPerEpoch) {
  QwOverlay overlay;
  EXPECT_FALSE(overlay.has_qualities());  // never Begun
  overlay.Begin(/*num_questions=*/6, /*num_labels=*/2, /*rows=*/2);
  overlay.Stamp(1, 0);
  overlay.Stamp(4, 1);
  EXPECT_FALSE(overlay.has_qualities());  // not armed this epoch
  double* q = overlay.ArmQualities();
  q[0] = 0.75;
  q[1] = 0.6;
  ASSERT_TRUE(overlay.has_qualities());
  EXPECT_EQ(overlay.Quality(1), 0.75);
  EXPECT_EQ(overlay.Quality(4), 0.6);
  // Begin disarms: a stale quality buffer can never leak into the next
  // request, even though the storage is reused.
  overlay.Begin(6, 2, /*rows=*/2);
  EXPECT_FALSE(overlay.has_qualities());
}

// The fused sampled-Qw batch (kernels::SampledQwRows) against the unfused
// per-row composition it replaced: answer-distribution kernel,
// util::SampleWeightedAt on a SplitMix64 variate derived from
// (base, question), MulRow conditioning, RowSum/DivRow normalisation with
// the 1/n fallback. Bit-equal rows, samples and fused maxima, for the
// inlined l == 2 fast path and the table-composed general path, WP and CM
// shapes, on every supported ISA.
TEST(KernelEquivalenceTest, SampledQwRowsMatchesComposedPipeline) {
  IsaGuard guard;
  const uint64_t base = 0x5eedf00dcafe1234ull;
  for (int l : {2, 3, 5}) {
    // A small "matrix" of n questions by l labels, rows normalised.
    const int n = 12;
    std::vector<double> qc = TestRow(n * l, /*salt=*/91u + l);
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < l; ++j) sum += qc[i * l + j];
      for (int j = 0; j < l; ++j) qc[i * l + j] /= sum;
    }
    // Likelihood table: l x l positive doubles; rows need no normalisation
    // (conditioning renormalises).
    const std::vector<double> lik = TestRow(l * l, /*salt=*/17u + l);
    // Confusion matrix for the CM shape, row-major [truth][answered].
    const std::vector<double> cm = TestRow(l * l, /*salt=*/33u + l);
    const double wp_m = 0.8;
    const double wp_off = (1.0 - wp_m) / (l - 1);
    const std::vector<int> candidates = {0, 2, 3, 5, 7, 8, 11};
    const int rows = static_cast<int>(candidates.size());

    for (bool wp : {true, false}) {
      // Reference: the unfused composition, computed once with the scalar
      // dispatch active (kernels are ISA-bit-identical, so any choice works).
      kernels::SetIsaForTesting(Isa::kScalar);
      std::vector<double> want(static_cast<size_t>(rows) * l);
      std::vector<double> want_max(static_cast<size_t>(rows));
      std::vector<double> dist(static_cast<size_t>(l));
      for (int c = 0; c < rows; ++c) {
        const double* cur = qc.data() + static_cast<size_t>(candidates[c]) * l;
        if (wp) {
          kernels::WpAnswerDistribution(cur, l, wp_m, wp_off, dist.data());
        } else {
          kernels::CmAnswerDistribution(cm.data(), cur, l, dist.data());
        }
        util::SplitMix64 stream(util::SplitMix64::MixSeed(
            base, static_cast<uint64_t>(candidates[c])));
        const int sampled = util::SampleWeightedAt(
            std::span<const double>(dist), stream.NextDouble());
        double* out = want.data() + static_cast<size_t>(c) * l;
        kernels::MulRow(out, cur, lik.data() + static_cast<size_t>(sampled) * l,
                        l);
        const double total = kernels::RowSum(out, l);
        if (total <= 0.0) {
          std::fill(out, out + l, 1.0 / static_cast<double>(l));
        } else {
          kernels::DivRow(out, l, total);
        }
        want_max[static_cast<size_t>(c)] = kernels::RowMax(out, l);
      }

      for (Isa isa : SupportedIsas()) {
        kernels::SetIsaForTesting(isa);
        std::vector<double> got(static_cast<size_t>(rows) * l, -1.0);
        std::vector<double> got_max(static_cast<size_t>(rows), -1.0);
        std::vector<double> scratch(static_cast<size_t>(l));
        kernels::SampledQwRows(qc.data(), l, candidates.data(), rows, base,
                               wp_m, wp_off, wp ? nullptr : cm.data(),
                               lik.data(), got.data(), got_max.data(),
                               scratch.data());
        for (size_t x = 0; x < got.size(); ++x) {
          EXPECT_EQ(got[x], want[x])
              << "l=" << l << " wp=" << wp << " isa=" << kernels::IsaName(isa)
              << " cell " << x;
        }
        for (size_t c = 0; c < got_max.size(); ++c) {
          EXPECT_EQ(got_max[c], want_max[c])
              << "l=" << l << " wp=" << wp << " isa=" << kernels::IsaName(isa)
              << " row " << c;
        }
        // row_max == nullptr must be accepted (non-Accuracy* callers).
        kernels::SampledQwRows(qc.data(), l, candidates.data(), rows, base,
                               wp_m, wp_off, wp ? nullptr : cm.data(),
                               lik.data(), got.data(), nullptr,
                               scratch.data());
        for (size_t x = 0; x < got.size(); ++x) {
          ASSERT_EQ(got[x], want[x]);
        }
      }
    }
  }
}

TEST(KernelDispatchTest, ActiveRowMaxTracksDispatch) {
  IsaGuard guard;
  const std::vector<double> row = TestRow(9, /*salt=*/5u);
  for (Isa isa : SupportedIsas()) {
    kernels::SetIsaForTesting(isa);
    const kernels::RowMaxFn fn = kernels::ActiveRowMax();
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn(row.data(), static_cast<int>(row.size())),
              kernels::RowMax(row.data(), static_cast<int>(row.size())))
        << kernels::IsaName(isa);
  }
}

}  // namespace
}  // namespace qasca
