#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace qasca::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats stats;
  stats.Add(-1.0);
  stats.Add(1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 1.0);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 0.25);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 0.75);
  EXPECT_DOUBLE_EQ(h.BucketHigh(3), 1.0);
}

TEST(HistogramTest, ValuesLandInBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.3);
  h.Add(0.35);
  h.Add(0.9);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.count(2), 0);
  EXPECT_EQ(h.count(3), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(5.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch stopwatch;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
  stopwatch.Reset();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace qasca::util
