// Dispatch for the assignment kernels (kernels.h): resolve the widest
// supported ISA once, honour the QASCA_KERNEL_ISA override, and forward
// every entry point through one function-pointer table.

#include "core/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/kernels/kernel_table.h"
#include "util/logging.h"
#include "util/rng.h"

namespace qasca::kernels {
namespace {

const KernelTable& TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return ScalarKernels();
    case Isa::kSse2:
      return Sse2Kernels();
    case Isa::kAvx2:
      return Avx2Kernels();
  }
  return ScalarKernels();
}

// Widest ISA this host can execute.
Isa DetectIsa() {
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaSupported(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

bool ParseIsaName(const char* name, Isa* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    *out = Isa::kSse2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = Isa::kAvx2;
    return true;
  }
  return false;
}

Isa ResolveIsa() {
  const Isa detected = DetectIsa();
  const char* override_name = std::getenv("QASCA_KERNEL_ISA");
  if (override_name == nullptr || override_name[0] == '\0') return detected;
  Isa requested = detected;
  if (!ParseIsaName(override_name, &requested)) {
    std::fprintf(stderr,
                 "[QASCA kernels] unknown QASCA_KERNEL_ISA=\"%s\" "
                 "(want scalar|sse2|avx2); using %s\n",
                 override_name, IsaName(detected));
    return detected;
  }
  if (!IsaSupported(requested)) {
    // Clamp to the widest supported ISA at or below the request, so a CI
    // matrix can export QASCA_KERNEL_ISA=avx2 on hosts without AVX2 and
    // still run meaningfully.
    Isa clamped = detected < requested ? detected : requested;
    while (clamped > Isa::kScalar && !IsaSupported(clamped)) {
      clamped = static_cast<Isa>(static_cast<int>(clamped) - 1);
    }
    std::fprintf(stderr,
                 "[QASCA kernels] QASCA_KERNEL_ISA=%s not supported on this "
                 "host; using %s\n",
                 IsaName(requested), IsaName(clamped));
    return clamped;
  }
  return requested;
}

struct Dispatch {
  Isa isa;
  const KernelTable* table;
};

// Resolved exactly once, on the first kernel call (thread-safe static
// init); SetIsaForTesting repoints it afterwards. All mutation happens on
// the single engine/test thread (the engine's threading contract), worker
// threads only read through the entry points.
Dispatch& ActiveDispatch() {
  // analyze:allow(global-state) immutable-after-init ISA dispatch singleton
  static Dispatch dispatch = [] {
    const Isa isa = ResolveIsa();
    return Dispatch{isa, &TableFor(isa)};
  }();
  return dispatch;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if QASCA_KERNELS_X86
    case Isa::kSse2:
      return true;  // Part of the x86-64 baseline.
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Isa::kSse2:
    case Isa::kAvx2:
      return false;
#endif
  }
  return false;
}

Isa ActiveIsa() { return ActiveDispatch().isa; }

void SetIsaForTesting(Isa isa) {
  QASCA_CHECK(IsaSupported(isa)) << "ISA " << IsaName(isa)
                                 << " not supported on this host";
  ActiveDispatch() = Dispatch{isa, &TableFor(isa)};
}

double RowSum(const double* x, int n) {
  return ActiveDispatch().table->row_sum(x, n);
}

double RowMax(const double* x, int n) {
  return ActiveDispatch().table->row_max(x, n);
}

void MulRow(double* out, const double* a, const double* b, int n) {
  ActiveDispatch().table->mul_row(out, a, b, n);
}

void MulRowInPlace(double* inout, const double* b, int n) {
  ActiveDispatch().table->mul_row_in_place(inout, b, n);
}

void DivRow(double* inout, int n, double divisor) {
  ActiveDispatch().table->div_row(inout, n, divisor);
}

void AxpyRow(double* acc, double scale, const double* x, int n) {
  ActiveDispatch().table->axpy_row(acc, scale, x, n);
}

void WpAnswerDistribution(const double* row, int n, double m, double off,
                          double* out) {
  ActiveDispatch().table->wp_answer_distribution(row, n, m, off, out);
}

void CmAnswerDistribution(const double* cm, const double* row, int l,
                          double* out) {
  ActiveDispatch().table->cm_answer_distribution(cm, row, l, out);
}

RowMaxFn ActiveRowMax() { return ActiveDispatch().table->row_max; }

namespace {

// util::SampleWeightedAt's cumulative rule (util/rng.cc) on a raw row:
// identical left-to-right total, identical cumulative scan, identical
// last-positive fallback — only the per-weight CHECKs are dropped (the
// inputs here are answer distributions the caller already validates).
inline int SampleDistributionAt(const double* w, int n, double u01) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += w[i];
  QASCA_DCHECK_GT(total, 0.0) << "all sampling weights are zero";
  const double target = u01 * total;
  double cumulative = 0.0;
  for (int i = 0; i < n; ++i) {
    cumulative += w[i];
    if (target < cumulative) return i;
  }
  for (int i = n; i-- > 0;) {
    if (w[i] > 0.0) return i;
  }
  return n - 1;
}

// The candidate's uniform variate, derived exactly as the unfused scan in
// EstimateWorkerDistribution does: one SplitMix64 stream per candidate
// seeded from (base, question index), one NextDouble().
inline double VariateFor(uint64_t base, int question) {
  util::SplitMix64 stream(
      util::SplitMix64::MixSeed(base, static_cast<uint64_t>(question)));
  return stream.NextDouble();
}

// Fully-inlined l == 2 fast path: the same op sequence as the composed
// kernels (WpAnswerDistribution / CmAnswerDistribution, the cumulative
// sampling rule, MulRow, the n <= 4 left-to-right RowSum, the 1/n uniform
// fallback and DivRow's true division), spelled out scalar so a chunk of
// binary-label rows runs with zero indirect calls. This TU compiles with
// -ffp-contract=off, so none of the multiply-adds below can fuse.
void SampledQwRowsL2(const double* qc, const int* candidates, int rows,
                     uint64_t base, double wp_m, double wp_off,
                     const double* cm, const double* lik, double* out,
                     double* row_max) {
  for (int c = 0; c < rows; ++c) {
    const int question = candidates[c];
    const double* cur = qc + static_cast<size_t>(question) * 2;
    const double r0 = cur[0];
    const double r1 = cur[1];
    double d0;
    double d1;
    if (cm == nullptr) {
      d0 = wp_m * r0 + wp_off * (1.0 - r0);
      d1 = wp_m * r1 + wp_off * (1.0 - r1);
    } else {
      // Ascending-truth accumulation, cm row-major [truth][answered].
      d0 = cm[0] * r0 + cm[2] * r1;
      d1 = cm[1] * r0 + cm[3] * r1;
    }
    const double total = d0 + d1;
    QASCA_DCHECK_GT(total, 0.0) << "all sampling weights are zero";
    const double target = VariateFor(base, question) * total;
    int sampled;
    if (target < d0) {
      sampled = 0;
    } else if (target < total) {  // cumulative after lane 1 == d0 + d1
      sampled = 1;
    } else {
      sampled = d1 > 0.0 ? 1 : (d0 > 0.0 ? 0 : 1);
    }
    const double* ls = lik + static_cast<size_t>(sampled) * 2;
    const double w0 = r0 * ls[0];
    const double w1 = r1 * ls[1];
    const double norm = w0 + w1;
    double* o = out + static_cast<size_t>(c) * 2;
    double o0;
    double o1;
    if (norm <= 0.0) {
      o0 = 0.5;  // NormalizeRowInPlace's uniform fallback, 1.0 / n
      o1 = 0.5;
    } else {
      o0 = w0 / norm;
      o1 = w1 / norm;
    }
    o[0] = o0;
    o[1] = o1;
    if (row_max != nullptr) row_max[c] = o0 < o1 ? o1 : o0;
  }
}

}  // namespace

void SampledQwRows(const double* qc, int l, const int* candidates, int rows,
                   uint64_t base, double wp_m, double wp_off,
                   const double* cm, const double* likelihoods, double* out,
                   double* row_max, double* dist_scratch) {
  if (l == 2) {
    SampledQwRowsL2(qc, candidates, rows, base, wp_m, wp_off, cm, likelihoods,
                    out, row_max);
    return;
  }
  // General shape: compose the active table's kernels through one hoisted
  // pointer — the same per-row sequence the unfused overlay scan ran, with
  // the dispatch resolved once per chunk instead of four times per row.
  const KernelTable& t = *ActiveDispatch().table;
  for (int c = 0; c < rows; ++c) {
    const int question = candidates[c];
    const double* cur = qc + static_cast<size_t>(question) * l;
    if (cm == nullptr) {
      t.wp_answer_distribution(cur, l, wp_m, wp_off, dist_scratch);
    } else {
      t.cm_answer_distribution(cm, cur, l, dist_scratch);
    }
    const int sampled =
        SampleDistributionAt(dist_scratch, l, VariateFor(base, question));
    double* o = out + static_cast<size_t>(c) * l;
    t.mul_row(o, cur, likelihoods + static_cast<size_t>(sampled) * l, l);
    const double norm = t.row_sum(o, l);
    if (norm <= 0.0) {
      for (int j = 0; j < l; ++j) o[j] = 1.0 / static_cast<double>(l);
    } else {
      t.div_row(o, l, norm);
    }
    if (row_max != nullptr) row_max[c] = t.row_max(o, l);
  }
}

}  // namespace qasca::kernels
