#include "model/posterior.h"

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "model/prior.h"

namespace qasca {
namespace {

WorkerModelLookup MakeLookup(
    const std::unordered_map<WorkerId, WorkerModel>& models) {
  return [&models](WorkerId worker) -> const WorkerModel& {
    return models.at(worker);
  };
}

TEST(PosteriorTest, NoAnswersReturnsPrior) {
  std::unordered_map<WorkerId, WorkerModel> models;
  std::vector<double> prior = {0.7, 0.3};
  std::vector<double> row =
      ComputePosteriorRow({}, prior, MakeLookup(models));
  EXPECT_DOUBLE_EQ(row[0], 0.7);
  EXPECT_DOUBLE_EQ(row[1], 0.3);
}

TEST(PosteriorTest, PaperExample6) {
  // Example 6: three labels, D2 = {(w1, L3), (w2, L1)}, m_w1 = 0.7,
  // m_w2 = 0.6, uniform prior -> Qc2 = [0.346, 0.115, 0.539].
  std::unordered_map<WorkerId, WorkerModel> models;
  models.emplace(1, WorkerModel::Wp(0.7, 3));
  models.emplace(2, WorkerModel::Wp(0.6, 3));
  AnswerList answers = {{1, 2}, {2, 0}};  // 0-based labels
  std::vector<double> row =
      ComputePosteriorRow(answers, UniformPrior(3), MakeLookup(models));
  EXPECT_NEAR(row[0], 0.346, 1e-3);
  EXPECT_NEAR(row[1], 0.115, 1e-3);
  EXPECT_NEAR(row[2], 0.539, 1e-3);
}

TEST(PosteriorTest, AgreeingAnswersSharpenBelief) {
  std::unordered_map<WorkerId, WorkerModel> models;
  models.emplace(1, WorkerModel::Wp(0.8, 2));
  std::vector<double> prior = UniformPrior(2);
  std::vector<double> one =
      ComputePosteriorRow({{1, 0}}, prior, MakeLookup(models));
  models.emplace(2, WorkerModel::Wp(0.8, 2));
  std::vector<double> two =
      ComputePosteriorRow({{1, 0}, {2, 0}}, prior, MakeLookup(models));
  EXPECT_GT(one[0], 0.5);
  EXPECT_GT(two[0], one[0]);
}

TEST(PosteriorTest, ContradictoryEqualWorkersCancelOut) {
  std::unordered_map<WorkerId, WorkerModel> models;
  models.emplace(1, WorkerModel::Wp(0.8, 2));
  models.emplace(2, WorkerModel::Wp(0.8, 2));
  std::vector<double> row = ComputePosteriorRow(
      {{1, 0}, {2, 1}}, UniformPrior(2), MakeLookup(models));
  EXPECT_NEAR(row[0], 0.5, 1e-12);
}

TEST(PosteriorTest, PriorTiltsResult) {
  std::unordered_map<WorkerId, WorkerModel> models;
  models.emplace(1, WorkerModel::Wp(0.8, 2));
  std::vector<double> skewed = {0.9, 0.1};
  std::vector<double> row =
      ComputePosteriorRow({{1, 1}}, skewed, MakeLookup(models));
  // One answer for label 1 against a strong prior for label 0:
  // 0.9*0.2 : 0.1*0.8 = 0.18 : 0.08.
  EXPECT_NEAR(row[0], 0.18 / 0.26, 1e-12);
}

TEST(PosteriorTest, DegenerateContradictionFallsBackToUniform) {
  // Two perfect workers disagree: all weights vanish; the row must stay a
  // valid distribution rather than abort.
  std::unordered_map<WorkerId, WorkerModel> models;
  models.emplace(1, WorkerModel::PerfectWp(2));
  models.emplace(2, WorkerModel::PerfectWp(2));
  std::vector<double> row = ComputePosteriorRow(
      {{1, 0}, {2, 1}}, UniformPrior(2), MakeLookup(models));
  EXPECT_NEAR(row[0], 0.5, 1e-12);
  EXPECT_NEAR(row[1], 0.5, 1e-12);
}

TEST(PosteriorTest, CurrentDistributionCoversAllQuestions) {
  std::unordered_map<WorkerId, WorkerModel> models;
  models.emplace(1, WorkerModel::Wp(0.9, 2));
  AnswerSet answers(3);
  answers[0] = {{1, 0}};
  answers[2] = {{1, 1}};
  DistributionMatrix qc =
      ComputeCurrentDistribution(answers, UniformPrior(2), MakeLookup(models));
  EXPECT_GT(qc.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(qc.At(1, 0), 0.5);  // unanswered -> prior
  EXPECT_GT(qc.At(2, 1), 0.5);
  EXPECT_TRUE(qc.IsNormalized());
}

TEST(PosteriorTest, PaperExample7SampledRow) {
  // Example 7: Qc1 = [0.8, 0.2], WP m = 0.75. If the sampled answer is L1
  // the row becomes [0.923, 0.077]; if L2, [0.571, 0.429] — and L1 is
  // sampled with probability 0.65 (Eq. 17).
  util::Rng rng(7);
  WorkerModel model = WorkerModel::Wp(0.75, 2);
  std::vector<double> current = {0.8, 0.2};
  int high = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> row =
        EstimateWorkerRow(current, model, QwMode::kSampled, rng);
    if (row[0] > 0.9) {
      EXPECT_NEAR(row[0], 12.0 / 13.0, 1e-9);  // 0.923
      ++high;
    } else {
      EXPECT_NEAR(row[0], 4.0 / 7.0, 1e-9);  // 0.571
    }
  }
  EXPECT_NEAR(high / static_cast<double>(trials), 0.65, 0.01);
}

TEST(PosteriorTest, ExpectedModeIsDeterministicMixture) {
  util::Rng rng(8);
  WorkerModel model = WorkerModel::Wp(0.75, 2);
  std::vector<double> current = {0.8, 0.2};
  std::vector<double> row =
      EstimateWorkerRow(current, model, QwMode::kExpected, rng);
  // 0.65 * [0.923, 0.077] + 0.35 * [0.571, 0.429].
  EXPECT_NEAR(row[0], 0.65 * (12.0 / 13.0) + 0.35 * (4.0 / 7.0), 1e-9);
  // Deterministic: a second call gives the same row.
  std::vector<double> again =
      EstimateWorkerRow(current, model, QwMode::kExpected, rng);
  EXPECT_DOUBLE_EQ(row[0], again[0]);
}

TEST(PosteriorTest, PerfectWorkerYieldsOneHotRow) {
  util::Rng rng(9);
  WorkerModel model = WorkerModel::PerfectWp(2);
  std::vector<double> current = {0.8, 0.2};
  std::vector<double> row =
      EstimateWorkerRow(current, model, QwMode::kSampled, rng);
  EXPECT_TRUE((row[0] == 1.0 && row[1] == 0.0) ||
              (row[0] == 0.0 && row[1] == 1.0));
}

TEST(PosteriorTest, WpFastPathMatchesExpandedCm) {
  // EstimateWorkerRow special-cases WP models with a closed-form answer
  // distribution; it must agree with the generic CM path on the expanded
  // matrix. kExpected mode makes the comparison deterministic.
  util::Rng rng(20);
  for (int num_labels : {2, 3, 7}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> weights(num_labels);
      for (double& w : weights) w = rng.Uniform(0.01, 1.0);
      double total = 0.0;
      for (double w : weights) total += w;
      for (double& w : weights) w /= total;

      double m = rng.Uniform(0.3, 0.95);
      WorkerModel wp = WorkerModel::Wp(m, num_labels);
      WorkerModel cm = WorkerModel::Cm(wp.AsConfusionMatrix(), num_labels);
      std::vector<double> via_wp =
          EstimateWorkerRow(weights, wp, QwMode::kExpected, rng);
      std::vector<double> via_cm =
          EstimateWorkerRow(weights, cm, QwMode::kExpected, rng);
      for (int j = 0; j < num_labels; ++j) {
        EXPECT_NEAR(via_wp[j], via_cm[j], 1e-12)
            << "l=" << num_labels << " j=" << j;
      }
    }
  }
}

TEST(PosteriorTest, EstimateWorkerDistributionOnlyTouchesCandidates) {
  util::Rng rng(10);
  DistributionMatrix qc(4, 2);
  qc.SetRow(0, std::vector<double>{0.9, 0.1});
  qc.SetRow(1, std::vector<double>{0.3, 0.7});
  WorkerModel model = WorkerModel::Wp(0.75, 2);
  DistributionMatrix qw =
      EstimateWorkerDistribution(qc, model, {1, 3}, QwMode::kSampled, rng);
  EXPECT_DOUBLE_EQ(qw.At(0, 0), 0.9);  // untouched
  EXPECT_NE(qw.At(1, 0), 0.3);         // conditioned
  EXPECT_TRUE(qw.IsNormalized());
}

}  // namespace
}  // namespace qasca
