#ifndef QASCA_UTIL_ATTRIBUTES_H_
#define QASCA_UTIL_ATTRIBUTES_H_

/// QASCA_NODISCARD marks types and functions whose return value *is* the
/// error channel: dropping it converts a reportable failure into silent
/// corruption (DESIGN.md §7). It decorates util::Status / util::StatusOr
/// themselves plus the Status-returning platform APIs, so the compiler
/// flags a discarded result at every call site the build sees; the
/// analyzer's status-discard pass covers what the attribute cannot
/// (macro expansions, configurations compiled out). Discard deliberately
/// with `(void)Expr();` and a comment saying why the failure is ignorable.
#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(nodiscard) >= 201603L
#define QASCA_NODISCARD [[nodiscard]]
#endif
#endif
#ifndef QASCA_NODISCARD
#define QASCA_NODISCARD
#endif

#endif  // QASCA_UTIL_ATTRIBUTES_H_
