#ifndef QASCA_BASELINES_ASKIT_H_
#define QASCA_BASELINES_ASKIT_H_

#include <string>
#include <vector>

#include "platform/strategy.h"

namespace qasca {

/// AskIt! (Boim et al., ICDE 2012 [3]) as characterised in Section 6.2.1:
/// an entropy-like uncertainty measure ranks the questions, and the HIT is
/// filled with the k most uncertain ones. Uncertainty of question i is the
/// Shannon entropy of its current distribution Qc_i.
class AskItStrategy final : public AssignmentStrategy {
 public:
  std::string name() const override { return "AskIt!"; }

  std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) override;
};

}  // namespace qasca

#endif  // QASCA_BASELINES_ASKIT_H_
