#ifndef QASCA_BENCH_BENCH_UTIL_H_
#define QASCA_BENCH_BENCH_UTIL_H_

#include <vector>

#include "core/distribution_matrix.h"
#include "core/types.h"
#include "util/rng.h"

namespace qasca::bench {

/// Random n-by-2 distribution matrix with target probabilities uniform in
/// [0,1] — the paper's simulated-data generator for F-score experiments
/// (Section 6.1.1).
DistributionMatrix RandomBinaryMatrix(int n, util::Rng& rng);

/// Random n-by-l matrix with rows drawn uniformly and normalised — the
/// paper's generator for Accuracy experiments.
DistributionMatrix RandomMatrix(int n, int num_labels, util::Rng& rng);

/// Uniformly random result vector over {0, 1}.
ResultVector RandomBinaryResult(int n, util::Rng& rng);

/// Random estimated matrix Qw derived from Qc by sampling a worker answer
/// per question under a random confusion matrix and conditioning (Eq. 18) —
/// the paper's Qw generator for the Figure 4 assignment experiments.
DistributionMatrix DeriveEstimatedMatrix(const DistributionMatrix& current,
                                         util::Rng& rng);

}  // namespace qasca::bench

#endif  // QASCA_BENCH_BENCH_UTIL_H_
