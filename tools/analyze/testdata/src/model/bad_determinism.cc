// determinism fixture: hardware randomness, wall-clock reads and
// unordered-container iteration in decision code must all fire; the
// sorted-view iteration and the allow'd call must not. The raw `total +=`
// folds double as float-determinism firings — this file is model code, so
// both order-sensitivity passes see it.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <unordered_map>
#include <vector>

int HardwareDraw() {
  return rand();  // analyze:expect(determinism)
}

long WallClockNs() {
  auto now = std::chrono::system_clock::now();  // analyze:expect(determinism)
  return now.time_since_epoch().count();
}

double UnorderedFold() {
  std::unordered_map<int, double> weights;
  double total = 0.0;
  for (const auto& [key, value] : weights) {  // analyze:expect(determinism)
    total += value;  // analyze:expect(float-determinism)
  }
  return total;
}

double SortedFold() {
  std::unordered_map<int, double> weights;
  std::vector<std::pair<int, double>> ordered(weights.begin(), weights.end());
  std::sort(ordered.begin(), ordered.end());
  double total = 0.0;
  for (const auto& [key, value] : ordered) {
    total += value;  // analyze:expect(float-determinism)
  }
  return total;
}

int AllowedDraw() {
  return rand();  // analyze:allow(determinism)
}
