// invariants suppression fixture: the same unvalidated mutation as
// bad_rows.cc, silenced by an analyze:allow comment on the finding line.

#include <vector>

void MutateAllowed(DistributionMatrix& matrix,
                   const std::vector<double>& row) {
  matrix.SetRow(0, row);  // analyze:allow(invariants)
}
