#include "simulation/simulated_worker.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(SimulatedWorkerTest, PerfectWorkerAlwaysAnswersTruth) {
  util::Rng rng(1);
  SimulatedWorker worker{0, WorkerModel::PerfectWp(3)};
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(worker.AnswerQuestion(2, rng), 2);
  }
}

TEST(SimulatedWorkerTest, AnswerFrequencyMatchesLatentModel) {
  util::Rng rng(2);
  SimulatedWorker worker{0, WorkerModel::Wp(0.7, 2)};
  int correct = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (worker.AnswerQuestion(0, rng) == 0) ++correct;
  }
  EXPECT_NEAR(correct / static_cast<double>(trials), 0.7, 0.01);
}

TEST(GenerateWorkerPoolTest, PoolHasRequestedShape) {
  util::Rng rng(3);
  WorkerPoolSpec spec;
  spec.num_workers = 25;
  spec.num_labels = 3;
  std::vector<SimulatedWorker> pool = GenerateWorkerPool(spec, rng);
  ASSERT_EQ(pool.size(), 25u);
  for (size_t w = 0; w < pool.size(); ++w) {
    EXPECT_EQ(pool[w].id, static_cast<WorkerId>(w));
    EXPECT_EQ(pool[w].latent.num_labels(), 3);
  }
}

TEST(GenerateWorkerPoolTest, RowsAreValidDistributions) {
  util::Rng rng(4);
  WorkerPoolSpec spec;
  spec.num_workers = 10;
  spec.num_labels = 4;
  spec.adjacent_confusion_bias = 0.5;
  spec.label_difficulty = {-0.1, 0.0, 0.05, 0.1};
  for (const SimulatedWorker& worker : GenerateWorkerPool(spec, rng)) {
    std::vector<double> cm = worker.latent.AsConfusionMatrix();
    for (int truth = 0; truth < 4; ++truth) {
      double total = 0.0;
      for (int a = 0; a < 4; ++a) {
        double p = cm[static_cast<size_t>(truth) * 4 + a];
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(GenerateWorkerPoolTest, MeanAccuracyNearSpec) {
  util::Rng rng(5);
  WorkerPoolSpec spec;
  spec.num_workers = 400;
  spec.num_labels = 2;
  spec.mean_accuracy = 0.8;
  spec.accuracy_stddev = 0.05;
  double total = 0.0;
  for (const SimulatedWorker& worker : GenerateWorkerPool(spec, rng)) {
    std::vector<double> cm = worker.latent.AsConfusionMatrix();
    total += (cm[0] + cm[3]) / 2.0;
  }
  EXPECT_NEAR(total / 400.0, 0.8, 0.02);
}

TEST(GenerateWorkerPoolTest, LabelDifficultyCreatesAsymmetry) {
  util::Rng rng(6);
  WorkerPoolSpec spec;
  spec.num_workers = 200;
  spec.num_labels = 2;
  spec.mean_accuracy = 0.78;
  spec.label_difficulty = {-0.10, +0.06};  // ER-style: label 0 harder
  double diag0 = 0.0;
  double diag1 = 0.0;
  for (const SimulatedWorker& worker : GenerateWorkerPool(spec, rng)) {
    std::vector<double> cm = worker.latent.AsConfusionMatrix();
    diag0 += cm[0];
    diag1 += cm[3];
  }
  EXPECT_LT(diag0 / 200.0 + 0.1, diag1 / 200.0);
}

TEST(GenerateWorkerPoolTest, AdjacentBiasShapesConfusions) {
  util::Rng rng(7);
  WorkerPoolSpec spec;
  spec.num_workers = 100;
  spec.num_labels = 3;
  spec.mean_accuracy = 0.7;
  spec.adjacent_confusion_bias = 0.6;
  double adjacent = 0.0;
  double far = 0.0;
  for (const SimulatedWorker& worker : GenerateWorkerPool(spec, rng)) {
    std::vector<double> cm = worker.latent.AsConfusionMatrix();
    adjacent += cm[0 * 3 + 1];  // truth "positive", answered "neutral"
    far += cm[0 * 3 + 2];       // truth "positive", answered "negative"
  }
  EXPECT_GT(adjacent, 2.0 * far);
}

TEST(GenerateWorkerPoolTest, DeterministicGivenSeed) {
  WorkerPoolSpec spec;
  spec.num_workers = 5;
  util::Rng rng_a(8);
  util::Rng rng_b(8);
  auto pool_a = GenerateWorkerPool(spec, rng_a);
  auto pool_b = GenerateWorkerPool(spec, rng_b);
  for (int w = 0; w < 5; ++w) {
    EXPECT_DOUBLE_EQ(pool_a[w].latent.AnswerProbability(0, 0),
                     pool_b[w].latent.AnswerProbability(0, 0));
  }
}

}  // namespace
}  // namespace qasca
