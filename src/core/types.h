#ifndef QASCA_CORE_TYPES_H_
#define QASCA_CORE_TYPES_H_

#include <vector>

namespace qasca {

/// Index of a question in the pool, in [0, n). The paper writes questions
/// q_1..q_n (1-based); the library is 0-based throughout.
using QuestionIndex = int;

/// Index of a label, in [0, l). The paper writes labels L_1..L_l; label 0 here
/// corresponds to L_1, which is the *target label* in F-score applications.
using LabelIndex = int;

/// A result vector R = [r_1..r_n]: the label returned for each question.
using ResultVector = std::vector<LabelIndex>;

/// A ground-truth vector T = [t_1..t_n]: the true label of each question.
using GroundTruthVector = std::vector<LabelIndex>;

/// An assignment vector X = [x_1..x_n]: x_i == 1 iff question i is placed in
/// the HIT under construction (Definition 1).
using AssignmentVector = std::vector<unsigned char>;

/// Identifier of a worker on the (simulated) crowdsourcing platform.
using WorkerId = int;

/// One crowd answer: worker `worker` answered with label `label`. The tuple
/// (w, j) of the paper's answer set D_i.
struct Answer {
  WorkerId worker = 0;
  LabelIndex label = 0;

  friend bool operator==(const Answer&, const Answer&) = default;
};

/// All answers collected so far for one question (the paper's D_i).
using AnswerList = std::vector<Answer>;

/// Answers for every question (the paper's D = {D_1..D_n}), indexed by
/// question.
using AnswerSet = std::vector<AnswerList>;

}  // namespace qasca

#endif  // QASCA_CORE_TYPES_H_
