#include "platform/engine.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/random_strategy.h"
#include "platform/qasca_strategy.h"

namespace qasca {
namespace {

AppConfig SmallConfig() {
  AppConfig config;
  config.name = "test";
  config.num_questions = 12;
  config.num_labels = 2;
  config.questions_per_hit = 3;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 8;  // 8 HITs
  config.metric = MetricSpec::Accuracy();
  config.em.max_iterations = 10;
  return config;
}

std::unique_ptr<TaskAssignmentEngine> MakeEngine(
    AppConfig config = SmallConfig()) {
  return std::make_unique<TaskAssignmentEngine>(
      std::move(config), std::make_unique<QascaStrategy>(), /*seed=*/1);
}

TEST(EngineTest, RequestReturnsKDistinctQuestions) {
  auto engine = MakeEngine();
  auto hit = engine->RequestHit(1);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->size(), 3u);
  std::set<QuestionIndex> unique(hit->begin(), hit->end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(EngineTest, SameWorkerNeverSeesSameQuestionTwice) {
  auto engine = MakeEngine();
  std::set<QuestionIndex> seen;
  for (int round = 0; round < 4; ++round) {
    auto hit = engine->RequestHit(1);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    for (QuestionIndex q : *hit) {
      EXPECT_TRUE(seen.insert(q).second) << "duplicate question " << q;
    }
    ASSERT_TRUE(engine->CompleteHit(1, {0, 0, 0}).ok());
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(EngineTest, WorkerPoolExhaustionReturnsNotFound) {
  auto engine = MakeEngine();
  for (int round = 0; round < 4; ++round) {
    auto hit = engine->RequestHit(1);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(engine->CompleteHit(1, {0, 0, 0}).ok());
  }
  // All 12 questions assigned to worker 1; a 5th request must fail.
  auto hit = engine->RequestHit(1);
  EXPECT_EQ(hit.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineTest, OpenHitBlocksSecondRequest) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->RequestHit(1).ok());
  auto second = engine->RequestHit(1);
  EXPECT_EQ(second.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(EngineTest, CompleteWithoutOpenHitFails) {
  auto engine = MakeEngine();
  util::Status status = engine->CompleteHit(1, {0, 0, 0});
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(EngineTest, CompleteWithWrongAnswerCountFails) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->RequestHit(1).ok());
  util::Status status = engine->CompleteHit(1, {0, 0});
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineTest, CompleteWithBadLabelFails) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->RequestHit(1).ok());
  util::Status status = engine->CompleteHit(1, {0, 0, 5});
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineTest, BudgetExhaustionStopsAssignment) {
  auto engine = MakeEngine();
  for (int round = 0; round < 8; ++round) {
    WorkerId worker = round % 4;
    auto hit = engine->RequestHit(worker);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ASSERT_TRUE(engine->CompleteHit(worker, {0, 1, 0}).ok());
  }
  EXPECT_TRUE(engine->BudgetExhausted());
  auto hit = engine->RequestHit(9);
  EXPECT_EQ(hit.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(EngineTest, CompletionUpdatesAnswersAndParameters) {
  auto engine = MakeEngine();
  auto hit = engine->RequestHit(1);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(engine->CompleteHit(1, {1, 1, 1}).ok());
  EXPECT_EQ(engine->completed_hits(), 1);
  int total_answers = 0;
  for (const auto& list : engine->database().answers()) {
    total_answers += static_cast<int>(list.size());
  }
  EXPECT_EQ(total_answers, 3);
  // The worker has a fitted model now.
  EXPECT_TRUE(engine->database().parameters().workers.contains(1));
}

TEST(EngineTest, UnanimousAnswersMoveResults) {
  auto engine = MakeEngine();
  // Three workers all answer label 1 on their HITs.
  for (WorkerId w : {1, 2, 3}) {
    auto hit = engine->RequestHit(w);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(engine->CompleteHit(w, {1, 1, 1}).ok());
  }
  ResultVector results = engine->CurrentResults();
  int label_one = 0;
  for (LabelIndex r : results) label_one += r == 1 ? 1 : 0;
  EXPECT_GE(label_one, 3);  // at least the answered questions
}

TEST(EngineTest, TracksAssignmentTimes) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->RequestHit(1).ok());
  EXPECT_GE(engine->last_assignment_seconds(), 0.0);
  EXPECT_GE(engine->max_assignment_seconds(),
            engine->last_assignment_seconds());
}

TEST(EngineTest, QualityAgainstTruthUsesMetric) {
  auto engine = MakeEngine();
  GroundTruthVector truth(12, 0);
  double quality = engine->QualityAgainstTruth(truth);
  EXPECT_GE(quality, 0.0);
  EXPECT_LE(quality, 1.0);
}

TEST(EngineTest, FScoreMetricEngineRuns) {
  AppConfig config = SmallConfig();
  config.metric = MetricSpec::FScore(0.75, 0);
  auto engine = MakeEngine(config);
  for (int round = 0; round < 4; ++round) {
    WorkerId worker = round;
    auto hit = engine->RequestHit(worker);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ASSERT_TRUE(engine->CompleteHit(worker, {0, 1, 0}).ok());
  }
  EXPECT_EQ(engine->completed_hits(), 4);
}

TEST(EngineTest, CostAccuracyMetricEngineRuns) {
  AppConfig config = SmallConfig();
  config.metric = MetricSpec::CostAccuracy({0.0, 4.0, 1.0, 0.0});
  ASSERT_TRUE(config.Validate().ok());
  auto engine = MakeEngine(config);
  for (int round = 0; round < 4; ++round) {
    auto hit = engine->RequestHit(round);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ASSERT_TRUE(engine->CompleteHit(round, {0, 1, 0}).ok());
  }
  EXPECT_EQ(engine->completed_hits(), 4);
  // The engine's result inference uses the cost-optimal rule.
  ResultVector results = engine->CurrentResults();
  EXPECT_EQ(results.size(), 12u);
}

TEST(EngineTest, CostAccuracyConfigValidation) {
  AppConfig config = SmallConfig();
  config.metric = MetricSpec::CostAccuracy({0.0, 1.0});  // wrong shape
  EXPECT_FALSE(config.Validate().ok());
  config.metric = MetricSpec::CostAccuracy({0.5, 1.0, 1.0, 0.0});  // diagonal
  EXPECT_FALSE(config.Validate().ok());
  config.metric = MetricSpec::CostAccuracy({0.0, -1.0, 1.0, 0.0});  // negative
  EXPECT_FALSE(config.Validate().ok());
  config.metric = MetricSpec::CostAccuracy({0.0, 0.0, 0.0, 0.0});  // all zero
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EngineTest, WarmStartEmOptionRuns) {
  AppConfig config = SmallConfig();
  config.warm_start_em = true;
  auto engine = MakeEngine(config);
  for (int round = 0; round < 4; ++round) {
    auto hit = engine->RequestHit(round);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ASSERT_TRUE(engine->CompleteHit(round, {0, 1, 0}).ok());
  }
  EXPECT_EQ(engine->completed_hits(), 4);
  EXPECT_TRUE(engine->database().current().IsNormalized(1e-9));
}

TEST(EngineTest, RandomStrategyEngineRuns) {
  TaskAssignmentEngine engine(SmallConfig(),
                              std::make_unique<RandomStrategy>(), 3);
  auto hit = engine.RequestHit(0);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(engine.CompleteHit(0, {0, 1, 1}).ok());
}

TEST(EngineDeathTest, InvalidConfigAborts) {
  AppConfig config = SmallConfig();
  config.num_questions = 0;
  // The Database member aborts on the zero question count before the
  // config-validation check runs; either way construction must die.
  EXPECT_DEATH(TaskAssignmentEngine(config, std::make_unique<QascaStrategy>(),
                                    1),
               "Check failed");
}

}  // namespace
}  // namespace qasca
