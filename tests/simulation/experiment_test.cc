#include "simulation/experiment.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

// A small application so the parallel harness runs in well under a second.
ApplicationSpec TinyApp() {
  ApplicationSpec spec;
  spec.name = "tiny";
  spec.num_questions = 40;
  spec.num_labels = 2;
  spec.truth_prior = {0.5, 0.5};
  spec.metric = MetricSpec::Accuracy();
  spec.questions_per_hit = 4;
  spec.answers_per_question = 3;
  spec.workers.num_workers = 12;
  spec.workers.num_labels = 2;
  spec.workers.mean_accuracy = 0.8;
  return spec;
}

TEST(ExperimentTest, DefaultSystemsArePaperSixInOrder) {
  std::vector<SystemFactory> systems = DefaultSystems();
  ASSERT_EQ(systems.size(), 6u);
  EXPECT_EQ(systems[0].name, "Baseline");
  EXPECT_EQ(systems[1].name, "CDAS");
  EXPECT_EQ(systems[2].name, "AskIt!");
  EXPECT_EQ(systems[3].name, "QASCA");
  EXPECT_EQ(systems[4].name, "MaxMargin");
  EXPECT_EQ(systems[5].name, "ExpLoss");
  for (const SystemFactory& factory : systems) {
    auto strategy = factory.make();
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), factory.name);
  }
}

TEST(ExperimentTest, TracesCoverTheFullHitAxis) {
  ApplicationSpec spec = TinyApp();
  ExperimentOptions options;
  options.seed = 7;
  options.checkpoints = 5;
  std::vector<SystemFactory> systems = {DefaultSystems()[0],
                                        DefaultSystems()[3]};
  ExperimentResult result = RunParallelExperiment(spec, systems, options);

  ASSERT_EQ(result.systems.size(), 2u);
  for (const SystemTrace& trace : result.systems) {
    ASSERT_FALSE(trace.completed_hits.empty());
    EXPECT_EQ(trace.completed_hits.front(), 0);
    EXPECT_EQ(trace.completed_hits.back(), spec.TotalHits());
    EXPECT_EQ(trace.completed_hits.size(), trace.quality.size());
    for (double q : trace.quality) {
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
    EXPECT_DOUBLE_EQ(trace.final_quality, trace.quality.back());
  }
}

TEST(ExperimentTest, QualityImprovesOverTime) {
  ApplicationSpec spec = TinyApp();
  ExperimentOptions options;
  options.seed = 11;
  std::vector<SystemFactory> systems = {DefaultSystems()[3]};  // QASCA
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  const SystemTrace& trace = result.systems[0];
  // Final quality should be well above the ~0.5 uninformed start. (At this
  // tiny scale — 40 questions, 12 workers — sampling noise is large, so the
  // bound is deliberately loose; the benches exercise paper scale.)
  EXPECT_GT(trace.final_quality, trace.quality.front() + 0.1);
  EXPECT_GT(trace.final_quality, 0.65);
}

TEST(ExperimentTest, DeterministicUnderSameSeed) {
  ApplicationSpec spec = TinyApp();
  ExperimentOptions options;
  options.seed = 13;
  std::vector<SystemFactory> systems = {DefaultSystems()[0]};
  ExperimentResult a = RunParallelExperiment(spec, systems, options);
  ExperimentResult b = RunParallelExperiment(spec, systems, options);
  EXPECT_EQ(a.truth, b.truth);
  EXPECT_EQ(a.systems[0].quality, b.systems[0].quality);
}

TEST(ExperimentTest, EstimationDeviationShrinks) {
  ApplicationSpec spec = TinyApp();
  ExperimentOptions options;
  options.seed = 17;
  options.checkpoints = 6;
  std::vector<SystemFactory> systems = {DefaultSystems()[0]};
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  const std::vector<double>& dev = result.systems[0].estimation_deviation;
  ASSERT_GE(dev.size(), 3u);
  // Deviation at the end is below the first *fitted* checkpoint (index 1;
  // index 0 has no fitted workers yet and reports 0).
  EXPECT_LT(dev.back(), dev[1] + 1e-9);
}

TEST(ExperimentTest, FScoreAppReportsSelectionGain) {
  ApplicationSpec spec = TinyApp();
  spec.metric = MetricSpec::FScore(0.25, 0);
  spec.truth_prior = {0.3, 0.7};
  ExperimentOptions options;
  options.seed = 19;
  std::vector<SystemFactory> systems = {DefaultSystems()[0]};
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  // Recall-heavy alpha benefits from optimal result selection; the gain is
  // at least non-negative on average.
  EXPECT_GE(result.systems[0].result_selection_gain, -0.02);
}

TEST(ExperimentTest, AccuracyAppHasZeroSelectionGain) {
  ApplicationSpec spec = TinyApp();
  ExperimentOptions options;
  options.seed = 23;
  std::vector<SystemFactory> systems = {DefaultSystems()[0]};
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  EXPECT_DOUBLE_EQ(result.systems[0].result_selection_gain, 0.0);
}

}  // namespace
}  // namespace qasca
