#include "core/assignment/brute_force.h"

#include <vector>

#include "util/logging.h"

namespace qasca {
namespace {

// Invokes `visit` with every size-k combination of `candidates`.
template <typename Visitor>
void ForEachCombination(const std::vector<QuestionIndex>& candidates, int k,
                        Visitor visit) {
  std::vector<QuestionIndex> combination(k);
  std::vector<int> cursor(k);
  for (int c = 0; c < k; ++c) cursor[c] = c;
  const int n = static_cast<int>(candidates.size());
  while (true) {
    for (int c = 0; c < k; ++c) combination[c] = candidates[cursor[c]];
    visit(combination);
    int c = k - 1;
    while (c >= 0 && cursor[c] == n - k + c) --c;
    if (c < 0) return;
    ++cursor[c];
    for (int d = c + 1; d < k; ++d) cursor[d] = cursor[d - 1] + 1;
  }
}

}  // namespace

AssignmentResult AssignBruteForce(const AssignmentRequest& request,
                                  const EvaluationMetric& metric) {
  ValidateRequest(request);
  AssignmentResult best;
  best.objective = -1.0;
  ForEachCombination(
      request.candidates, request.k,
      [&](const std::vector<QuestionIndex>& combination) {
        DistributionMatrix qx = BuildAssignmentMatrix(request, combination);
        double quality = metric.Quality(qx);
        ++best.outer_iterations;  // Repurposed as the enumeration count.
        if (quality > best.objective) {
          best.objective = quality;
          best.selected = combination;
        }
      });
  return best;
}

}  // namespace qasca
