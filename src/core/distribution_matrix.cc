#include "core/distribution_matrix.h"

#include <cmath>

#include "util/fold.h"
#include "util/invariants.h"

namespace qasca {

DistributionMatrix::DistributionMatrix(int num_questions, int num_labels)
    : num_questions_(num_questions),
      num_labels_(num_labels),
      cells_(static_cast<size_t>(num_questions) * num_labels,
             num_labels > 0 ? 1.0 / num_labels : 0.0) {
  QASCA_CHECK_GE(num_questions, 0);
  QASCA_CHECK_GT(num_labels, 0);
}

void DistributionMatrix::SetRow(QuestionIndex i,
                                std::span<const double> distribution) {
  QASCA_CHECK_GE(i, 0);
  QASCA_CHECK_LT(i, num_questions_);
  QASCA_CHECK_EQ(static_cast<int>(distribution.size()), num_labels_);
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(distribution));
  double* row = cells_.data() + static_cast<size_t>(i) * num_labels_;
  for (int j = 0; j < num_labels_; ++j) row[j] = distribution[j];
}

void DistributionMatrix::SetRowNormalized(QuestionIndex i,
                                          std::span<const double> weights) {
  QASCA_CHECK_GE(i, 0);
  QASCA_CHECK_LT(i, num_questions_);
  QASCA_CHECK_EQ(static_cast<int>(weights.size()), num_labels_);
  const double total = util::DeterministicSum(
      0, static_cast<int>(weights.size()), [&](int j) {
        QASCA_CHECK_GE(weights[j], 0.0) << "negative probability weight";
        return weights[j];
      });
  QASCA_CHECK_GT(total, 0.0) << "all probability weights are zero";
  double* row = cells_.data() + static_cast<size_t>(i) * num_labels_;
  for (int j = 0; j < num_labels_; ++j) row[j] = weights[j] / total;
}

LabelIndex DistributionMatrix::ArgMaxLabel(QuestionIndex i) const noexcept {
  std::span<const double> row = Row(i);
  LabelIndex best = 0;
  for (int j = 1; j < num_labels_; ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

bool DistributionMatrix::IsNormalized(double tolerance) const noexcept {
  for (int i = 0; i < num_questions_; ++i) {
    std::span<const double> row = Row(i);
    for (double p : row) {
      if (p < -tolerance) return false;
    }
    const double total = util::DeterministicSum(
        0, num_labels_, [&](int j) { return row[j]; });
    if (std::fabs(total - 1.0) > tolerance) return false;
  }
  return true;
}

}  // namespace qasca
