#ifndef QASCA_UTIL_BAD_COVERAGE_H_
#define QASCA_UTIL_BAD_COVERAGE_H_

// guarded-by-coverage fixture: a mutex-owning class with an unannotated
// mutable member must fire — both for direct mutex ownership and for
// ownership through an array of nested per-shard cells; annotated, const,
// atomic and allow'd members must not.

#include <atomic>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

class LeakyState {
 public:
  void Touch() {
    qasca::util::MutexLock lock(mu_);
    ++guarded_total_;
  }

 private:
  mutable qasca::util::Mutex mu_;
  int guarded_total_ QASCA_GUARDED_BY(mu_) = 0;
  const std::string label_ = "leaky";
  std::atomic<int> probes_{0};
  int hits_ = 0;  // analyze:expect(guarded-by-coverage)
  int approx_reads_ = 0;  // analyze:allow(guarded-by-coverage) stats probe, torn reads acceptable
};

class PerShardOwner {
 private:
  struct Cell {
    mutable qasca::util::Mutex mu;
    int value QASCA_GUARDED_BY(mu) = 0;
  };

  Cell cells_[4];  // internally synchronized: no contract needed
  int generation_ = 0;  // analyze:expect(guarded-by-coverage)
};

#endif  // QASCA_UTIL_BAD_COVERAGE_H_
