#ifndef QASCA_BASELINES_EXP_LOSS_H_
#define QASCA_BASELINES_EXP_LOSS_H_

#include <string>
#include <vector>

#include "platform/strategy.h"

namespace qasca {

/// ExpLoss (Section 6.2.1): selects the k questions with the highest
/// expected loss min_j sum_{j'} P(t=j') * 1{j != j'} = 1 - max_j Qc_{i,j} —
/// i.e. the questions whose current result is most likely wrong. As the
/// paper notes, inherently ambiguous questions keep a high expected loss
/// forever and soak up assignments, which is why MaxMargin outperforms it.
class ExpLossStrategy final : public AssignmentStrategy {
 public:
  std::string name() const override { return "ExpLoss"; }

  std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) override;
};

}  // namespace qasca

#endif  // QASCA_BASELINES_EXP_LOSS_H_
