#ifndef QASCA_CORE_ASSIGNMENT_ASSIGNMENT_H_
#define QASCA_CORE_ASSIGNMENT_ASSIGNMENT_H_

#include <span>
#include <vector>

#include "core/assignment/qw_overlay.h"
#include "core/distribution_matrix.h"
#include "core/types.h"

namespace qasca::util {
class MetricRegistry;
class ThreadPool;
}  // namespace qasca::util

namespace qasca {

/// Inputs common to every task-assignment call (Definition 1): the current
/// distribution matrix Qc, the estimated distribution matrix Qw for the
/// requesting worker, the worker's candidate set S^w (questions not yet
/// assigned to them), and the HIT size k.
///
/// Rows of `estimated` outside `candidates` are never read.
///
/// Zero-copy form (DESIGN.md §12): when `overlay` is set, only the candidate
/// rows of Qw exist — materialised in the overlay's scratch — and
/// `estimated` points at Qc so non-candidate reads fall through to the
/// current matrix. Algorithms read Qw rows through EstimatedRow(), which
/// resolves overlay-then-fallthrough; both representations hold the same
/// doubles, so selections are bit-identical either way.
struct AssignmentRequest {
  const DistributionMatrix* current = nullptr;    // Qc
  const DistributionMatrix* estimated = nullptr;  // Qw
  /// Optional zero-copy Qw view over `estimated` (candidate rows only).
  const QwOverlay* overlay = nullptr;
  /// The candidate set S^w: distinct question indices, any order.
  std::vector<QuestionIndex> candidates;
  int k = 0;
  /// Optional worker pool for the per-candidate scans (benefit computation,
  /// Dinkelbach numerator/denominator accumulation). nullptr runs serial;
  /// any pool size produces bit-identical selections (fixed-grain chunking,
  /// chunk-ordered reductions — see util/thread_pool.h).
  util::ThreadPool* pool = nullptr;
  /// Optional telemetry registry (stage spans, candidate/iteration
  /// counters); nullptr or disabled records nothing and never influences
  /// the selection.
  util::MetricRegistry* telemetry = nullptr;
  /// Whether the Top-K benefit algorithms should also evaluate the
  /// objective F(Q^X*) (an O(n) row-quality sweep per request on top of
  /// the candidate scan). The serving path only consumes `selected`, so
  /// QascaStrategy turns this off; analysis callers and tests keep the
  /// default and get the exact Eq. 12 value. Never read by
  /// AssignFScoreOnline, whose Dinkelbach iteration computes delta*
  /// (= the objective) as a by-product either way.
  bool compute_objective = true;

  /// Row i of the worker's estimated matrix Qw: the overlay row when one is
  /// attached and holds i, else row i of `estimated`. This is the only way
  /// assignment algorithms read Qw.
  std::span<const double> EstimatedRow(QuestionIndex i) const {
    if (overlay != nullptr && overlay->Contains(i)) return overlay->Row(i);
    return estimated->Row(i);
  }
};

/// Outcome of an assignment: the chosen questions (ascending order) plus the
/// objective value F(Q^{X*}) the optimizer converged to and iteration
/// diagnostics for the efficiency experiments (Figure 4).
struct AssignmentResult {
  std::vector<QuestionIndex> selected;
  /// Per-question selection scores parallel to `selected`: the quantity the
  /// optimizer ranked each chosen question by (Top-K Benefit: the Eq. 12
  /// benefit est_quality - cur_quality; F-score*: the target-label
  /// probability swing Qw[i][t] - Qc[i][t]). Consumed by the decision
  /// provenance records (platform/provenance.h); purely diagnostic, never
  /// read back by the algorithms.
  std::vector<double> selected_scores;
  /// The optimal objective value (Accuracy*(Q^X*, R^X*) or delta* for
  /// F-score*).
  double objective = 0.0;
  /// Outer iterations (the paper's u; 1 for the Accuracy top-k algorithm).
  int outer_iterations = 0;
  /// Total inner Dinkelbach iterations across all Update calls (the paper's
  /// u*v bound; 0 for Accuracy).
  int inner_iterations = 0;
};

/// Builds the assignment distribution matrix Q^X (Eq. 1): rows of `current`
/// with the rows of `selected` questions replaced by the worker's estimated
/// rows.
DistributionMatrix BuildAssignmentMatrix(
    const DistributionMatrix& current, const DistributionMatrix& estimated,
    const std::vector<QuestionIndex>& selected);

/// Request-based form of BuildAssignmentMatrix: estimated rows are read
/// through request.EstimatedRow(), so it works for both the deep-copy and
/// the overlay Qw representations.
DistributionMatrix BuildAssignmentMatrix(
    const AssignmentRequest& request,
    const std::vector<QuestionIndex>& selected);

/// Validates structural invariants of `request` (matching shapes, distinct
/// in-range candidates, 0 < k <= |S^w|). Aborts on violation; assignment
/// entry points call this first.
void ValidateRequest(const AssignmentRequest& request);

}  // namespace qasca

#endif  // QASCA_CORE_ASSIGNMENT_ASSIGNMENT_H_
