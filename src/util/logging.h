#ifndef QASCA_UTIL_LOGGING_H_
#define QASCA_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace qasca::util {

/// Terminates the process after printing `message` with source location.
/// Used by the QASCA_CHECK family for unrecoverable programmer errors;
/// recoverable conditions use util::Status instead.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& message) {
  std::fprintf(stderr, "[QASCA FATAL] %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace internal {

/// Stream-collecting helper so check macros can accept `<< "context"`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "Check failed: " << condition;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    FatalError(file_, line_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qasca::util

/// Aborts with a diagnostic if `condition` is false. Enabled in all build
/// types: these guard API contracts, not internal debugging.
#define QASCA_CHECK(condition)                                       \
  if (condition) {                                                   \
  } else                                                             \
    ::qasca::util::internal::CheckMessageBuilder(__FILE__, __LINE__, \
                                                 #condition)

#define QASCA_CHECK_EQ(a, b) QASCA_CHECK((a) == (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_NE(a, b) QASCA_CHECK((a) != (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_LT(a, b) QASCA_CHECK((a) < (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_LE(a, b) QASCA_CHECK((a) <= (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_GT(a, b) QASCA_CHECK((a) > (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_GE(a, b) QASCA_CHECK((a) >= (b)) << "(" #a " vs " #b ")"

/// Debug-gated checks for *internal* invariants: probability rows that must
/// stay normalized, Dinkelbach lambdas that must be monotone, EM likelihoods
/// that must not decrease. Compiled out in Release builds (the hot paths run
/// them on every row/iteration, so they must cost nothing when off) and on
/// in Debug and sanitizer builds. Control with the CMake cache variable
/// QASCA_DCHECKS=ON|OFF|AUTO (AUTO follows NDEBUG).
///
/// Tier summary (see DESIGN.md "Correctness tooling"):
///  * util::Status — recoverable runtime failures (bad config, budget).
///  * QASCA_CHECK  — API misuse by the caller; always on.
///  * QASCA_DCHECK — internal invariants; Debug/sanitizer builds only.
#ifndef QASCA_ENABLE_DCHECKS
#ifdef NDEBUG
#define QASCA_ENABLE_DCHECKS 0
#else
#define QASCA_ENABLE_DCHECKS 1
#endif
#endif

namespace qasca::util {
/// Runtime-queryable mirror of QASCA_ENABLE_DCHECKS so tests can skip or
/// assert death depending on the build flavour.
inline constexpr bool kDChecksEnabled = QASCA_ENABLE_DCHECKS != 0;
}  // namespace qasca::util

#if QASCA_ENABLE_DCHECKS
#define QASCA_DCHECK(condition) QASCA_CHECK(condition)
#else
// `true || (condition)` keeps the condition (and any streamed context)
// compiling in every build type while letting dead-code elimination remove
// the whole statement.
#define QASCA_DCHECK(condition) QASCA_CHECK(true || (condition))
#endif

#define QASCA_DCHECK_EQ(a, b) QASCA_DCHECK((a) == (b)) << "(" #a " vs " #b ")"
#define QASCA_DCHECK_NE(a, b) QASCA_DCHECK((a) != (b)) << "(" #a " vs " #b ")"
#define QASCA_DCHECK_LT(a, b) QASCA_DCHECK((a) < (b)) << "(" #a " vs " #b ")"
#define QASCA_DCHECK_LE(a, b) QASCA_DCHECK((a) <= (b)) << "(" #a " vs " #b ")"
#define QASCA_DCHECK_GT(a, b) QASCA_DCHECK((a) > (b)) << "(" #a " vs " #b ")"
#define QASCA_DCHECK_GE(a, b) QASCA_DCHECK((a) >= (b)) << "(" #a " vs " #b ")"

/// Aborts if `expr` (a util::Status expression, typically an invariants::
/// validator call) is not OK. The _OK variants exist because validators
/// return Status with a precise diagnostic rather than a bare bool.
/// QASCA_CHECK_OK is always on; QASCA_DCHECK_OK skips *evaluating* the
/// validator entirely when DCHECKs are off — that is where the Release-mode
/// cost savings come from.
#define QASCA_CHECK_OK(expr)                               \
  do {                                                     \
    const auto qasca_check_ok_status = (expr);             \
    QASCA_CHECK(qasca_check_ok_status.ok())                \
        << qasca_check_ok_status.ToString();               \
  } while (false)

#if QASCA_ENABLE_DCHECKS
#define QASCA_DCHECK_OK(expr) QASCA_CHECK_OK(expr)
#else
#define QASCA_DCHECK_OK(expr)                    \
  do {                                           \
    if (false) {                                 \
      static_cast<void>(expr);                   \
    }                                            \
  } while (false)
#endif

#endif  // QASCA_UTIL_LOGGING_H_
