#include "util/flight_recorder.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/telemetry.h"
#include "util/telemetry_names.h"

namespace qasca::util {
namespace {

// Deterministic tick source: 1, 2, 3, ... so exports are byte-stable.
TickSource CountingTicks(std::shared_ptr<std::atomic<uint64_t>> counter) {
  return [counter]() {
    return counter->fetch_add(1, std::memory_order_relaxed) + 1;
  };
}

TickSource CountingTicks() {
  return CountingTicks(std::make_shared<std::atomic<uint64_t>>(0));
}

TEST(TraceScopeTest, NestsAndRestores) {
  EXPECT_EQ(TraceScope::current(), 0u);
  {
    TraceScope outer(7);
    EXPECT_EQ(TraceScope::current(), 7u);
    {
      TraceScope inner(9);
      EXPECT_EQ(TraceScope::current(), 9u);
    }
    EXPECT_EQ(TraceScope::current(), 7u);
  }
  EXPECT_EQ(TraceScope::current(), 0u);
}

TEST(FlightRecorderTest, RecordsBalancedPairsWithTraceIds) {
  FlightRecorder recorder(64, CountingTicks());
  {
    TraceScope scope(42);
    recorder.RecordBegin("outer");
    recorder.RecordBegin("inner");
    recorder.RecordEnd("inner");
    recorder.RecordEnd("outer");
  }
  EXPECT_EQ(recorder.total_events(), 4);
  std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, FlightRecorder::Phase::kBegin);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, FlightRecorder::Phase::kEnd);
  EXPECT_STREQ(events[3].name, "outer");
  for (const FlightRecorder::Event& event : events) {
    EXPECT_EQ(event.trace_id, 42u);
  }
  // Ticks stamp in record order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToWholeShards) {
  // 8 shards, so any capacity rounds up to the next multiple of 8 with at
  // least one event per shard.
  EXPECT_EQ(FlightRecorder(1, CountingTicks()).capacity(), 8);
  EXPECT_EQ(FlightRecorder(8, CountingTicks()).capacity(), 8);
  EXPECT_EQ(FlightRecorder(9, CountingTicks()).capacity(), 16);
  EXPECT_EQ(FlightRecorder(64, CountingTicks()).capacity(), 64);
}

TEST(FlightRecorderTest, RingWrapEvictsOldestAndKeepsOrder) {
  // Single-threaded, so every event lands in one shard whose ring holds
  // capacity()/8 events: total_events keeps counting while the snapshot
  // retains only the newest window, oldest first.
  FlightRecorder recorder(16, CountingTicks());
  const int shard_capacity = recorder.capacity() / 8;
  const int appended = 3 * recorder.capacity();
  for (int i = 0; i < appended; ++i) {
    recorder.RecordBegin("spin");
  }
  EXPECT_EQ(recorder.total_events(), appended);
  std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  ASSERT_EQ(static_cast<int>(events.size()), shard_capacity);
  // The survivors are exactly the last shard_capacity appends (ticks are
  // 1-based), still in append order.
  for (int i = 0; i < shard_capacity; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].ts_ns,
              static_cast<uint64_t>(appended - shard_capacity + i + 1));
  }
}

TEST(FlightRecorderTest, ChromeJsonIsBalancedAfterEviction) {
  // Wrap the ring mid-span so the export sees orphaned "E"s (their "B"s
  // were evicted) and an unclosed trailing "B"; both must be dropped.
  // Capacity 32 -> 4 events in the single active shard, so the surviving
  // window still contains at least one intact pair.
  FlightRecorder recorder(32, CountingTicks());
  for (int i = 0; i < 50; ++i) {
    recorder.RecordBegin("work");
    recorder.RecordEnd("work");
  }
  recorder.RecordBegin("unclosed");
  std::string json = recorder.ToChromeJson();
  size_t begins = 0;
  size_t ends = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++begins;
  }
  for (size_t pos = 0;
       (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos; ++pos) {
    ++ends;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(json.find("unclosed"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(FlightRecorderTest, ChromeJsonGoldenShape) {
  FlightRecorder recorder(64, CountingTicks());
  {
    TraceScope scope(5);
    recorder.RecordBegin("assign");
    recorder.RecordEnd("assign");
  }
  EXPECT_EQ(recorder.ToChromeJson(),
            "{\"traceEvents\":["
            "{\"name\":\"assign\",\"cat\":\"qasca\",\"ph\":\"B\","
            "\"ts\":0.001,\"pid\":0,\"tid\":" +
                std::to_string(recorder.Snapshot()[0].tid) +
                ",\"args\":{\"trace\":5}},"
                "{\"name\":\"assign\",\"cat\":\"qasca\",\"ph\":\"E\","
                "\"ts\":0.002,\"pid\":0,\"tid\":" +
                std::to_string(recorder.Snapshot()[0].tid) +
                ",\"args\":{\"trace\":5}}]}");
}

TEST(FlightRecorderTest, ConcurrentRecordingStaysBalancedPerThread) {
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  // Each thread appends 800 events into its own shard (consecutive thread
  // ids land in distinct shards); 1<<16 total keeps every shard (8192
  // events) far from eviction so the full stream survives for the balance
  // check below.
  FlightRecorder recorder(1 << 16, CountingTicks(counter));
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      TraceScope scope(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kSpansPerThread; ++i) {
        recorder.RecordBegin("outer");
        recorder.RecordBegin("inner");
        recorder.RecordEnd("inner");
        recorder.RecordEnd("outer");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.total_events(), kThreads * kSpansPerThread * 4);

  // The merged snapshot is timestamp-sorted, and per tid the B/E stream is
  // well nested (nothing was evicted at this capacity).
  std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  ASSERT_EQ(static_cast<int>(events.size()),
            kThreads * kSpansPerThread * 4);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
  std::vector<std::vector<const char*>> stacks(256);
  for (const FlightRecorder::Event& event : events) {
    ASSERT_LT(event.tid, stacks.size());
    std::vector<const char*>& stack = stacks[event.tid];
    if (event.phase == FlightRecorder::Phase::kBegin) {
      stack.push_back(event.name);
    } else {
      ASSERT_FALSE(stack.empty());
      EXPECT_STREQ(stack.back(), event.name);
      stack.pop_back();
    }
  }
  for (const std::vector<const char*>& stack : stacks) {
    EXPECT_TRUE(stack.empty());
  }
}

TEST(FlightRecorderTest, SpanIntegrationRecordsThroughRegistry) {
  // A Span on a registry with an attached recorder emits the B/E pair even
  // though this registry also feeds latency histograms.
  MetricRegistry registry(true);
  FlightRecorder recorder(64, CountingTicks());
  registry.AttachFlightRecorder(&recorder);
  {
    Span span(&registry, tnames::kSpanAssignHit);
    Span nested(&registry, tnames::kSpanEstimateQw);
  }
  EXPECT_EQ(recorder.total_events(), 4);
  std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, tnames::kSpanAssignHit);
  EXPECT_STREQ(events[1].name, tnames::kSpanEstimateQw);
  EXPECT_EQ(events[1].phase, FlightRecorder::Phase::kBegin);
  EXPECT_STREQ(events[2].name, tnames::kSpanEstimateQw);
  EXPECT_STREQ(events[3].name, tnames::kSpanAssignHit);
  EXPECT_EQ(events[3].phase, FlightRecorder::Phase::kEnd);
  // Without a recorder attached, spans record latencies only.
  MetricRegistry plain(true);
  { Span span(&plain, tnames::kSpanAssignHit); }
  EXPECT_EQ(plain.GetLatency(tnames::kSpanAssignHit)->count(), 1);
}

}  // namespace
}  // namespace qasca::util
