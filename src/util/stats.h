#ifndef QASCA_UTIL_STATS_H_
#define QASCA_UTIL_STATS_H_

#include <chrono>
#include <cstdint>
#include <vector>

namespace qasca::util {

/// Streaming accumulator for mean / variance / min / max of a sequence of
/// observations (Welford's algorithm, numerically stable).
class RunningStats {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used for the paper's frequency plots (Figs 3(b), 3(e),
/// 4(c)).
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double value);

  int buckets() const { return static_cast<int>(counts_.size()); }
  int64_t count(int bucket) const { return counts_[bucket]; }
  int64_t total() const { return total_; }
  /// Inclusive lower edge of `bucket`.
  double BucketLow(int bucket) const;
  double BucketHigh(int bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Wall-clock stopwatch for the paper's efficiency experiments.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_STATS_H_
