#include "core/metrics/fscore.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/fractional.h"
#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {
namespace {

// F-score numerator/denominator pair carried through the blessed fold; the
// per-question update order inside the fold step matches the historical
// interleaved loops bit-for-bit.
struct FScoreTally {
  double numerator = 0.0;
  double denominator = 0.0;
};

// Distribution of the number of successes among independent Bernoulli trials
// with the given probabilities (Poisson-binomial), via the standard O(n^2)
// counting DP. result[s] = P(exactly s successes).
std::vector<double> PoissonBinomial(const std::vector<double>& probabilities) {
  std::vector<double> dist(probabilities.size() + 1, 0.0);
  dist[0] = 1.0;
  size_t trials = 0;
  for (double p : probabilities) {
    ++trials;
    for (size_t s = trials; s-- > 0;) {
      dist[s + 1] += dist[s] * p;
      dist[s] *= (1.0 - p);
    }
  }
  return dist;
}

}  // namespace

FScoreMetric::FScoreMetric(double alpha, LabelIndex target_label)
    : alpha_(alpha), target_label_(target_label) {
  QASCA_CHECK_GT(alpha, 0.0) << "alpha must be in (0,1)";
  QASCA_CHECK_LT(alpha, 1.0) << "alpha must be in (0,1)";
  QASCA_CHECK_GE(target_label, 0);
}

std::string FScoreMetric::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "F-score(alpha=%.2f)", alpha_);
  return buffer;
}

double FScoreMetric::EvaluateAgainstTruth(const GroundTruthVector& truth,
                                          const ResultVector& result) const {
  QASCA_CHECK_EQ(truth.size(), result.size());
  const FScoreTally tally = util::DeterministicFold(
      FScoreTally{}, 0, static_cast<int>(truth.size()),
      [&](FScoreTally t, int i) {
        bool returned_target = result[static_cast<size_t>(i)] == target_label_;
        bool true_target = truth[static_cast<size_t>(i)] == target_label_;
        if (returned_target && true_target) t.numerator += 1.0;
        if (returned_target) t.denominator += alpha_;
        if (true_target) t.denominator += 1.0 - alpha_;
        return t;
      });
  if (tally.denominator <= 0.0) return 0.0;
  return tally.numerator / tally.denominator;
}

double FScoreMetric::Evaluate(const DistributionMatrix& q,
                              const ResultVector& result) const {
  return FScoreStar(q, result, alpha_, target_label_);
}

FScoreMetric::QualityResult FScoreMetric::ComputeQuality(
    const DistributionMatrix& q) const {
  return SolveFScoreQuality(q, alpha_, target_label_);
}

double FScoreStar(const DistributionMatrix& q, const ResultVector& result,
                  double alpha, LabelIndex target_label) {
  QASCA_CHECK_EQ(static_cast<int>(result.size()), q.num_questions());
  QASCA_CHECK_LT(target_label, q.num_labels());
  QASCA_CHECK_GE(alpha, 0.0);
  QASCA_CHECK_LE(alpha, 1.0);
  const FScoreTally tally = util::DeterministicFold(
      FScoreTally{}, 0, q.num_questions(), [&](FScoreTally t, int i) {
        double target_probability = q.At(i, target_label);
        if (result[static_cast<size_t>(i)] == target_label) {
          t.numerator += target_probability;
          t.denominator += alpha;
        }
        t.denominator += (1.0 - alpha) * target_probability;
        return t;
      });
  if (tally.denominator <= 0.0) return 0.0;
  return tally.numerator / tally.denominator;
}

FScoreQualityResult SolveFScoreQuality(const DistributionMatrix& q,
                                       double alpha,
                                       LabelIndex target_label) {
  QASCA_CHECK_LT(target_label, q.num_labels());
  QASCA_CHECK_GE(alpha, 0.0);
  QASCA_CHECK_LE(alpha, 1.0);
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(q));
  const int n = q.num_questions();

  // Reduction of Eq. 10: b_i = Q_{i,1}, d_i = alpha, beta = 0,
  // gamma = (1 - alpha) * sum_i Q_{i,1}.
  ZeroOneFractionalProgram problem;
  problem.b.resize(n);
  problem.d.assign(n, alpha);
  for (int i = 0; i < n; ++i) {
    problem.b[i] = q.At(i, target_label);
  }
  const double target_mass = util::DeterministicSum(
      0, n, [&](int i) { return problem.b[static_cast<size_t>(i)]; });
  problem.gamma = (1.0 - alpha) * target_mass;

  FScoreQualityResult result;
  result.optimal_result.assign(n, target_label == 0 ? 1 : 0);
  // Degenerate corner: with zero total target mass every result scores 0
  // and (at alpha = 1, where gamma = 0 regardless) the empty selection
  // would make the fractional program's denominator vanish. Return the
  // all-non-target optimum directly. Note gamma = 0 at alpha = 1 is
  // otherwise fine: the Dinkelbach iterate always keeps the top question
  // selected, so the denominator alpha * |selected| stays positive.
  if (target_mass <= 0.0) {
    result.lambda = 0.0;
    return result;
  }

  FractionalSolution solution = SolveUnconstrained(problem, /*lambda_init=*/0);
  result.lambda = solution.value;
  result.iterations = solution.iterations;
  // The final z was selected with the converged lambda*, so it realises the
  // Theorem 2 threshold rule r_i = target iff Q_{i,1} >= lambda* * alpha.
  LabelIndex non_target = target_label == 0 ? 1 : 0;
  for (int i = 0; i < n; ++i) {
    result.optimal_result[i] = solution.z[i] ? target_label : non_target;
  }
  return result;
}

ResultVector FScoreMetric::OptimalResult(const DistributionMatrix& q) const {
  return ComputeQuality(q).optimal_result;
}

double FScoreMetric::Quality(const DistributionMatrix& q) const {
  return ComputeQuality(q).lambda;
}

double ExactExpectedFScore(const DistributionMatrix& q,
                           const ResultVector& result, double alpha,
                           LabelIndex target_label) {
  QASCA_CHECK_EQ(static_cast<int>(result.size()), q.num_questions());
  // Split target-label probabilities by whether the question is returned as
  // target. F-score(T', R, alpha) depends on T' only through
  //   A = #true targets returned as target, and
  //   B = #true targets returned as non-target,
  // so E[F] = sum_{a,b} P(A=a) P(B=b) * a / (alpha*m + (1-alpha)*(a+b)).
  std::vector<double> returned_probabilities;
  std::vector<double> other_probabilities;
  for (int i = 0; i < q.num_questions(); ++i) {
    double p = q.At(i, target_label);
    if (result[i] == target_label) {
      returned_probabilities.push_back(p);
    } else {
      other_probabilities.push_back(p);
    }
  }
  const double m = static_cast<double>(returned_probabilities.size());
  std::vector<double> pa = PoissonBinomial(returned_probabilities);
  std::vector<double> pb = PoissonBinomial(other_probabilities);

  // Nested blessed folds, threading one accumulator through both levels in
  // the historical (a-major, zero-probability terms skipped) order.
  return util::DeterministicFold(
      0.0, 1, static_cast<int>(pa.size()), [&](double acc, int a) {
        const double pa_a = pa[static_cast<size_t>(a)];
        if (pa_a == 0.0) return acc;
        return util::DeterministicFold(
            acc, 0, static_cast<int>(pb.size()), [&](double inner, int b) {
              const double pb_b = pb[static_cast<size_t>(b)];
              if (pb_b == 0.0) return inner;
              double denominator =
                  alpha * m + (1.0 - alpha) * static_cast<double>(a + b);
              return inner + pa_a * pb_b * static_cast<double>(a) / denominator;
            });
      });
}

double BruteForceExpectedFScore(const DistributionMatrix& q,
                                const ResultVector& result, double alpha,
                                LabelIndex target_label) {
  const int n = q.num_questions();
  QASCA_CHECK_LE(n, 24) << "brute-force enumeration is exponential";
  // F-score only depends on whether each t_i equals the target label, so it
  // suffices to enumerate target/non-target patterns with probabilities
  // Q_{i,target} and 1 - Q_{i,target}.
  // Pattern probability and F-score tally for one truth assignment, carried
  // through the blessed inner fold in question order.
  struct MaskTally {
    double probability = 1.0;
    double numerator = 0.0;
    double denominator = 0.0;
  };
  return util::DeterministicFold(
      0.0, 0, static_cast<int>(1u << n), [&](double acc, int mask_index) {
        const uint32_t mask = static_cast<uint32_t>(mask_index);
        const MaskTally tally = util::DeterministicFold(
            MaskTally{}, 0, n, [&](MaskTally t, int i) {
              double p = q.At(i, target_label);
              bool true_target = (mask >> i) & 1u;
              t.probability *= true_target ? p : 1.0 - p;
              bool returned_target =
                  result[static_cast<size_t>(i)] == target_label;
              if (returned_target && true_target) t.numerator += 1.0;
              if (returned_target) t.denominator += alpha;
              if (true_target) t.denominator += 1.0 - alpha;
              return t;
            });
        if (tally.probability == 0.0 || tally.denominator <= 0.0) return acc;
        return acc + tally.probability * tally.numerator / tally.denominator;
      });
}

}  // namespace qasca
