"""Pass `lock-order`: the interprocedural lock graph must stay acyclic.

The frontend records every `util::MutexLock` acquisition scope and every
call site per function. This pass links them across TUs into a directed
lock graph: an edge A -> B means "B was acquired while A was held", either
directly (a MutexLock scope nested inside another's extent) or
interprocedurally (a call made under scope A reaching a function whose
transitive closure acquires B). Calls are matched by unqualified name —
deliberately conservative: an over-matched callee can only add may-acquire
edges, never hide one.

Every cycle (Tarjan SCC with >1 node, or a self-loop from re-acquiring a
held lock) is one finding, reported at the witness line of the
lexicographically first edge inside the cycle.

When the tree is acyclic, the pass additionally checks the checked-in
ranking `tools/analyze/lock_order.json` (which util/lock_ranks.h mirrors
for the QASCA_MUTEX_RANK_CHECKS runtime verifier): if the computed nodes
or edges drifted from the recorded ones, the file is stale and must be
regenerated with `python3 tools/analyze.py --write-lock-order`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..base import ERROR, Finding, SourceTree
from .concurrency import ClassIndex

LOCK_ORDER_JSON = "tools/analyze/lock_order.json"

GRAPH_ROOTS = ("src",)


@dataclass
class _Fn:
    rel: str
    qualname: str
    line: int
    end_line: int
    # (node, acquire_line, scope_end_line)
    scopes: list[tuple[str, int, int]] = field(default_factory=list)
    calls: list[tuple[str, int]] = field(default_factory=list)
    acquires: set[str] = field(default_factory=set)  # transitive closure


def _build_graph(tree: SourceTree) -> tuple[
        set[str], dict[tuple[str, str], tuple[str, int, str]]]:
    """(acquired_nodes, {(held, acquired): (rel, line, why)})."""
    index = ClassIndex(tree, roots=GRAPH_ROOTS)
    fns: list[_Fn] = []
    by_name: dict[str, list[_Fn]] = {}
    for source in tree.files(GRAPH_ROOTS):
        model = tree.model(source)
        file_fns: list[_Fn] = []
        for func in model.functions:
            entry = _Fn(rel=source.rel, qualname=func.qualname or func.name,
                        line=func.line, end_line=func.end_line)
            fns.append(entry)
            file_fns.append(entry)
            by_name.setdefault(func.name, []).append(entry)

        def owner(line: int) -> _Fn | None:
            best = None
            for entry in file_fns:
                if entry.line <= line <= entry.end_line:
                    # Innermost on ties (nested lambdas share extents).
                    if best is None or entry.line >= best.line:
                        best = entry
            return best

        for scope in model.lock_scopes:
            entry = owner(scope.line)
            if entry is None:
                continue
            node = index.resolve_scope(scope, source.rel)
            entry.scopes.append((node, scope.line, scope.end_line))
            entry.acquires.add(node)
        for call in model.calls:
            entry = owner(call.line)
            if entry is not None:
                entry.calls.append((call.name, call.line))

    # Transitive may-acquire closure over name-matched callees.
    changed = True
    while changed:
        changed = False
        for entry in fns:
            for name, _line in entry.calls:
                for callee in by_name.get(name, []):
                    if callee is entry:
                        continue
                    missing = callee.acquires - entry.acquires
                    if missing:
                        entry.acquires |= missing
                        changed = True

    acquired: set[str] = set()
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}

    def add_edge(held: str, node: str, rel: str, line: int,
                 why: str) -> None:
        witness = (rel, line, why)
        current = edges.get((held, node))
        if current is None or (rel, line) < (current[0], current[1]):
            edges[(held, node)] = witness

    for entry in fns:
        for node, _line, _end in entry.scopes:
            acquired.add(node)
        scopes = sorted(entry.scopes, key=lambda s: (s[1], s[2]))
        for i, (node_a, line_a, end_a) in enumerate(scopes):
            for node_b, line_b, _end_b in scopes[i + 1:]:
                if line_a < line_b <= end_a:
                    add_edge(node_a, node_b, entry.rel, line_b,
                             "nested acquisition")
        for name, line in entry.calls:
            held = [node for node, lo, hi in entry.scopes if lo < line <= hi]
            if not held:
                continue
            callee_acquires: set[str] = set()
            for callee in by_name.get(name, []):
                if callee is not entry:
                    callee_acquires |= callee.acquires
            for node_h in held:
                for node_c in sorted(callee_acquires):
                    if node_c != node_h:
                        add_edge(node_h, node_c, entry.rel, line,
                                 f"call to {name}() acquires")
    return acquired, edges


def _sccs(nodes: list[str],
          adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components, deterministic order."""
    counter = [0]
    number: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    stack: list[str] = []
    on_stack: set[str] = set()
    result: list[list[str]] = []

    def connect(v: str) -> None:
        number[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(adjacency.get(v, set())):
            if w not in number:
                connect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], number[w])
        if lowlink[v] == number[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            result.append(sorted(component))

    for node in sorted(nodes):
        if node not in number:
            connect(node)
    return result


def _ranks(nodes: set[str],
           edges: dict[tuple[str, str], tuple[str, int, str]]
           ) -> list[tuple[str, int]] | None:
    """Kahn topological ranking (alphabetical tie-break), ranks in tens so
    future locks slot between existing ones. None when cyclic."""
    import heapq
    out: dict[str, set[str]] = {node: set() for node in sorted(nodes)}
    indegree = {node: 0 for node in nodes}
    for (src, dst) in edges:
        if src == dst or src not in out or dst not in indegree:
            continue
        if dst not in out[src]:
            out[src].add(dst)
            indegree[dst] += 1
    heap = [node for node in sorted(nodes) if indegree[node] == 0]
    heapq.heapify(heap)
    ordered: list[str] = []
    while heap:
        node = heapq.heappop(heap)
        ordered.append(node)
        for dst in sorted(out[node]):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                heapq.heappush(heap, dst)
    if len(ordered) != len(nodes):
        return None
    return [(node, (i + 1) * 10) for i, node in enumerate(ordered)]


def compute_lock_order(tree: SourceTree) -> dict:
    """The lock_order.json payload for the tree: ranked acquired locks plus
    the edge list that justifies the ordering. Used by the driver's
    --write-lock-order and by this pass's staleness check."""
    acquired, edges = _build_graph(tree)
    nodes = set(acquired)
    for src, dst in edges:
        nodes.add(src)
        nodes.add(dst)
    ranks = _ranks(nodes, edges)
    payload = {
        "comment": ("generated by `python3 tools/analyze.py "
                    "--write-lock-order`; util/lock_ranks.h must mirror "
                    "these ranks"),
        "nodes": [] if ranks is None else
                 [{"node": node, "rank": rank} for node, rank in ranks],
        "edges": [{"held": src, "acquired": dst,
                   "witness": f"{edges[(src, dst)][0]}:"
                              f"{edges[(src, dst)][1]}"}
                  for src, dst in sorted(edges) if src != dst],
        "cyclic": ranks is None,
    }
    return payload


class LockOrderPass:
    name = "lock-order"
    description = ("the interprocedural MutexLock acquisition graph must be "
                   "acyclic, and tools/analyze/lock_order.json must match "
                   "the computed ordering")
    severity = ERROR
    roots = GRAPH_ROOTS

    def run(self, tree: SourceTree) -> list[Finding]:
        acquired, edges = _build_graph(tree)
        adjacency: dict[str, set[str]] = {}
        nodes = set(acquired)
        for src, dst in edges:
            nodes.add(src)
            nodes.add(dst)
            adjacency.setdefault(src, set()).add(dst)
        findings: list[Finding] = []
        for component in _sccs(sorted(nodes), adjacency):
            members = set(component)
            cycle_edges = sorted(
                (src, dst) + edges[(src, dst)]
                for (src, dst) in edges
                if src in members and dst in members and
                (len(members) > 1 or src == dst))
            if not cycle_edges:
                continue
            src, dst, rel, line, why = cycle_edges[0]
            if src == dst:
                detail = (f"{src} is acquired again while already held "
                          f"({why}) — a self-deadlock")
            else:
                ring = " <-> ".join(component)
                detail = (f"lock-order cycle among {ring}: acquiring {dst} "
                          f"while holding {src} ({why}) closes the cycle")
            findings.append(Finding(
                pass_name=self.name, severity=self.severity,
                path=rel, line=line,
                message=(f"{detail}; pick one global acquisition order "
                         "(tools/analyze/lock_order.json) and restructure "
                         "so every thread takes these locks in it")))
        if not findings:
            findings.extend(self._check_recorded_order(tree))
        return findings

    def _check_recorded_order(self, tree: SourceTree) -> list[Finding]:
        # Fixture trees (self-test) carry no checked-in ranking; only the
        # real repo does, and there it must match what the graph computes.
        path = tree.root / LOCK_ORDER_JSON
        if not path.is_file():
            return []
        computed = compute_lock_order(tree)
        try:
            recorded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            recorded = None
        if recorded is not None and \
                recorded.get("nodes") == computed["nodes"] and \
                recorded.get("edges") == computed["edges"]:
            return []
        return [Finding(
            pass_name=self.name, severity=self.severity,
            path=LOCK_ORDER_JSON, line=1,
            message=("checked-in lock ordering is stale — the acquisition "
                     "graph changed; regenerate with `python3 "
                     "tools/analyze.py --write-lock-order` and realign "
                     "util/lock_ranks.h"))]
