// Exercises the annotated capability types (util/mutex.h) and the
// annotated lock-holding classes (ThreadPool, MetricRegistry) under real
// contention. The test carries the `threads` label, so the tsan preset runs
// it on every tools/run_checks.sh invocation: the Clang thread-safety
// analysis proves the static lock discipline at compile time (analyze
// preset), and this test proves the dynamic behaviour — mutual exclusion,
// wait/notify wakeups, and race-free telemetry — at run time.

#include "util/thread_annotations.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"
#include "util/thread_pool.h"

namespace qasca::util {
namespace {

// A minimal annotated class in the exact shape the analyzer's
// lock-annotations pass mandates: the mutex is named by QASCA_GUARDED_BY
// contracts and the accessors declare QASCA_EXCLUDES. Under the `analyze`
// preset, touching `value_` without the lock is a compile error; here it
// doubles as the contention fixture.
class GuardedCounter {
 public:
  void Increment() QASCA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++value_;
  }

  int Get() const QASCA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable Mutex mutex_;
  int value_ QASCA_GUARDED_BY(mutex_) = 0;
};

TEST(ThreadAnnotationsTest, MutexProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), kThreads * kIncrements);
}

TEST(ThreadAnnotationsTest, TryLockReportsHeldMutex) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second owner must be refused while the mutex is held. std::mutex
  // forbids recursive try_lock on the owning thread, so probe from another.
  bool acquired = true;
  std::thread prober([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, CondVarWaitReleasesAndReacquires) {
  // Producer/consumer handshake in the documented explicit-predicate-loop
  // form. If Wait() failed to release the mutex the producer could never
  // acquire it (deadlock); if it failed to reacquire, the guarded reads
  // after the loop would race and TSan would flag them.
  Mutex mu;
  CondVar cv;
  int stage = 0;  // guarded by mu
  std::thread producer([&] {
    MutexLock lock(mu);
    stage = 1;
    cv.NotifyOne();
    while (stage != 2) cv.Wait(mu);
    stage = 3;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (stage != 1) cv.Wait(mu);
    stage = 2;
    cv.NotifyOne();
    while (stage != 3) cv.Wait(mu);
    EXPECT_EQ(stage, 3);
  }
  producer.join();
}

TEST(ThreadAnnotationsTest, ThreadPoolGuardedStateUnderContention) {
  // Drive the pool's annotated queue_/in_flight_/stop_ state hard: many
  // small chunks, with the loop body itself contending on a GuardedCounter.
  ThreadPool pool(4);
  GuardedCounter counter;
  constexpr int kElements = 512;
  for (int round = 0; round < 8; ++round) {
    pool.ParallelFor(0, kElements, /*grain=*/7, [&](int begin, int end) {
      for (int i = begin; i < end; ++i) counter.Increment();
    });
  }
  EXPECT_EQ(counter.Get(), 8 * kElements);
}

TEST(ThreadAnnotationsTest, MetricRegistryConcurrentGetAndSnapshot) {
  // GetCounter/GetLatency race against Snapshot() from a reader thread;
  // every map access and histogram record crosses the annotated mutexes.
  MetricRegistry registry(/*enabled=*/true);
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      Counter* hits = registry.GetCounter(tnames::kPoolTasksExecuted);
      LatencyHistogram* latency = registry.GetLatency(tnames::kSpanAssignHit);
      for (int i = 0; i < kOps; ++i) {
        hits->Add(1);
        latency->RecordSeconds(1e-6 * (i + 1));
      }
    });
  }
  std::thread reader([&registry] {
    for (int i = 0; i < 50; ++i) {
      TelemetrySnapshot snapshot = registry.Snapshot();
      EXPECT_LE(snapshot.counters.size(), 1u);
    }
  });
  for (auto& writer : writers) writer.join();
  reader.join();

  TelemetrySnapshot final_snapshot = registry.Snapshot();
  ASSERT_EQ(final_snapshot.counters.size(), 1u);
  EXPECT_EQ(final_snapshot.counters[0].value, kThreads * kOps);
  ASSERT_EQ(final_snapshot.latencies.size(), 1u);
  EXPECT_EQ(final_snapshot.latencies[0].count, kThreads * kOps);
}

TEST(ThreadAnnotationsTest, MacrosAreInertWithoutClang) {
  // The annotation macros must impose zero runtime shape: a Mutex is just a
  // std::mutex and the attributes vanish on non-Clang compilers. This pins
  // the no-op expansion path that gcc builds take. Rank-checking builds
  // (QASCA_MUTEX_RANK_CHECKS, DCHECK-on flavours) deliberately add the
  // rank field, so the size pin only applies when that is off.
#if !defined(__clang__) && !QASCA_MUTEX_RANK_CHECKS
  static_assert(sizeof(Mutex) == sizeof(std::mutex),
                "annotations must not add state");
#endif
  GuardedCounter counter;
  counter.Increment();
  EXPECT_EQ(counter.Get(), 1);
}

}  // namespace
}  // namespace qasca::util
