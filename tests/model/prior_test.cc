#include "model/prior.h"

#include <vector>

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(PriorTest, UniformPriorSumsToOne) {
  std::vector<double> prior = UniformPrior(4);
  EXPECT_EQ(prior.size(), 4u);
  for (double p : prior) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(PriorTest, EstimateIsColumnMean) {
  DistributionMatrix q(2, 2);
  q.SetRow(0, std::vector<double>{0.8, 0.2});
  q.SetRow(1, std::vector<double>{0.4, 0.6});
  std::vector<double> prior = EstimatePrior(q);
  EXPECT_NEAR(prior[0], 0.6, 1e-12);
  EXPECT_NEAR(prior[1], 0.4, 1e-12);
}

TEST(PriorTest, EstimateOfUniformMatrixIsUniform) {
  DistributionMatrix q(5, 3);
  std::vector<double> prior = EstimatePrior(q);
  for (double p : prior) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(PriorTest, EstimateSumsToOne) {
  DistributionMatrix q(3, 3);
  q.SetRow(0, std::vector<double>{1.0, 0.0, 0.0});
  q.SetRow(1, std::vector<double>{0.0, 1.0, 0.0});
  q.SetRow(2, std::vector<double>{0.2, 0.3, 0.5});
  std::vector<double> prior = EstimatePrior(q);
  EXPECT_NEAR(prior[0] + prior[1] + prior[2], 1.0, 1e-12);
}

}  // namespace
}  // namespace qasca
