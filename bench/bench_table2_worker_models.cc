// Reproduces Table 2: result quality when the distribution matrix is built
// from "real" (ground-truth-derived, Eq. 20) Worker Probability vs
// Confusion Matrix models. Answers are collected with the paper's z = 3
// redundancy; to avoid overfitting, each worker's model is fitted on a
// random 80% of their answers, repeated over many trials (Section 6.2.2).

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench/experiment_driver.h"
#include "model/posterior.h"
#include "model/prior.h"
#include "simulation/dataset.h"
#include "util/stats.h"
#include "util/table.h"

namespace qasca {
namespace {

struct CollectedAnswers {
  GroundTruthVector truth;
  AnswerSet answers;
  int num_workers = 0;
};

// Collects z answers per question from random distinct workers — the
// observable record D the paper computes Table 2 from.
CollectedAnswers CollectAnswers(const ApplicationSpec& spec, util::Rng& rng) {
  CollectedAnswers collected;
  collected.truth = GenerateGroundTruth(spec, rng);
  std::vector<double> difficulty = GenerateQuestionDifficulty(spec, rng);
  std::vector<SimulatedWorker> pool = GenerateWorkerPool(spec.workers, rng);
  collected.num_workers = static_cast<int>(pool.size());
  collected.answers.resize(spec.num_questions);
  for (int i = 0; i < spec.num_questions; ++i) {
    for (int w :
         rng.SampleWithoutReplacement(collected.num_workers,
                                      spec.answers_per_question)) {
      LabelIndex label = pool[w].AnswerQuestion(collected.truth[i], rng,
                                                difficulty[i]);
      collected.answers[i].push_back(Answer{pool[w].id, label});
    }
  }
  return collected;
}

// Eq. 20 on a subset of each worker's answers: the "real" WP and CM.
// `keep` decides which answers participate (the 80% subsample).
std::unordered_map<WorkerId, WorkerModel> FitRealModels(
    const CollectedAnswers& collected, WorkerModel::Kind kind, int num_labels,
    const std::vector<std::vector<bool>>& keep) {
  struct Counts {
    std::vector<double> matrix;  // [truth][answered] counts
    double agree = 0.0;
    double total = 0.0;
  };
  std::unordered_map<WorkerId, Counts> counts;
  for (size_t i = 0; i < collected.answers.size(); ++i) {
    for (size_t a = 0; a < collected.answers[i].size(); ++a) {
      if (!keep[i][a]) continue;
      const Answer& answer = collected.answers[i][a];
      Counts& c = counts[answer.worker];
      if (c.matrix.empty()) {
        c.matrix.assign(static_cast<size_t>(num_labels) * num_labels, 0.0);
      }
      LabelIndex truth = collected.truth[i];
      c.matrix[static_cast<size_t>(truth) * num_labels + answer.label] += 1.0;
      if (truth == answer.label) c.agree += 1.0;
      c.total += 1.0;
    }
  }
  std::unordered_map<WorkerId, WorkerModel> models;
  for (auto& [worker, c] : counts) {
    if (kind == WorkerModel::Kind::kWorkerProbability) {
      models.emplace(worker,
                     WorkerModel::Wp((c.agree + 1.0) / (c.total + 2.0),
                                     num_labels));
      continue;
    }
    // Normalise rows with Laplace smoothing (rows with no observations
    // become uniform).
    for (int t = 0; t < num_labels; ++t) {
      double row_total = 0.0;
      for (int a = 0; a < num_labels; ++a) {
        c.matrix[static_cast<size_t>(t) * num_labels + a] += 1.0 / num_labels;
        row_total += c.matrix[static_cast<size_t>(t) * num_labels + a];
      }
      for (int a = 0; a < num_labels; ++a) {
        c.matrix[static_cast<size_t>(t) * num_labels + a] /= row_total;
      }
    }
    models.emplace(worker, WorkerModel::Cm(c.matrix, num_labels));
  }
  return models;
}

double EvaluateModelKind(const ApplicationSpec& spec,
                         const CollectedAnswers& collected,
                         WorkerModel::Kind kind, util::Rng& rng) {
  // 80% subsample of each worker's answers (by answer, as in the paper).
  std::vector<std::vector<bool>> keep(collected.answers.size());
  for (size_t i = 0; i < collected.answers.size(); ++i) {
    keep[i].resize(collected.answers[i].size());
    for (size_t a = 0; a < keep[i].size(); ++a) {
      keep[i][a] = rng.Uniform() < 0.8;
    }
  }
  std::unordered_map<WorkerId, WorkerModel> models =
      FitRealModels(collected, kind, spec.num_labels, keep);
  WorkerModel fallback = kind == WorkerModel::Kind::kWorkerProbability
                             ? WorkerModel::PerfectWp(spec.num_labels)
                             : WorkerModel::PerfectCm(spec.num_labels);
  WorkerModelLookup lookup = [&](WorkerId worker) -> const WorkerModel& {
    auto it = models.find(worker);
    return it != models.end() ? it->second : fallback;
  };

  // Real prior: the fraction of questions whose ground truth is each label.
  std::vector<double> prior(spec.num_labels, 0.0);
  for (LabelIndex t : collected.truth) prior[t] += 1.0;
  for (double& p : prior) p /= collected.truth.size();

  DistributionMatrix qc =
      ComputeCurrentDistribution(collected.answers, prior, lookup);
  auto metric = spec.metric.Make();
  return metric->EvaluateAgainstTruth(collected.truth,
                                      metric->OptimalResult(qc));
}

void RunAll() {
  const int kTrials = 100;
  util::PrintSection(
      "Table 2 — result quality with real (ground-truth-derived) worker "
      "models, 80% subsample, 100 trials");
  util::Table table({"Model", "FS", "SA", "ER", "PSA", "NSA"});
  std::vector<ApplicationSpec> apps = PaperApplications();
  std::vector<double> cm_quality;
  std::vector<double> wp_quality;
  for (const ApplicationSpec& app : apps) {
    util::Rng rng(7000 + app.num_questions);
    CollectedAnswers collected = CollectAnswers(app, rng);
    util::RunningStats cm_stats;
    util::RunningStats wp_stats;
    for (int t = 0; t < kTrials; ++t) {
      cm_stats.Add(EvaluateModelKind(app, collected,
                                     WorkerModel::Kind::kConfusionMatrix,
                                     rng));
      wp_stats.Add(EvaluateModelKind(app, collected,
                                     WorkerModel::Kind::kWorkerProbability,
                                     rng));
    }
    cm_quality.push_back(cm_stats.mean());
    wp_quality.push_back(wp_stats.mean());
  }
  table.AddRow().Cell("CM");
  for (double q : cm_quality) table.Percent(q, 2);
  table.AddRow().Cell("WP");
  for (double q : wp_quality) table.Percent(q, 2);
  table.Print();
  std::printf(
      "Expected shape (paper Table 2): CM >= WP everywhere, with a real\n"
      "gap on SA (adjacent-sentiment confusion violates WP's symmetric-\n"
      "error assumption) and ER (\"equal\" is harder than \"non-equal\"),\n"
      "and near-parity on FS / PSA / NSA.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
