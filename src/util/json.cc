#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace qasca::util {

void AppendJsonEscaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

void AppendJsonString(std::string& out, std::string_view value) {
  out += '"';
  AppendJsonEscaped(out, value);
  out += '"';
}

std::string JsonString(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  AppendJsonString(out, value);
  return out;
}

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += '0';
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out += buffer;
}

}  // namespace qasca::util
