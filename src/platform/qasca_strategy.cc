#include "platform/qasca_strategy.h"

#include <optional>
#include <utility>

#include "core/assignment/assignment.h"
#include "core/assignment/fscore_online.h"
#include "core/assignment/topk_benefit.h"
#include "core/metrics/cost_accuracy.h"
#include "platform/database.h"
#include "platform/provenance.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"

namespace qasca {

std::vector<QuestionIndex> QascaStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.database != nullptr);
  QASCA_CHECK(context.metric != nullptr);
  QASCA_CHECK(context.worker_model != nullptr);
  QASCA_CHECK(context.rng != nullptr);

  const DistributionMatrix& qc = context.database->current();

  AssignmentRequest request;
  request.current = &qc;
  request.candidates = candidates;
  request.k = k;
  request.pool = context.pool;
  request.telemetry = context.telemetry;
  // The engine consumes only the selection; skip the Top-K algorithms'
  // O(n) objective sweep per request (F-score's Dinkelbach computes its
  // objective as a by-product regardless).
  request.compute_objective = false;

  // Qw estimation (Section 5.3). Default path: materialise only the
  // candidate rows into the reusable overlay, multiplying through the
  // requesting worker's likelihood table (cached across HITs by the engine
  // when a cache is attached). Legacy path: deep-copy Qc and overwrite the
  // candidate rows. Both paths produce bit-identical rows, hence identical
  // selections — the kernel-equivalence suite pins this.
  std::optional<DistributionMatrix> qw_storage;
  if (context.use_qw_overlay) {
    const WorkerLikelihoods* likelihoods;
    if (context.likelihood_cache != nullptr) {
      likelihoods =
          &context.likelihood_cache->Get(context.worker, *context.worker_model);
    } else {
      scratch_likelihoods_.Rebuild(*context.worker_model);
      likelihoods = &scratch_likelihoods_;
    }
    util::Span span(context.telemetry, util::tnames::kSpanEstimateQw);
    // Accuracy* consumes each estimated row only through its max, so the
    // estimation kernel fuses the row maxima into the overlay's quality
    // channel while the rows are hot; the benefit scan then reads one
    // double per candidate (AssignTopKBenefit's fused path).
    const bool fuse_row_max =
        context.metric->kind == MetricSpec::Kind::kAccuracy;
    EstimateWorkerRowsInto(qc, *context.worker_model, *likelihoods, candidates,
                           qw_mode_, *context.rng, &overlay_, context.pool,
                           context.telemetry, fuse_row_max);
    request.estimated = &qc;
    request.overlay = &overlay_;
  } else {
    util::Span span(context.telemetry, util::tnames::kSpanEstimateQw);
    qw_storage.emplace(EstimateWorkerDistribution(
        qc, *context.worker_model, candidates, qw_mode_, *context.rng,
        context.pool, context.telemetry));
    request.estimated = &*qw_storage;
  }

  AssignmentResult result;
  if (context.metric->kind == MetricSpec::Kind::kAccuracy) {
    result = AssignTopKBenefit(request);
  } else if (context.metric->kind == MetricSpec::Kind::kCostAccuracy) {
    // Decomposable like Accuracy*: Top-K Benefit with the metric's row
    // quality (expected-cost minimiser per question).
    CostAccuracyMetric metric(context.metric->costs,
                              context.metric->CostLabels());
    result = AssignTopKBenefitDecomposable(
        request,
        [&metric](std::span<const double> row) {
          return metric.RowQuality(row);
        });
  } else {
    FScoreAssignmentOptions options;
    options.alpha = context.metric->alpha;
    options.target_label = context.metric->target_label;
    options.warm_start = true;
    result = AssignFScoreOnline(request, options);
  }
  last_outer_iterations_ = result.outer_iterations;
  last_inner_iterations_ = result.inner_iterations;
  if (context.provenance != nullptr) {
    context.provenance->scores = std::move(result.selected_scores);
    context.provenance->objective = result.objective;
    context.provenance->outer_iterations = result.outer_iterations;
    context.provenance->inner_iterations = result.inner_iterations;
    context.provenance->used_overlay = context.use_qw_overlay;
    // The overlay path materialises exactly the candidate rows.
    context.provenance->overlay_rows =
        context.use_qw_overlay ? static_cast<int>(candidates.size()) : 0;
  }
  return result.selected;
}

}  // namespace qasca
