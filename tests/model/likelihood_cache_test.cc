#include "model/likelihood_cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/qw_overlay.h"
#include "core/distribution_matrix.h"
#include "core/kernels/kernels.h"
#include "model/posterior.h"
#include "model/worker_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qasca {
namespace {

TEST(WorkerLikelihoodsTest, TableHoldsTransposedAnswerProbabilities) {
  // Row `answered` is L[answered][truth] = AnswerProbability(answered,
  // truth) — the exact doubles, so kernel products bitwise-match the
  // model-call loop.
  for (const WorkerModel& model :
       {WorkerModel::Wp(0.7, 3),
        WorkerModel::Cm({0.8, 0.15, 0.05, 0.1, 0.7, 0.2, 0.05, 0.25, 0.7},
                        3)}) {
    const WorkerLikelihoods table = WorkerLikelihoods::FromModel(model);
    ASSERT_EQ(table.num_labels(), 3);
    for (LabelIndex answered = 0; answered < 3; ++answered) {
      const double* row = table.Row(answered);
      for (LabelIndex truth = 0; truth < 3; ++truth) {
        EXPECT_EQ(row[truth], model.AnswerProbability(answered, truth))
            << "answered=" << answered << " truth=" << truth;
      }
    }
  }
}

TEST(WorkerLikelihoodsTest, RebuildReplacesContentsInPlace) {
  WorkerLikelihoods table =
      WorkerLikelihoods::FromModel(WorkerModel::Wp(0.6, 2));
  const WorkerModel sharp = WorkerModel::Wp(0.9, 2);
  table.Rebuild(sharp);
  EXPECT_EQ(table.Row(0)[0], sharp.AnswerProbability(0, 0));
  EXPECT_EQ(table.Row(0)[1], sharp.AnswerProbability(0, 1));
  // Shape changes are fine too (a strategy's scratch table outlives apps).
  table.Rebuild(WorkerModel::Wp(0.5, 4));
  EXPECT_EQ(table.num_labels(), 4);
  EXPECT_EQ(table.Row(0)[0], 0.5);
}

TEST(LikelihoodCacheTest, MissBuildsThenHitsUntilInvalidated) {
  LikelihoodCache cache;
  const WorkerModel model = WorkerModel::Wp(0.75, 2);
  const WorkerLikelihoods& first = cache.Get(7, model);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(first.Row(0)[0], 0.75);

  const WorkerLikelihoods& second = cache.Get(7, model);
  EXPECT_EQ(&first, &second);  // memoised, not rebuilt
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  cache.Get(8, model);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 2);

  const uint64_t generation = cache.generation();
  cache.Invalidate();
  EXPECT_EQ(cache.generation(), generation + 1);
  EXPECT_EQ(cache.size(), 0);  // no entry survives a refit
  cache.Get(7, model);
  EXPECT_EQ(cache.misses(), 3);
}

TEST(LikelihoodCacheTest, GetReturnsExactlyFromModel) {
  // Pure memoisation: a cached table and a fresh FromModel hold identical
  // doubles, which is why decisions are bit-identical cache on or off.
  LikelihoodCache cache;
  const WorkerModel model =
      WorkerModel::Cm({0.9, 0.1, 0.3, 0.7}, 2);
  const WorkerLikelihoods& cached = cache.Get(1, model);
  const WorkerLikelihoods fresh = WorkerLikelihoods::FromModel(model);
  for (LabelIndex a = 0; a < 2; ++a) {
    for (LabelIndex t = 0; t < 2; ++t) {
      EXPECT_EQ(cached.Row(a)[t], fresh.Row(a)[t]);
    }
  }
}

// ---------------------------------------------------------------------------
// EstimateWorkerRowsInto (overlay path) vs EstimateWorkerDistribution
// (legacy deep copy): the overlay rows must hold the exact doubles the
// legacy matrix holds, under the same randomness contract.

DistributionMatrix MakeCurrent(int n, int l, uint64_t salt) {
  util::Rng rng(salt);
  DistributionMatrix qc(n, l);
  std::vector<double> weights(static_cast<size_t>(l));
  for (int i = 0; i < n; ++i) {
    for (double& w : weights) w = rng.Uniform(0.05, 1.0);
    qc.SetRowNormalized(i, weights);
  }
  return qc;
}

struct QwScenario {
  const char* name;
  WorkerModel model;
};

std::vector<QwScenario> QwScenarios() {
  return {
      {"wp/l2", WorkerModel::Wp(0.8, 2)},
      {"wp/l3", WorkerModel::Wp(0.65, 3)},
      {"cm/l2", WorkerModel::Cm({0.85, 0.15, 0.2, 0.8}, 2)},
      {"cm/l3",
       WorkerModel::Cm({0.7, 0.2, 0.1, 0.15, 0.75, 0.1, 0.1, 0.15, 0.75},
                       3)},
  };
}

void ExpectOverlayMatchesLegacy(const QwScenario& s, QwMode mode,
                                util::ThreadPool* pool, bool expect_bitwise) {
  const int n = 12;
  const int l = s.model.num_labels();
  const DistributionMatrix qc = MakeCurrent(n, l, /*salt=*/41);
  const std::vector<QuestionIndex> candidates = {1, 3, 4, 8, 11};

  util::Rng legacy_rng(1234);
  const DistributionMatrix legacy = EstimateWorkerDistribution(
      qc, s.model, candidates, mode, legacy_rng);

  const WorkerLikelihoods table = WorkerLikelihoods::FromModel(s.model);
  QwOverlay overlay;
  util::Rng overlay_rng(1234);
  EstimateWorkerRowsInto(qc, s.model, table, candidates, mode, overlay_rng,
                         &overlay, pool);

  // Identical rng consumption (kSampled: exactly one base draw; kExpected:
  // none) — the next draw from either generator must agree.
  EXPECT_EQ(legacy_rng.engine()(), overlay_rng.engine()());

  for (QuestionIndex i : candidates) {
    ASSERT_TRUE(overlay.Contains(i)) << s.name << " i=" << i;
    const std::span<const double> row = overlay.Row(i);
    for (int j = 0; j < l; ++j) {
      if (expect_bitwise) {
        EXPECT_EQ(row[j], legacy.At(i, j)) << s.name << " i=" << i
                                           << " j=" << j;
      } else {
        EXPECT_NEAR(row[j], legacy.At(i, j), 1e-12)
            << s.name << " i=" << i << " j=" << j;
      }
    }
  }
  // Non-candidates are never materialised — reads fall through to Qc.
  for (QuestionIndex i : {0, 2, 5, 6, 7, 9, 10}) {
    EXPECT_FALSE(overlay.Contains(i)) << s.name << " i=" << i;
  }
}

TEST(EstimateWorkerRowsIntoTest, SampledModeBitwiseMatchesLegacy) {
  for (const QwScenario& s : QwScenarios()) {
    ExpectOverlayMatchesLegacy(s, QwMode::kSampled, /*pool=*/nullptr,
                               /*expect_bitwise=*/true);
  }
}

TEST(EstimateWorkerRowsIntoTest, SampledModeBitwiseMatchesLegacyThreaded) {
  util::ThreadPool pool(4);
  for (const QwScenario& s : QwScenarios()) {
    ExpectOverlayMatchesLegacy(s, QwMode::kSampled, &pool,
                               /*expect_bitwise=*/true);
  }
}

TEST(EstimateWorkerRowsIntoTest, ExpectedModeCmBitwiseMatchesLegacy) {
  // CM models have no closed form: kExpected runs the same numerically
  // accumulated mixture as the legacy path, so it is bitwise too.
  for (const QwScenario& s : QwScenarios()) {
    if (s.model.kind() != WorkerModel::Kind::kConfusionMatrix) continue;
    ExpectOverlayMatchesLegacy(s, QwMode::kExpected, /*pool=*/nullptr,
                               /*expect_bitwise=*/true);
  }
}

TEST(EstimateWorkerRowsIntoTest, ExpectedModeWpUsesExactClosedForm) {
  // For WP models the expectation of the conditioned posterior over the
  // predicted answer distribution is Qc_i itself (law of total
  // probability). The overlay returns that closed form exactly; the legacy
  // mixture only approaches it within rounding.
  for (const QwScenario& s : QwScenarios()) {
    if (s.model.kind() != WorkerModel::Kind::kWorkerProbability) continue;
    const int n = 6;
    const int l = s.model.num_labels();
    const DistributionMatrix qc = MakeCurrent(n, l, /*salt=*/99);
    const std::vector<QuestionIndex> candidates = {0, 2, 5};
    const WorkerLikelihoods table = WorkerLikelihoods::FromModel(s.model);
    QwOverlay overlay;
    util::Rng rng(5);
    EstimateWorkerRowsInto(qc, s.model, table, candidates, QwMode::kExpected,
                           rng, &overlay);
    for (QuestionIndex i : candidates) {
      for (int j = 0; j < l; ++j) {
        // Exactly the Qc row — not a tolerance.
        EXPECT_EQ(overlay.Row(i)[j], qc.At(i, j)) << s.name << " i=" << i;
      }
    }
    // And the legacy mixture agrees with the closed form to rounding.
    ExpectOverlayMatchesLegacy(s, QwMode::kExpected, /*pool=*/nullptr,
                               /*expect_bitwise=*/false);
  }
}

TEST(EstimateWorkerRowsIntoTest, BitwiseStableAcrossIsas) {
  // The full Qw pipeline — answer distribution, sampling, conditioning,
  // normalisation — returns identical rows under every kernel ISA.
  const kernels::Isa saved = kernels::ActiveIsa();
  for (const QwScenario& s : QwScenarios()) {
    const int n = 10;
    const int l = s.model.num_labels();
    const DistributionMatrix qc = MakeCurrent(n, l, /*salt=*/17);
    const std::vector<QuestionIndex> candidates = {0, 1, 4, 7, 9};
    const WorkerLikelihoods table = WorkerLikelihoods::FromModel(s.model);

    std::vector<std::vector<double>> reference;
    bool have_reference = false;
    for (kernels::Isa isa :
         {kernels::Isa::kScalar, kernels::Isa::kSse2, kernels::Isa::kAvx2}) {
      if (!kernels::IsaSupported(isa)) continue;
      kernels::SetIsaForTesting(isa);
      QwOverlay overlay;
      util::Rng rng(88);
      EstimateWorkerRowsInto(qc, s.model, table, candidates, QwMode::kSampled,
                             rng, &overlay);
      std::vector<std::vector<double>> rows;
      for (QuestionIndex i : candidates) {
        rows.emplace_back(overlay.Row(i).begin(), overlay.Row(i).end());
      }
      if (!have_reference) {
        reference = rows;
        have_reference = true;
      } else {
        EXPECT_EQ(rows, reference)
            << s.name << " isa=" << kernels::IsaName(isa);
      }
    }
  }
  kernels::SetIsaForTesting(saved);
}

}  // namespace
}  // namespace qasca
