#include "core/assignment/assignment.h"

#include <algorithm>

#include "util/logging.h"

namespace qasca {

DistributionMatrix BuildAssignmentMatrix(
    const DistributionMatrix& current, const DistributionMatrix& estimated,
    const std::vector<QuestionIndex>& selected) {
  QASCA_CHECK_EQ(current.num_questions(), estimated.num_questions());
  QASCA_CHECK_EQ(current.num_labels(), estimated.num_labels());
  DistributionMatrix result = current;
  for (QuestionIndex i : selected) {
    result.SetRow(i, estimated.Row(i));
  }
  return result;
}

void ValidateRequest(const AssignmentRequest& request) {
  QASCA_CHECK(request.current != nullptr);
  QASCA_CHECK(request.estimated != nullptr);
  QASCA_CHECK_EQ(request.current->num_questions(),
                 request.estimated->num_questions());
  QASCA_CHECK_EQ(request.current->num_labels(),
                 request.estimated->num_labels());
  QASCA_CHECK_GT(request.k, 0);
  QASCA_CHECK_LE(static_cast<size_t>(request.k), request.candidates.size());
  std::vector<QuestionIndex> sorted = request.candidates;
  std::sort(sorted.begin(), sorted.end());
  for (size_t c = 0; c < sorted.size(); ++c) {
    QASCA_CHECK_GE(sorted[c], 0);
    QASCA_CHECK_LT(sorted[c], request.current->num_questions());
    if (c > 0) {
      QASCA_CHECK_NE(sorted[c - 1], sorted[c]) << "duplicate candidate";
    }
  }
}

}  // namespace qasca
