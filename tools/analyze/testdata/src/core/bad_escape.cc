// shared-state-escape fixture: an unguarded by-reference write and a write
// through a by-value captured pointer inside pool lambdas must fire; a
// disjoint indexed write, a lock-guarded merge, and an allow'd
// single-writer flag must not.

#include <cstddef>
#include <vector>

#include "util/mutex.h"

namespace util {
template <typename F>
void ParallelFor(int begin, int end, int grain, F&& body);
}  // namespace util

int CountMatches(const std::vector<int>& values, int needle) {
  int count = 0;
  util::ParallelFor(0, static_cast<int>(values.size()), 64,
                    [&](int chunk_begin, int chunk_end) {
    for (int i = chunk_begin; i < chunk_end; ++i) {
      if (values[static_cast<std::size_t>(i)] == needle) {
        ++count;  // analyze:expect(shared-state-escape)
      }
    }
  });
  return count;
}

void SquareInto(const std::vector<int>& in, std::vector<int>& out) {
  util::ParallelFor(0, static_cast<int>(in.size()), 64,
                    [&](int chunk_begin, int chunk_end) {
    for (int i = chunk_begin; i < chunk_end; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      out[s] = in[s] * in[s];  // disjoint per-index slot: no race
    }
  });
}

int GuardedTally(const std::vector<int>& values, qasca::util::Mutex& mu) {
  int total = 0;
  util::ParallelFor(0, static_cast<int>(values.size()), 64,
                    [&](int chunk_begin, int chunk_end) {
    int local = 0;
    for (int i = chunk_begin; i < chunk_end; ++i) {
      local += values[static_cast<std::size_t>(i)];
    }
    qasca::util::MutexLock lock(mu);
    total += local;  // the lock serializes the merge: no race
  });
  return total;
}

void PublishDone(bool* done) {
  util::ParallelFor(0, 1, 1, [done](int, int) {
    *done = true;  // analyze:allow(shared-state-escape) single writer, joined before any read
  });
}
