#include "baselines/askit.h"

#include <cmath>
#include <span>

#include "baselines/scoring.h"
#include "platform/database.h"
#include "util/logging.h"

namespace qasca {

std::vector<QuestionIndex> AskItStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.database != nullptr);
  QASCA_CHECK(context.rng != nullptr);
  const DistributionMatrix& qc = context.database->current();

  std::vector<double> scores(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::span<const double> row = qc.Row(candidates[c]);
    double entropy = 0.0;
    for (double p : row) {
      if (p > 0.0) entropy -= p * std::log(p);
    }
    scores[c] = entropy;
  }
  return baselines_internal::TopKByScore(candidates, scores, k, *context.rng);
}

}  // namespace qasca
