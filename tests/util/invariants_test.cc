// Unit tests for the probabilistic-invariant subsystem: the Status-level
// validators (active in every build type) and the QASCA_CHECK / QASCA_DCHECK
// abort behaviour (death tests; the DCHECK ones self-skip in builds where
// DCHECKs are compiled out).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/distribution_matrix.h"
#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {
namespace {

TEST(InvariantValidatorsTest, AcceptsWellFormedDistributionRow) {
  std::vector<double> row = {0.25, 0.25, 0.5};
  EXPECT_TRUE(invariants::CheckDistributionRow(row).ok());
}

TEST(InvariantValidatorsTest, RejectsRowThatDoesNotSumToOne) {
  std::vector<double> row = {0.3, 0.3, 0.3};
  util::Status status = invariants::CheckDistributionRow(row);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sums to"), std::string::npos);
}

TEST(InvariantValidatorsTest, RejectsNegativeEntryAndNaN) {
  std::vector<double> negative = {1.2, -0.2};
  EXPECT_FALSE(invariants::CheckDistributionRow(negative).ok());
  std::vector<double> nan_row = {0.5, std::nan("")};
  util::Status status = invariants::CheckDistributionRow(nan_row);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not finite"), std::string::npos);
}

TEST(InvariantValidatorsTest, RejectsEmptyRow) {
  EXPECT_FALSE(invariants::CheckDistributionRow({}).ok());
}

TEST(InvariantValidatorsTest, ToleranceIsRespected) {
  std::vector<double> row = {0.5 + 1e-8, 0.5};
  EXPECT_TRUE(invariants::CheckDistributionRow(row).ok());
  EXPECT_FALSE(invariants::CheckDistributionRow(row, 1e-12).ok());
}

TEST(InvariantValidatorsTest, ChecksDistributionMatrixRowByRow) {
  DistributionMatrix q(3, 2);  // uniform rows
  EXPECT_TRUE(invariants::CheckDistributionMatrix(q).ok());
}

TEST(InvariantValidatorsTest, ConfusionMatrixMustBeRowStochastic) {
  std::vector<double> good = {0.9, 0.1, 0.2, 0.8};
  EXPECT_TRUE(invariants::CheckConfusionMatrix(good, 2).ok());
  std::vector<double> bad_sum = {0.9, 0.3, 0.2, 0.8};
  util::Status status = invariants::CheckConfusionMatrix(bad_sum, 2);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("true-label row 0"), std::string::npos);
  std::vector<double> wrong_shape = {1.0, 0.0, 1.0};
  EXPECT_FALSE(invariants::CheckConfusionMatrix(wrong_shape, 2).ok());
}

TEST(InvariantValidatorsTest, CandidateSetRejectsDuplicatesAndOutOfRange) {
  std::vector<int> good = {4, 0, 2};
  EXPECT_TRUE(invariants::CheckCandidateSet(good, 5).ok());
  std::vector<int> duplicate = {1, 2, 1};
  EXPECT_FALSE(invariants::CheckCandidateSet(duplicate, 5).ok());
  std::vector<int> out_of_range = {0, 5};
  EXPECT_FALSE(invariants::CheckCandidateSet(out_of_range, 5).ok());
  std::vector<int> negative = {-1, 2};
  EXPECT_FALSE(invariants::CheckCandidateSet(negative, 5).ok());
}

TEST(InvariantValidatorsTest, AssignmentMustHaveExactlyKQuestions) {
  std::vector<int> selected = {0, 3, 7};
  EXPECT_TRUE(invariants::CheckAssignment(selected, 3, 10).ok());
  util::Status k_mismatch = invariants::CheckAssignment(selected, 4, 10);
  EXPECT_FALSE(k_mismatch.ok());
  EXPECT_NE(k_mismatch.message().find("exactly k"), std::string::npos);
  EXPECT_FALSE(invariants::CheckAssignment(selected, 3, 7).ok());
}

TEST(InvariantValidatorsTest, FractionalDenominatorMustBePositive) {
  EXPECT_TRUE(invariants::CheckFractionalDenominator(0.5).ok());
  EXPECT_FALSE(invariants::CheckFractionalDenominator(0.0).ok());
  EXPECT_FALSE(invariants::CheckFractionalDenominator(-1.0).ok());
  EXPECT_FALSE(
      invariants::CheckFractionalDenominator(std::nan("")).ok());
}

TEST(InvariantValidatorsTest, LambdaMonotoneAllowsDitherWithinTolerance) {
  EXPECT_TRUE(invariants::CheckLambdaMonotone(0.5, 0.7).ok());
  EXPECT_TRUE(invariants::CheckLambdaMonotone(0.5, 0.5 - 1e-12).ok());
  EXPECT_FALSE(invariants::CheckLambdaMonotone(0.5, 0.4).ok());
  EXPECT_FALSE(invariants::CheckLambdaMonotone(0.5, std::nan("")).ok());
}

TEST(InvariantValidatorsTest, LogLikelihoodMonotone) {
  EXPECT_TRUE(invariants::CheckLogLikelihoodMonotone(-120.0, -119.5).ok());
  EXPECT_FALSE(invariants::CheckLogLikelihoodMonotone(-120.0, -121.0).ok());
}

using InvariantDeathTest = ::testing::Test;

TEST(InvariantDeathTest, CheckOkAbortsOnBadAssignment) {
  // QASCA_CHECK_OK is active in every build type.
  std::vector<int> two = {0, 1};
  EXPECT_DEATH(QASCA_CHECK_OK(invariants::CheckAssignment(two, 3, 10)),
               "exactly k");
}

TEST(InvariantDeathTest, DcheckAbortsOnlyWhenEnabled) {
  if (!util::kDChecksEnabled) {
    GTEST_SKIP() << "DCHECKs compiled out in this build";
  }
  EXPECT_DEATH(QASCA_DCHECK(1 + 1 == 3) << "arithmetic broke", "Check failed");
}

TEST(InvariantDeathTest, DcheckIsCompiledOutInReleaseBuilds) {
  if (util::kDChecksEnabled) {
    GTEST_SKIP() << "DCHECKs enabled in this build";
  }
  // Must not abort, and must not evaluate operands' side effects.
  int evaluations = 0;
  QASCA_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
}

TEST(InvariantDeathTest, DcheckOkAbortsOnMalformedRowWhenEnabled) {
  if (!util::kDChecksEnabled) {
    GTEST_SKIP() << "DCHECKs compiled out in this build";
  }
  std::vector<double> bad_row = {0.9, 0.9};
  EXPECT_DEATH(QASCA_DCHECK_OK(invariants::CheckDistributionRow(bad_row)),
               "sums to");
}

TEST(InvariantDeathTest, SetRowRejectsMalformedRowWhenDchecksOn) {
  if (!util::kDChecksEnabled) {
    GTEST_SKIP() << "DCHECKs compiled out in this build";
  }
  DistributionMatrix q(2, 2);
  std::vector<double> bad_row = {0.7, 0.6};
  EXPECT_DEATH(q.SetRow(0, bad_row), "sums to");
}

}  // namespace
}  // namespace qasca
