#include "util/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "util/json.h"

namespace qasca::util {
namespace {

// Innermost request-scoped trace id on this thread (see TraceScope).
thread_local uint64_t g_current_trace_id = 0;

// Recorder-local thread ids: small, dense, assigned on a thread's first
// record. Process-wide (shared across recorders) so the ids stay stable if
// several recorders coexist; the exact values only feed shard selection and
// the exported "tid" field, never a decision.
std::atomic<uint32_t> g_next_thread_id{0};

uint32_t ThreadId() noexcept {
  thread_local const uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceScope::TraceScope(uint64_t trace_id) noexcept
    : saved_(g_current_trace_id) {
  g_current_trace_id = trace_id;
}

TraceScope::~TraceScope() { g_current_trace_id = saved_; }

uint64_t TraceScope::current() noexcept { return g_current_trace_id; }

FlightRecorder::FlightRecorder(int capacity_events, TickSource tick_source)
    : shard_capacity_(std::max(1, (capacity_events + kShards - 1) / kShards)),
      capacity_(shard_capacity_ * kShards),
      tick_source_(tick_source ? std::move(tick_source)
                               : SteadyTickSource()) {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.ring.reserve(static_cast<size_t>(shard_capacity_));
  }
}

void FlightRecorder::Record(const char* name, Phase phase) noexcept {
  Event event;
  event.ts_ns = tick_source_();
  event.trace_id = g_current_trace_id;
  event.name = name;
  event.tid = ThreadId();
  event.phase = phase;
  Shard& shard = shards_[event.tid % kShards];
  MutexLock lock(shard.mutex);
  if (static_cast<int>(shard.ring.size()) < shard_capacity_) {
    shard.ring.push_back(event);
  } else {
    shard.ring[static_cast<size_t>(shard.head % shard_capacity_)] = event;
  }
  ++shard.head;
}

void FlightRecorder::RecordBegin(const char* name) noexcept {
  Record(name, Phase::kBegin);
}

void FlightRecorder::RecordEnd(const char* name) noexcept {
  Record(name, Phase::kEnd);
}

int64_t FlightRecorder::total_events() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.head;
  }
  return total;
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(capacity_));
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    const auto size = static_cast<int64_t>(shard.ring.size());
    // Oldest-first logical order: once wrapped, the oldest surviving event
    // sits at the next write slot.
    const int64_t start = shard.head >= shard_capacity_
                              ? shard.head % shard_capacity_
                              : 0;
    for (int64_t i = 0; i < size; ++i) {
      events.push_back(shard.ring[static_cast<size_t>((start + i) % size)]);
    }
  }
  // Stable sort keeps each shard's append order among equal timestamps, and
  // a thread's events all live in one shard — so per-thread program order
  // survives the merge (the B/E balancing below depends on this).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

std::string FlightRecorder::ToChromeJson() const {
  const std::vector<Event> events = Snapshot();

  // Per-thread stack simulation over the merged stream, marking the events
  // to emit. Ring eviction drops a *prefix* of each thread's event sequence
  // (appends are in program order and a shard overwrites oldest-first), and
  // the survivors of a prefix-truncated well-nested sequence leave every
  // orphaned "E" arriving at an empty stack — so dropping empty-stack "E"s
  // and still-open "B"s yields balanced pairs.
  std::vector<char> keep(events.size(), 0);
  std::map<uint32_t, std::vector<size_t>> stacks;
  for (size_t i = 0; i < events.size(); ++i) {
    std::vector<size_t>& stack = stacks[events[i].tid];
    if (events[i].phase == Phase::kBegin) {
      stack.push_back(i);
    } else if (!stack.empty() && events[stack.back()].name == events[i].name) {
      keep[stack.back()] = 1;
      keep[i] = 1;
      stack.pop_back();
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < events.size(); ++i) {
    if (!keep[i]) continue;
    const Event& event = events[i];
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, event.name);
    out += ",\"cat\":\"qasca\",\"ph\":\"";
    out += event.phase == Phase::kBegin ? 'B' : 'E';
    out += "\",\"ts\":";
    // trace_event timestamps are microseconds; fractional values keep the
    // full nanosecond resolution.
    AppendJsonNumber(out, static_cast<double>(event.ts_ns) / 1e3);
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"args\":{\"trace\":";
    out += std::to_string(event.trace_id);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace qasca::util
