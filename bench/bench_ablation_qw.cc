// Ablation (DESIGN.md §5): the paper estimates Qw by *sampling* the label
// the worker would answer (weighted random sampling, Section 5.3). The
// tempting deterministic alternative — averaging the conditioned posterior
// over the predicted answer distribution — is degenerate: by the law of
// total probability the expectation of the posterior equals the prior, so
// Qw collapses to Qc, every assignment looks equally (un)profitable, and
// the assignment decays to an arbitrary fixed choice. This bench quantifies
// that collapse end to end.

#include <cstdio>

#include "bench/experiment_driver.h"
#include "platform/qasca_strategy.h"
#include "util/table.h"

namespace qasca {
namespace {

void RunAll() {
  const int seeds = bench::SeedsFromEnv(2);
  std::vector<SystemFactory> systems = {
      {"QASCA(sampled Qw)",
       [] { return std::make_unique<QascaStrategy>(QwMode::kSampled); }},
      {"QASCA(expected Qw)",
       [] { return std::make_unique<QascaStrategy>(QwMode::kExpected); }},
  };

  util::PrintSection(
      "Ablation — sampled vs expected Qw estimation (final quality, mean "
      "of runs)");
  util::Table table({"Dataset", "metric", "sampled Qw", "expected Qw"});
  for (const ApplicationSpec& app :
       {FilmPostersApp(), EntityResolutionApp(), NegativeSentimentApp()}) {
    bench::AveragedTraces traces = bench::RunAveraged(
        app, systems, seeds, /*checkpoints=*/4,
        /*track_estimation_deviation=*/false);
    table.AddRow()
        .Cell(app.name)
        .Cell(app.metric.kind == MetricSpec::Kind::kAccuracy ? "Accuracy"
                                                             : "F-score")
        .Percent(traces.final_quality[0], 2)
        .Percent(traces.final_quality[1], 2);
  }
  table.Print();
  std::printf(
      "Expected shape: expected-Qw collapses toward chance level — the\n"
      "sampling step in Section 5.3 is load-bearing, not incidental.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
