#include "core/assignment/topk_benefit.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/brute_force.h"
#include "core/metrics/accuracy.h"
#include "util/rng.h"

namespace qasca {
namespace {

// Figure 2 matrices. S^w = {q1, q2, q4, q6} = 0-based {0, 1, 3, 5}; rows of
// Qw outside S^w are placeholders and never read.
DistributionMatrix Figure2Qc() {
  DistributionMatrix qc(6, 2);
  qc.SetRow(0, std::vector<double>{0.8, 0.2});
  qc.SetRow(1, std::vector<double>{0.6, 0.4});
  qc.SetRow(2, std::vector<double>{0.25, 0.75});
  qc.SetRow(3, std::vector<double>{0.5, 0.5});
  qc.SetRow(4, std::vector<double>{0.9, 0.1});
  qc.SetRow(5, std::vector<double>{0.3, 0.7});
  return qc;
}

DistributionMatrix Figure2Qw() {
  DistributionMatrix qw = Figure2Qc();
  qw.SetRow(0, std::vector<double>{0.923, 0.077});
  qw.SetRow(1, std::vector<double>{0.818, 0.182});
  qw.SetRow(3, std::vector<double>{0.75, 0.25});
  qw.SetRow(5, std::vector<double>{0.125, 0.875});
  return qw;
}

AssignmentRequest Figure2Request(const DistributionMatrix& qc,
                                 const DistributionMatrix& qw) {
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 3, 5};
  request.k = 2;
  return request;
}

TEST(TopKBenefitTest, PaperExample4SelectsQ2AndQ4) {
  // Example 4: benefits are 0.123 (q1), 0.218 (q2), 0.25 (q4), 0.175 (q6);
  // the HIT is {q2, q4} (the paper prints 0.212 for q2 but its own Figure 2
  // values give 0.818 - 0.6 = 0.218; the selection is unchanged).
  DistributionMatrix qc = Figure2Qc();
  DistributionMatrix qw = Figure2Qw();
  AssignmentResult result = AssignTopKBenefit(Figure2Request(qc, qw));
  EXPECT_EQ(result.selected, (std::vector<QuestionIndex>{1, 3}));
}

TEST(TopKBenefitTest, ObjectiveMatchesAccuracyOfAssignmentMatrix) {
  DistributionMatrix qc = Figure2Qc();
  DistributionMatrix qw = Figure2Qw();
  AssignmentResult result = AssignTopKBenefit(Figure2Request(qc, qw));
  AccuracyMetric metric;
  DistributionMatrix qx = BuildAssignmentMatrix(qc, qw, result.selected);
  EXPECT_NEAR(result.objective, metric.Quality(qx), 1e-12);
}

TEST(TopKBenefitTest, NegativeBenefitsStillFillTheHit) {
  // Even when the worker makes every row worse, a HIT of k questions must
  // be assigned (the budget model always hands out k questions).
  DistributionMatrix qc(3, 2);
  for (int i = 0; i < 3; ++i) qc.SetRow(i, std::vector<double>{0.9, 0.1});
  DistributionMatrix qw(3, 2);
  for (int i = 0; i < 3; ++i) qw.SetRow(i, std::vector<double>{0.6, 0.4});
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 2};
  request.k = 2;
  AssignmentResult result = AssignTopKBenefit(request);
  EXPECT_EQ(result.selected.size(), 2u);
}

TEST(TopKBenefitTest, RespectsCandidateSet) {
  DistributionMatrix qc(4, 2);
  for (int i = 0; i < 4; ++i) qc.SetRow(i, std::vector<double>{0.5, 0.5});
  DistributionMatrix qw = qc;
  // Question 0 would be the best pick, but it is not a candidate.
  qw.SetRow(0, std::vector<double>{1.0, 0.0});
  qw.SetRow(2, std::vector<double>{0.7, 0.3});
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {1, 2, 3};
  request.k = 1;
  AssignmentResult result = AssignTopKBenefit(request);
  EXPECT_EQ(result.selected, (std::vector<QuestionIndex>{2}));
}

TEST(TopKBenefitTest, KEqualsCandidateCountSelectsAll) {
  DistributionMatrix qc(3, 2);
  DistributionMatrix qw(3, 2);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 2};
  request.k = 3;
  AssignmentResult result = AssignTopKBenefit(request);
  EXPECT_EQ(result.selected, (std::vector<QuestionIndex>{0, 1, 2}));
}

class TopKBenefitSweep : public ::testing::TestWithParam<int> {};

TEST_P(TopKBenefitSweep, MatchesBruteForceOptimum) {
  util::Rng rng(5000 + GetParam());
  AccuracyMetric metric;
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4 + rng.UniformInt(5);       // 4..8
    int num_labels = 2 + rng.UniformInt(2);  // 2..3
    DistributionMatrix qc(n, num_labels);
    DistributionMatrix qw(n, num_labels);
    std::vector<double> w(num_labels);
    for (int i = 0; i < n; ++i) {
      for (double& x : w) x = rng.Uniform(0.01, 1.0);
      qc.SetRowNormalized(i, w);
      for (double& x : w) x = rng.Uniform(0.01, 1.0);
      qw.SetRowNormalized(i, w);
    }
    int m = 2 + rng.UniformInt(n - 1);
    std::vector<int> candidates = rng.SampleWithoutReplacement(n, m);
    int k = 1 + rng.UniformInt(m);

    AssignmentRequest request;
    request.current = &qc;
    request.estimated = &qw;
    request.candidates = candidates;
    request.k = k;

    AssignmentResult fast = AssignTopKBenefit(request);
    AssignmentResult slow = AssignBruteForce(request, metric);
    EXPECT_NEAR(fast.objective, slow.objective, 1e-10)
        << "n=" << n << " m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKBenefitSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace qasca
