#ifndef QASCA_PLATFORM_STORAGE_H_
#define QASCA_PLATFORM_STORAGE_H_

#include <string>

#include "core/types.h"
#include "util/attributes.h"
#include "util/status.h"

namespace qasca {

/// CSV persistence for answer sets — the Database component's stable
/// external format. One answer per line:
///
///   question,worker,label
///   0,17,1
///   0,3,0
///   ...
///
/// with exactly that header. Question/label indices are 0-based, matching
/// the library convention.
///
/// Serialisation is loss-free (answer order within a question preserved);
/// parsing validates shape and ranges and returns Status errors rather than
/// aborting, since files are external input.
std::string AnswerSetToCsv(const AnswerSet& answers);

/// Parses `csv` into an answer set for a pool of `num_questions` questions
/// with `num_labels` labels. Fails on a bad header, malformed rows, or
/// out-of-range indices.
QASCA_NODISCARD
util::StatusOr<AnswerSet> AnswerSetFromCsv(const std::string& csv,
                                           int num_questions, int num_labels);

/// Writes AnswerSetToCsv(answers) to `path`.
QASCA_NODISCARD
util::Status SaveAnswerSet(const std::string& path, const AnswerSet& answers);

/// Reads and parses `path`.
QASCA_NODISCARD
util::StatusOr<AnswerSet> LoadAnswerSet(const std::string& path,
                                        int num_questions, int num_labels);

}  // namespace qasca

#endif  // QASCA_PLATFORM_STORAGE_H_
