#include "util/tick.h"

#include <chrono>

namespace qasca::util {

TickSource SteadyTickSource() {
  return [origin = std::chrono::steady_clock::now()]() -> uint64_t {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
  };
}

}  // namespace qasca::util
