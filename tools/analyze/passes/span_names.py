"""Pass `span-names`: every util::Span must use a registered stage name.

Port of the second rule of the retired tools/lint_invariants.py (ISSUE 3):
every util::Span constructed under src/ must name its stage via a
tnames::kSpan* constant declared in util/telemetry_names.h — never a raw
string literal or an unregistered identifier — so stage names cannot drift
between the engine, the benches and the docs.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceTree

# Every util::Span construction; group 1 is the name argument.
SPAN_CONSTRUCTION = re.compile(r"\bSpan\s+\w+\s*\(\s*[^,()]+,\s*([^)]+?)\s*\)")

# Declarations in util/telemetry_names.h:
#   inline constexpr char kSpanAssignHit[] = "assign_hit";
SPAN_NAME_DECL = re.compile(r"inline\s+constexpr\s+char\s+(kSpan\w+)\s*\[\]")

NAMES_HEADER = "src/util/telemetry_names.h"

# telemetry.{h,cc} define Span itself; telemetry_names.h declares the names.
ALLOWLIST = {
    "src/util/telemetry.h",
    "src/util/telemetry.cc",
    NAMES_HEADER,
}


class SpanNamesPass:
    name = "span-names"
    description = ("util::Span stage names must be tnames::kSpan* constants "
                   "registered in util/telemetry_names.h")
    severity = ERROR
    roots = ("src",)

    def run(self, tree: SourceTree) -> list[Finding]:
        names_header = tree.file(NAMES_HEADER)
        if names_header is None:
            return [Finding(
                pass_name=self.name, severity=self.severity,
                path=NAMES_HEADER, line=0,
                message="missing: span-name registry header not found")]
        registered = set(SPAN_NAME_DECL.findall(names_header.text))
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            if source.rel in ALLOWLIST:
                continue
            for match in SPAN_CONSTRUCTION.finditer(source.code):
                arg = match.group(1).strip()
                # May be qualified: util::tnames::kSpanX, tnames::kSpanX.
                identifier = arg.rsplit("::", 1)[-1]
                if identifier not in registered:
                    findings.append(Finding(
                        pass_name=self.name, severity=self.severity,
                        path=source.rel, line=source.line_of(match.start()),
                        message=(f"Span constructed with unregistered name "
                                 f"{arg!r} — declare it as a tnames::kSpan* "
                                 "constant in util/telemetry_names.h")))
        return findings
