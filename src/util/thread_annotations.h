#ifndef QASCA_UTIL_THREAD_ANNOTATIONS_H_
#define QASCA_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
///
/// These let the compiler prove lock discipline at build time: members
/// carry QASCA_GUARDED_BY(mu), functions declare QASCA_REQUIRES(mu) /
/// QASCA_EXCLUDES(mu), and lock types are QASCA_CAPABILITY wrappers whose
/// acquire/release methods are annotated (see util/mutex.h). The `analyze`
/// CMake preset compiles the tree with
/// `-Wthread-safety -Werror=thread-safety` under Clang so every violation
/// is a build error; GCC builds see plain declarations.
///
/// The lock-annotations pass of tools/analyze.py enforces the project side
/// of the contract: raw std::mutex members are banned outside util/mutex.h
/// and every util::Mutex member must be named by at least one
/// QASCA_GUARDED_BY / QASCA_REQUIRES annotation (see DESIGN.md "Static
/// analysis").

#if defined(__clang__) && (!defined(SWIG))
#define QASCA_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define QASCA_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Marks a type as a lock (a "capability" in Clang's vocabulary); `x` is
/// the capability kind shown in diagnostics, e.g. QASCA_CAPABILITY("mutex").
#define QASCA_CAPABILITY(x) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define QASCA_SCOPED_CAPABILITY \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares that a data member may only be read or written while holding
/// the given capability.
#define QASCA_GUARDED_BY(x) QASCA_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Declares that the pointed-to data (not the pointer itself) is protected
/// by the given capability.
#define QASCA_PT_GUARDED_BY(x) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Declares that callers must hold the given capability (exclusively)
/// before calling, and still hold it on return.
#define QASCA_REQUIRES(...) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capability (the function
/// acquires it itself; calling with it held would deadlock).
#define QASCA_EXCLUDES(...) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and does not release it before
/// returning (Mutex::Lock, MutexLock's constructor).
#define QASCA_ACQUIRE(...) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases a held capability (Mutex::Unlock, MutexLock's
/// destructor).
#define QASCA_RELEASE(...) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns true (try-lock).
#define QASCA_TRY_ACQUIRE(...) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the named capability without affecting its state;
/// lets annotations on other declarations name a lock through an accessor.
#define QASCA_RETURN_CAPABILITY(x) \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use must
/// explain itself in an adjacent comment.
#define QASCA_NO_THREAD_SAFETY_ANALYSIS \
  QASCA_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // QASCA_UTIL_THREAD_ANNOTATIONS_H_
