#ifndef QASCA_UTIL_STATUS_H_
#define QASCA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/attributes.h"
#include "util/logging.h"

namespace qasca::util {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil convention: library code returns Status rather than
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kAlreadyExists,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result for operations that can fail at runtime
/// (bad configuration, exhausted budget, unknown ids). Cheap to copy on
/// the success path. The class itself is QASCA_NODISCARD: any function
/// returning a Status by value has a must-check result, with no
/// per-declaration annotation to forget.
class QASCA_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. `value()` aborts if
/// called on an error; check `ok()` or use `status()` first. QASCA_NODISCARD
/// like Status: discarding a StatusOr discards the error channel too.
template <typename T>
class QASCA_NODISCARD StatusOr {
 public:
  /// Implicit construction from a value or an error keeps call sites
  /// readable (`return result;` / `return Status::NotFound(...)`).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    QASCA_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  const T& value() const& {
    QASCA_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    QASCA_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    QASCA_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qasca::util

/// Propagates a non-OK Status to the caller.
#define QASCA_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::qasca::util::Status status_ = (expr);  \
    if (!status_.ok()) return status_;       \
  } while (false)

#endif  // QASCA_UTIL_STATUS_H_
