#ifndef QASCA_UTIL_LOCK_RANKS_H_
#define QASCA_UTIL_LOCK_RANKS_H_

namespace qasca::util::lock_ranks {

/// The process-wide lock ranking, mirroring the total order the analyzer's
/// `lock-order` pass computes from the interprocedural lock-acquisition
/// graph and checks in as tools/analyze/lock_order.json. A thread may only
/// acquire ranked mutexes in strictly increasing rank order; DCHECK builds
/// enforce this at runtime (util/mutex.h, QASCA_MUTEX_RANK_CHECKS).
///
/// When a new mutex member or a new nesting edge appears, rerun
///   python3 tools/analyze.py --write-lock-order
/// and update these constants to match the regenerated json — the analyzer
/// fails the tree when the checked-in ranking is stale, and the deadlock
/// tests in tests/util/ pin the runtime check itself.
///
/// Gaps of 10 leave room to slot a new lock between two existing ones
/// without renumbering everything.
inline constexpr int kFailPointsRegistry = 10;     // FailPoints::mutex_
inline constexpr int kFlightRecorderShard = 20;    // FlightRecorder::Shard::mutex
inline constexpr int kMetricRegistry = 30;         // MetricRegistry::mutex_
inline constexpr int kLatencyHistogram = 40;       // LatencyHistogram::mutex_
inline constexpr int kThreadPool = 50;             // ThreadPool::mutex_
inline constexpr int kWindowedLatency = 60;        // WindowedLatency::mutex_

}  // namespace qasca::util::lock_ranks

#endif  // QASCA_UTIL_LOCK_RANKS_H_
