#ifndef QASCA_UTIL_BAD_LOCK_ORDER_H_
#define QASCA_UTIL_BAD_LOCK_ORDER_H_

// lock-order fixture: an ABBA pair nested directly in two methods, an
// interprocedural inversion routed through helper calls, and a
// re-acquisition self-deadlock must fire (one finding per cycle, at the
// witness of the cycle's lexicographically first edge); a consistently
// ordered pair must not, and an allow'd cycle must suppress.

#include "util/mutex.h"
#include "util/thread_annotations.h"

class DeadlockPair {
 public:
  void FirstAThenB() {
    qasca::util::MutexLock la(mu_a_);
    qasca::util::MutexLock lb(mu_b_);  // analyze:expect(lock-order)
    ++a_total_;
    ++b_total_;
  }

  void SecondBThenA() {
    qasca::util::MutexLock lb(mu_b_);
    qasca::util::MutexLock la(mu_a_);
    ++a_total_;
    ++b_total_;
  }

 private:
  qasca::util::Mutex mu_a_;
  qasca::util::Mutex mu_b_;
  int a_total_ QASCA_GUARDED_BY(mu_a_) = 0;
  int b_total_ QASCA_GUARDED_BY(mu_b_) = 0;
};

class CrossProc {
 public:
  void OuterThenHelper() {
    qasca::util::MutexLock lock(outer_mu_);
    HelperLocksInner();
    ++outer_hits_;
  }

  void BackThenReacquire() {
    qasca::util::MutexLock lock(inner_mu_);
    ReacquireOuter();  // analyze:expect(lock-order)
    ++inner_hits_;
  }

 private:
  void HelperLocksInner() {
    qasca::util::MutexLock lock(inner_mu_);
    ++inner_hits_;
  }

  void ReacquireOuter() {
    qasca::util::MutexLock lock(outer_mu_);
    ++outer_hits_;
  }

  qasca::util::Mutex outer_mu_;
  qasca::util::Mutex inner_mu_;
  int outer_hits_ QASCA_GUARDED_BY(outer_mu_) = 0;
  int inner_hits_ QASCA_GUARDED_BY(inner_mu_) = 0;
};

class Reenter {
 public:
  void LockTwice() {
    qasca::util::MutexLock first(mu_self_);
    qasca::util::MutexLock again(mu_self_);  // analyze:expect(lock-order)
    ++self_hits_;
  }

 private:
  qasca::util::Mutex mu_self_;
  int self_hits_ QASCA_GUARDED_BY(mu_self_) = 0;
};

// Consistent ordering: nesting alone is fine, only a cycle is a finding.
class OrderedPair {
 public:
  void AlwaysLowThenHigh() {
    qasca::util::MutexLock low(mu_low_);
    qasca::util::MutexLock high(mu_high_);
    ++low_total_;
    ++high_total_;
  }

  void AlsoLowThenHigh() {
    qasca::util::MutexLock low(mu_low_);
    qasca::util::MutexLock high(mu_high_);
    ++low_total_;
  }

 private:
  qasca::util::Mutex mu_low_;
  qasca::util::Mutex mu_high_;
  int low_total_ QASCA_GUARDED_BY(mu_low_) = 0;
  int high_total_ QASCA_GUARDED_BY(mu_high_) = 0;
};

class AllowedPair {
 public:
  void AaThenBb() {
    qasca::util::MutexLock la(mu_aa_);
    qasca::util::MutexLock lb(mu_bb_);  // analyze:allow(lock-order) legacy cycle, tracked in the migration plan
    ++aa_total_;
  }

  void BbThenAa() {
    qasca::util::MutexLock lb(mu_bb_);
    qasca::util::MutexLock la(mu_aa_);
    ++bb_total_;
  }

 private:
  qasca::util::Mutex mu_aa_;
  qasca::util::Mutex mu_bb_;
  int aa_total_ QASCA_GUARDED_BY(mu_aa_) = 0;
  int bb_total_ QASCA_GUARDED_BY(mu_bb_) = 0;
};

#endif  // QASCA_UTIL_BAD_LOCK_ORDER_H_
