#ifndef QASCA_MODEL_EM_H_
#define QASCA_MODEL_EM_H_

#include <unordered_map>
#include <vector>

#include "core/distribution_matrix.h"
#include "core/types.h"
#include "model/worker_model.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace qasca {

/// Configuration of the EM parameter-estimation pass (Section 5.2; the
/// Dawid–Skene algorithm [1] with the EM machinery of [10], as used by
/// Ipeirotis et al. [22]).
struct EmOptions {
  /// Worker parameterisation to fit: full confusion matrices or single-value
  /// worker probabilities (Table 2 compares the two).
  WorkerModel::Kind worker_kind = WorkerModel::Kind::kConfusionMatrix;
  /// Maximum E/M rounds.
  int max_iterations = 50;
  /// Convergence threshold on the max absolute change of any posterior cell.
  double tolerance = 1e-6;
  /// Additive (Laplace) smoothing applied in the M-step so that workers with
  /// few answers do not collapse to 0/1 probabilities.
  double smoothing = 1.0;
  /// If false, the prior is kept fixed at its initial (uniform) value
  /// instead of being re-estimated each round.
  bool estimate_prior = true;
};

/// Output of EM: fitted worker models, label prior, the posterior
/// distribution matrix Qc implied by the final parameters, and diagnostics.
struct EmResult {
  std::unordered_map<WorkerId, WorkerModel> workers;
  std::vector<double> prior;
  DistributionMatrix posterior{0, 1};
  int iterations = 0;
  /// Model returned for workers absent from `workers` — a perfect worker,
  /// matching the paper's new-worker assumption (Section 5.2).
  WorkerModel fallback = WorkerModel::PerfectWp(2);

  /// The fitted model of `worker`, or `fallback` if the worker never
  /// answered.
  const WorkerModel& WorkerFor(WorkerId worker) const;
};

/// Runs EM over the answer set: E-step computes per-question posteriors from
/// the current worker models and prior (Eq. 16); M-step re-estimates worker
/// models and prior from the posteriors. Initialisation uses smoothed
/// per-question vote counts, the standard Dawid–Skene bootstrap.
///
/// `pool` (optional) parallelises the E-step: per-question posterior rows
/// are independent, so questions are partitioned into fixed-grain chunks and
/// the per-chunk reductions (convergence delta, log-likelihood) fold in
/// chunk-index order — results are bit-identical for every thread count,
/// including the serial pool == nullptr path.
///
/// `telemetry` (optional) records the E/M rounds this fit took
/// (tnames::kEmIterations); it never affects the fit.
EmResult RunEm(const AnswerSet& answers, int num_labels,
               const EmOptions& options, util::ThreadPool* pool = nullptr,
               util::MetricRegistry* telemetry = nullptr);

/// Warm-started EM: initialises the posteriors from `previous` (falling back
/// to the vote bootstrap for questions whose answer count changed shape) and
/// iterates from there. On the platform's HIT-completion path — where each
/// refit sees the previous answer set plus k new answers — this converges in
/// one or two rounds instead of the cold fit's half dozen, with the same
/// fixed point. `pool` as in RunEm.
EmResult RunEmWarmStart(const AnswerSet& answers, int num_labels,
                        const EmOptions& options, const EmResult& previous,
                        util::ThreadPool* pool = nullptr,
                        util::MetricRegistry* telemetry = nullptr);

}  // namespace qasca

#endif  // QASCA_MODEL_EM_H_
