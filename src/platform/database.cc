#include "platform/database.h"

#include "model/prior.h"
#include "util/logging.h"
#include "util/telemetry_names.h"

namespace qasca {

Database::Database(int num_questions, int num_labels)
    : num_questions_(num_questions),
      num_labels_(num_labels),
      answers_(num_questions),
      current_(num_questions, num_labels) {
  QASCA_CHECK_GT(num_questions, 0);
  QASCA_CHECK_GT(num_labels, 1);
  parameters_.prior = UniformPrior(num_labels);
  parameters_.posterior = current_;
  parameters_.fallback = WorkerModel::PerfectWp(num_labels);
}

void Database::AttachTelemetry(util::MetricRegistry* registry) {
  if (registry == nullptr) {
    answers_recorded_ = nullptr;
    posterior_row_updates_ = nullptr;
    return;
  }
  answers_recorded_ = registry->GetCounter(util::tnames::kDbAnswersRecorded);
  posterior_row_updates_ =
      registry->GetCounter(util::tnames::kDbPosteriorRowUpdates);
}

void Database::MarkAssigned(WorkerId worker,
                            const std::vector<QuestionIndex>& questions) {
  std::unordered_set<QuestionIndex>& assigned = assigned_[worker];
  for (QuestionIndex q : questions) {
    QASCA_CHECK_GE(q, 0);
    QASCA_CHECK_LT(q, num_questions_);
    bool inserted = assigned.insert(q).second;
    QASCA_CHECK(inserted) << "question assigned twice to the same worker";
  }
}

void Database::Unassign(WorkerId worker,
                        const std::vector<QuestionIndex>& questions) {
  auto it = assigned_.find(worker);
  QASCA_CHECK(it != assigned_.end())
      << "unassigning from a worker with no assignments";
  for (QuestionIndex q : questions) {
    QASCA_CHECK_GE(q, 0);
    QASCA_CHECK_LT(q, num_questions_);
    QASCA_CHECK_EQ(it->second.erase(q), 1u)
        << "question was not assigned to this worker";
  }
}

void Database::RecordAnswer(QuestionIndex question, WorkerId worker,
                            LabelIndex label) {
  QASCA_CHECK_GE(question, 0);
  QASCA_CHECK_LT(question, num_questions_);
  QASCA_CHECK_GE(label, 0);
  QASCA_CHECK_LT(label, num_labels_);
  answers_[question].push_back(Answer{worker, label});
  if (answers_recorded_ != nullptr) answers_recorded_->Add(1);
}

std::vector<QuestionIndex> Database::CandidatesFor(WorkerId worker) const {
  std::vector<QuestionIndex> candidates;
  auto it = assigned_.find(worker);
  if (it == assigned_.end()) {
    candidates.resize(num_questions_);
    for (int i = 0; i < num_questions_; ++i) candidates[i] = i;
    return candidates;
  }
  candidates.reserve(num_questions_ - it->second.size());
  for (int i = 0; i < num_questions_; ++i) {
    if (!it->second.contains(i)) candidates.push_back(i);
  }
  return candidates;
}

int Database::AnswerCount(QuestionIndex question) const {
  QASCA_CHECK_GE(question, 0);
  QASCA_CHECK_LT(question, num_questions_);
  return static_cast<int>(answers_[question].size());
}

void Database::SetParameters(EmResult parameters) {
  parameters_ = std::move(parameters);
  current_ = parameters_.posterior;
}

void Database::UpdatePosteriorRow(QuestionIndex question,
                                  std::span<const double> row) {
  QASCA_CHECK_GE(question, 0);
  QASCA_CHECK_LT(question, num_questions_);
  // The engine may be mid-run with a posterior shaped before any full fit;
  // both copies of the row must stay in lockstep so a later warm start and
  // the assignment path read the same beliefs.
  QASCA_CHECK_EQ(parameters_.posterior.num_questions(), num_questions_);
  parameters_.posterior.SetRow(question, row);
  current_.SetRow(question, row);
  if (posterior_row_updates_ != nullptr) posterior_row_updates_->Add(1);
}

}  // namespace qasca
