#include "platform/provenance.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels/kernels.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "util/flight_recorder.h"

namespace qasca {
namespace {

DecisionProvenance SampleRecord(uint64_t hit_id) {
  DecisionProvenance record;
  record.trace_id = hit_id * 10 + 1;
  record.hit_id = hit_id;
  record.worker = static_cast<WorkerId>(hit_id % 5);
  record.questions = {1, 4, 9};
  record.scores = {0.25, 0.125, 0.0625};
  record.objective = 0.75;
  record.outer_iterations = 2;
  record.inner_iterations = 6;
  record.candidates = 40;
  record.overlay_rows = 40;
  record.used_overlay = true;
  record.likelihood_cache_hit = hit_id % 2 == 0;
  record.em_generation = 3;
  record.kernel_isa = 1;
  record.journal_seq = hit_id * 2;
  record.now_ticks = hit_id * 7;
  record.lease_deadline = hit_id * 7 + 100;
  return record;
}

TEST(ProvenanceLogTest, RecordStampsSequenceAndRetains) {
  ProvenanceLog log(8);
  EXPECT_EQ(log.size(), 0);
  EXPECT_EQ(log.total_appended(), 0);
  for (uint64_t i = 0; i < 3; ++i) log.Record(SampleRecord(i));
  EXPECT_EQ(log.size(), 3);
  EXPECT_EQ(log.total_appended(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log.at(i).seq, static_cast<uint64_t>(i));
    EXPECT_EQ(log.at(i).hit_id, static_cast<uint64_t>(i));
  }
}

TEST(ProvenanceLogTest, RingWrapKeepsNewestOldestFirst) {
  ProvenanceLog log(4);
  for (uint64_t i = 0; i < 10; ++i) log.Record(SampleRecord(i));
  EXPECT_EQ(log.capacity(), 4);
  EXPECT_EQ(log.size(), 4);
  EXPECT_EQ(log.total_appended(), 10);
  // Records 6..9 survive, oldest first, seq == lifetime append index.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(log.at(i).seq, static_cast<uint64_t>(6 + i));
    EXPECT_EQ(log.at(i).hit_id, static_cast<uint64_t>(6 + i));
  }
}

TEST(ProvenanceLogTest, JsonLinesRoundTripsEveryField) {
  ProvenanceLog log(8);
  log.Record(SampleRecord(0));
  log.Record(SampleRecord(1));
  const std::string dump = log.ToJsonLines();
  auto parsed = ProvenanceLog::ParseJsonLines(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  for (size_t i = 0; i < parsed->size(); ++i) {
    const DecisionProvenance& got = (*parsed)[i];
    const DecisionProvenance& want = log.at(static_cast<int>(i));
    EXPECT_EQ(got.seq, want.seq);
    EXPECT_EQ(got.trace_id, want.trace_id);
    EXPECT_EQ(got.hit_id, want.hit_id);
    EXPECT_EQ(got.worker, want.worker);
    EXPECT_EQ(got.questions, want.questions);
    ASSERT_EQ(got.scores.size(), want.scores.size());
    for (size_t s = 0; s < got.scores.size(); ++s) {
      EXPECT_DOUBLE_EQ(got.scores[s], want.scores[s]);
    }
    EXPECT_DOUBLE_EQ(got.objective, want.objective);
    EXPECT_EQ(got.outer_iterations, want.outer_iterations);
    EXPECT_EQ(got.inner_iterations, want.inner_iterations);
    EXPECT_EQ(got.candidates, want.candidates);
    EXPECT_EQ(got.overlay_rows, want.overlay_rows);
    EXPECT_EQ(got.used_overlay, want.used_overlay);
    EXPECT_EQ(got.likelihood_cache_hit, want.likelihood_cache_hit);
    EXPECT_EQ(got.em_generation, want.em_generation);
    EXPECT_EQ(got.kernel_isa, want.kernel_isa);
    EXPECT_EQ(got.journal_seq, want.journal_seq);
    EXPECT_EQ(got.now_ticks, want.now_ticks);
    EXPECT_EQ(got.lease_deadline, want.lease_deadline);
  }
}

TEST(ProvenanceLogTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ProvenanceLog::ParseJsonLines("not json").ok());
  EXPECT_FALSE(ProvenanceLog::ParseJsonLines(
                   "{\"seq\": 0, \"questions\": [1, 2], \"scores\": [0.5]}")
                   .ok());
  // Blank lines and trailing newlines are fine.
  auto empty = ProvenanceLog::ParseJsonLines("\n\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

AppConfig ObservedConfig() {
  AppConfig config;
  config.name = "provenance-test";
  config.num_questions = 30;
  config.num_labels = 2;
  config.questions_per_hit = 3;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 6;  // 6 HITs
  config.metric = MetricSpec::Accuracy();
  config.em.max_iterations = 10;
  config.provenance_enabled = true;
  config.provenance_capacity = 16;
  config.flight_recorder_enabled = true;
  config.flight_recorder_capacity = 4096;
  return config;
}

TEST(ProvenanceEngineTest, EveryAssignmentGetsOneRecord) {
  TaskAssignmentEngine engine(ObservedConfig(),
                              std::make_unique<QascaStrategy>(), /*seed=*/3);
  int assigned = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = assigned % 3;
    auto hit = engine.RequestHit(worker);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ++assigned;
    std::vector<LabelIndex> labels(hit->size(), 0);
    ASSERT_TRUE(engine.CompleteHit(worker, labels).ok());
  }
  ASSERT_GT(assigned, 0);

  const ProvenanceLog* log = engine.provenance();
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->total_appended(), assigned);
  EXPECT_EQ(log->size(), assigned);
  for (int i = 0; i < log->size(); ++i) {
    const DecisionProvenance& record = log->at(i);
    EXPECT_EQ(record.seq, static_cast<uint64_t>(i));
    EXPECT_EQ(record.questions.size(), 3u);
    EXPECT_EQ(record.scores.size(), 3u);
    EXPECT_TRUE(std::is_sorted(record.questions.begin(),
                               record.questions.end()));
    EXPECT_GT(record.candidates, 0);
    EXPECT_TRUE(record.used_overlay);
    EXPECT_EQ(record.overlay_rows, record.candidates);
    EXPECT_EQ(record.kernel_isa, static_cast<int>(kernels::ActiveIsa()));
    // Requests and completions alternate, each taking one trace id.
    EXPECT_EQ(record.trace_id, static_cast<uint64_t>(2 * i));
  }

  // The failed request after budget exhaustion must not have appended.
  auto rejected = engine.RequestHit(0);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(log->total_appended(), assigned);

  // The flight recorder captured the same workflow: its export names every
  // nested assignment stage and references the recorded trace ids.
  const util::FlightRecorder* recorder = engine.flight_recorder();
  ASSERT_NE(recorder, nullptr);
  const std::string trace = recorder->ToChromeJson();
  for (const char* stage :
       {"assign_hit", "estimate_qw", "qw_overlay_fill", "topk_scan",
        "complete_hit"}) {
    EXPECT_NE(trace.find(stage), std::string::npos) << stage;
  }
}

TEST(ProvenanceEngineTest, DisabledByDefault) {
  AppConfig config = ObservedConfig();
  config.provenance_enabled = false;
  config.flight_recorder_enabled = false;
  TaskAssignmentEngine engine(std::move(config),
                              std::make_unique<QascaStrategy>(), /*seed=*/3);
  ASSERT_TRUE(engine.RequestHit(0).ok());
  EXPECT_EQ(engine.provenance(), nullptr);
  EXPECT_EQ(engine.flight_recorder(), nullptr);
}

}  // namespace
}  // namespace qasca
