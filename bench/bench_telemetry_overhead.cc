// Telemetry-overhead smoke check (PR 3): proves that DISABLED telemetry is
// effectively free on a hot path. The engine's kernels are instrumented
// unconditionally — a disabled registry hands out instruments whose
// mutators are a single predictable branch and spans that read no clock —
// so the cost of compiling telemetry into the tree must be measurable as
// ~zero.
//
// Method: a benefit-scan-like work loop (fold of x*log(x) over a row, the
// granularity of one Top-K candidate evaluation) is timed bare, then timed
// again with exactly the instrument calls the real hot path makes per
// candidate (one disabled Counter::Add) plus one disabled Span per row
// sweep. Best-of-N trials on both sides squeeze scheduler noise out; the
// check fails (exit 1) if the relative overhead exceeds the threshold.
//
// A third trial measures the ENABLED registry with an attached flight
// recorder (util/flight_recorder.h): every span then also appends two ring
// events. That cost is informational — tracing is an opt-in debugging mode
// with its own budget (DESIGN.md §13) — but the trial proves the recorder
// records under load and keeps its cost observable release to release.
//
// tools/run_checks.sh runs this as its telemetry-overhead stage with the
// default 2% threshold.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/flight_recorder.h"
#include "util/stats.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"

namespace qasca {
namespace {

constexpr int kRowLength = 64;
constexpr int kRowsPerTrial = 40000;
constexpr int kTrials = 7;

// One candidate-evaluation-sized unit of work.
double ScanRow(const std::vector<double>& row) {
  double acc = 0.0;
  for (double x : row) acc += x * std::log(x);
  return acc;
}

double BareTrial(const std::vector<double>& row) {
  util::Stopwatch stopwatch;
  double acc = 0.0;
  for (int i = 0; i < kRowsPerTrial; ++i) acc += ScanRow(row);
  const double seconds = stopwatch.ElapsedSeconds();
  // Defeat dead-code elimination.
  if (acc == 0.12345) std::fprintf(stderr, "%f\n", acc);
  return seconds;
}

double InstrumentedTrial(const std::vector<double>& row,
                         util::MetricRegistry* registry) {
  util::Counter* scanned =
      registry->GetCounter(util::tnames::kTopkCandidatesScanned);
  util::Stopwatch stopwatch;
  double acc = 0.0;
  for (int i = 0; i < kRowsPerTrial; ++i) {
    util::Span span(registry, util::tnames::kSpanTopkScan);
    acc += ScanRow(row);
    scanned->Add(1);
  }
  const double seconds = stopwatch.ElapsedSeconds();
  if (acc == 0.12345) std::fprintf(stderr, "%f\n", acc);
  return seconds;
}

int Main(int argc, char** argv) {
  double threshold = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_telemetry_overhead [--threshold FRACTION]\n");
      return 2;
    }
  }

  std::vector<double> row(kRowLength);
  for (int i = 0; i < kRowLength; ++i) {
    row[static_cast<size_t>(i)] = 0.25 + 0.5 * (i % 3) / 2.0;
  }

  util::MetricRegistry disabled(false);
  util::MetricRegistry recording(true);
  util::FlightRecorder recorder(1 << 16);
  recording.AttachFlightRecorder(&recorder);

  // Warm up all paths once before timing.
  BareTrial(row);
  InstrumentedTrial(row, &disabled);
  InstrumentedTrial(row, &recording);

  double best_bare = 1e300;
  double best_instrumented = 1e300;
  double best_recording = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    best_bare = std::min(best_bare, BareTrial(row));
    best_instrumented =
        std::min(best_instrumented, InstrumentedTrial(row, &disabled));
    best_recording =
        std::min(best_recording, InstrumentedTrial(row, &recording));
  }

  const double overhead = best_instrumented / best_bare - 1.0;
  std::printf(
      "telemetry-overhead: bare %.3f ms, instrumented(disabled) %.3f ms, "
      "overhead %+.2f%% (threshold %.1f%%)\n",
      best_bare * 1e3, best_instrumented * 1e3, overhead * 100.0,
      threshold * 100.0);
  // Informational: enabled registry + flight recorder (per-span ring
  // appends). Not thresholded — tracing is opt-in — but the recorder must
  // actually have recorded, else the "cost" was measuring a dead branch.
  std::printf(
      "telemetry-overhead: instrumented(recording) %.3f ms, overhead %+.2f%% "
      "(informational), %lld ring events\n",
      best_recording * 1e3, (best_recording / best_bare - 1.0) * 100.0,
      static_cast<long long>(recorder.total_events()));
  if (recorder.total_events() <= 0) {
    std::fprintf(stderr,
                 "FAIL: attached flight recorder captured no events\n");
    return 1;
  }

  // The disabled registry must also have recorded nothing.
  if (disabled.GetCounter(util::tnames::kTopkCandidatesScanned)->value() !=
          0 ||
      disabled.GetLatency(util::tnames::kSpanTopkScan)->count() != 0) {
    std::fprintf(stderr,
                 "FAIL: disabled registry recorded samples — no-op contract "
                 "broken\n");
    return 1;
  }
  if (overhead > threshold) {
    std::fprintf(stderr, "FAIL: disabled-telemetry overhead %.2f%% > %.1f%%\n",
                 overhead * 100.0, threshold * 100.0);
    return 1;
  }
  std::puts("telemetry-overhead: OK");
  return 0;
}

}  // namespace
}  // namespace qasca

int main(int argc, char** argv) { return qasca::Main(argc, argv); }
