"""Pass `api-layering`: the include graph must follow the layer DAG.

The engine split planned in ROADMAP.md (assignment core vs serving shell,
then multi-app serving) only stays tractable if the layers keep their
one-way dependencies. The sanctioned DAG, lowest first:

    util -> core -> model -> platform -> baselines -> simulation

Each layer may include itself and anything *below* it; an include edge
that points up the DAG (core including platform, model including
simulation, ...) couples the assignment math to the serving shell and is
an error. The edges come from the semantic frontend's include model over
the same TU set the build compiles, so a layering violation cannot hide in
a file the regex passes happened to skip.

`src/util` is the foundation and may include nothing but itself (and the
standard library — angled includes are never layer edges).
"""

from __future__ import annotations

from ..base import ERROR, Finding, SourceTree

# Layer -> the layers it may include (itself always allowed).
ALLOWED: dict[str, set[str]] = {
    "util": {"util"},
    "core": {"util", "core"},
    "model": {"util", "core", "model"},
    "platform": {"util", "core", "model", "platform"},
    "baselines": {"util", "core", "model", "platform", "baselines"},
    "simulation": {"util", "core", "model", "platform", "baselines",
                   "simulation"},
}

DAG = "util -> core -> model -> platform -> baselines -> simulation"


def layer_of(rel: str) -> str | None:
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in ALLOWED:
        return parts[1]
    return None


class ApiLayeringPass:
    name = "api-layering"
    description = ("include edges must follow the layer DAG "
                   f"({DAG}); no layer includes anything above itself")
    severity = ERROR
    roots = ("src",)

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            source_layer = layer_of(source.rel)
            if source_layer is None:
                continue
            allowed = ALLOWED[source_layer]
            for include in tree.model(source).includes:
                if include.angled:
                    continue
                resolved = tree.resolve_include(include.target)
                if resolved is None:
                    continue
                target_layer = layer_of(resolved)
                if target_layer is None or target_layer in allowed:
                    continue
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=include.line,
                    message=(f"layering violation: {source_layer} must not "
                             f"include {target_layer} "
                             f'("{include.target}") — the DAG is {DAG}')))
        return findings
