#ifndef QASCA_PLATFORM_DATABASE_H_
#define QASCA_PLATFORM_DATABASE_H_

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/distribution_matrix.h"
#include "core/types.h"
#include "model/em.h"
#include "util/telemetry.h"

namespace qasca {

/// The Database component of QASCA (Appendix A): stores the answer set D,
/// the per-worker assignment history that defines each candidate set S^w,
/// and the model parameters (worker models, prior, current distribution
/// matrix Qc) refreshed on every HIT completion.
///
/// Purely in-memory; the real system backs this with an RDBMS, but nothing
/// in the paper's algorithms depends on persistence.
///
/// Threading contract: single-writer, engine-thread-only — no internal
/// locking, deliberately. All mutators (MarkAssigned, RecordAnswer,
/// SetParameters, UpdatePosteriorRow, set_current) run on the engine
/// thread between kernel dispatches; ThreadPool chunks only ever see const
/// references to `answers()`, `parameters()` and `current()` while no
/// mutator can run (ParallelFor blocks the engine thread until every chunk
/// finishes). This contract is what lets the hot kernels skip locks
/// entirely; the lock-annotations pass of tools/analyze.py requires the
/// contract to be (re)stated here whenever this header grows shared state.
class Database {
 public:
  Database(int num_questions, int num_labels);

  int num_questions() const { return num_questions_; }
  int num_labels() const { return num_labels_; }

  /// Wires the database's write-path counters (answers recorded, posterior
  /// row updates) into `registry`. nullptr detaches. The engine attaches its
  /// own registry at construction.
  void AttachTelemetry(util::MetricRegistry* registry);

  /// Marks `questions` as assigned to `worker`; they leave S^w immediately
  /// so the worker can never receive duplicates, even across open HITs.
  void MarkAssigned(WorkerId worker, const std::vector<QuestionIndex>& questions);

  /// Reverses MarkAssigned for an expired lease: `questions` re-enter the
  /// worker's candidate set S^w. Each must currently be assigned to
  /// `worker` and must not have an answer recorded from them (requeue
  /// happens only for HITs that never completed).
  void Unassign(WorkerId worker, const std::vector<QuestionIndex>& questions);

  /// Appends one answer to D_i.
  void RecordAnswer(QuestionIndex question, WorkerId worker, LabelIndex label);

  /// The candidate set S^w: all questions never assigned to `worker`,
  /// ascending.
  std::vector<QuestionIndex> CandidatesFor(WorkerId worker) const;

  /// Number of answers collected for `question`.
  int AnswerCount(QuestionIndex question) const;

  const AnswerSet& answers() const { return answers_; }

  /// Replaces the cached model parameters (worker models + prior +
  /// posterior Qc) with a fresh EM fit.
  void SetParameters(EmResult parameters);
  const EmResult& parameters() const { return parameters_; }

  /// Incremental Qc refresh: overwrites one posterior row in both the
  /// cached parameters and the current distribution matrix, leaving worker
  /// models and prior untouched. Used between full EM refits, when a HIT
  /// completion changed only the answer sets of its k questions (the
  /// posterior update of Eq. 5 touches exactly those rows). `row` must be a
  /// normalised distribution of num_labels() entries.
  void UpdatePosteriorRow(QuestionIndex question,
                          std::span<const double> row);

  /// The current distribution matrix Qc. Before any HIT completes this is
  /// the uniform prior (Section 5.1).
  const DistributionMatrix& current() const { return current_; }
  void set_current(DistributionMatrix qc) { current_ = std::move(qc); }

 private:
  int num_questions_;
  int num_labels_;
  util::Counter* answers_recorded_ = nullptr;
  util::Counter* posterior_row_updates_ = nullptr;
  AnswerSet answers_;
  std::unordered_map<WorkerId, std::unordered_set<QuestionIndex>> assigned_;
  EmResult parameters_;
  DistributionMatrix current_;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_DATABASE_H_
