#ifndef QASCA_CORE_KERNELS_KERNELS_H_
#define QASCA_CORE_KERNELS_KERNELS_H_

/// Runtime-dispatched SIMD kernels for the assignment hot loops (DESIGN.md
/// §12 "Assignment kernels"): the row-quality / benefit scan, Qw
/// answer-distribution and posterior-weight inner loops, and the E-step's
/// per-row normalisation all funnel through the entry points below.
///
/// Dispatch model: one implementation table per ISA (scalar, SSE2, AVX2),
/// resolved exactly once — the first kernel call picks the widest ISA the
/// CPU supports, overridable with the QASCA_KERNEL_ISA environment variable
/// ("scalar" | "sse2" | "avx2") for testing, or SetIsaForTesting() from
/// inside a test binary. Non-x86 builds compile the scalar table only and
/// report SSE2/AVX2 as unsupported.
///
/// Bit-identity contract: every ISA path returns *bit-identical* doubles
/// for every input. Element-wise kernels (MulRow, DivRow, AxpyRow,
/// WpAnswerDistribution) are exact per IEEE-754 — each output lane performs
/// the same correctly-rounded op sequence as the scalar loop, and every
/// kernel TU compiles with -ffp-contract=off so no FMA contraction can
/// change a rounding. Reductions are pinned by fixing the fold *schedule*
/// rather than the vector width: RowSum always folds through four lane
/// accumulators (acc[i % 4]) merged as ((acc0 + acc1) + acc2) + acc3 with a
/// left-to-right tail — the scalar path implements that same schedule
/// explicitly, SSE2 uses two 2-lane registers and AVX2 one 4-lane register,
/// all algebraically *and bitwise* the same order. For n <= 4 the schedule
/// degenerates to a strict left-to-right sum, so rows of up to four labels
/// (every golden-trace workload) match util::DeterministicSum bit-for-bit;
/// wider rows are deterministic but reassociated relative to a serial sum.
/// CmAnswerDistribution accumulates each output lane in ascending-truth
/// order regardless of ISA. RowMax is order-insensitive (max is commutative
/// and the inputs are probabilities, so there are no NaNs or -0.0s).
///
/// The float-determinism analyzer pass excludes src/core/kernels/: this
/// directory *is* an audited fold implementation, like util/fold.h.

#include <cstdint>

namespace qasca::kernels {

/// Instruction sets a kernel table can be compiled for, ordered narrowest
/// to widest. Numeric values are stable (exported as the kernel.isa gauge).
enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Lower-case name used by the QASCA_KERNEL_ISA override and bench output.
const char* IsaName(Isa isa);

/// Whether this host can execute the given table.
bool IsaSupported(Isa isa);

/// The ISA the kernel entry points currently dispatch to. First call
/// resolves the dispatch: QASCA_KERNEL_ISA if set (unsupported or unknown
/// values warn on stderr and fall back), else the widest supported ISA.
Isa ActiveIsa();

/// Repoints the dispatch table; `isa` must be supported on this host.
/// Tests use this to prove every path selects identical assignments.
void SetIsaForTesting(Isa isa);

/// Sum of x[0..n) under the fixed 4-lane-accumulator schedule described
/// above. Bit-identical across ISAs; equals a left-to-right sum for n <= 4.
double RowSum(const double* x, int n);

/// Max of x[0..n), n >= 1. Inputs must be NaN-free (probability rows).
double RowMax(const double* x, int n);

/// out[i] = a[i] * b[i]. `out` must not alias `a` or `b` partially (exact
/// aliasing out == a is allowed via MulRowInPlace).
void MulRow(double* out, const double* a, const double* b, int n);

/// inout[i] *= b[i].
void MulRowInPlace(double* inout, const double* b, int n);

/// inout[i] /= divisor (a true division — not a reciprocal multiply — so
/// the result matches the scalar normalisation loop bit-for-bit).
void DivRow(double* inout, int n, double divisor);

/// acc[i] += scale * x[i], multiply-then-add (never fused).
void AxpyRow(double* acc, double scale, const double* x, int n);

/// Closed-form WP answer distribution (Eq. 17 for a worker-probability
/// model): out[i] = m * row[i] + off * (1.0 - row[i]).
void WpAnswerDistribution(const double* row, int n, double m, double off,
                          double* out);

/// Confusion-matrix answer distribution (Eq. 17):
/// out[answered] = sum_truth cm[truth * l + answered] * row[truth], with
/// each out lane accumulated in ascending-truth order on every ISA. `cm` is
/// the l-by-l row-major [truth][answered] matrix; `out` must not alias
/// `row` or `cm`.
void CmAnswerDistribution(const double* cm, const double* row, int l,
                          double* out);

/// The active table's RowMax implementation as a raw function pointer, for
/// hot scans that hoist the dispatch resolution out of a per-row loop. The
/// pointer stays valid for the whole program run but goes stale if
/// SetIsaForTesting repoints the dispatch — hoist it per scan, never into a
/// global.
using RowMaxFn = double (*)(const double*, int);
RowMaxFn ActiveRowMax();

/// Fused sampled-mode Qw batch (Eqs. 17-18 under QwMode::kSampled; one call
/// per scan chunk). For each candidate c in [0, rows):
///   1. reads the current row at qc + candidates[c] * l,
///   2. forms the predicted answer distribution — the WP closed form
///      m * q + off * (1 - q) when cm == nullptr, else the confusion-matrix
///      product over the row-major [truth][answered] matrix `cm`,
///   3. derives the candidate's uniform variate from the per-request seed
///      `base` exactly as the unfused path does — a util::SplitMix64 stream
///      seeded with MixSeed(base, candidates[c]), one NextDouble() —
///   4. selects the answered label by util::SampleWeightedAt's cumulative
///      rule, conditions the row on likelihoods + answered * l (the
///      transposed WorkerLikelihoods table) and normalises into
///      out + c * l (RowSum fold, uniform fallback, true division).
/// When row_max != nullptr, the normalised row's maximum — the Accuracy*
/// row quality — is additionally written to row_max[c] while the row is
/// still hot. `dist_scratch` must hold l doubles (per-chunk scratch; unused
/// by the l == 2 fast path).
///
/// Bit-identity: every arithmetic step reproduces the exact op sequence of
/// the per-row composition (WpAnswerDistribution / CmAnswerDistribution,
/// SampleWeightedAt, MulRow, RowSum, DivRow and the uniform fallback), so
/// the fused batch is bitwise-equal to the unfused path on every ISA. The
/// l == 2 hot path (binary labels — every golden-trace workload) is fully
/// inlined scalar with one dispatch resolution per call instead of four
/// indirect kernel calls per row; wider rows compose the active table's
/// kernels through a single hoisted table pointer.
void SampledQwRows(const double* qc, int l, const int* candidates, int rows,
                   uint64_t base, double wp_m, double wp_off,
                   const double* cm, const double* likelihoods, double* out,
                   double* row_max, double* dist_scratch);

}  // namespace qasca::kernels

#endif  // QASCA_CORE_KERNELS_KERNELS_H_
