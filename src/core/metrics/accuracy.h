#ifndef QASCA_CORE_METRICS_ACCURACY_H_
#define QASCA_CORE_METRICS_ACCURACY_H_

#include <string>

#include "core/metrics/metric.h"

namespace qasca {

/// Accuracy (Section 3.1): the fraction of returned labels that are correct,
/// and its distribution-based variant Accuracy* (Eq. 3), the expected
/// fraction of correct labels under Q.
///
/// By Theorem 1 the optimal result for Accuracy* is, per question, the label
/// with the highest probability; the quality of Q is the mean of the row
/// maxima.
class AccuracyMetric final : public EvaluationMetric {
 public:
  std::string name() const override { return "Accuracy"; }

  /// Accuracy(T, R) = (1/n) * |{i : t_i == r_i}| (Eq. 2).
  double EvaluateAgainstTruth(const GroundTruthVector& truth,
                              const ResultVector& result) const override;

  /// Accuracy*(Q, R) = (1/n) * sum_i Q_{i, r_i} (Eq. 3).
  double Evaluate(const DistributionMatrix& q,
                  const ResultVector& result) const override;

  /// R*_i = argmax_j Q_{i,j} (Theorem 1).
  ResultVector OptimalResult(const DistributionMatrix& q) const override;

  /// F(Q) = (1/n) * sum_i max_j Q_{i,j}, computed directly.
  double Quality(const DistributionMatrix& q) const override;
};

}  // namespace qasca

#endif  // QASCA_CORE_METRICS_ACCURACY_H_
