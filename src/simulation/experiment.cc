#include "simulation/experiment.h"

#include <cstdint>
#include <unordered_map>

#include "baselines/askit.h"
#include "baselines/cdas.h"
#include "baselines/exp_loss.h"
#include "baselines/max_margin.h"
#include "baselines/random_strategy.h"
#include "platform/qasca_strategy.h"
#include "util/logging.h"

namespace qasca {
namespace {

// The real quality improvement of optimal result selection over the
// argmax-label rule at the current state (Eq. 21); 0 for Accuracy, where the
// two coincide (Theorem 1).
double ResultSelectionGain(const TaskAssignmentEngine& engine,
                           const GroundTruthVector& truth) {
  if (engine.config().metric.kind != MetricSpec::Kind::kFScore) return 0.0;
  const DistributionMatrix& qc = engine.database().current();
  ResultVector optimal = engine.metric().OptimalResult(qc);
  ResultVector argmax(qc.num_questions());
  for (int i = 0; i < qc.num_questions(); ++i) argmax[i] = qc.ArgMaxLabel(i);
  return engine.metric().EvaluateAgainstTruth(truth, optimal) -
         engine.metric().EvaluateAgainstTruth(truth, argmax);
}

double EstimationDeviation(const TaskAssignmentEngine& engine,
                           const std::vector<SimulatedWorker>& pool) {
  const auto& fitted = engine.database().parameters().workers;
  if (fitted.empty()) return 0.0;
  double total = 0.0;
  int count = 0;
  for (const auto& [id, model] : fitted) {
    QASCA_CHECK_GE(id, 0);
    QASCA_CHECK_LT(static_cast<size_t>(id), pool.size());
    total += model.Deviation(pool[id].latent);
    ++count;
  }
  return total / count;
}

}  // namespace

std::vector<SystemFactory> DefaultSystems() {
  return {
      {"Baseline", [] { return std::make_unique<RandomStrategy>(); }},
      {"CDAS", [] { return std::make_unique<CdasStrategy>(); }},
      {"AskIt!", [] { return std::make_unique<AskItStrategy>(); }},
      {"QASCA", [] { return std::make_unique<QascaStrategy>(); }},
      {"MaxMargin", [] { return std::make_unique<MaxMarginStrategy>(); }},
      {"ExpLoss", [] { return std::make_unique<ExpLossStrategy>(); }},
  };
}

ExperimentResult RunParallelExperiment(
    const ApplicationSpec& spec, const std::vector<SystemFactory>& systems,
    const ExperimentOptions& options) {
  QASCA_CHECK(!systems.empty());
  util::Rng world_rng(options.seed);
  util::Rng arrival_rng = world_rng.Fork();
  util::Rng answer_rng = world_rng.Fork();

  ExperimentResult result;
  result.spec = spec;
  result.truth = GenerateGroundTruth(spec, world_rng);
  result.difficulty = GenerateQuestionDifficulty(spec, world_rng);
  std::vector<SimulatedWorker> pool =
      GenerateWorkerPool(spec.workers, world_rng);

  // One isolated engine per system; each gets its own derived seed so
  // internal sampling streams are independent.
  std::vector<std::unique_ptr<TaskAssignmentEngine>> engines;
  for (size_t s = 0; s < systems.size(); ++s) {
    engines.push_back(std::make_unique<TaskAssignmentEngine>(
        MakeAppConfig(spec), systems[s].make(),
        options.seed * 7919 + 31 * s + 1));
    result.systems.push_back(SystemTrace{});
    result.systems.back().name = systems[s].name;
  }

  const int total_hits = spec.TotalHits();
  const int k = spec.questions_per_hit;
  const int checkpoint_every =
      std::max(1, total_hits / std::max(1, options.checkpoints));

  // A worker answers a given question the same way in every system — the
  // paper batches all systems' picks into one physical HIT.
  std::unordered_map<int64_t, LabelIndex> answer_cache;
  auto answer_for = [&](const SimulatedWorker& worker, QuestionIndex q) {
    int64_t key =
        static_cast<int64_t>(worker.id) * spec.num_questions + q;
    auto it = answer_cache.find(key);
    if (it != answer_cache.end()) return it->second;
    LabelIndex label = worker.AnswerQuestion(result.truth[q], answer_rng,
                                             result.difficulty[q]);
    answer_cache.emplace(key, label);
    return label;
  };

  auto record_checkpoint = [&](int completed) {
    for (size_t s = 0; s < engines.size(); ++s) {
      SystemTrace& trace = result.systems[s];
      trace.completed_hits.push_back(completed);
      trace.quality.push_back(
          engines[s]->QualityAgainstTruth(result.truth));
      if (options.track_estimation_deviation) {
        trace.estimation_deviation.push_back(
            EstimationDeviation(*engines[s], pool));
      }
      trace.result_selection_gain +=
          ResultSelectionGain(*engines[s], result.truth);
    }
  };

  // HITs served per worker; every system assigns the same worker the same
  // number of questions, so one counter per worker bounds S^w for all.
  std::vector<int> hits_served(pool.size(), 0);
  int checkpoints_recorded = 0;
  record_checkpoint(0);
  ++checkpoints_recorded;

  for (int round = 0; round < total_hits; ++round) {
    // Sample an arriving worker who still has >= k candidate questions.
    const SimulatedWorker* worker = nullptr;
    for (int attempt = 0; attempt < 10 * static_cast<int>(pool.size());
         ++attempt) {
      const SimulatedWorker& candidate =
          pool[arrival_rng.UniformInt(static_cast<int>(pool.size()))];
      if (spec.num_questions - k * (hits_served[candidate.id] + 1) >= 0) {
        worker = &candidate;
        break;
      }
    }
    QASCA_CHECK(worker != nullptr) << "no worker with remaining capacity";
    ++hits_served[worker->id];

    for (auto& engine : engines) {
      util::StatusOr<std::vector<QuestionIndex>> hit =
          engine->RequestHit(worker->id);
      QASCA_CHECK(hit.ok()) << hit.status().ToString();
      std::vector<LabelIndex> labels;
      labels.reserve(hit->size());
      for (QuestionIndex q : *hit) labels.push_back(answer_for(*worker, q));
      util::Status status = engine->CompleteHit(worker->id, labels);
      QASCA_CHECK(status.ok()) << status.ToString();
    }

    bool last_round = round + 1 == total_hits;
    if ((round + 1) % checkpoint_every == 0 || last_round) {
      record_checkpoint(round + 1);
      ++checkpoints_recorded;
    }
  }

  for (size_t s = 0; s < engines.size(); ++s) {
    SystemTrace& trace = result.systems[s];
    trace.final_quality = trace.quality.back();
    trace.max_assignment_seconds = engines[s]->max_assignment_seconds();
    trace.result_selection_gain /= checkpoints_recorded;
  }
  return result;
}

}  // namespace qasca
