// clock-discipline fixture: direct std::chrono reads in platform code must
// fire (even steady_clock, which the determinism pass tolerates elsewhere
// for telemetry); the allow'd read and the TickSource plumbing must not.

#include <chrono>  // analyze:expect(clock-discipline)
#include <cstdint>
#include <functional>

using TickSource = std::function<uint64_t()>;

uint64_t DirectRead() {
  auto now = std::chrono::steady_clock::now();  // analyze:expect(clock-discipline)
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

uint64_t InjectedRead(const TickSource& ticks) {
  return ticks();  // the sanctioned pattern: time arrives injected
}

uint64_t AllowedRead() {
  // A hypothetical site where injection provably cannot work.
  auto now = std::chrono::steady_clock::now();  // analyze:allow(clock-discipline)
  return static_cast<uint64_t>(now.time_since_epoch().count());
}
