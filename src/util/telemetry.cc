#include "util/telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/json.h"
#include "util/mutex.h"

namespace qasca::util {
namespace {

// Innermost enabled span on this thread; spans form an intrusive stack.
thread_local const Span* g_current_span = nullptr;

double MsFromSeconds(double seconds) { return seconds * 1e3; }

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted instrument names
// map '.' (and any other separator) to '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "qasca_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void LatencyHistogram::RecordSeconds(double seconds) noexcept {
  if (!enabled_) return;
  seconds = std::max(seconds, 0.0);
  const auto ns = static_cast<uint64_t>(seconds * 1e9);
  const auto log2_bucket = static_cast<double>(std::bit_width(ns));
  MutexLock lock(mutex_);
  stats_.Add(seconds);
  log2_ns_.Add(log2_bucket);
}

int64_t LatencyHistogram::count() const {
  MutexLock lock(mutex_);
  return stats_.count();
}

double LatencyHistogram::total_seconds() const {
  MutexLock lock(mutex_);
  return stats_.mean() * static_cast<double>(stats_.count());
}

double LatencyHistogram::mean_seconds() const {
  MutexLock lock(mutex_);
  return stats_.mean();
}

double LatencyHistogram::max_seconds() const {
  MutexLock lock(mutex_);
  return stats_.count() > 0 ? stats_.max() : 0.0;
}

double LatencyHistogram::PercentileLocked(double p) const {
  const int64_t total = stats_.count();
  if (total == 0) return 0.0;
  if (p <= 0.0) return stats_.min();
  if (p >= 1.0) return stats_.max();
  // Rank of the requested quantile among the sorted samples, then the
  // geometric midpoint of the log2 bucket that holds it.
  const auto rank = static_cast<int64_t>(p * static_cast<double>(total - 1));
  int64_t cumulative = 0;
  for (int b = 0; b < log2_ns_.buckets(); ++b) {
    cumulative += log2_ns_.count(b);
    if (cumulative > rank) {
      // Bucket b holds durations in [2^(b-1), 2^b) ns; midpoint 1.5*2^(b-1).
      const double ns = b == 0 ? 0.0 : 1.5 * std::ldexp(1.0, b - 1);
      return std::clamp(ns * 1e-9, stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

double LatencyHistogram::Percentile(double p) const {
  MutexLock lock(mutex_);
  return PercentileLocked(p);
}

template <typename T>
T* MetricRegistry::GetOrCreate(
    std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
    std::string_view name) {
  MutexLock lock(mutex_);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(std::string(name),
                      std::unique_ptr<T>(new T(std::string(name), enabled_)))
             .first;
  }
  return it->second.get();
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(&counters_, name);
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(&gauges_, name);
}

LatencyHistogram* MetricRegistry::GetLatency(std::string_view name) {
  return GetOrCreate(&latencies_, name);
}

TelemetrySnapshot MetricRegistry::Snapshot() const {
  TelemetrySnapshot snapshot;
  snapshot.enabled = enabled_;
  MutexLock lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.latencies.reserve(latencies_.size());
  for (const auto& [name, latency] : latencies_) {
    LatencySnapshot entry;
    entry.name = name;
    MutexLock latency_lock(latency->mutex_);
    entry.count = latency->stats_.count();
    entry.mean_seconds = latency->stats_.mean();
    entry.total_seconds =
        entry.mean_seconds * static_cast<double>(entry.count);
    entry.p50_seconds = latency->PercentileLocked(0.50);
    entry.p95_seconds = latency->PercentileLocked(0.95);
    entry.p99_seconds = latency->PercentileLocked(0.99);
    entry.max_seconds = entry.count > 0 ? latency->stats_.max() : 0.0;
    snapshot.latencies.push_back(std::move(entry));
  }
  return snapshot;
}

std::string MetricRegistry::ToJson() const {
  const TelemetrySnapshot snapshot = Snapshot();
  std::string out = "{\"enabled\":";
  out += snapshot.enabled ? "true" : "false";
  out += ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(out, snapshot.counters[i].name);
    out += ':';
    out += std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(out, snapshot.gauges[i].name);
    out += ':';
    AppendJsonNumber(out, snapshot.gauges[i].value);
  }
  out += "},\"latencies\":{";
  for (size_t i = 0; i < snapshot.latencies.size(); ++i) {
    const LatencySnapshot& latency = snapshot.latencies[i];
    if (i > 0) out += ',';
    AppendJsonString(out, latency.name);
    out += ":{\"count\":";
    out += std::to_string(latency.count);
    const std::pair<const char*, double> fields[] = {
        {"p50_ms", latency.p50_seconds},   {"p95_ms", latency.p95_seconds},
        {"p99_ms", latency.p99_seconds},   {"max_ms", latency.max_seconds},
        {"mean_ms", latency.mean_seconds}, {"total_ms", latency.total_seconds},
    };
    for (const auto& [key, seconds] : fields) {
      out += ",\"";
      out += key;
      out += "\":";
      AppendJsonNumber(out, MsFromSeconds(seconds));
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricRegistry::ToPrometheusText() const {
  const TelemetrySnapshot snapshot = Snapshot();
  std::string out;
  for (const CounterSnapshot& counter : snapshot.counters) {
    const std::string name = PrometheusName(counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(counter.value) + '\n';
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    const std::string name = PrometheusName(gauge.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ';
    AppendJsonNumber(out, gauge.value);
    out += '\n';
  }
  for (const LatencySnapshot& latency : snapshot.latencies) {
    const std::string name = PrometheusName(latency.name) + "_seconds";
    out += "# TYPE " + name + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", latency.p50_seconds},
        {"0.95", latency.p95_seconds},
        {"0.99", latency.p99_seconds},
    };
    for (const auto& [q, seconds] : quantiles) {
      out += name + "{quantile=\"" + q + "\"} ";
      AppendJsonNumber(out, seconds);
      out += '\n';
    }
    out += name + "_count " + std::to_string(latency.count) + '\n';
    out += name + "_sum ";
    AppendJsonNumber(out, latency.total_seconds);
    out += '\n';
  }
  return out;
}

std::string MetricRegistry::ToReport() const {
  const TelemetrySnapshot snapshot = Snapshot();
  if (!snapshot.enabled) {
    return "telemetry disabled (AppConfig::telemetry_enabled = false)\n";
  }
  std::string out;
  char line[256];
  out += "-- stage latencies (ms) --\n";
  std::snprintf(line, sizeof(line), "%-20s %8s %10s %10s %10s %10s %12s\n",
                "span", "count", "p50", "p95", "p99", "max", "total");
  out += line;
  for (const LatencySnapshot& latency : snapshot.latencies) {
    std::snprintf(line, sizeof(line),
                  "%-20s %8lld %10.4f %10.4f %10.4f %10.4f %12.4f\n",
                  latency.name.c_str(),
                  static_cast<long long>(latency.count),
                  MsFromSeconds(latency.p50_seconds),
                  MsFromSeconds(latency.p95_seconds),
                  MsFromSeconds(latency.p99_seconds),
                  MsFromSeconds(latency.max_seconds),
                  MsFromSeconds(latency.total_seconds));
    out += line;
  }
  out += "-- counters --\n";
  for (const CounterSnapshot& counter : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-28s %12lld\n",
                  counter.name.c_str(),
                  static_cast<long long>(counter.value));
    out += line;
  }
  if (!snapshot.gauges.empty()) {
    out += "-- gauges --\n";
    for (const GaugeSnapshot& gauge : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "%-28s %12.6f\n",
                    gauge.name.c_str(), gauge.value);
      out += line;
    }
  }
  return out;
}

void Span::Start(MetricRegistry* registry) noexcept {
  histogram_ = registry->GetLatency(name_);
  parent_ = g_current_span;
  depth_ = parent_ != nullptr ? parent_->depth_ + 1 : 0;
  g_current_span = this;
  start_ = std::chrono::steady_clock::now();
}

void Span::Finish() noexcept {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  g_current_span = parent_;
  histogram_->RecordSeconds(seconds);
}

const Span* Span::current() noexcept { return g_current_span; }

}  // namespace qasca::util
