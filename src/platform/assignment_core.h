#ifndef QASCA_PLATFORM_ASSIGNMENT_CORE_H_
#define QASCA_PLATFORM_ASSIGNMENT_CORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/metrics/metric.h"
#include "model/likelihood_cache.h"
#include "platform/app_config.h"
#include "platform/database.h"
#include "platform/provenance.h"
#include "platform/strategy.h"
#include "util/attributes.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace qasca {

/// The pure, deterministic half of the QASCA engine: the answer set D, the
/// Qc distribution matrix, the fitted worker models, the strategy and the
/// RNG stream — everything an assignment decision reads or writes, and
/// nothing else. No clocks, no journal, no lease accounting: given the same
/// (config, seed) and the same sequence of Decide / CommitAssignment /
/// ReleaseAssignment / ApplyCompletion calls, two cores produce bit-identical
/// decisions and bit-identical Qc on every platform and thread count. This
/// is the golden-trace-pinned piece; the serving shell
/// (TaskAssignmentEngine) layers leases, idempotency, the write-ahead
/// journal and wall-clock latency tracking on top.
///
/// Threading contract: externally synchronised — one core, one driving
/// thread (the engine shell's caller; under AppManager, whichever worker
/// thread holds that app's shard lock). Concurrency exists only *inside* a
/// call, when a kernel fans chunks onto `pool_`; those chunks read core
/// state strictly const and write disjoint pre-sized slots.
class AssignmentCore {
 public:
  /// `config` must outlive the core and must already Validate();
  /// `telemetry` is the owning engine's registry (never null — a disabled
  /// registry is a valid no-op sink) and must outlive the core. `seed`
  /// drives all stochastic choices (Qw sampling, tie-breaking)
  /// deterministically.
  AssignmentCore(const AppConfig* config,
                 std::unique_ptr<AssignmentStrategy> strategy, uint64_t seed,
                 util::MetricRegistry* telemetry);

  /// A strategy decision plus the inputs the shell needs for provenance.
  struct Decision {
    std::vector<QuestionIndex> questions;
    /// |S^w|: size of the candidate set handed to the strategy.
    int candidates = 0;
  };

  /// Runs the strategy for `worker` against the current Qc: computes the
  /// candidate set S^w, hands it to the strategy with the worker's fitted
  /// model, and validates the returned HIT (exactly k distinct in-range
  /// questions from S^w — always on, a malformed HIT corrupts D silently).
  /// Fails with NotFound if fewer than k candidates remain. Pure decision:
  /// no core state changes except the RNG stream the strategy draws from.
  /// When `provenance` is non-null the strategy fills its selection scores
  /// and the core fills the decision-input fields (candidate count,
  /// cache-hit bit, EM generation, kernel ISA).
  QASCA_NODISCARD
  util::StatusOr<Decision> Decide(WorkerId worker,
                                  DecisionProvenance* provenance);

  /// Marks a decided HIT's questions assigned in the database (removes them
  /// from the worker's candidate set). The shell calls this only after the
  /// decision is durable in the journal.
  void CommitAssignment(WorkerId worker,
                        const std::vector<QuestionIndex>& questions);

  /// Returns an assigned HIT's questions to the worker's candidate set
  /// (lease expiry in the shell).
  void ReleaseAssignment(WorkerId worker,
                         const std::vector<QuestionIndex>& questions);

  /// HIT-completion steps A-C (Figure 2): appends `labels` for `questions`
  /// to the answer set D, then refreshes Qc — incrementally re-deriving
  /// just the touched posterior rows between scheduled refits, or running
  /// the full EM refit when the cycle (config.em_refresh_interval) comes
  /// due. `labels` must parallel `questions`; both must be the HIT the
  /// worker actually holds (the shell's lease table enforces that).
  void ApplyCompletion(WorkerId worker,
                       const std::vector<QuestionIndex>& questions,
                       const std::vector<LabelIndex>& labels);

  /// Runs a full EM refit immediately, regardless of where the core is in
  /// its em_refresh_interval cycle (the incremental-agreement invariant is
  /// checked first, as at any scheduled refit).
  void ForceFullEmRefit();

  /// Pre-materialises the per-decision shared state (the cached typical
  /// worker) so a batch of Decide calls amortises the O(workers * labels^2)
  /// aggregation instead of paying it on the batch's first request. Safe to
  /// call at any time; decisions are byte-identical with or without it.
  void WarmSharedState();

  /// The results the requester would receive now: the metric-optimal result
  /// vector R* for the current Qc.
  ResultVector CurrentResults() const;

  /// Convenience for experiments: the true quality F(T, R*) of the current
  /// results against known ground truth.
  double QualityAgainstTruth(const GroundTruthVector& truth) const;

  const Database& database() const { return database_; }
  const EvaluationMetric& metric() const { return *metric_; }
  const AssignmentStrategy& strategy() const { return *strategy_; }

  /// Completions served by the cheap incremental path vs full EM refits.
  int full_em_refits() const noexcept { return full_em_refits_; }
  int incremental_refreshes() const noexcept {
    return incremental_refreshes_;
  }
  /// Max absolute Qc cell difference between the incremental posterior and
  /// the full refit that superseded it (see TaskAssignmentEngine).
  double last_refresh_drift() const noexcept { return last_refresh_drift_; }
  double max_refresh_drift() const noexcept { return max_refresh_drift_; }

 private:
  /// Fitted model for `worker` (perfect if unseen).
  const WorkerModel& ModelFor(WorkerId worker) const;

  /// Representative worker for worker-agnostic policies: a WP model at the
  /// mean diagonal quality of all fitted workers (0.75 before any fit).
  /// Cached — the fitted pool only changes on a full EM refit.
  const WorkerModel& TypicalWorker();
  WorkerModel ComputeTypicalWorker() const;

  /// Runs full EM over the answer set, enforces the incremental-agreement
  /// invariant against the pre-refit Qc, and resets the refresh cycle.
  void RunFullEmRefit();

  const AppConfig& config_;
  util::MetricRegistry& telemetry_;
  std::unique_ptr<AssignmentStrategy> strategy_;
  std::unique_ptr<EvaluationMetric> metric_;
  Database database_;
  util::Rng rng_;
  /// Non-null iff config_.num_threads > 1.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Per-worker likelihood tables memoised between full EM refits
  /// (invalidated by RunFullEmRefit alongside the typical-worker cache).
  LikelihoodCache likelihood_cache_;
  std::optional<WorkerModel> typical_worker_;
  util::Counter* em_full_refits_counter_ = nullptr;
  util::Counter* em_incremental_refreshes_counter_ = nullptr;
  util::Gauge* last_refresh_drift_gauge_ = nullptr;
  int full_em_refits_ = 0;
  int incremental_refreshes_ = 0;
  /// Completions since the last full EM refit.
  int completions_since_refit_ = 0;
  /// Whether any incremental row update has been applied since the last
  /// full refit — gates the drift invariant.
  bool incremental_since_refit_ = false;
  double last_refresh_drift_ = 0.0;
  double max_refresh_drift_ = 0.0;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_ASSIGNMENT_CORE_H_
