#ifndef QASCA_UTIL_RNG_H_
#define QASCA_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace qasca::util {

/// Deterministic pseudo-random source used by every stochastic component in
/// the library (simulated workers, dataset generators, Qw label sampling).
///
/// All randomness flows through explicitly seeded Rng instances so that
/// experiments and tests are bit-reproducible. The engine is a 64-bit
/// Mersenne twister; distribution helpers below avoid the libstdc++
/// distribution objects where cross-platform determinism matters.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    QASCA_CHECK_LT(lo, hi);
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [0, bound).
  int UniformInt(int bound) {
    QASCA_CHECK_GT(bound, 0);
    return static_cast<int>(
        std::uniform_int_distribution<int>(0, bound - 1)(engine_));
  }

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. This is the weighted random sampling step the paper uses
  /// to predict the label a worker would answer (Section 5.3, citing [13]).
  int SampleWeighted(const std::vector<double>& weights);

  /// Samples `count` distinct indices uniformly from [0, population) using a
  /// partial Fisher–Yates shuffle. Order of the result is random.
  std::vector<int> SampleWithoutReplacement(int population, int count);

  /// Returns a random permutation of [0, count).
  std::vector<int> Permutation(int count);

  /// Splits off an independently-seeded child generator; convenient for
  /// giving each simulated worker its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_RNG_H_
