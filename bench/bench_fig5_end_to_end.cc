// Reproduces Figure 5(a)-(e) and Table 4: the end-to-end comparison of the
// six systems (Baseline, CDAS, AskIt!, QASCA, MaxMargin, ExpLoss) on the
// five applications of Table 1, reporting true result quality as HITs
// complete.
//
// The AMT crowd is replaced by the simulated worker pools described in
// DESIGN.md (heterogeneous skill, per-label skill, spammers, per-question
// difficulty). Unlike the paper's single live run, each application is
// averaged over QASCA_BENCH_SEEDS (default 3) simulated worlds.

#include <cstdio>

#include "bench/experiment_driver.h"
#include "util/table.h"

namespace qasca {
namespace {

void RunAll() {
  const int seeds = bench::SeedsFromEnv(3);
  std::vector<SystemFactory> systems = DefaultSystems();
  std::vector<bench::AveragedTraces> all;
  const char* panel = "abcde";
  std::vector<ApplicationSpec> apps = PaperApplications();
  for (size_t a = 0; a < apps.size(); ++a) {
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 5(%c) — %s: quality vs completed HITs (%s, mean "
                  "of %d runs)",
                  panel[a], apps[a].name.c_str(),
                  apps[a].metric.kind == MetricSpec::Kind::kAccuracy
                      ? "Accuracy"
                      : "F-score",
                  seeds);
    util::PrintSection(title);
    bench::AveragedTraces traces = bench::RunAveraged(
        apps[a], systems, seeds, /*checkpoints=*/10,
        /*track_estimation_deviation=*/false);
    bench::PrintQualitySeries(traces);
    all.push_back(std::move(traces));
  }

  util::PrintSection("Table 4 — overall result quality (all HITs completed)");
  std::vector<std::string> header = {"Dataset"};
  for (const SystemFactory& factory : systems) header.push_back(factory.name);
  util::Table table(header);
  for (const bench::AveragedTraces& traces : all) {
    table.AddRow().Cell(traces.spec.name);
    for (double quality : traces.final_quality) table.Percent(quality, 2);
  }
  table.Print();
  std::printf(
      "Expected shape (paper Table 4): QASCA first on every dataset, all\n"
      "systems near-indistinguishable early (Figure 5) with QASCA pulling\n"
      "ahead as worker-quality estimates sharpen; Baseline last;\n"
      "MaxMargin above ExpLoss on average.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
