#ifndef QASCA_UTIL_TICK_H_
#define QASCA_UTIL_TICK_H_

#include <cstdint>
#include <functional>

namespace qasca::util {

/// Produces monotone timestamps ("ticks"). All platform code that needs a
/// notion of time — trace timestamps, assignment-lease deadlines — takes a
/// TickSource instead of reading a clock directly, so tests and replay
/// tooling can pin time exactly. The clock-discipline analyzer pass bans
/// raw std::chrono clock reads in src/platform/ for this reason; the only
/// real-clock implementation lives here in util.
using TickSource = std::function<uint64_t()>;

/// Real-time source: nanoseconds of std::chrono::steady_clock elapsed since
/// the call to SteadyTickSource(), so independently constructed sources all
/// start at tick 0.
TickSource SteadyTickSource();

}  // namespace qasca::util

#endif  // QASCA_UTIL_TICK_H_
