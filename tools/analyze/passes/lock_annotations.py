"""Pass `lock-annotations`: every lock carries a compile-checkable contract.

Three rules keep the Clang thread-safety analysis (`analyze` preset,
-Wthread-safety -Werror=thread-safety) authoritative over the whole tree:

  * raw std::mutex / std::condition_variable members are banned outside
    src/util/mutex.h — libstdc++'s types carry no capability attributes,
    so locks the analysis cannot see must not exist; use util::Mutex /
    util::CondVar (QASCA_CAPABILITY wrappers);
  * every util::Mutex member must be named by at least one
    QASCA_GUARDED_BY / QASCA_PT_GUARDED_BY / QASCA_REQUIRES /
    QASCA_ACQUIRE / QASCA_RELEASE / QASCA_EXCLUDES annotation in the same
    file — an unreferenced mutex guards nothing the compiler can check;
  * every header under src/platform that defines a class must state its
    "Threading contract:" in the class comment. The platform layer is
    deliberately lock-free (single-writer engine thread, const-only kernel
    reads), and that discipline must be written down where the analyzer
    can hold the file to it.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceFile, SourceTree

RAW_MUTEX_MEMBER = re.compile(
    r"std::(mutex|condition_variable(?:_any)?)\s+\w+\s*;")

# `Mutex mu_;` possibly prefixed with mutable and/or util:: qualification,
# and possibly carrying a lock-rank braced initializer
# (`Mutex mu_{lock_ranks::kThreadPool};`, see util/lock_ranks.h).
MUTEX_MEMBER = re.compile(
    r"(?:mutable\s+)?(?:util::)?\bMutex\s+(\w+)\s*(?:\{[^{};]*\})?\s*;")

ANNOTATION = re.compile(
    r"QASCA_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|EXCLUDES|RETURN_CAPABILITY)\s*\(([^)]*)\)")

CLASS_DEFINITION = re.compile(r"\b(?:class|struct)\s+\w+[^;{]*\{")

THREAD_CONTRACT = "Threading contract:"

MUTEX_HEADER = "src/util/mutex.h"
PLATFORM_ROOT = "src/platform/"


class LockAnnotationsPass:
    name = "lock-annotations"
    description = ("raw std::mutex members banned outside util/mutex.h; "
                   "util::Mutex members must appear in a QASCA_GUARDED_BY/"
                   "QASCA_REQUIRES contract; platform headers must state "
                   "their Threading contract")
    severity = ERROR
    roots = ("src",)

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            if source.rel != MUTEX_HEADER:
                findings.extend(self._check_raw_mutex(source))
            findings.extend(self._check_guard_contracts(source))
            if source.rel.startswith(PLATFORM_ROOT) and \
                    source.rel.endswith(".h"):
                findings.extend(self._check_thread_contract(source))
        return findings

    def _check_raw_mutex(self, source: SourceFile) -> list[Finding]:
        findings = []
        for match in RAW_MUTEX_MEMBER.finditer(source.code):
            findings.append(Finding(
                pass_name=self.name, severity=self.severity,
                path=source.rel, line=source.line_of(match.start()),
                message=(f"raw std::{match.group(1)} member — use "
                         "util::Mutex / util::CondVar (util/mutex.h) so the "
                         "thread-safety analysis can see the lock")))
        return findings

    def _check_guard_contracts(self, source: SourceFile) -> list[Finding]:
        members = {m.group(1): source.line_of(m.start())
                   for m in MUTEX_MEMBER.finditer(source.code)}
        if not members:
            return []
        referenced: set[str] = set()
        for annotation in ANNOTATION.finditer(source.code):
            referenced.update(re.findall(r"\w+", annotation.group(1)))
        findings = []
        for member, line in sorted(members.items(), key=lambda kv: kv[1]):
            if member not in referenced:
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=line,
                    message=(f"Mutex member {member} is not named by any "
                             "QASCA_GUARDED_BY / QASCA_REQUIRES annotation "
                             "— state what it protects")))
        return findings

    def _check_thread_contract(self, source: SourceFile) -> list[Finding]:
        match = CLASS_DEFINITION.search(source.code)
        if match is None:
            return []  # free functions only (e.g. storage.h)
        if THREAD_CONTRACT in source.text:
            return []
        return [Finding(
            pass_name=self.name, severity=self.severity,
            path=source.rel, line=source.line_of(match.start()),
            message=('platform header defines a class without a '
                     '"Threading contract:" comment — document who may '
                     "mutate this state and what kernels may read"))]
