#ifndef QASCA_SIMULATION_EXPERIMENT_H_
#define QASCA_SIMULATION_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/engine.h"
#include "platform/strategy.h"
#include "simulation/dataset.h"
#include "simulation/simulated_worker.h"

namespace qasca {

/// Named constructor for one competing system.
struct SystemFactory {
  std::string name;
  std::function<std::unique_ptr<AssignmentStrategy>()> make;
};

/// The six systems of Section 6.2.1 in paper order: Baseline, CDAS, AskIt!,
/// QASCA, MaxMargin, ExpLoss.
std::vector<SystemFactory> DefaultSystems();

/// Controls for the parallel end-to-end experiment.
struct ExperimentOptions {
  uint64_t seed = 42;
  /// Number of quality checkpoints recorded along the HIT axis.
  int checkpoints = 25;
  /// If true, record the mean worker-quality estimation deviation
  /// (Figure 6(b)) at each checkpoint — needs the latent pool, slight cost.
  bool track_estimation_deviation = true;
};

/// Time series and summary statistics for one system in one experiment.
struct SystemTrace {
  std::string name;
  /// Checkpoint x-axis: number of completed HITs.
  std::vector<int> completed_hits;
  /// True quality F(T, R*) of the system's current results at each
  /// checkpoint (Figure 5).
  std::vector<double> quality;
  /// Mean |estimated CM - latent CM| over workers seen so far (Figure 6(b)).
  std::vector<double> estimation_deviation;
  /// Final quality when every HIT is completed (Table 4).
  double final_quality = 0.0;
  /// Worst-case wall-clock seconds of one assignment (Figure 6(a)).
  double max_assignment_seconds = 0.0;
  /// For F-score applications: mean over checkpoints of
  /// F(T, R*) - F(T, R-tilde), the real quality improvement of optimal
  /// result selection over the argmax rule (Table 3). 0 for Accuracy apps
  /// where R* == R-tilde by Theorem 1.
  double result_selection_gain = 0.0;
};

/// Outcome of one application's parallel run across all systems.
struct ExperimentResult {
  ApplicationSpec spec;
  GroundTruthVector truth;
  /// Per-question inherent difficulty used by the simulated workers.
  std::vector<double> difficulty;
  std::vector<SystemTrace> systems;
};

/// Reproduces the paper's "parallel" evaluation protocol (Section 6.2.1):
/// each arriving worker is served by *every* system, each system picks its
/// own k questions, and the worker's answer to a given question is cached so
/// that systems asking the same (worker, question) pair observe the same
/// label — exactly as when the paper batches k*6 questions into one AMT HIT.
/// Each system runs m = n*z/k HITs against its own isolated state.
ExperimentResult RunParallelExperiment(const ApplicationSpec& spec,
                                       const std::vector<SystemFactory>& systems,
                                       const ExperimentOptions& options);

}  // namespace qasca

#endif  // QASCA_SIMULATION_EXPERIMENT_H_
