#ifndef QASCA_UTIL_TELEMETRY_NAMES_H_
#define QASCA_UTIL_TELEMETRY_NAMES_H_

// Central registry of every telemetry instrument name used in the tree.
//
// Span names MUST be one of the tnames::kSpan* constants below —
// tools/lint_invariants.py rejects any util::Span constructed from a raw
// string literal or an identifier not declared here, so stage names cannot
// drift between the engine, the benches and the docs (DESIGN.md §9 maps
// each name to its paper stage). Counter/gauge names live here too so the
// exports stay greppable from one place.

namespace qasca::util::tnames {

// --- span / latency-histogram names (one histogram per span name) --------
// Engine HIT lifecycle (Figure 2 workflows).
inline constexpr char kSpanAssignHit[] = "assign_hit";
inline constexpr char kSpanCompleteHit[] = "complete_hit";
// Qw estimation (Section 5.3, Eqs. 17-18).
inline constexpr char kSpanEstimateQw[] = "estimate_qw";
// Parameter re-estimation on completion (Section 5.2 / Eq. 5).
inline constexpr char kSpanEmFullRefit[] = "em_full_refit";
inline constexpr char kSpanIncrementalRefresh[] = "incremental_refresh";
// Assignment algorithms: Top-K Benefit (Section 4.1 / Eq. 12) and the
// F-score online algorithm with its nested Dinkelbach solves
// (Section 4.2, Algorithms 2-3).
inline constexpr char kSpanTopkScan[] = "topk_scan";
inline constexpr char kSpanFscoreOnline[] = "fscore_online";
inline constexpr char kSpanDinkelbachInner[] = "dinkelbach_inner";
// Assignment-kernel overhaul stages (DESIGN.md §12): one-time runtime ISA
// resolution, candidate-row materialisation into the Qw overlay, and the
// fused SampledQwRows batch over all candidate chunks.
inline constexpr char kSpanKernelDispatch[] = "kernel_dispatch";
inline constexpr char kSpanQwOverlayFill[] = "qw_overlay_fill";
inline constexpr char kSpanQwSampledBatch[] = "qw_sampled_batch";
// Serving layer (DESIGN.md §14): one span per request batch, amortising the
// shared-state warm-up across the batch's assign_hit spans.
inline constexpr char kSpanServeBatch[] = "serve_batch";

// --- counter names -------------------------------------------------------
inline constexpr char kHitsAssigned[] = "engine.hits_assigned";
inline constexpr char kHitsCompleted[] = "engine.hits_completed";
inline constexpr char kEmFullRefits[] = "em.full_refits";
inline constexpr char kEmIncrementalRefreshes[] = "em.incremental_refreshes";
inline constexpr char kEmIterations[] = "em.iterations";
inline constexpr char kQwSamplesDrawn[] = "qw.samples_drawn";
// Assignment-kernel overhaul (DESIGN.md §12): per-worker likelihood-table
// cache hits/misses, rows served by the exact WP closed form instead of a
// weighted draw, and candidate rows materialised into the Qw overlay.
inline constexpr char kQwLikelihoodCacheHits[] = "qw.likelihood_cache_hits";
inline constexpr char kQwLikelihoodCacheMisses[] =
    "qw.likelihood_cache_misses";
inline constexpr char kQwClosedFormRows[] = "qw.closed_form_rows";
inline constexpr char kQwOverlayRows[] = "qw.overlay_rows";
inline constexpr char kTopkCandidatesScanned[] = "topk.candidates_scanned";
inline constexpr char kDinkelbachOuterIterations[] =
    "dinkelbach.outer_iterations";
inline constexpr char kDinkelbachInnerIterations[] =
    "dinkelbach.inner_iterations";
inline constexpr char kPoolTasksQueued[] = "threadpool.tasks_queued";
inline constexpr char kPoolTasksExecuted[] = "threadpool.tasks_executed";
inline constexpr char kDbAnswersRecorded[] = "db.answers_recorded";
inline constexpr char kDbPosteriorRowUpdates[] = "db.posterior_row_updates";
// HIT-lifecycle robustness (leases / idempotent completion, DESIGN.md §11).
inline constexpr char kHitLeaseExpired[] = "hit.lease_expired";
inline constexpr char kHitQuestionsRequeued[] = "hit.questions_requeued";
inline constexpr char kHitDuplicateDropped[] = "hit.duplicate_dropped";
inline constexpr char kHitLateCompletionRejected[] =
    "hit.late_completion_rejected";
// Lifecycle journal persistence (crash recovery, DESIGN.md §11).
inline constexpr char kJournalAppends[] = "journal.appends";
inline constexpr char kJournalCompactions[] = "journal.compactions";
inline constexpr char kJournalEventsReplayed[] = "journal.events_replayed";
inline constexpr char kFailpointsTriggered[] = "failpoint.triggered";
// Assignment-latency SLO tracking (flight recorder PR, DESIGN.md §13):
// samples over the p95 target and window-p95 breach transitions.
inline constexpr char kSloAssignOverTarget[] = "slo.assign_hit.over_target";
inline constexpr char kSloAssignP95Breaches[] =
    "slo.assign_hit.p95_breaches";
// Serving layer (AppManager, DESIGN.md §14): request batches served and the
// requests they carried (per-app registries, like every engine metric).
inline constexpr char kServingBatches[] = "serving.batches";
inline constexpr char kServingBatchRequests[] = "serving.batch_requests";

// --- sliding-window latency names ---------------------------------------
inline constexpr char kWindowAssignHit[] = "assign_hit.window";

// --- gauge names ---------------------------------------------------------
inline constexpr char kOpenHits[] = "engine.open_hits";
inline constexpr char kRemainingHits[] = "engine.remaining_hits";
inline constexpr char kLastRefreshDrift[] = "em.last_refresh_drift";
// Active kernel ISA as the numeric kernels::Isa value (0 = scalar,
// 1 = sse2, 2 = avx2); gauges are numeric, so the bench JSON carries the
// name string alongside.
inline constexpr char kKernelIsa[] = "kernel.isa";
// Current sliding-window p95 of assign_hit in milliseconds, published by
// the SloTracker after every sample.
inline constexpr char kSloAssignWindowP95Ms[] =
    "slo.assign_hit.window_p95_ms";

}  // namespace qasca::util::tnames

#endif  // QASCA_UTIL_TELEMETRY_NAMES_H_
