#include "util/json.h"

#include <string>

#include <gtest/gtest.h>

namespace qasca::util {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonString("assign_hit"), "\"assign_hit\"");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonString("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonString("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
  EXPECT_EQ(JsonString(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonEscapeTest, AppendVariantsShareOneEscaper) {
  std::string out = "{";
  AppendJsonString(out, "k\n");
  out += ':';
  AppendJsonEscaped(out, "v");
  EXPECT_EQ(out, "{\"k\\n\":v");
}

TEST(JsonNumberTest, FormatsFiniteAndSanitisesNonFinite) {
  std::string out;
  AppendJsonNumber(out, 2.5);
  EXPECT_EQ(out, "2.5");
  out.clear();
  AppendJsonNumber(out, 1.0 / 0.0);
  EXPECT_EQ(out, "0");  // JSON has no Infinity literal.
}

}  // namespace
}  // namespace qasca::util
