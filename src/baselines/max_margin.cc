#include "baselines/max_margin.h"

#include <algorithm>
#include <span>
#include <vector>

#include "baselines/scoring.h"
#include "platform/database.h"
#include "util/logging.h"

namespace qasca {

std::vector<QuestionIndex> MaxMarginStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.database != nullptr);
  QASCA_CHECK(context.typical_worker != nullptr);
  QASCA_CHECK(context.rng != nullptr);
  const DistributionMatrix& qc = context.database->current();
  const WorkerModel& typical = *context.typical_worker;
  const int num_labels = qc.num_labels();

  std::vector<double> scores(candidates.size());
  std::vector<double> conditioned(num_labels);
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::span<const double> row = qc.Row(candidates[c]);
    double current_max = *std::max_element(row.begin(), row.end());

    // E_{j'}[ max_j P(t=j | one more answer j') ] - current max. For each
    // answer j', the unnormalised posterior is row[j]*P(a=j'|t=j); its
    // maximum divided by the answer's marginal probability gives the
    // conditioned maximum, so the expectation telescopes into a sum of
    // unnormalised maxima.
    double expected_max = 0.0;
    for (int answered = 0; answered < num_labels; ++answered) {
      double best = 0.0;
      for (int j = 0; j < num_labels; ++j) {
        best = std::max(best, row[j] * typical.AnswerProbability(answered, j));
      }
      expected_max += best;
    }
    scores[c] = expected_max - current_max;
  }
  return baselines_internal::TopKByScore(candidates, scores, k, *context.rng);
}

}  // namespace qasca
