// api-layering fixture: a core TU reaching *up* the DAG into platform must
// fire; the downward edge into util and the allow'd include must not. The
// include targets must exist in this fixture tree for the edge to resolve
// (unresolvable targets are never layer edges).

#include "util/telemetry_names.h"

#include "platform/good_contract.h"  // analyze:expect(api-layering)
#include "platform/bad_contract.h"  // analyze:allow(api-layering)

int LayeringProbe() { return 0; }
