#ifndef QASCA_UTIL_FAILPOINT_H_
#define QASCA_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

// Deterministic fault-injection points, modeled after the FreeBSD/TiKV
// "fail point" idiom: production code marks the places where a fault can be
// injected with QASCA_FAIL_POINT("name"); tests arm specific points and the
// marked code takes its failure branch. Disarmed points cost one relaxed
// atomic load; in builds without QASCA_ENABLE_FAILPOINTS (Release, where
// NDEBUG disables DCHECKs too) the macro compiles to `false` and the
// failure branch is dead code.
//
// Usage at an injection site:
//
//   if (QASCA_FAIL_POINT("journal.drop_append")) {
//     return;  // simulate the crash: the append never reaches the log
//   }
//
// Arming from a test:
//
//   util::FailPoints::Global().Arm("journal.drop_append", /*skip=*/3,
//                                  /*limit=*/1);   // fire on the 4th hit
//
// or from the environment (picked up by FailPoints::ArmFromEnv, which the
// engine calls at construction):
//
//   QASCA_FAILPOINTS="journal.drop_append=3:1,engine.crash_after_assign"

#ifndef QASCA_ENABLE_FAILPOINTS
#define QASCA_ENABLE_FAILPOINTS QASCA_ENABLE_DCHECKS
#endif

namespace qasca::util {

/// Process-wide registry of named fail points.
///
/// Threading contract: Arm/Disarm/Hit/TriggeredCount are safe to call from
/// any thread. Hit() on a fully disarmed registry is a single relaxed
/// atomic load, so injection sites may sit on hot paths.
class FailPoints {
 public:
  /// The process-wide registry used by the QASCA_FAIL_POINT macro.
  static FailPoints& Global();

  /// Arms `name`: the first `skip` hits pass through, the next `limit`
  /// hits trigger, later hits pass through again. Re-arming an armed point
  /// resets its hit counter.
  void Arm(const std::string& name, uint64_t skip = 0, uint64_t limit = 1);

  /// Disarms `name`; hits become pass-throughs again. No-op if not armed.
  void Disarm(const std::string& name);

  /// Disarms every point and zeroes all trigger counts.
  void DisarmAll();

  /// Reports a hit at injection point `name`. Returns true if the point is
  /// armed and this hit falls in its [skip, skip+limit) trigger window.
  bool Hit(const std::string& name);

  /// Times `name` has triggered (returned true from Hit) since it was last
  /// armed. 0 if never armed.
  uint64_t TriggeredCount(const std::string& name) const;

  /// Parses the QASCA_FAILPOINTS environment variable and arms each entry.
  /// Syntax: comma-separated `name[=skip[:limit]]`; bare `name` means
  /// skip=0, limit=1. Returns the names armed (empty if unset). Malformed
  /// numbers abort: a silently mis-armed fault plan is worse than a crash.
  std::vector<std::string> ArmFromEnv();

 private:
  struct Point {
    uint64_t skip = 0;
    uint64_t limit = 1;
    uint64_t hits = 0;
    uint64_t triggered = 0;
  };

  // Fast path: injection sites check this before touching the mutex, so a
  // disarmed registry adds no contention.
  std::atomic<int> armed_count_{0};
  mutable Mutex mutex_{lock_ranks::kFailPointsRegistry};
  std::unordered_map<std::string, Point> points_ QASCA_GUARDED_BY(mutex_);
};

}  // namespace qasca::util

#if QASCA_ENABLE_FAILPOINTS
#define QASCA_FAIL_POINT(name) (::qasca::util::FailPoints::Global().Hit(name))
#else
#define QASCA_FAIL_POINT(name) (false)
#endif

#endif  // QASCA_UTIL_FAILPOINT_H_
