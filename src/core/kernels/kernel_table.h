#ifndef QASCA_CORE_KERNELS_KERNEL_TABLE_H_
#define QASCA_CORE_KERNELS_KERNEL_TABLE_H_

/// Internal to src/core/kernels/: the per-ISA implementation table behind
/// the dispatch in kernels.cc. Each ISA translation unit fills one static
/// table; kernels.cc picks one pointer at startup (kernels.h documents the
/// selection and bit-identity rules). Nothing outside this directory may
/// include this header — call the kernels.h entry points instead.

namespace qasca::kernels {

#if defined(__x86_64__) || defined(_M_X64)
#define QASCA_KERNELS_X86 1
#else
#define QASCA_KERNELS_X86 0
#endif

struct KernelTable {
  double (*row_sum)(const double*, int) = nullptr;
  double (*row_max)(const double*, int) = nullptr;
  void (*mul_row)(double*, const double*, const double*, int) = nullptr;
  void (*mul_row_in_place)(double*, const double*, int) = nullptr;
  void (*div_row)(double*, int, double) = nullptr;
  void (*axpy_row)(double*, double, const double*, int) = nullptr;
  void (*wp_answer_distribution)(const double*, int, double, double,
                                 double*) = nullptr;
  void (*cm_answer_distribution)(const double*, const double*, int,
                                 double*) = nullptr;
};

/// Always available; the reference implementation of the fold schedules.
const KernelTable& ScalarKernels();
/// On non-x86 builds these return ScalarKernels() (and IsaSupported
/// reports them unsupported, so dispatch never selects them).
const KernelTable& Sse2Kernels();
const KernelTable& Avx2Kernels();

}  // namespace qasca::kernels

#endif  // QASCA_CORE_KERNELS_KERNEL_TABLE_H_
