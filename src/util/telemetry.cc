#include "util/telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/mutex.h"

namespace qasca::util {
namespace {

// Innermost enabled span on this thread; spans form an intrusive stack.
thread_local const Span* g_current_span = nullptr;

double MsFromSeconds(double seconds) { return seconds * 1e3; }

// Log2 bucket index of a duration, shared by both latency instruments:
// bit_width(ns), so bucket b holds [2^(b-1), 2^b) ns and bucket 0 holds
// sub-nanosecond samples.
int Log2BucketOfSeconds(double seconds) noexcept {
  seconds = std::max(seconds, 0.0);
  const auto ns = static_cast<uint64_t>(seconds * 1e9);
  return std::bit_width(ns);
}

// Linear interpolation inside log2 bucket b at fraction f in [0, 1): the
// bucket spans [2^(b-1), 2^b) ns (bucket 0: [0, 1) ns), so any returned
// value is within one bucket width of the true sample — the error bound
// the percentile unit test pins.
double InterpolateLog2BucketNs(int b, double f) {
  const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
  const double hi = std::ldexp(1.0, b == 0 ? 0 : b);
  return lo + (hi - lo) * f;
}

// Rank walk shared by both latency instruments: finds the bucket holding
// `rank` (0-based over the sorted samples) and interpolates the rank's
// position within it. Returns nanoseconds.
double PercentileNsFromBuckets(const int64_t* counts, int num_buckets,
                               int64_t rank) {
  int64_t cumulative = 0;
  for (int b = 0; b < num_buckets; ++b) {
    const int64_t in_bucket = counts[b];
    if (cumulative + in_bucket > rank) {
      const double f = static_cast<double>(rank - cumulative) /
                       static_cast<double>(in_bucket);
      return InterpolateLog2BucketNs(b, f);
    }
    cumulative += in_bucket;
  }
  return InterpolateLog2BucketNs(num_buckets - 1, 1.0);
}

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted instrument names
// map '.' (and any other separator) to '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "qasca_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void LatencyHistogram::RecordSeconds(double seconds) noexcept {
  if (!enabled_) return;
  seconds = std::max(seconds, 0.0);
  const auto log2_bucket = static_cast<double>(Log2BucketOfSeconds(seconds));
  MutexLock lock(mutex_);
  stats_.Add(seconds);
  log2_ns_.Add(log2_bucket);
}

int64_t LatencyHistogram::count() const {
  MutexLock lock(mutex_);
  return stats_.count();
}

double LatencyHistogram::total_seconds() const {
  MutexLock lock(mutex_);
  return stats_.mean() * static_cast<double>(stats_.count());
}

double LatencyHistogram::mean_seconds() const {
  MutexLock lock(mutex_);
  return stats_.mean();
}

double LatencyHistogram::max_seconds() const {
  MutexLock lock(mutex_);
  return stats_.count() > 0 ? stats_.max() : 0.0;
}

double LatencyHistogram::PercentileLocked(double p) const {
  const int64_t total = stats_.count();
  if (total == 0) return 0.0;
  if (p <= 0.0) return stats_.min();
  if (p >= 1.0) return stats_.max();
  // Rank of the requested quantile among the sorted samples, then linear
  // interpolation of the rank's position within the log2 bucket holding it.
  const auto rank = static_cast<int64_t>(p * static_cast<double>(total - 1));
  std::array<int64_t, kLog2LatencyBuckets> counts{};
  for (int b = 0; b < log2_ns_.buckets(); ++b) counts[b] = log2_ns_.count(b);
  const double ns =
      PercentileNsFromBuckets(counts.data(), log2_ns_.buckets(), rank);
  return std::clamp(ns * 1e-9, stats_.min(), stats_.max());
}

WindowedLatency::WindowedLatency(std::string name, bool enabled, int window)
    : name_(std::move(name)), enabled_(enabled), window_(std::max(1, window)) {
  MutexLock lock(mutex_);
  ring_.reserve(static_cast<size_t>(window_));
  buckets_.fill(0);
}

void WindowedLatency::RecordSeconds(double seconds) noexcept {
  if (!enabled_) return;
  const auto bucket = static_cast<uint8_t>(Log2BucketOfSeconds(seconds));
  MutexLock lock(mutex_);
  if (static_cast<int>(ring_.size()) < window_) {
    ring_.push_back(bucket);
  } else {
    // Overwrite the oldest sample, retiring its bucket count.
    uint8_t& slot = ring_[static_cast<size_t>(total_ % window_)];
    --buckets_[slot];
    slot = bucket;
  }
  ++buckets_[bucket];
  ++total_;
}

int64_t WindowedLatency::count() const {
  MutexLock lock(mutex_);
  return total_;
}

double WindowedLatency::Percentile(double p) const {
  MutexLock lock(mutex_);
  const auto in_window = static_cast<int64_t>(ring_.size());
  if (in_window == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank =
      static_cast<int64_t>(p * static_cast<double>(in_window - 1));
  std::array<int64_t, kLog2LatencyBuckets> counts{};
  for (int b = 0; b < kLog2LatencyBuckets; ++b) counts[b] = buckets_[b];
  return PercentileNsFromBuckets(counts.data(), kLog2LatencyBuckets, rank) *
         1e-9;
}

double LatencyHistogram::Percentile(double p) const {
  MutexLock lock(mutex_);
  return PercentileLocked(p);
}

template <typename T>
T* MetricRegistry::GetOrCreate(
    std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
    std::string_view name) {
  MutexLock lock(mutex_);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(std::string(name),
                      std::unique_ptr<T>(new T(std::string(name), enabled_)))
             .first;
  }
  return it->second.get();
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(&counters_, name);
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(&gauges_, name);
}

LatencyHistogram* MetricRegistry::GetLatency(std::string_view name) {
  return GetOrCreate(&latencies_, name);
}

WindowedLatency* MetricRegistry::GetWindowed(std::string_view name,
                                             int window) {
  MutexLock lock(mutex_);
  auto it = windows_.find(name);
  if (it == windows_.end()) {
    it = windows_
             .emplace(std::string(name),
                      std::unique_ptr<WindowedLatency>(new WindowedLatency(
                          std::string(name), enabled_, window)))
             .first;
  }
  return it->second.get();
}

TelemetrySnapshot MetricRegistry::Snapshot() const {
  TelemetrySnapshot snapshot;
  snapshot.enabled = enabled_;
  MutexLock lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.latencies.reserve(latencies_.size());
  for (const auto& [name, latency] : latencies_) {
    LatencySnapshot entry;
    entry.name = name;
    MutexLock latency_lock(latency->mutex_);
    entry.count = latency->stats_.count();
    entry.mean_seconds = latency->stats_.mean();
    entry.total_seconds =
        entry.mean_seconds * static_cast<double>(entry.count);
    entry.p50_seconds = latency->PercentileLocked(0.50);
    entry.p95_seconds = latency->PercentileLocked(0.95);
    entry.p99_seconds = latency->PercentileLocked(0.99);
    entry.max_seconds = entry.count > 0 ? latency->stats_.max() : 0.0;
    snapshot.latencies.push_back(std::move(entry));
  }
  snapshot.windows.reserve(windows_.size());
  for (const auto& [name, window] : windows_) {
    WindowSnapshot entry;
    entry.name = name;
    entry.window = window->window();
    entry.count = window->count();
    entry.p50_seconds = window->Percentile(0.50);
    entry.p95_seconds = window->Percentile(0.95);
    entry.p99_seconds = window->Percentile(0.99);
    snapshot.windows.push_back(std::move(entry));
  }
  return snapshot;
}

std::string MetricRegistry::ToJson() const {
  const TelemetrySnapshot snapshot = Snapshot();
  std::string out = "{\"enabled\":";
  out += snapshot.enabled ? "true" : "false";
  out += ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(out, snapshot.counters[i].name);
    out += ':';
    out += std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(out, snapshot.gauges[i].name);
    out += ':';
    AppendJsonNumber(out, snapshot.gauges[i].value);
  }
  out += "},\"latencies\":{";
  for (size_t i = 0; i < snapshot.latencies.size(); ++i) {
    const LatencySnapshot& latency = snapshot.latencies[i];
    if (i > 0) out += ',';
    AppendJsonString(out, latency.name);
    out += ":{\"count\":";
    out += std::to_string(latency.count);
    const std::pair<const char*, double> fields[] = {
        {"p50_ms", latency.p50_seconds},   {"p95_ms", latency.p95_seconds},
        {"p99_ms", latency.p99_seconds},   {"max_ms", latency.max_seconds},
        {"mean_ms", latency.mean_seconds}, {"total_ms", latency.total_seconds},
    };
    for (const auto& [key, seconds] : fields) {
      out += ",\"";
      out += key;
      out += "\":";
      AppendJsonNumber(out, MsFromSeconds(seconds));
    }
    out += '}';
  }
  out += "},\"windows\":{";
  for (size_t i = 0; i < snapshot.windows.size(); ++i) {
    const WindowSnapshot& window = snapshot.windows[i];
    if (i > 0) out += ',';
    AppendJsonString(out, window.name);
    out += ":{\"window\":";
    out += std::to_string(window.window);
    out += ",\"count\":";
    out += std::to_string(window.count);
    const std::pair<const char*, double> fields[] = {
        {"p50_ms", window.p50_seconds},
        {"p95_ms", window.p95_seconds},
        {"p99_ms", window.p99_seconds},
    };
    for (const auto& [key, seconds] : fields) {
      out += ",\"";
      out += key;
      out += "\":";
      AppendJsonNumber(out, MsFromSeconds(seconds));
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricRegistry::ToPrometheusText() const {
  const TelemetrySnapshot snapshot = Snapshot();
  std::string out;
  for (const CounterSnapshot& counter : snapshot.counters) {
    const std::string name = PrometheusName(counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(counter.value) + '\n';
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    const std::string name = PrometheusName(gauge.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ';
    AppendJsonNumber(out, gauge.value);
    out += '\n';
  }
  for (const LatencySnapshot& latency : snapshot.latencies) {
    const std::string name = PrometheusName(latency.name) + "_seconds";
    out += "# TYPE " + name + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", latency.p50_seconds},
        {"0.95", latency.p95_seconds},
        {"0.99", latency.p99_seconds},
    };
    for (const auto& [q, seconds] : quantiles) {
      out += name + "{quantile=\"" + q + "\"} ";
      AppendJsonNumber(out, seconds);
      out += '\n';
    }
    out += name + "_count " + std::to_string(latency.count) + '\n';
    out += name + "_sum ";
    AppendJsonNumber(out, latency.total_seconds);
    out += '\n';
  }
  for (const WindowSnapshot& window : snapshot.windows) {
    const std::string name = PrometheusName(window.name) + "_window_seconds";
    out += "# TYPE " + name + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", window.p50_seconds},
        {"0.95", window.p95_seconds},
        {"0.99", window.p99_seconds},
    };
    for (const auto& [q, seconds] : quantiles) {
      out += name + "{quantile=\"" + q + "\"} ";
      AppendJsonNumber(out, seconds);
      out += '\n';
    }
    out += name + "_count " + std::to_string(window.count) + '\n';
  }
  return out;
}

std::string MetricRegistry::ToReport() const {
  const TelemetrySnapshot snapshot = Snapshot();
  if (!snapshot.enabled) {
    return "telemetry disabled (AppConfig::telemetry_enabled = false)\n";
  }
  std::string out;
  char line[256];
  out += "-- stage latencies (ms) --\n";
  std::snprintf(line, sizeof(line), "%-20s %8s %10s %10s %10s %10s %12s\n",
                "span", "count", "p50", "p95", "p99", "max", "total");
  out += line;
  for (const LatencySnapshot& latency : snapshot.latencies) {
    std::snprintf(line, sizeof(line),
                  "%-20s %8lld %10.4f %10.4f %10.4f %10.4f %12.4f\n",
                  latency.name.c_str(),
                  static_cast<long long>(latency.count),
                  MsFromSeconds(latency.p50_seconds),
                  MsFromSeconds(latency.p95_seconds),
                  MsFromSeconds(latency.p99_seconds),
                  MsFromSeconds(latency.max_seconds),
                  MsFromSeconds(latency.total_seconds));
    out += line;
  }
  out += "-- counters --\n";
  for (const CounterSnapshot& counter : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-28s %12lld\n",
                  counter.name.c_str(),
                  static_cast<long long>(counter.value));
    out += line;
  }
  if (!snapshot.gauges.empty()) {
    out += "-- gauges --\n";
    for (const GaugeSnapshot& gauge : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "%-28s %12.6f\n",
                    gauge.name.c_str(), gauge.value);
      out += line;
    }
  }
  if (!snapshot.windows.empty()) {
    out += "-- sliding windows (ms) --\n";
    std::snprintf(line, sizeof(line), "%-20s %8s %8s %10s %10s %10s\n",
                  "window", "size", "count", "p50", "p95", "p99");
    out += line;
    for (const WindowSnapshot& window : snapshot.windows) {
      std::snprintf(line, sizeof(line),
                    "%-20s %8d %8lld %10.4f %10.4f %10.4f\n",
                    window.name.c_str(), window.window,
                    static_cast<long long>(window.count),
                    MsFromSeconds(window.p50_seconds),
                    MsFromSeconds(window.p95_seconds),
                    MsFromSeconds(window.p99_seconds));
      out += line;
    }
  }
  return out;
}

void Span::Start(MetricRegistry* registry) noexcept {
  histogram_ = registry->GetLatency(name_);
  recorder_ = registry->flight_recorder();
  parent_ = g_current_span;
  depth_ = parent_ != nullptr ? parent_->depth_ + 1 : 0;
  g_current_span = this;
  // Flight-recorder begin event before the histogram clock read so the
  // recorded interval nests strictly inside the B/E pair.
  if (recorder_ != nullptr) recorder_->RecordBegin(name_);
  start_ = std::chrono::steady_clock::now();
}

void Span::Finish() noexcept {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  if (recorder_ != nullptr) recorder_->RecordEnd(name_);
  g_current_span = parent_;
  histogram_->RecordSeconds(seconds);
}

const Span* Span::current() noexcept { return g_current_span; }

SloTracker::SloTracker(MetricRegistry* registry,
                       const Instruments& instruments, const Options& options)
    : options_(options),
      window_(registry->GetWindowed(instruments.window_name, options.window)),
      over_target_(registry->GetCounter(instruments.over_target_name)),
      breach_counter_(registry->GetCounter(instruments.breaches_name)),
      window_p95_gauge_(registry->GetGauge(instruments.window_p95_name)) {}

void SloTracker::RecordSeconds(double seconds) noexcept {
  window_->RecordSeconds(seconds);
  if (seconds > options_.target_p95_seconds) {
    ++samples_over_target_;
    over_target_->Add(1);
  }
  const double p95 = window_->Percentile(0.95);
  window_p95_gauge_->Set(MsFromSeconds(p95));
  if (p95 > options_.target_p95_seconds) {
    if (!in_breach_) {
      in_breach_ = true;
      ++breaches_;
      breach_counter_->Add(1);
    }
  } else {
    in_breach_ = false;
  }
}

}  // namespace qasca::util
