// Serving-layer benchmark (ISSUE 10): drives the multi-app AppManager with
// the deterministic serving harness (simulation/serving_driver.h) across an
// apps × worker-threads grid and reports, per cell, the event throughput
// and the p95 assignment latency every app's SloTracker measured over its
// sliding window (PR 8 observability stack; AppConfig::slo_p95_assign_ms).
//
// Writes the BENCH_PR10.json snapshot (schema v5, documented in README.md):
// the new "serving" section carries one row per grid cell, and the
// determinism flag asserts that per-app decision hashes were bit-identical
// across every thread count of a grid column — the conformance suite's
// claim, re-checked here on the bench workload.
//
// Latency numbers are wall-clock and machine-dependent; the decision
// hashes are not. tools/bench_diff.py compares serving rows by
// (apps, worker_threads) identity.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "platform/app_manager.h"
#include "simulation/serving_driver.h"
#include "util/logging.h"

namespace qasca {
namespace {

constexpr uint64_t kSeed = 20100;

struct CellResult {
  int apps = 0;
  int threads = 0;
  double events_per_second = 0.0;
  double p95_assignment_seconds = 0.0;
  double max_assignment_seconds = 0.0;
  int64_t assignments = 0;
  int64_t completions = 0;
  int64_t batches = 0;
  bool slo_met = false;
  uint64_t decision_hash = 0;
  std::vector<uint64_t> per_app_hashes;
};

uint64_t FoldHashes(const std::vector<uint64_t>& hashes) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t value : hashes) {
    h ^= value;
    h *= 1099511628211ull;
  }
  return h;
}

CellResult RunCell(const ServingWorkloadOptions& options, int threads) {
  const ServingSchedule schedule = ServingSchedule::Generate(options, kSeed);
  AppManager manager;
  util::Status built = BuildServingApps(manager, options, kSeed);
  QASCA_CHECK(built.ok()) << built.ToString();
  const ServingRunResult run =
      RunServingSchedule(manager, schedule, options, threads);

  CellResult cell;
  cell.apps = options.apps;
  cell.threads = threads;
  cell.assignments = run.assignments;
  cell.completions = run.completions;
  cell.batches = run.batches;
  cell.per_app_hashes = run.decision_hashes;
  cell.decision_hash = FoldHashes(run.decision_hashes);
  const double total_events =
      static_cast<double>(options.apps) * options.events_per_app;
  cell.events_per_second =
      run.elapsed_seconds > 0 ? total_events / run.elapsed_seconds : 0.0;
  // The SLO view: worst per-app sliding-window p95 across the fleet, from
  // each app's own SloTracker.
  for (int app = 0; app < options.apps; ++app) {
    util::StatusOr<AppManager::AppStats> stats = manager.StatsFor(app);
    QASCA_CHECK(stats.ok()) << stats.status().ToString();
    cell.p95_assignment_seconds =
        std::max(cell.p95_assignment_seconds, stats->window_p95_seconds);
    cell.max_assignment_seconds =
        std::max(cell.max_assignment_seconds, stats->max_assignment_seconds);
  }
  cell.slo_met =
      cell.p95_assignment_seconds <= options.slo_p95_assign_ms / 1e3;
  return cell;
}

int Main(int argc, char** argv) {
  std::string commit = "unknown";
  std::string date = "unknown";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      QASCA_CHECK(i + 1 < argc) << "missing value for" << arg;
      return argv[++i];
    };
    if (arg == "--commit") {
      commit = value();
    } else if (arg == "--date") {
      date = value();
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(
          stderr,
          "usage: bench_serving [--commit SHA] [--date D] [--out FILE]\n");
      return 2;
    }
  }

  ServingWorkloadOptions options;
  options.workers_per_app = 8;
  options.events_per_app = 200;
  options.num_questions = 50;
  options.questions_per_hit = 3;
  options.em_refresh_interval = 4;
  options.lease_timeout_ticks = 6;
  // The per-app SLO target the p95 column is judged against. Generous on
  // purpose: the gate is bench_diff's relative drift check, the boolean is
  // the at-a-glance signal.
  options.slo_p95_assign_ms = 5.0;

  const std::vector<int> app_counts = {2, 4, 8};
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  QASCA_CHECK(out != nullptr) << "cannot open" << out_path;

  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_serving\",\n");
  std::fprintf(out, "  \"schema_version\": 5,\n");
  std::fprintf(out, "  \"commit\": \"%s\",\n", commit.c_str());
  std::fprintf(out, "  \"date\": \"%s\",\n", date.c_str());
  std::fprintf(out, "  \"machine\": { \"hardware_threads\": %u },\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"workload\": { \"workers_per_app\": %d, "
               "\"events_per_app\": %d, \"num_questions\": %d, \"k\": %d, "
               "\"slo_p95_assign_ms\": %g },\n",
               options.workers_per_app, options.events_per_app,
               options.num_questions, options.questions_per_hit,
               options.slo_p95_assign_ms);

  bool identical = true;
  std::map<int, std::vector<uint64_t>> reference_hashes;
  std::fprintf(out, "  \"serving\": [\n");
  bool first = true;
  for (int apps : app_counts) {
    ServingWorkloadOptions cell_options = options;
    cell_options.apps = apps;
    for (int threads : thread_counts) {
      std::fprintf(stderr, "[bench] apps=%d worker-threads=%d ...\n", apps,
                   threads);
      const CellResult cell = RunCell(cell_options, threads);
      auto [it, inserted] =
          reference_hashes.try_emplace(apps, cell.per_app_hashes);
      if (!inserted && it->second != cell.per_app_hashes) identical = false;
      if (!first) std::fprintf(out, ",\n");
      first = false;
      std::fprintf(
          out,
          "    { \"apps\": %d, \"worker_threads\": %d, "
          "\"events_per_second\": %g, \"p95_assignment_seconds\": %g, "
          "\"max_assignment_seconds\": %g, \"assignments\": %lld, "
          "\"completions\": %lld, \"batches\": %lld, \"slo_met\": %s, "
          "\"decision_hash\": \"%016llx\" }",
          cell.apps, cell.threads, cell.events_per_second,
          cell.p95_assignment_seconds, cell.max_assignment_seconds,
          static_cast<long long>(cell.assignments),
          static_cast<long long>(cell.completions),
          static_cast<long long>(cell.batches), cell.slo_met ? "true" : "false",
          static_cast<unsigned long long>(cell.decision_hash));
    }
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(
      out,
      "  \"determinism\": { \"identical_decisions_across_thread_counts\": "
      "%s }\n",
      identical ? "true" : "false");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: per-app decision hashes diverged across thread "
                 "counts\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qasca

int main(int argc, char** argv) { return qasca::Main(argc, argv); }
