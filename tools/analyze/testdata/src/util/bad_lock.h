#ifndef QASCA_UTIL_BAD_LOCK_H_
#define QASCA_UTIL_BAD_LOCK_H_

// lock-annotations fixture: a raw std::mutex member outside util/mutex.h
// and a util::Mutex member with no QASCA_GUARDED_BY/QASCA_REQUIRES
// contract must both fire; an annotated Mutex and an allow'd raw mutex
// must not.

#include <mutex>

#include "util/mutex.h"
#include "util/thread_annotations.h"

class BadLocks {
 private:
  std::mutex raw_;  // analyze:expect(lock-annotations)
  qasca::util::Mutex unguarded_;  // analyze:expect(lock-annotations)

  qasca::util::Mutex guarded_;
  int shared_state_ QASCA_GUARDED_BY(guarded_) = 0;
};

class AllowedLocks {
 private:
  std::mutex legacy_;  // analyze:allow(lock-annotations)
};

#endif  // QASCA_UTIL_BAD_LOCK_H_
