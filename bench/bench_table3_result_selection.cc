// Reproduces Table 3: the average real quality improvement of returning the
// optimal result vector R* (Theorem 2 / Algorithm 1) instead of the
// argmax-label vector R-tilde, measured along each system's own end-to-end
// run of the three F-score applications (ER, PSA, NSA).

#include <cstdio>

#include "bench/experiment_driver.h"
#include "util/table.h"

namespace qasca {
namespace {

void RunAll() {
  const int seeds = bench::SeedsFromEnv(2);
  // The paper's Table 3 reports the five comparison systems (QASCA's own
  // runs are what Figure 5 shows; the selection optimisation is applied to
  // every system there).
  std::vector<SystemFactory> systems;
  for (const SystemFactory& factory : DefaultSystems()) {
    if (factory.name != "QASCA") systems.push_back(factory);
  }

  std::vector<ApplicationSpec> apps = {
      EntityResolutionApp(), PositiveSentimentApp(), NegativeSentimentApp()};

  util::PrintSection(
      "Table 3 — mean quality improvement of optimal result selection "
      "(F(T,R*) - F(T,R-tilde))");
  std::vector<std::string> header = {"Dataset"};
  for (const SystemFactory& factory : systems) header.push_back(factory.name);
  util::Table table(header);
  for (const ApplicationSpec& app : apps) {
    bench::AveragedTraces traces = bench::RunAveraged(
        app, systems, seeds, /*checkpoints=*/10,
        /*track_estimation_deviation=*/false);
    char label[64];
    std::snprintf(label, sizeof(label), "%s (alpha=%.2f)", app.name.c_str(),
                  app.metric.alpha);
    table.AddRow().Cell(std::string(label));
    for (double gain : traces.result_selection_gain) table.Percent(gain, 2);
  }
  table.Print();
  std::printf(
      "Expected shape (paper Table 3): every entry positive — all systems\n"
      "benefit from R*; NSA (alpha=0.25, Recall-heavy) benefits the most,\n"
      "PSA (alpha=0.75) the least, mirroring Figure 3(d)'s asymmetric "
      "bowl.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
