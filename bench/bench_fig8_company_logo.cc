// Reproduces Figure 8 / Appendix J: the CompanyLogo application — 500
// questions with 214 country labels, k = 5, z = 3 (300 HITs), evaluated as
// F-score for "USA" with alpha = 0.5, deployed on QASCA. F-score reduces a
// many-label question to target vs non-target, so both quality and
// assignment latency must be unaffected by the label count.

#include <cstdio>

#include "bench/experiment_driver.h"
#include "platform/qasca_strategy.h"
#include "util/table.h"

namespace qasca {
namespace {

void RunAll() {
  const int seeds = bench::SeedsFromEnv(1);
  std::vector<SystemFactory> systems = {
      {"QASCA", [] { return std::make_unique<QascaStrategy>(); }}};
  util::PrintSection(
      "Figure 8 — CompanyLogo (214 labels): F-score(USA, alpha=0.5) vs "
      "completed HITs on QASCA");
  bench::AveragedTraces traces =
      bench::RunAveraged(CompanyLogoApp(), systems, seeds, /*checkpoints=*/10,
                         /*track_estimation_deviation=*/false);
  bench::PrintQualitySeries(traces);
  std::printf(
      "max assignment time = %.4fs (paper: 0.005s — F-score's target /\n"
      "non-target reduction makes assignment independent of the 214 "
      "labels)\n",
      traces.max_assignment_seconds[0]);
  std::printf(
      "Expected shape: high F-score reached well before all HITs complete\n"
      "(the paper hits 90%% at two thirds of the budget).\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
