"""Lightweight C++ semantic frontend shared by the analyzer passes.

The PR-4 analyzer was regex-over-lines: it could not tell a call from a
declaration, see whether a call's result is consumed, walk the include
graph, or reason about what happens *inside a loop*. This module adds the
minimum semantic model those questions need — nothing close to a real
compiler, but grounded in the same translation units the build compiles:

  * a shared tokenizer over the comment-stripped view of each file
    (identifiers, literals, punctuators, with line numbers), with
    preprocessor-directive lines filtered out so multi-line macro bodies
    do not masquerade as declarations;
  * per-file models (`FileModel`): include directives, declarations of
    Status/StatusOr-returning functions, every call site with a verdict on
    whether its result is used, function definitions with body extents and
    class-qualified names (the nodes of the cross-TU call graph), class
    definitions with per-member declaration facts, `util::MutexLock`
    acquisition scopes, lambdas handed to the thread-pool entry points
    with their captures and writes, mutable namespace-scope/static-local
    state, scalar floating-point reduction sites inside loops, and
    allocation facts (push_back/reserve receivers, containers constructed
    inside loops);
  * a `compile_commands.json` loader (`CompilationDatabase`) so the file
    universe the passes see is exactly what the build compiles — every
    preset exports the database (CMakeLists.txt sets
    CMAKE_EXPORT_COMPILE_COMMANDS), and the driver grounds the tree in the
    newest one;
  * a content-addressed model cache (`ModelCache`, mtime/size fast path
    plus sha1 fallback) so re-running the analyzer only re-tokenizes files
    that actually changed — tokenization dominates a cold run.

Everything here is derived from the `code` view of base.SourceFile
(comments stripped, line structure preserved), so token line numbers agree
with the line numbers the regex passes report.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

# Bump whenever tokenization or fact extraction changes shape or meaning:
# a version mismatch invalidates the whole model cache.
FRONTEND_VERSION = 4

# ---------------------------------------------------------------------------
# Tokenizer


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "str" | "chr" | "punct"
    text: str
    line: int  # 1-based


_TOKEN = re.compile(
    r"""
      (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<str>(?:L|u8?|U)?"(?:[^"\\\n]|\\.)*")
    | (?P<chr>(?:L|u8?|U)?'(?:[^'\\\n]|\\.)*')
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
        |[-+*/%^&|~!<>=]=|[-+*/%^&|~!<>=?{}()\[\];:,.#])
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset(
    "if else for while do switch case default return break continue goto "
    "sizeof alignof new delete throw try catch static_cast dynamic_cast "
    "const_cast reinterpret_cast co_await co_return co_yield".split())

CONTROL_KEYWORDS = frozenset("if for while switch catch".split())


def tokenize(code: str) -> list[Token]:
    """Tokenizes the comment-stripped `code` view of a file."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    for match in _TOKEN.finditer(code):
        line += code.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup or "punct"
        tokens.append(Token(kind=kind, text=match.group(0), line=line))
    return tokens


# ---------------------------------------------------------------------------
# Per-file facts


@dataclass
class Include:
    line: int
    target: str  # as spelled between the delimiters
    angled: bool


@dataclass
class CallSite:
    name: str  # unqualified callee name
    line: int
    discarded: bool  # full-expression statement whose value is dropped
    void_cast: bool  # explicitly discarded via (void) / static_cast<void>


@dataclass
class FunctionDef:
    name: str
    line: int  # line of the opening brace's statement
    end_line: int
    # Class-qualified spelling when derivable: "MetricRegistry::Snapshot"
    # for out-of-line definitions (from the `Class::name(` head) and for
    # inline methods (from the innermost enclosing class body). Free
    # functions keep the bare name. This is the call-graph node identity.
    qualname: str = ""


@dataclass
class ReductionSite:
    """`var += expr;` inside a loop, where `var` is a scalar double
    declared outside that loop — a loop-carried floating-point fold."""

    var: str
    line: int
    blessed: bool  # inside an argument of a blessed fold helper


@dataclass
class AllocFacts:
    """Allocation behavior of one function definition."""

    function: str
    line: int
    # receiver expression -> first line it appears on
    push_back: dict[str, int] = field(default_factory=dict)
    prealloc: dict[str, int] = field(default_factory=dict)
    # containers constructed inside a loop body: (line, "type name")
    loop_constructions: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class MemberDecl:
    """One data-member declaration inside a class body."""

    name: str
    line: int
    type_text: str  # declaration tokens before the declarator, joined
    guarded: bool   # carries QASCA_GUARDED_BY / QASCA_PT_GUARDED_BY
    const: bool     # const / constexpr
    static: bool
    atomic: bool    # std::atomic<...>
    mutex: bool     # util::Mutex / std::mutex / std::shared_mutex
    condvar: bool   # CondVar / condition_variable / once_flag


@dataclass
class ClassDef:
    """A class/struct definition; nested classes spell the outer path
    ("FlightRecorder::Shard")."""

    name: str
    line: int
    end_line: int
    members: list[MemberDecl] = field(default_factory=list)


@dataclass
class LockScope:
    """One `util::MutexLock lock(expr);` acquisition and the block extent
    it guards. `expr` is normalized (index expressions collapse to `[]`);
    `member` is its final component, `base` its first. The hint fields
    carry whatever the TU knows about the base object's type so the
    lock-order pass can resolve the expression to a Class::member node:
    `local_hints` are identifier tokens from a local/parameter declaration
    of `base`, `container` is the range-for container when `base` was
    introduced by a structured binding."""

    expr: str
    member: str
    base: str
    container: str
    local_hints: list[str]
    line: int
    end_line: int  # last line of the innermost enclosing block
    function: str  # enclosing function's qualname ("" when unattributed)


@dataclass
class PoolWrite:
    """A mutation inside a pool lambda whose target is not lambda-local."""

    target: str  # normalized spelling ("counts", "out[]", "sink.push_back()")
    base: str    # first identifier of the target chain
    line: int
    indexed: bool  # element write through [] — disjoint-index pattern
    guarded: bool  # under a MutexLock scope opened inside the lambda


@dataclass
class PoolLambda:
    """A lambda argument of a thread-pool entry point (Submit/ParallelFor/
    ParallelSum): the unit of work that runs concurrently."""

    call: str     # entry-point name
    line: int
    capture: str  # capture list as spelled, whitespace stripped
    function: str  # enclosing function's qualname
    writes: list[PoolWrite] = field(default_factory=list)


@dataclass
class GlobalVar:
    """Mutable namespace-scope / static-local / thread-local state."""

    name: str
    line: int
    kind: str  # "namespace-scope" | "static-local" | "thread-local"


@dataclass
class FileModel:
    includes: list[Include] = field(default_factory=list)
    status_functions: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    reductions: list[ReductionSite] = field(default_factory=list)
    accumulate_calls: list[int] = field(default_factory=list)
    allocs: list[AllocFacts] = field(default_factory=list)
    classes: list[ClassDef] = field(default_factory=list)
    lock_scopes: list[LockScope] = field(default_factory=list)
    pool_lambdas: list[PoolLambda] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)

    def to_json(self) -> dict:
        out = asdict(self)
        out["allocs"] = [
            {**a, "loop_constructions": [list(t) for t in a["loop_constructions"]]}
            for a in out["allocs"]
        ]
        return out

    @staticmethod
    def from_json(data: dict) -> "FileModel":
        return FileModel(
            includes=[Include(**i) for i in data["includes"]],
            status_functions=list(data["status_functions"]),
            calls=[CallSite(**c) for c in data["calls"]],
            functions=[FunctionDef(**f) for f in data["functions"]],
            reductions=[ReductionSite(**r) for r in data["reductions"]],
            accumulate_calls=list(data["accumulate_calls"]),
            allocs=[
                AllocFacts(
                    function=a["function"], line=a["line"],
                    push_back=dict(a["push_back"]),
                    prealloc=dict(a["prealloc"]),
                    loop_constructions=[tuple(t) for t in
                                        a["loop_constructions"]],
                )
                for a in data["allocs"]
            ],
            classes=[
                ClassDef(name=c["name"], line=c["line"],
                         end_line=c["end_line"],
                         members=[MemberDecl(**m) for m in c["members"]])
                for c in data["classes"]
            ],
            lock_scopes=[LockScope(**s) for s in data["lock_scopes"]],
            pool_lambdas=[
                PoolLambda(call=p["call"], line=p["line"],
                           capture=p["capture"], function=p["function"],
                           writes=[PoolWrite(**w) for w in p["writes"]])
                for p in data["pool_lambdas"]
            ],
            globals=[GlobalVar(**g) for g in data["globals"]],
        )


# ---------------------------------------------------------------------------
# Extraction

INCLUDE = re.compile(r'^[ \t]*#\s*include\s+([<"])([^>"]+)[>"]', re.MULTILINE)

# A function *returning* Status/StatusOr: the return type immediately
# precedes the function name, which immediately precedes the parameter
# list. Catches declarations and out-of-class definitions alike
# (`util::Status Engine::CompleteHit(...)`). References (`Status&`) and
# constructors (`Status(...)`, no whitespace before the paren) do not
# match. Template arguments may span lines.
STATUS_DECL = re.compile(
    r"\b(?:util\s*::\s*)?Status(?:Or\s*<[^;{}]*?>)?\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\(",
    re.DOTALL)

# Tokens a call's full expression may start after: statement boundaries,
# a control-statement's closing paren, label/ctor-init colons.
_STMT_BOUNDARY = {";", "{", "}", ")", ":"}

# Fold helpers whose argument lambdas legitimately contain chunk-partial
# `+=` accumulation; the float-determinism pass must not flag the blessed
# helpers' own usage pattern (util/thread_pool.h, util/fold.h).
BLESSED_FOLDS = frozenset(
    {"ParallelFor", "ParallelSum", "DeterministicSum", "DeterministicFold"})

_CONTAINER_TYPES = frozenset(
    "vector deque map set unordered_map unordered_set multimap multiset "
    "string basic_string list forward_list".split())

_PREALLOC_METHODS = frozenset({"reserve", "resize", "assign"})


def _matching_paren(tokens: list[Token], open_index: int) -> int:
    """Index of the `)` matching tokens[open_index] == `(`; -1 if torn."""
    depth = 0
    for i in range(open_index, len(tokens)):
        text = tokens[i].text
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _matching_brace(tokens: list[Token], open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(tokens)):
        text = tokens[i].text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


def _expression_start(tokens: list[Token], index: int) -> int:
    """Walks back from the callee name at `index` over the member/qualifier
    chain (`a.b->c::d(...)...`) to the first token of the full expression."""
    i = index
    steps = 0
    while i > 0 and steps < 64:
        steps += 1
        prev = tokens[i - 1].text
        if prev in {".", "->", "::"}:
            i -= 1
            # The chain element before the access operator: an identifier,
            # or a balanced () / [] group (e.g. `foo(1).bar`, `v[0].bar`).
            if i > 0 and tokens[i - 1].text in {")", "]"}:
                close = tokens[i - 1].text
                open_ = "(" if close == ")" else "["
                depth = 0
                j = i - 1
                while j >= 0:
                    if tokens[j].text == close:
                        depth += 1
                    elif tokens[j].text == open_:
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                i = j
                continue
            if i > 0 and tokens[i - 1].kind == "id":
                i -= 1
                continue
            break
        break
    return i


def _call_verdict(tokens: list[Token], name_index: int,
                  close_paren: int) -> tuple[bool, bool]:
    """(discarded, void_cast) for the call whose name is at name_index."""
    after = tokens[close_paren + 1].text if close_paren + 1 < len(tokens) \
        else ";"
    if after != ";":
        return False, False  # chained, assigned, compared, passed on...
    start = _expression_start(tokens, name_index)
    before = tokens[start - 1].text if start > 0 else ";"
    if before not in _STMT_BOUNDARY and before != "else" and before != "do":
        return False, False
    # (void)Foo(...) / static_cast<void>(...) wrapping is an explicit,
    # commented discard — the contract asks for exactly that.
    if start >= 2 and tokens[start - 1].text == ")" and \
            tokens[start - 2].text == "void":
        return True, True
    return True, False


def _extract_calls(tokens: list[Token]) -> list[CallSite]:
    calls: list[CallSite] = []
    for i, token in enumerate(tokens):
        if token.kind != "id" or token.text in KEYWORDS:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        prev = tokens[i - 1] if i > 0 else None
        # A type name directly before the callee means this is itself a
        # declaration (`util::Status Validate() const;`), not a call.
        if prev is not None and (prev.kind == "id" or prev.text in
                                 {">", "*", "&", "&&"}):
            continue
        close = _matching_paren(tokens, i + 1)
        if close < 0:
            continue
        discarded, void_cast = _call_verdict(tokens, i, close)
        calls.append(CallSite(name=token.text, line=token.line,
                              discarded=discarded, void_cast=void_cast))
    return calls


_QASCA_MACRO = re.compile(r"QASCA_[A-Z0-9_]+")


def _function_name_before_body(tokens: list[Token],
                               brace_index: int) -> tuple[str, int] | None:
    """(name, name_token_index) of the function whose body opens at
    tokens[brace_index], or None when the brace opens something else
    (namespace, class, init)."""
    i = brace_index - 1
    steps = 0
    # Skip the decoration between the parameter list and the body: cv/ref
    # qualifiers, virt-specifiers, a constructor initializer list (balanced
    # paren/brace groups after a `:`), and trailing return types.
    while i >= 0 and steps < 128:
        steps += 1
        text = tokens[i].text
        if text == ")":
            depth = 0
            j = i
            while j >= 0:
                if tokens[j].text == ")":
                    depth += 1
                elif tokens[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j <= 0:
                return None
            name = tokens[j - 1]
            if name.kind != "id":
                return None  # lambda, operator(), function-try oddities
            if name.text in CONTROL_KEYWORDS:
                return None
            if name.text in KEYWORDS:
                return None
            # A thread-safety annotation (`void Lock() QASCA_ACQUIRE() {`):
            # its argument list is not the parameter list — keep walking.
            if _QASCA_MACRO.fullmatch(name.text):
                i = j - 2
                continue
            # Constructor initializer element (`: a_(x), b_(y) {`): keep
            # walking left past the `,`/`:` to the real parameter list.
            k = j - 2
            if k >= 0 and tokens[k].text in {":", ","}:
                i = k - 1
                continue
            return name.text, j - 1
        if tokens[i].kind == "id" or text in {":", ",", "&", "&&", "*",
                                              "->", "::", ">", "<", "]",
                                              "["}:
            i -= 1
            continue
        if text == "}":  # braced member init inside a ctor-init list
            depth = 0
            while i >= 0:
                if tokens[i].text == "}":
                    depth += 1
                elif tokens[i].text == "{":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
            continue
        return None
    return None


def _extract_functions(tokens: list[Token]
                       ) -> list[tuple[str, int, int, int]]:
    """(name, name_index, body_open_index, body_close_index) for every
    outermost function definition."""
    out: list[tuple[str, int, int, int]] = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text == "{":
            named = _function_name_before_body(tokens, i)
            if named is not None:
                name, name_index = named
                close = _matching_brace(tokens, i)
                out.append((name, name_index, i, close))
                i = close + 1
                continue
        i += 1
    return out


def _double_decls(tokens: list[Token], begin: int, end: int) -> dict[str, int]:
    """name -> token index of scalar `double` declarations in [begin, end)."""
    decls: dict[str, int] = {}
    for i in range(begin, end - 1):
        if tokens[i].text == "double" and tokens[i + 1].kind == "id":
            follower = tokens[i + 2].text if i + 2 < end else ";"
            if follower in {"=", ";", "{"}:
                decls.setdefault(tokens[i + 1].text, i)
    return decls


def _loop_bodies(tokens: list[Token], begin: int,
                 end: int) -> list[tuple[int, int, int]]:
    """(loop_keyword_index, body_begin, body_end) for for/while loops in
    [begin, end), including nested ones."""
    loops: list[tuple[int, int, int]] = []
    i = begin
    while i < end:
        if tokens[i].kind == "id" and tokens[i].text in {"for", "while"}:
            if i + 1 < end and tokens[i + 1].text == "(":
                close = _matching_paren(tokens, i + 1)
                if 0 < close < end - 1:
                    if tokens[close + 1].text == "{":
                        body_end = _matching_brace(tokens, close + 1)
                        loops.append((i, close + 2, body_end))
                    else:
                        # Single-statement body: up to the terminating `;`.
                        j = close + 1
                        depth = 0
                        while j < end:
                            text = tokens[j].text
                            if text in "([{":
                                depth += 1
                            elif text in ")]}":
                                depth -= 1
                            elif text == ";" and depth == 0:
                                break
                            j += 1
                        loops.append((i, close + 1, j))
        i += 1
    return loops


def _blessed_ranges(tokens: list[Token]) -> list[tuple[int, int]]:
    """Token ranges spanned by the arguments of blessed fold helpers."""
    ranges: list[tuple[int, int]] = []
    for i, token in enumerate(tokens):
        if token.kind == "id" and token.text in BLESSED_FOLDS and \
                i + 1 < len(tokens) and tokens[i + 1].text == "(":
            close = _matching_paren(tokens, i + 1)
            if close > 0:
                ranges.append((i + 1, close))
    return ranges


def _extract_reductions(tokens: list[Token],
                        functions: list[tuple[str, int, int, int]]
                        ) -> list[ReductionSite]:
    sites: list[ReductionSite] = []
    blessed = _blessed_ranges(tokens)
    for _name, _ni, body_open, body_close in functions:
        decls = _double_decls(tokens, body_open, body_close)
        if not decls:
            continue
        for _kw, loop_begin, loop_end in _loop_bodies(tokens, body_open,
                                                      body_close):
            for i in range(loop_begin, loop_end - 1):
                if tokens[i + 1].text != "+=" or tokens[i].kind != "id":
                    continue
                var = tokens[i].text
                decl_index = decls.get(var)
                if decl_index is None or decl_index >= loop_begin:
                    continue  # not a double, or declared inside the loop
                # `q[i] += ...` style scatter updates have an indexing
                # token before the += and are not scalar folds.
                sites.append(ReductionSite(
                    var=var, line=tokens[i].line,
                    blessed=any(lo <= i <= hi for lo, hi in blessed)))
    return sites


def _receiver_chain(tokens: list[Token], method_index: int) -> str | None:
    """`a.b->c` receiver spelling for the method name at method_index."""
    parts: list[str] = []
    i = method_index - 1  # at the `.` / `->`
    while i > 0 and tokens[i].text in {".", "->"}:
        if tokens[i - 1].kind == "id":
            parts.append(tokens[i - 1].text)
            i -= 2
        else:
            return None  # computed receiver: (*x).push_back etc.
    if not parts:
        return None
    return ".".join(reversed(parts))


def _extract_allocs(tokens: list[Token],
                    functions: list[tuple[str, int, int, int]]
                    ) -> list[AllocFacts]:
    out: list[AllocFacts] = []
    for name, _ni, body_open, body_close in functions:
        facts = AllocFacts(function=name, line=tokens[body_open].line)
        loops = _loop_bodies(tokens, body_open, body_close)
        for i in range(body_open, body_close):
            token = tokens[i]
            if token.kind != "id":
                continue
            if token.text in {"push_back", "emplace_back"} and \
                    i + 1 < body_close and tokens[i + 1].text == "(" and \
                    i > 0 and tokens[i - 1].text in {".", "->"}:
                receiver = _receiver_chain(tokens, i)
                if receiver is not None:
                    facts.push_back.setdefault(receiver, token.line)
            elif token.text in _PREALLOC_METHODS and \
                    i + 1 < body_close and tokens[i + 1].text == "(" and \
                    i > 0 and tokens[i - 1].text in {".", "->"}:
                receiver = _receiver_chain(tokens, i)
                if receiver is not None:
                    facts.prealloc.setdefault(receiver, token.line)
            elif token.text in _CONTAINER_TYPES and \
                    any(lo <= i < hi for _kw, lo, hi in loops):
                # `std::vector<double> weights(...)` declared per iteration.
                j = i + 1
                if j < body_close and tokens[j].text == "<":
                    depth = 0
                    while j < body_close:
                        if tokens[j].text == "<":
                            depth += 1
                        elif tokens[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif tokens[j].text in {";", "{"}:
                            break
                        j += 1
                    j += 1
                if j < body_close and tokens[j].kind == "id" and \
                        j + 1 < body_close and \
                        tokens[j + 1].text in {"(", "{", ";", "="}:
                    facts.loop_constructions.append(
                        (tokens[j].line, f"{token.text} {tokens[j].text}"))
        if facts.push_back or facts.prealloc or facts.loop_constructions:
            out.append(facts)
    return out


# ---------------------------------------------------------------------------
# Concurrency facts: classes/members, lock scopes, pool lambdas, globals


_ACCESS_SPECIFIERS = frozenset({"public", "private", "protected"})

_MUTEX_TYPE_TOKENS = frozenset(
    {"Mutex", "mutex", "shared_mutex", "recursive_mutex", "timed_mutex"})

_CONDVAR_TYPE_TOKENS = frozenset(
    {"CondVar", "condition_variable", "condition_variable_any", "once_flag"})

# Statement leads that can never start a data-member declaration.
_MEMBER_SKIP_LEADS = frozenset(
    "using typedef friend template static_assert operator enum class "
    "struct namespace public private protected".split())

_GLOBAL_SKIP_LEADS = _MEMBER_SKIP_LEADS | {"extern"}

# The thread-pool entry points whose lambda arguments run concurrently.
POOL_ENTRY_POINTS = frozenset({"Submit", "ParallelFor", "ParallelSum"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="})

_MUTATING_METHODS = frozenset(
    "push_back emplace_back emplace insert erase clear resize assign "
    "reserve pop_back push pop fill swap".split())


def _directive_lines(code: str) -> set[int]:
    """Lines occupied by preprocessor directives, including backslash
    continuations (multi-line macro definitions)."""
    lines: set[int] = set()
    cont = False
    for lineno, text in enumerate(code.split("\n"), start=1):
        if cont or text.lstrip().startswith("#"):
            lines.add(lineno)
            cont = text.rstrip().endswith("\\")
        else:
            cont = False
    return lines


def _extract_classes(tokens: list[Token]
                     ) -> list[tuple[str, int, int, int]]:
    """(qualified_name, keyword_index, body_open, body_close) for every
    class/struct definition; nested names carry the outer path."""
    raw: list[tuple[str, int, int, int]] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind != "id" or tok.text not in {"class", "struct"}:
            i += 1
            continue
        if i > 0 and tokens[i - 1].text == "enum":
            i += 1
            continue
        # Walk the class-head to its `{`. Bail on anything that means this
        # is not a definition head: `;` (forward declaration), declarator
        # punctuation, or template-parameter context (`template <class T>`).
        j = i + 1
        name_index = None
        seen_colon = False
        ok = True
        while j < n:
            text = tokens[j].text
            if text == "{":
                break
            if text in {";", ")", "=", ",", "*", "&", "}"} or \
                    (not seen_colon and text in {"<", ">", ">>"}):
                ok = False
                break
            if text == ":":
                seen_colon = True  # base clause: names after it are bases
                j += 1
                continue
            if tokens[j].kind == "id" and not seen_colon:
                if j + 1 < n and tokens[j + 1].text == "(":
                    # attribute macro (`class QASCA_CAPABILITY("mutex") X`)
                    close = _matching_paren(tokens, j + 1)
                    if close < 0:
                        ok = False
                        break
                    j = close + 1
                    continue
                if text != "final":
                    name_index = j
            j += 1
        if not ok or name_index is None or j >= n:
            i += 1
            continue
        close = _matching_brace(tokens, j)
        raw.append((tokens[name_index].text, i, j, close))
        i = j + 1  # descend into the body: nested classes are definitions too
    out: list[tuple[str, int, int, int]] = []
    for name, kw, op, cl in raw:
        enclosing = sorted(
            (other_op, other_name)
            for other_name, _okw, other_op, other_cl in raw
            if other_op < op and cl < other_cl)
        qual = "::".join([e[1] for e in enclosing] + [name])
        out.append((qual, kw, op, cl))
    return out


def _declaration_facts(tokens: list[Token], stmt: list[int]
                       ) -> tuple[int, str, set[str], bool] | None:
    """Interprets a statement (token indices, no terminator) as a variable
    declaration: (declarator_token_index, type_text, top_level_pre_ids,
    guarded) or None when it is not one (e.g. a function declaration)."""
    # Peel annotation macros (QASCA_GUARDED_BY(...) and friends) out of the
    # declaration before locating the declarator.
    guarded = False
    kept: list[int] = []
    k = 0
    while k < len(stmt):
        tok = tokens[stmt[k]]
        if tok.kind == "id" and _QASCA_MACRO.fullmatch(tok.text) and \
                k + 1 < len(stmt) and tokens[stmt[k + 1]].text == "(":
            if tok.text in {"QASCA_GUARDED_BY", "QASCA_PT_GUARDED_BY"}:
                guarded = True
            depth = 0
            k += 1
            while k < len(stmt):
                text = tokens[stmt[k]].text
                if text == "(":
                    depth += 1
                elif text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            k += 1
            continue
        kept.append(stmt[k])
        k += 1
    if not kept:
        return None
    # The declarator is the last top-level identifier followed by `=`, `{`,
    # `[`, a bit-field `:`, or the end of the declaration; scanning stops at
    # a top-level `=` (the initializer).
    paren = angle = bracket = brace = 0
    name_pos: int | None = None
    top_ids: list[tuple[int, str]] = []
    for k, idx in enumerate(kept):
        tok = tokens[idx]
        text = tok.text
        if paren == 0 and angle == 0 and bracket == 0 and brace == 0:
            if text == "=":
                break
            if text == "operator":
                return None  # `X& operator=(const X&) = delete;` etc.
            if tok.kind == "id" and text not in KEYWORDS:
                nxt = tokens[kept[k + 1]].text if k + 1 < len(kept) else ""
                if nxt == "(":
                    return None  # a function declaration, not a variable
                top_ids.append((k, text))
                if nxt in {"=", "{", "[", ":"} or k + 1 == len(kept):
                    name_pos = k
        if text == "(":
            paren += 1
        elif text == ")":
            paren -= 1
        elif text == "[":
            bracket += 1
        elif text == "]":
            bracket -= 1
        elif text == "{":
            brace += 1
        elif text == "}":
            brace -= 1
        elif text == "<" and paren == 0 and brace == 0:
            angle += 1
        elif text == ">" and paren == 0 and brace == 0:
            angle = max(0, angle - 1)
        elif text == ">>" and paren == 0 and brace == 0:
            angle = max(0, angle - 2)
    if name_pos is None:
        return None
    pre = {text for k, text in top_ids if k < name_pos}
    type_text = " ".join(tokens[idx].text for idx in kept[:name_pos])
    return kept[name_pos], type_text, pre, guarded


def _member_from_statement(tokens: list[Token],
                           stmt: list[int]) -> MemberDecl | None:
    if not stmt:
        return None
    first = tokens[stmt[0]]
    if first.kind != "id" or first.text in _MEMBER_SKIP_LEADS or \
            first.text in KEYWORDS:
        return None
    facts = _declaration_facts(tokens, stmt)
    if facts is None:
        return None
    name_idx, type_text, pre, guarded = facts
    return MemberDecl(
        name=tokens[name_idx].text,
        line=tokens[name_idx].line,
        type_text=type_text,
        guarded=guarded,
        const=bool({"const", "constexpr"} & pre),
        static=("static" in pre),
        atomic=("atomic" in pre),
        mutex=bool(_MUTEX_TYPE_TOKENS & pre),
        condvar=bool(_CONDVAR_TYPE_TOKENS & pre),
    )


def _class_members(tokens: list[Token], body_open: int, body_close: int,
                   nested: list[tuple[int, int]]) -> list[MemberDecl]:
    """Data members declared directly in the class body, skipping nested
    class definitions (their members belong to the nested ClassDef)."""
    members: list[MemberDecl] = []
    jump = {kw: cl for kw, cl in nested}
    i = body_open + 1
    stmt: list[int] = []
    while i < body_close:
        if i in jump:
            i = jump[i] + 1
            stmt = []
            continue
        text = tokens[i].text
        if text == ";":
            member = _member_from_statement(tokens, stmt)
            if member is not None:
                members.append(member)
            stmt = []
            i += 1
            continue
        if text == ":" and len(stmt) == 1 and \
                tokens[stmt[0]].text in _ACCESS_SPECIFIERS:
            stmt = []
            i += 1
            continue
        if text == "{":
            close = _matching_brace(tokens, i)
            if _function_name_before_body(tokens, i) is not None:
                # A member function body: the statement ends here (no `;`).
                stmt = []
            else:
                # Braced initializer / enum body: part of the declaration.
                stmt.extend(range(i, close + 1))
            i = close + 1
            continue
        stmt.append(i)
        i += 1
    return members


def _qualified_function_name(tokens: list[Token], name_index: int,
                             classes: list[tuple[str, int, int, int]]) -> str:
    parts = [tokens[name_index].text]
    i = name_index
    if i >= 1 and tokens[i - 1].text == "~":
        parts[0] = f"~{parts[0]}"  # destructor: `ThreadPool::~ThreadPool`
        i -= 1
    while i >= 2 and tokens[i - 1].text == "::" and \
            tokens[i - 2].kind == "id":
        parts.insert(0, tokens[i - 2].text)
        i -= 2
    if len(parts) > 1:
        return "::".join(parts)
    enclosing: tuple[str, int] | None = None
    for qual, _kw, op, cl in classes:
        if op < name_index < cl and \
                (enclosing is None or op > enclosing[1]):
            enclosing = (qual, op)
    if enclosing is not None:
        return f"{enclosing[0]}::{parts[0]}"
    return parts[0]


def _normalize_lock_expr(expr_tokens: list[Token]
                         ) -> tuple[str, str, str]:
    """(expr, member, base) for a MutexLock argument; index expressions
    collapse to `[]` so `shards_[i].mutex` and `shards_[j].mutex` are the
    same lock *class*."""
    out: list[str] = []
    ids: list[str] = []
    k = 0
    n = len(expr_tokens)
    while k < n:
        text = expr_tokens[k].text
        if text == "[":
            depth = 0
            while k < n:
                if expr_tokens[k].text == "[":
                    depth += 1
                elif expr_tokens[k].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            out.append("[]")
            k += 1
            continue
        if expr_tokens[k].kind == "id":
            ids.append(text)
        if text not in {"*", "&"} or out:  # drop leading deref/addr-of
            out.append(text)
        k += 1
    expr = "".join(out)
    if not ids:
        return "", "", ""
    return expr, ids[-1], ids[0]


def _local_type_hints(tokens: list[Token], start: int, upto: int,
                      base: str) -> list[str]:
    """Identifier tokens from declarations of `base` in [start, upto): the
    type spelling that lets the lock-order pass resolve `base.member` to a
    class. Noise is harmless — hints are intersected with known classes."""
    hints: list[str] = []
    for m in range(max(start, 1), upto):
        if tokens[m].kind != "id" or tokens[m].text != base:
            continue
        j = m - 1
        while j >= start:
            tok = tokens[j]
            if tok.kind == "id" and tok.text not in KEYWORDS:
                hints.append(tok.text)
                j -= 1
            elif tok.text in {"&", "&&", "*", "::", "<", ">", ">>", "const"}:
                j -= 1
            else:
                break
    return hints


def _binding_container(tokens: list[Token], start: int, upto: int,
                       base: str) -> str:
    """When `base` was introduced by a structured binding over a range-for
    (`for (auto& [k, v] : container_)`), the container's first identifier;
    "" otherwise."""
    for m in range(start, upto):
        if tokens[m].kind != "id" or tokens[m].text != base:
            continue
        j = m - 1
        while j >= start and (tokens[j].kind == "id" or
                              tokens[j].text == ","):
            j -= 1
        if j < start or tokens[j].text != "[":
            continue
        close = j
        depth = 0
        while close < upto:
            if tokens[close].text == "[":
                depth += 1
            elif tokens[close].text == "]":
                depth -= 1
                if depth == 0:
                    break
            close += 1
        if close + 1 < len(tokens) and tokens[close + 1].text == ":":
            k = close + 2
            while k < len(tokens) and tokens[k].kind != "id":
                k += 1
            if k < len(tokens):
                return tokens[k].text
    return ""


def _extract_lock_scopes(tokens: list[Token],
                         functions: list[tuple[str, int, int, int]],
                         classes: list[tuple[str, int, int, int]]
                         ) -> list[LockScope]:
    scopes: list[LockScope] = []
    for name, name_index, body_open, body_close in functions:
        qualname = _qualified_function_name(tokens, name_index, classes)
        # Include the parameter list in the hint window so `Shard& shard`
        # parameters resolve; walk back to the signature's start.
        hint_start = max(0, name_index - 24)
        stack: list[int] = []
        k = body_open
        while k <= body_close:
            text = tokens[k].text
            if text == "{":
                stack.append(k)
            elif text == "}":
                if stack:
                    stack.pop()
            elif tokens[k].kind == "id" and text == "MutexLock" and \
                    k + 2 <= body_close and tokens[k + 1].kind == "id" and \
                    tokens[k + 2].text in {"(", "{"}:
                opener = k + 2
                close = _matching_paren(tokens, opener) \
                    if tokens[opener].text == "(" \
                    else _matching_brace(tokens, opener)
                if close > opener:
                    expr, member, base = _normalize_lock_expr(
                        tokens[opener + 1:close])
                    if expr:
                        enclosing = stack[-1] if stack else body_open
                        scope_close = _matching_brace(tokens, enclosing)
                        scopes.append(LockScope(
                            expr=expr, member=member, base=base,
                            container=_binding_container(
                                tokens, body_open, k, base),
                            local_hints=_local_type_hints(
                                tokens, hint_start, k, base),
                            line=tokens[k].line,
                            end_line=tokens[scope_close].line,
                            function=qualname))
                    k = close
            k += 1
    return scopes


def _capture_info(capture: str) -> tuple[str, set[str], set[str]]:
    """(default_capture, by_ref_names, by_value_names)."""
    default = ""
    by_ref: set[str] = set()
    by_val: set[str] = set()
    for item in capture.split(","):
        item = item.strip()
        if not item:
            continue
        if item == "&":
            default = "&"
        elif item == "=":
            default = "="
        elif item.startswith("&"):
            name = item[1:].split("=", 1)[0].strip()
            by_ref.add(name)
        elif "=" in item:  # init capture: a by-value copy/move
            by_val.add(item.split("=", 1)[0].strip())
        else:
            by_val.add(item)
    return default, by_ref, by_val


def _parse_lambda(tokens: list[Token], open_bracket: int, limit: int
                  ) -> tuple[str, int, int, set[str]] | None:
    """(capture_text, body_open, body_close, param_names) for the lambda
    whose capture list opens at tokens[open_bracket], or None."""
    depth = 0
    cap_close = -1
    k = open_bracket
    while k < limit:
        if tokens[k].text == "[":
            depth += 1
        elif tokens[k].text == "]":
            depth -= 1
            if depth == 0:
                cap_close = k
                break
        k += 1
    if cap_close < 0:
        return None
    capture = "".join(
        t.text for t in tokens[open_bracket + 1:cap_close])
    params: set[str] = set()
    k = cap_close + 1
    if k < limit and tokens[k].text == "(":
        pclose = _matching_paren(tokens, k)
        if pclose < 0:
            return None
        for m in range(k + 1, pclose):
            if tokens[m].kind == "id" and \
                    tokens[m + 1].text in {",", ")", "="}:
                params.add(tokens[m].text)
        k = pclose + 1
    while k < limit and tokens[k].text != "{":
        if tokens[k].text in {";", ")", ","}:
            return None  # a subscript or comparison, not a lambda
        k += 1
    if k >= limit:
        return None
    return capture, k, _matching_brace(tokens, k), params


def _chain_left(tokens: list[Token], end: int
                ) -> tuple[str, str, bool, bool] | None:
    """(base, normalized_text, indexed, deref) for the l-value chain ending
    just before tokens[end] (an assignment/increment operator or the
    accessor of a mutating method call)."""
    parts: list[str] = []
    indexed = False
    i = end - 1
    while i >= 0:
        text = tokens[i].text
        if text == "]":
            depth = 0
            while i >= 0:
                if tokens[i].text == "]":
                    depth += 1
                elif tokens[i].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            parts.append("[]")
            indexed = True
            i -= 1
            continue
        if tokens[i].kind == "id":
            parts.append(text)
            if i >= 1 and tokens[i - 1].text in {".", "->"}:
                parts.append(tokens[i - 1].text)
                i -= 2
                continue
            break
        return None  # computed receiver: (*x).y = ... etc.
    if i < 0 or tokens[i].kind != "id" or not parts:
        return None
    base = tokens[i].text
    # `*flag = true;` — a dereference write through a pointer.
    deref = i >= 1 and tokens[i - 1].text == "*" and \
        (i < 2 or (tokens[i - 2].kind != "id" and
                   tokens[i - 2].text not in {")", "]"}))
    text = ("*" if deref else "") + "".join(reversed(parts))
    return base, text, indexed, deref


def _lambda_writes(tokens: list[Token], body_open: int, body_close: int,
                   capture: str, params: set[str]) -> list[PoolWrite]:
    default, by_ref, by_val = _capture_info(capture)
    # Names declared inside the lambda (locals, loop vars, structured
    # bindings): writes to them are lambda-private.
    declared = set(params)
    for k in range(body_open + 1, body_close):
        if tokens[k].kind != "id":
            continue
        prev = tokens[k - 1]
        if prev.kind == "id" and prev.text not in KEYWORDS and \
                prev.text not in CONTROL_KEYWORDS:
            declared.add(tokens[k].text)
        elif prev.text in {"*", "&", "&&", ">", ">>"} and k >= 2 and \
                (tokens[k - 2].kind == "id" or
                 tokens[k - 2].text in {">", ">>", "&", "*"}):
            # `std::vector<double>& row = ...`: a declaration, whereas a
            # dereference write `*flag = 1` follows a statement boundary.
            declared.add(tokens[k].text)
        elif prev.text in {"[", ","} and k >= 2:
            # structured binding `auto& [a, b] = / :`
            j = k - 1
            while j > body_open and tokens[j].text in {",", "["} or \
                    (tokens[j].kind == "id" and tokens[j].text != "auto"):
                j -= 1
            if tokens[j].text == "auto" or \
                    (j >= 1 and tokens[j].text in {"&", "&&"} and
                     tokens[j - 1].text == "auto"):
                declared.add(tokens[k].text)
    # MutexLock scopes opened inside the lambda: writes within them are
    # guarded.
    guards: list[tuple[int, int]] = []
    stack: list[int] = []
    for k in range(body_open, body_close + 1):
        text = tokens[k].text
        if text == "{":
            stack.append(k)
        elif text == "}":
            if stack:
                stack.pop()
        elif tokens[k].kind == "id" and text == "MutexLock":
            enclosing = stack[-1] if stack else body_open
            guards.append((k, _matching_brace(tokens, enclosing)))
    writes: list[PoolWrite] = []
    k = body_open + 1
    while k < body_close:
        tok = tokens[k]
        target: tuple[str, str, bool, bool] | None = None
        if tok.text in _ASSIGN_OPS:
            target = _chain_left(tokens, k)
        elif tok.text in {"++", "--"}:
            if tokens[k - 1].kind == "id" or tokens[k - 1].text == "]":
                target = _chain_left(tokens, k)
            elif k + 1 < body_close and tokens[k + 1].kind == "id":
                target = _chain_left(
                    tokens, _advance_chain(tokens, k + 1, body_close))
        elif tok.kind == "id" and tok.text in _MUTATING_METHODS and \
                k + 1 < body_close and tokens[k + 1].text == "(" and \
                tokens[k - 1].text in {".", "->"}:
            receiver = _chain_left(tokens, k - 1)
            if receiver is not None:
                base, text, indexed, deref = receiver
                target = (base, f"{text}{tokens[k - 1].text}{tok.text}()",
                          indexed, deref)
        if target is None:
            k += 1
            continue
        base, text, indexed, deref = target
        # Writes *through* a by-value captured pointer (`*done = true`,
        # `sink->push_back(x)`) still land on shared state; plain writes to
        # the value copy are lambda-private.
        through_pointer = deref or "->" in text
        if base in declared or base == "" or \
                (base in by_val and not through_pointer):
            k += 1
            continue
        if default == "=" and base not in by_ref and base != "this" and \
                not through_pointer:
            k += 1
            continue
        guarded = any(lo < k <= hi for lo, hi in guards)
        writes.append(PoolWrite(target=text, base=base, line=tok.line,
                                indexed=indexed, guarded=guarded))
        k += 1
    return writes


def _advance_chain(tokens: list[Token], start: int, limit: int) -> int:
    """Index just past the member/index chain starting at tokens[start]."""
    k = start + 1
    while k < limit:
        text = tokens[k].text
        if text in {".", "->"} and k + 1 < limit and \
                tokens[k + 1].kind == "id":
            k += 2
        elif text == "[":
            depth = 0
            while k < limit:
                if tokens[k].text == "[":
                    depth += 1
                elif tokens[k].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            k += 1
        else:
            break
    return k


def _extract_pool_lambdas(tokens: list[Token],
                          functions: list[tuple[str, int, int, int]],
                          classes: list[tuple[str, int, int, int]]
                          ) -> list[PoolLambda]:
    out: list[PoolLambda] = []
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in POOL_ENTRY_POINTS:
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        args_close = _matching_paren(tokens, i + 1)
        if args_close < 0:
            continue
        qualname = ""
        for name, name_index, body_open, body_close in functions:
            if body_open <= i <= body_close:
                qualname = _qualified_function_name(
                    tokens, name_index, classes)
                break
        j = i + 2
        while j < args_close:
            if tokens[j].text == "[" and \
                    tokens[j - 1].text in {"(", ","}:
                lam = _parse_lambda(tokens, j, args_close)
                if lam is not None:
                    capture, body_open, body_close, params = lam
                    out.append(PoolLambda(
                        call=tok.text, line=tok.line, capture=capture,
                        function=qualname,
                        writes=_lambda_writes(tokens, body_open,
                                              body_close, capture,
                                              params)))
                    j = body_close + 1
                    continue
            j += 1
    return out


def _extract_globals(tokens: list[Token],
                     classes: list[tuple[str, int, int, int]],
                     functions: list[tuple[str, int, int, int]]
                     ) -> list[GlobalVar]:
    out: list[GlobalVar] = []
    class_ranges = [(kw, cl) for _q, kw, _op, cl in classes]
    jump = {kw: cl for kw, cl in class_ranges}
    for _name, _ni, op, cl in functions:
        jump[op] = cl
    # Namespace-scope statements: everything not inside a class body or a
    # function body.
    i = 0
    n = len(tokens)
    stmt: list[int] = []
    while i < n:
        if i in jump:
            # Entering a class definition or a function body: whatever was
            # accumulating (a class head / function signature) is not a
            # variable declaration.
            i = jump[i] + 1
            stmt = []
            continue
        text = tokens[i].text
        if text == ";":
            g = _global_from_statement(tokens, stmt)
            if g is not None:
                out.append(g)
            stmt = []
            i += 1
            continue
        if text == "{":
            if not stmt or tokens[stmt[0]].text in {"namespace", "extern"}:
                stmt = []  # descend into the namespace / linkage block
                i += 1
                continue
            close = _matching_brace(tokens, i)
            stmt.extend(range(i, close + 1))
            i = close + 1
            continue
        if text == "}":
            stmt = []
            i += 1
            continue
        stmt.append(i)
        i += 1
    # Static locals and thread-locals inside function bodies.
    for _name, _ni, op, cl in functions:
        k = op
        while k < cl:
            tok = tokens[k]
            if tok.kind != "id" or \
                    tok.text not in {"static", "thread_local"}:
                k += 1
                continue
            if any(ckw < k < ccl for ckw, ccl in class_ranges):
                k += 1  # a static member of a function-local struct
                continue
            stmt = []
            j = k
            depth = 0
            while j < cl:
                text = tokens[j].text
                if text in {"(", "[", "{"}:
                    depth += 1
                elif text in {")", "]", "}"}:
                    depth -= 1
                elif text == ";" and depth == 0:
                    break
                stmt.append(j)
                j += 1
            facts = _declaration_facts(tokens, stmt)
            if facts is not None:
                name_idx, _type_text, pre, _guarded = facts
                if not ({"const", "constexpr"} & pre):
                    kind = "thread-local" \
                        if tok.text == "thread_local" or \
                        "thread_local" in pre else "static-local"
                    out.append(GlobalVar(name=tokens[name_idx].text,
                                         line=tokens[name_idx].line,
                                         kind=kind))
            k = j + 1
    out.sort(key=lambda g: g.line)
    return out


def _global_from_statement(tokens: list[Token],
                           stmt: list[int]) -> GlobalVar | None:
    if not stmt:
        return None
    first = tokens[stmt[0]]
    if first.kind != "id" or first.text in _GLOBAL_SKIP_LEADS or \
            first.text in KEYWORDS:
        return None
    facts = _declaration_facts(tokens, stmt)
    if facts is None:
        return None
    name_idx, _type_text, pre, _guarded = facts
    if {"const", "constexpr", "constinit"} & pre:
        return None
    kind = "thread-local" if "thread_local" in pre or \
        first.text == "thread_local" else "namespace-scope"
    return GlobalVar(name=tokens[name_idx].text,
                     line=tokens[name_idx].line, kind=kind)


def build_model(code: str) -> FileModel:
    """Extracts the FileModel for one file's comment-stripped code."""
    model = FileModel()
    pos = 0
    line = 1
    for match in INCLUDE.finditer(code):
        line += code.count("\n", pos, match.start())
        pos = match.start()
        model.includes.append(Include(
            line=line, target=match.group(2), angled=match.group(1) == "<"))
    model.status_functions = sorted(
        {m.group(1) for m in STATUS_DECL.finditer(code)})

    directives = _directive_lines(code)
    tokens = [t for t in tokenize(code) if t.line not in directives]
    model.calls = _extract_calls(tokens)
    functions = _extract_functions(tokens)
    classes = _extract_classes(tokens)
    model.functions = [
        FunctionDef(name=name, line=tokens[open_].line,
                    end_line=tokens[close].line,
                    qualname=_qualified_function_name(tokens, name_index,
                                                      classes))
        for name, name_index, open_, close in functions
    ]
    model.reductions = _extract_reductions(tokens, functions)
    model.accumulate_calls = sorted(
        c.line for c in model.calls if c.name == "accumulate")
    model.allocs = _extract_allocs(tokens, functions)
    model.classes = [
        ClassDef(name=qual, line=tokens[kw].line,
                 end_line=tokens[close].line,
                 members=_class_members(
                     tokens, open_, close,
                     [(okw, ocl) for _oq, okw, oop, ocl in classes
                      if open_ < oop and ocl < close]))
        for qual, kw, open_, close in classes
    ]
    model.lock_scopes = _extract_lock_scopes(tokens, functions, classes)
    model.pool_lambdas = _extract_pool_lambdas(tokens, functions, classes)
    model.globals = _extract_globals(tokens, classes, functions)
    return model


# ---------------------------------------------------------------------------
# Compilation database


class CompilationDatabase:
    """The TU set the build actually compiles, from compile_commands.json."""

    def __init__(self, path: Path, repo_root: Path):
        self.path = path
        self.repo_root = repo_root.resolve()
        entries = json.loads(path.read_text(encoding="utf-8"))
        self.sources: list[str] = []
        seen: set[str] = set()
        for entry in entries:
            file_path = Path(entry["file"])
            if not file_path.is_absolute():
                file_path = Path(entry.get("directory", ".")) / file_path
            try:
                rel = file_path.resolve().relative_to(self.repo_root)
            except ValueError:
                continue  # generated TU outside the repo (build dir)
            rel_posix = rel.as_posix()
            if rel_posix not in seen:
                seen.add(rel_posix)
                self.sources.append(rel_posix)
        self.sources.sort()

    def sources_under(self, prefix: str) -> list[str]:
        return [s for s in self.sources if s.startswith(prefix)]

    @staticmethod
    def discover(repo_root: Path) -> Path | None:
        """Newest compile_commands.json among the conventional build dirs."""
        candidates = [
            p for p in repo_root.glob("build*/compile_commands.json")
            if p.is_file()
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.stat().st_mtime)


def header_closure(sources: list[str], include_of,
                   resolve) -> set[str]:
    """Transitive closure of `sources` over quoted includes.

    `include_of(rel) -> list[str]` returns the quoted include targets of a
    file; `resolve(target) -> str | None` maps a target to a repo-relative
    path (or None when it is not a project file).
    """
    universe: set[str] = set()
    frontier = list(sources)
    while frontier:
        rel = frontier.pop()
        if rel in universe:
            continue
        universe.add(rel)
        for target in include_of(rel):
            resolved = resolve(target)
            if resolved is not None and resolved not in universe:
                frontier.append(resolved)
    return universe


# ---------------------------------------------------------------------------
# Model cache


class ModelCache:
    """Content-addressed FileModel cache.

    Layout (JSON): {"frontend_version": N,
                    "files": {rel: {"mtime": f, "size": n, "sha1": h,
                                    "model": {...}}}}

    Lookup tries the (mtime, size) fast path first and falls back to the
    content hash, so `touch` alone does not re-tokenize and an edit that
    keeps mtime (rare, but rsync does it) still invalidates correctly via
    the driver passing the hash it computed for the SourceFile text.
    """

    def __init__(self, path: Path | None):
        self.path = path
        self.dirty = False
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if data.get("frontend_version") == FRONTEND_VERSION:
                    self._entries = data.get("files", {})
            except (ValueError, OSError):
                self._entries = {}

    @staticmethod
    def content_key(text: str) -> str:
        return hashlib.sha1(text.encode("utf-8")).hexdigest()

    def get(self, rel: str, stat, sha1: str | None,
            hasher) -> FileModel | None:
        """Cached model for `rel`, or None. `stat` is the os.stat_result of
        the file; `hasher()` lazily computes the content sha1 when the
        mtime/size fast path misses."""
        entry = self._entries.get(rel)
        if entry is None:
            self.misses += 1
            return None
        if entry["mtime"] == stat.st_mtime and entry["size"] == stat.st_size:
            self.hits += 1
            return FileModel.from_json(entry["model"])
        digest = sha1 if sha1 is not None else hasher()
        if entry["sha1"] == digest:
            # Same content, new mtime: refresh the fast path.
            entry["mtime"] = stat.st_mtime
            entry["size"] = stat.st_size
            self.dirty = True
            self.hits += 1
            return FileModel.from_json(entry["model"])
        self.misses += 1
        return None

    def put(self, rel: str, stat, sha1: str, model: FileModel) -> None:
        self._entries[rel] = {
            "mtime": stat.st_mtime,
            "size": stat.st_size,
            "sha1": sha1,
            "model": model.to_json(),
        }
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = json.dumps({
            "frontend_version": FRONTEND_VERSION,
            "files": self._entries,
        })
        try:
            self.path.write_text(payload, encoding="utf-8")
        except OSError:
            pass  # a read-only checkout just runs cold every time
        self.dirty = False
