#include "core/fractional.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {
namespace {

// Convergence tolerance for the Dinkelbach fixed point. The iteration is
// exact in theory (lambda stops changing); the tolerance guards against
// floating-point dither on the last step.
constexpr double kLambdaTolerance = 1e-12;

// Hard cap on iterations; the framework converges superlinearly and the
// paper observes <= 15 iterations even at n = 2000, so hitting this cap
// indicates a malformed problem (e.g. non-positive denominators).
constexpr int kMaxIterations = 1000;

double Objective(const ZeroOneFractionalProgram& p,
                 const std::vector<unsigned char>& z) {
  // Carries the numerator/denominator pair through one left-to-right
  // sweep; the conditional add stays inside the step so the exact op
  // sequence (and any -0.0 bits) matches the historical raw loop.
  const auto [numerator, denominator] = util::DeterministicFold(
      std::pair<double, double>(p.beta, p.gamma), 0,
      static_cast<int>(z.size()),
      [&](std::pair<double, double> acc, int i) {
        if (z[static_cast<size_t>(i)]) {
          acc.first += p.b[static_cast<size_t>(i)];
          acc.second += p.d[static_cast<size_t>(i)];
        }
        return acc;
      });
  QASCA_CHECK_OK(invariants::CheckFractionalDenominator(denominator));
  return numerator / denominator;
}

}  // namespace

FractionalSolution SolveUnconstrained(const ZeroOneFractionalProgram& problem,
                                      double lambda_init) {
  const size_t n = problem.b.size();
  QASCA_CHECK_EQ(problem.d.size(), n);

  FractionalSolution solution;
  solution.z.assign(n, 0);
  double lambda = lambda_init;
  for (int iteration = 1; iteration <= kMaxIterations; ++iteration) {
    // argmax_z g(z, lambda): independent per-coordinate choice. The >= (as
    // opposed to >) matches the paper's threshold rule "r_i = 1 if
    // Q_{i,1} >= lambda * alpha".
    for (size_t i = 0; i < n; ++i) {
      solution.z[i] = problem.b[i] - lambda * problem.d[i] >= 0.0 ? 1 : 0;
    }
    double updated = Objective(problem, solution.z);
    // Dinkelbach monotonicity: from a valid lower bound, every iterate's
    // lambda is non-decreasing. A violation means the caller's lambda_init
    // contract was broken or the program is malformed.
    QASCA_DCHECK_OK(invariants::CheckLambdaMonotone(lambda, updated));
    solution.iterations = iteration;
    if (std::fabs(updated - lambda) <= kLambdaTolerance) {
      solution.value = updated;
      return solution;
    }
    lambda = updated;
  }
  QASCA_CHECK(false) << "Dinkelbach iteration failed to converge";
  return solution;  // Unreachable.
}

FractionalSolution SolveExactlyK(const ZeroOneFractionalProgram& problem,
                                 const std::vector<int>& candidates, int k,
                                 double lambda_init) {
  const size_t n = problem.b.size();
  QASCA_CHECK_EQ(problem.d.size(), n);
  QASCA_CHECK_GT(k, 0);
  QASCA_CHECK_LE(static_cast<size_t>(k), candidates.size());
  // Bounds are checked once up front (always on, allocation-free) instead of
  // per access inside the iteration loop; duplicate detection is the debug
  // tier — the assignment boundary (ValidateRequest) runs it per request.
  for (int i : candidates) {
    QASCA_CHECK_GE(i, 0);
    QASCA_CHECK_LT(static_cast<size_t>(i), n);
  }
  QASCA_DCHECK_OK(
      invariants::CheckCandidateSet(candidates, static_cast<int>(n)));

  // Scratch holding (score, candidate) pairs for the selection step.
  std::vector<std::pair<double, int>> scored(candidates.size());

  FractionalSolution solution;
  solution.z.assign(n, 0);
  double lambda = lambda_init;
  for (int iteration = 1; iteration <= kMaxIterations; ++iteration) {
    for (size_t c = 0; c < candidates.size(); ++c) {
      int i = candidates[c];
      scored[c] = {problem.b[i] - lambda * problem.d[i], i};
    }
    // Linear-time top-k selection (the role of the PICK algorithm [2] in
    // the paper's complexity analysis).
    std::nth_element(scored.begin(), scored.begin() + (k - 1), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first ||
                              (a.first == b.first && a.second < b.second);
                     });
    std::fill(solution.z.begin(), solution.z.end(), 0);
    for (int c = 0; c < k; ++c) solution.z[scored[c].second] = 1;

    double updated = Objective(problem, solution.z);
    QASCA_DCHECK_OK(invariants::CheckLambdaMonotone(lambda, updated));
    solution.iterations = iteration;
    if (std::fabs(updated - lambda) <= kLambdaTolerance) {
      solution.value = updated;
      return solution;
    }
    lambda = updated;
  }
  QASCA_CHECK(false) << "Dinkelbach iteration failed to converge";
  return solution;  // Unreachable.
}

}  // namespace qasca
