#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/askit.h"
#include "baselines/cdas.h"
#include "baselines/exp_loss.h"
#include "baselines/max_margin.h"
#include "baselines/random_strategy.h"
#include "platform/database.h"
#include "platform/qasca_strategy.h"
#include "util/rng.h"

namespace qasca {
namespace {

// Test fixture wiring a Database with configurable rows into a
// StrategyContext.
class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest()
      : db_(6, 2),
        worker_model_(WorkerModel::Wp(0.8, 2)),
        typical_(WorkerModel::Wp(0.75, 2)),
        rng_(42) {
    metric_ = MetricSpec::Accuracy();
    context_.database = &db_;
    context_.metric = &metric_;
    context_.worker = 1;
    context_.worker_model = &worker_model_;
    context_.typical_worker = &typical_;
    context_.rng = &rng_;
  }

  void SetTargetProbs(const std::vector<double>& probs) {
    DistributionMatrix qc(db_.num_questions(), 2);
    for (size_t i = 0; i < probs.size(); ++i) {
      qc.SetRow(static_cast<int>(i),
                std::vector<double>{probs[i], 1.0 - probs[i]});
    }
    db_.set_current(qc);
  }

  std::vector<QuestionIndex> AllCandidates() const {
    return {0, 1, 2, 3, 4, 5};
  }

  Database db_;
  MetricSpec metric_;
  WorkerModel worker_model_;
  WorkerModel typical_;
  util::Rng rng_;
  StrategyContext context_;
};

TEST_F(StrategyTest, RandomReturnsDistinctSubset) {
  RandomStrategy strategy;
  for (int trial = 0; trial < 20; ++trial) {
    auto selected = strategy.SelectQuestions(context_, AllCandidates(), 3);
    EXPECT_EQ(selected.size(), 3u);
    std::set<QuestionIndex> unique(selected.begin(), selected.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST_F(StrategyTest, RandomCoversWholePoolOverTime) {
  RandomStrategy strategy;
  std::set<QuestionIndex> seen;
  for (int trial = 0; trial < 100; ++trial) {
    for (QuestionIndex q :
         strategy.SelectQuestions(context_, AllCandidates(), 2)) {
      seen.insert(q);
    }
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST_F(StrategyTest, AskItPicksHighestEntropy) {
  SetTargetProbs({0.5, 0.95, 0.55, 0.99, 0.9, 0.85});
  AskItStrategy strategy;
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 2);
  EXPECT_EQ(selected, (std::vector<QuestionIndex>{0, 2}));
}

TEST_F(StrategyTest, AskItRespectsCandidates) {
  SetTargetProbs({0.5, 0.95, 0.55, 0.99, 0.9, 0.85});
  AskItStrategy strategy;
  auto selected = strategy.SelectQuestions(context_, {1, 3, 4, 5}, 2);
  // Most uncertain among the candidate set: q5 (0.85) and q4 (0.9).
  EXPECT_EQ(selected, (std::vector<QuestionIndex>{4, 5}));
}

TEST_F(StrategyTest, ExpLossPicksLeastConfident) {
  SetTargetProbs({0.6, 0.99, 0.45, 0.8, 0.97, 0.7});
  ExpLossStrategy strategy;
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 2);
  // Losses 1 - max_j Q_{i,j}: 0.4, 0.01, 0.45, 0.2, 0.03, 0.3 — q2 and q0
  // are the largest.
  EXPECT_EQ(selected, (std::vector<QuestionIndex>{0, 2}));
}

TEST_F(StrategyTest, CdasSkipsConfidentQuestions) {
  SetTargetProbs({0.95, 0.5, 0.97, 0.6, 0.98, 0.55});
  CdasStrategy strategy(0.9);
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 3);
  // Questions 0, 2, 4 are terminated (confidence >= 0.9).
  EXPECT_EQ(selected, (std::vector<QuestionIndex>{1, 3, 5}));
}

TEST_F(StrategyTest, CdasPrefersFewestAnswersAmongLive) {
  SetTargetProbs({0.6, 0.6, 0.6, 0.6, 0.6, 0.6});
  db_.RecordAnswer(0, 7, 0);
  db_.RecordAnswer(0, 8, 0);
  db_.RecordAnswer(1, 7, 0);
  CdasStrategy strategy(0.9);
  auto selected = strategy.SelectQuestions(context_, {0, 1, 2}, 2);
  // q2 has 0 answers, q1 has 1, q0 has 2 -> pick q1 and q2.
  EXPECT_EQ(selected, (std::vector<QuestionIndex>{1, 2}));
}

TEST_F(StrategyTest, CdasFallsBackToTerminatedWhenLiveScarce) {
  SetTargetProbs({0.95, 0.96, 0.97, 0.5, 0.98, 0.99});
  CdasStrategy strategy(0.9);
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 2);
  // Only q3 is live; one terminated question fills the second slot.
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), 3) !=
              selected.end());
}

TEST_F(StrategyTest, MaxMarginPrefersImprovableQuestions) {
  // A 50/50 question gains the most from one more answer; a 0.99 question
  // gains almost nothing.
  SetTargetProbs({0.99, 0.5, 0.98, 0.97, 0.96, 0.95});
  MaxMarginStrategy strategy;
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 1);
  EXPECT_EQ(selected, (std::vector<QuestionIndex>{1}));
}

TEST_F(StrategyTest, MaxMarginIgnoresRequestingWorker) {
  SetTargetProbs({0.7, 0.6, 0.8, 0.9, 0.75, 0.65});
  MaxMarginStrategy strategy;
  auto first = strategy.SelectQuestions(context_, AllCandidates(), 2);
  // Swap the requesting worker's model; selection must not change (the
  // strategy uses only the typical worker). Note rng state advances, but
  // scores here are distinct so ties don't matter.
  WorkerModel other = WorkerModel::Wp(0.51, 2);
  context_.worker_model = &other;
  auto second = strategy.SelectQuestions(context_, AllCandidates(), 2);
  EXPECT_EQ(first, second);
}

TEST_F(StrategyTest, QascaAccuracySelectsHighestBenefit) {
  SetTargetProbs({0.5, 0.9, 0.55, 0.95, 0.6, 0.99});
  QascaStrategy strategy(QwMode::kExpected);
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 2);
  EXPECT_EQ(selected.size(), 2u);
  // The near-certain questions cannot be selected: their benefit is ~0.
  for (QuestionIndex q : selected) {
    EXPECT_NE(q, 5);
    EXPECT_NE(q, 3);
  }
}

TEST_F(StrategyTest, QascaFScoreUsesOnlineAssignment) {
  metric_ = MetricSpec::FScore(0.75, 0);
  SetTargetProbs({0.8, 0.6, 0.25, 0.5, 0.9, 0.3});
  QascaStrategy strategy(QwMode::kExpected);
  auto selected = strategy.SelectQuestions(context_, AllCandidates(), 2);
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_GE(strategy.last_outer_iterations(), 1);
}

TEST_F(StrategyTest, AllStrategiesHaveDistinctNames) {
  std::set<std::string> names;
  names.insert(RandomStrategy().name());
  names.insert(CdasStrategy().name());
  names.insert(AskItStrategy().name());
  names.insert(MaxMarginStrategy().name());
  names.insert(ExpLossStrategy().name());
  names.insert(QascaStrategy().name());
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace qasca
