#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"

namespace qasca::util {

void ThreadPool::AttachTelemetry(MetricRegistry* registry) {
  if (registry == nullptr) {
    tasks_queued_ = nullptr;
    tasks_executed_ = nullptr;
    return;
  }
  tasks_queued_ = registry->GetCounter(tnames::kPoolTasksQueued);
  tasks_executed_ = registry->GetCounter(tnames::kPoolTasksExecuted);
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  QASCA_CHECK_GE(num_threads, 1);
  // The calling thread blocks in ParallelFor rather than executing chunks
  // itself (keeping the wait logic trivial), so a pool of size T spawns T
  // workers; size 1 spawns none and runs everything inline.
  if (num_threads > 1) {
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(int begin, int end, int grain,
                             const std::function<void(int, int)>& fn) {
  QASCA_CHECK_GT(grain, 0);
  if (end <= begin) return;
  // Serial pool, or a range small enough that one chunk covers it: run
  // inline. Chunk decomposition is identical either way.
  if (workers_.empty() || end - begin <= grain) {
    for (int b = begin; b < end; b += grain) {
      fn(b, std::min(b + grain, end));
    }
    if (tasks_executed_ != nullptr) {
      tasks_executed_->Add(NumChunks(begin, end, grain));
    }
    return;
  }
  {
    MutexLock lock(mutex_);
    QASCA_CHECK_EQ(in_flight_, 0) << "ThreadPool::ParallelFor is not reentrant";
    for (int b = begin; b < end; b += grain) {
      int e = std::min(b + grain, end);
      queue_.emplace_back([&fn, b, e] { fn(b, e); });
      ++in_flight_;
    }
  }
  work_cv_.NotifyAll();
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) done_cv_.Wait(mutex_);
  }
  // Counted after the barrier, on the dispatching thread: every queued
  // chunk has executed by the time ParallelFor returns.
  if (tasks_queued_ != nullptr) {
    const int chunks = NumChunks(begin, end, grain);
    tasks_queued_->Add(chunks);
    tasks_executed_->Add(chunks);
  }
}

void ParallelFor(ThreadPool* pool, int begin, int end, int grain,
                 const std::function<void(int, int)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(begin, end, grain, fn);
    return;
  }
  QASCA_CHECK_GT(grain, 0);
  for (int b = begin; b < end; b += grain) {
    fn(b, std::min(b + grain, end));
  }
}

double ParallelSum(ThreadPool* pool, int begin, int end, int grain,
                   const std::function<double(int, int)>& chunk_sum) {
  const int chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return 0.0;
  // Partials land in chunk-index slots and fold in chunk order, so the
  // floating-point association is fixed regardless of scheduling.
  std::vector<double> partials(static_cast<size_t>(chunks), 0.0);
  ParallelFor(pool, begin, end, grain, [&](int b, int e) {
    partials[static_cast<size_t>(ChunkIndex(begin, b, grain))] =
        chunk_sum(b, e);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

}  // namespace qasca::util
