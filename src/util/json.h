#ifndef QASCA_UTIL_JSON_H_
#define QASCA_UTIL_JSON_H_

#include <string>
#include <string_view>

namespace qasca::util {

/// Appends `value` to `out` with the JSON string escapes applied (quotes,
/// backslash, control characters as \uXXXX) — no surrounding quotes. Shared
/// by every hand-rolled JSON emitter in the tree (EventTrace::ToJsonLines,
/// MetricRegistry::ToJson) so escaping rules live in exactly one place.
void AppendJsonEscaped(std::string& out, std::string_view value);

/// Appends `value` as a complete JSON string token: quotes plus escapes.
void AppendJsonString(std::string& out, std::string_view value);

/// Convenience form returning the quoted, escaped token.
std::string JsonString(std::string_view value);

/// Appends a finite double with enough digits to round-trip; non-finite
/// values (which JSON cannot represent) are emitted as 0.
void AppendJsonNumber(std::string& out, double value);

}  // namespace qasca::util

#endif  // QASCA_UTIL_JSON_H_
