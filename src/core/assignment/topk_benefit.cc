#include "core/assignment/topk_benefit.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {
namespace {

double RowMax(std::span<const double> row) {
  return *std::max_element(row.begin(), row.end());
}

}  // namespace

AssignmentResult AssignTopKBenefitDecomposable(
    const AssignmentRequest& request, const RowQualityFn& row_quality) {
  ValidateRequest(request);
  const DistributionMatrix& current = *request.current;
  const DistributionMatrix& estimated = *request.estimated;

  // Benefit of assigning each candidate (Section 4.1, generalised to any
  // decomposable row quality).
  std::vector<std::pair<double, QuestionIndex>> benefits;
  benefits.reserve(request.candidates.size());
  for (QuestionIndex i : request.candidates) {
    benefits.emplace_back(
        row_quality(estimated.Row(i)) - row_quality(current.Row(i)), i);
  }

  // Linear-time top-k selection (PICK [2]); ties broken by question index
  // for determinism.
  auto greater = [](const std::pair<double, QuestionIndex>& a,
                    const std::pair<double, QuestionIndex>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  std::nth_element(benefits.begin(), benefits.begin() + (request.k - 1),
                   benefits.end(), greater);

  AssignmentResult result;
  result.outer_iterations = 1;
  result.selected.reserve(request.k);
  for (int c = 0; c < request.k; ++c) {
    result.selected.push_back(benefits[c].second);
  }
  std::sort(result.selected.begin(), result.selected.end());

  // Objective: the fixed term (quality of every current row) plus the
  // selected benefits, averaged (Eq. 12).
  double total = 0.0;
  for (int i = 0; i < current.num_questions(); ++i) {
    total += row_quality(current.Row(i));
  }
  for (int c = 0; c < request.k; ++c) total += benefits[c].first;
  result.objective = total / current.num_questions();
  QASCA_DCHECK_OK(invariants::CheckAssignment(result.selected, request.k,
                                              current.num_questions()));
  return result;
}

AssignmentResult AssignTopKBenefit(const AssignmentRequest& request) {
  return AssignTopKBenefitDecomposable(
      request, [](std::span<const double> row) { return RowMax(row); });
}

}  // namespace qasca
