#include "platform/journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/telemetry_names.h"

namespace qasca {

namespace {

// One event per line, integer tokens, closed by a "." terminator so a torn
// tail that happens to cut at a token boundary still fails to parse:
//   <seq> A <worker> <n> <q1> ... <qn> .     assignment
//   <seq> C <worker> <n> <l1> ... <ln> .     completion
//   <seq> T <ticks> .                        virtual-clock advance
std::string Serialize(const LifecycleJournal::Event& event) {
  std::ostringstream out;
  out << event.seq << ' ';
  switch (event.kind) {
    case LifecycleJournal::Event::Kind::kAssign:
      out << "A " << event.worker << ' ' << event.questions.size();
      for (QuestionIndex q : event.questions) out << ' ' << q;
      break;
    case LifecycleJournal::Event::Kind::kComplete:
      out << "C " << event.worker << ' ' << event.labels.size();
      for (LabelIndex l : event.labels) out << ' ' << l;
      break;
    case LifecycleJournal::Event::Kind::kTick:
      out << "T " << event.ticks;
      break;
  }
  out << " .\n";
  return out.str();
}

// Parses one line; returns false on any damage (torn tail, partial write).
bool ParseLine(const std::string& line, LifecycleJournal::Event* event) {
  std::istringstream in(line);
  std::string kind;
  if (!(in >> event->seq >> kind)) return false;
  if (kind == "A" || kind == "C") {
    size_t count = 0;
    if (!(in >> event->worker >> count)) return false;
    event->kind = kind == "A" ? LifecycleJournal::Event::Kind::kAssign
                              : LifecycleJournal::Event::Kind::kComplete;
    for (size_t i = 0; i < count; ++i) {
      int value = 0;
      if (!(in >> value)) return false;
      if (kind == "A") {
        event->questions.push_back(value);
      } else {
        event->labels.push_back(value);
      }
    }
  } else if (kind == "T") {
    event->kind = LifecycleJournal::Event::Kind::kTick;
    if (!(in >> event->ticks)) return false;
  } else {
    return false;
  }
  std::string terminator;
  if (!(in >> terminator) || terminator != ".") return false;
  return !(in >> terminator);  // trailing garbage is damage too
}

}  // namespace

LifecycleJournal::LifecycleJournal(std::string path_prefix)
    : path_prefix_(std::move(path_prefix)) {
  QASCA_CHECK(!path_prefix_.empty());
  // The snapshot is only ever replaced whole (tmp + rename), so every line
  // must parse and seqs must be contiguous from 0; anything else is data
  // corruption, not a crash artefact.
  std::ifstream snapshot(snapshot_path());
  std::string line;
  while (snapshot.is_open() && std::getline(snapshot, line)) {
    Event event;
    QASCA_CHECK(ParseLine(line, &event))
        << "corrupt journal snapshot line:" << line;
    QASCA_CHECK_EQ(event.seq, next_seq_)
        << "journal snapshot seq gap at" << event.seq;
    ++next_seq_;
    history_.push_back(std::move(event));
  }
  // The log's tail can be torn or lost by a crash: keep the longest
  // well-formed strictly-ascending prefix. Events the snapshot already
  // covers (crash between compaction rename and log truncation) are
  // skipped by their seq.
  std::ifstream log(log_path());
  while (log.is_open() && std::getline(log, line)) {
    Event event;
    if (!ParseLine(line, &event)) break;
    if (event.seq < next_seq_) continue;
    if (event.seq > next_seq_) break;
    ++next_seq_;
    history_.push_back(std::move(event));
  }
  snapshot.close();
  log.close();
  // Compacting now means a surviving torn tail never receives appends. A
  // journal that cannot even rewrite its snapshot at construction has no
  // durability to offer, so this one is fatal.
  QASCA_CHECK_OK(Compact());
}

void LifecycleJournal::AttachTelemetry(util::MetricRegistry* registry) {
  if (registry == nullptr) {
    appends_ = nullptr;
    compactions_ = nullptr;
    failpoints_triggered_ = nullptr;
    return;
  }
  appends_ = registry->GetCounter(util::tnames::kJournalAppends);
  compactions_ = registry->GetCounter(util::tnames::kJournalCompactions);
  failpoints_triggered_ =
      registry->GetCounter(util::tnames::kFailpointsTriggered);
}

util::Status LifecycleJournal::AppendAssign(
    WorkerId worker, const std::vector<QuestionIndex>& questions) {
  Event event;
  event.kind = Event::Kind::kAssign;
  event.worker = worker;
  event.questions = questions;
  return Append(std::move(event));
}

util::Status LifecycleJournal::AppendComplete(
    WorkerId worker, const std::vector<LabelIndex>& labels) {
  Event event;
  event.kind = Event::Kind::kComplete;
  event.worker = worker;
  event.labels = labels;
  return Append(std::move(event));
}

util::Status LifecycleJournal::AppendTick(uint64_t ticks) {
  Event event;
  event.kind = Event::Kind::kTick;
  event.ticks = ticks;
  return Append(std::move(event));
}

util::Status LifecycleJournal::Append(Event event) {
  event.seq = next_seq_++;
  const std::string line = Serialize(event);
  // The in-memory mirror always advances — these fail points simulate the
  // *disk* losing the record in a crash the process never observes (so
  // they return OK), after which the test abandons this instance and
  // recovers a fresh engine from what reached the file.
  history_.push_back(std::move(event));
  if (appends_ != nullptr) appends_->Add(1);
  if (QASCA_FAIL_POINT("journal.drop_append")) {
    if (failpoints_triggered_ != nullptr) failpoints_triggered_->Add(1);
    return util::Status::Ok();
  }
  std::ofstream log(log_path(), std::ios::app);
  if (!log.is_open()) {
    return util::Status::Internal("cannot append to journal " + log_path());
  }
  if (QASCA_FAIL_POINT("journal.torn_append")) {
    if (failpoints_triggered_ != nullptr) failpoints_triggered_->Add(1);
    log << line.substr(0, line.size() / 2);  // no newline: a torn write
    return util::Status::Ok();
  }
  // A stream write can fail (disk full, quota, I/O error) without throwing;
  // flush and interrogate the stream so a lost record is reported instead
  // of silently diverging from the in-memory history.
  log << line;
  log.flush();
  if (!log.good()) {
    return util::Status::Internal("journal append did not reach disk: " +
                                  log_path());
  }
  return util::Status::Ok();
}

util::Status LifecycleJournal::Compact() {
  const std::string tmp_path = snapshot_path() + ".tmp";
  {
    std::ofstream tmp(tmp_path, std::ios::trunc);
    if (!tmp.is_open()) {
      return util::Status::Internal("cannot write journal snapshot " +
                                    tmp_path);
    }
    for (const Event& event : history_) tmp << Serialize(event);
    tmp.flush();
    if (!tmp.good()) {
      return util::Status::Internal("journal snapshot write failed: " +
                                    tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), snapshot_path().c_str()) != 0) {
    return util::Status::Internal("cannot replace journal snapshot " +
                                  snapshot_path());
  }
  if (compactions_ != nullptr) compactions_->Add(1);
  if (QASCA_FAIL_POINT("journal.compact_skip_truncate")) {
    // Crash between the rename and the truncation: the log keeps events the
    // snapshot already covers, which recovery dedupes by seq.
    if (failpoints_triggered_ != nullptr) failpoints_triggered_->Add(1);
    return util::Status::Ok();
  }
  std::ofstream truncate(log_path(), std::ios::trunc);
  if (!truncate.is_open()) {
    return util::Status::Internal("cannot truncate journal log " +
                                  log_path());
  }
  return util::Status::Ok();
}

}  // namespace qasca
