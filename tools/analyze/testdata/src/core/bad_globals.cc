// global-state fixture: a mutable namespace-scope variable, a mutable
// function-local static, and a thread_local in a decision layer must all
// fire; constexpr tables and an allow'd immutable-after-init singleton
// must not.

#include <string>

namespace qasca::core {

int g_call_budget = 100;  // analyze:expect(global-state)

constexpr int kMaxRounds = 8;  // immutable: fine

const char* const kStageNames[] = {"assign", "refit"};  // immutable: fine

int NextSequence() {
  static int sequence = 0;  // analyze:expect(global-state)
  return ++sequence;
}

thread_local int t_recursion_depth = 0;  // analyze:expect(global-state)

const std::string& ProcessTag() {
  // analyze:allow(global-state) immutable-after-init singleton
  static std::string tag = "qasca";
  return tag;
}

int Clamp(int rounds) {
  if (t_recursion_depth > kMaxRounds) return kMaxRounds;
  return rounds > g_call_budget ? g_call_budget : rounds;
}

}  // namespace qasca::core
