#include "core/distribution_matrix.h"

#include <vector>

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(DistributionMatrixTest, StartsUniform) {
  DistributionMatrix q(3, 4);
  EXPECT_EQ(q.num_questions(), 3);
  EXPECT_EQ(q.num_labels(), 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(q.At(i, j), 0.25);
  }
  EXPECT_TRUE(q.IsNormalized());
}

TEST(DistributionMatrixTest, SetRowStoresExactly) {
  DistributionMatrix q(2, 2);
  std::vector<double> row = {0.8, 0.2};
  q.SetRow(0, row);
  EXPECT_DOUBLE_EQ(q.At(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(q.At(0, 1), 0.2);
  // Row 1 untouched.
  EXPECT_DOUBLE_EQ(q.At(1, 0), 0.5);
}

TEST(DistributionMatrixTest, SetRowNormalizedScales) {
  DistributionMatrix q(1, 3);
  std::vector<double> weights = {3.0, 1.0, 0.0};
  q.SetRowNormalized(0, weights);
  EXPECT_DOUBLE_EQ(q.At(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(q.At(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(q.At(0, 2), 0.0);
}

TEST(DistributionMatrixTest, RowSpanMatchesAt) {
  DistributionMatrix q(2, 2);
  std::vector<double> row = {0.3, 0.7};
  q.SetRow(1, row);
  auto span = q.Row(1);
  EXPECT_EQ(span.size(), 2u);
  EXPECT_DOUBLE_EQ(span[0], 0.3);
  EXPECT_DOUBLE_EQ(span[1], 0.7);
}

TEST(DistributionMatrixTest, ArgMaxLabel) {
  DistributionMatrix q(3, 3);
  q.SetRow(0, std::vector<double>{0.2, 0.5, 0.3});
  q.SetRow(1, std::vector<double>{0.6, 0.2, 0.2});
  q.SetRow(2, std::vector<double>{0.4, 0.4, 0.2});  // tie -> smaller index
  EXPECT_EQ(q.ArgMaxLabel(0), 1);
  EXPECT_EQ(q.ArgMaxLabel(1), 0);
  EXPECT_EQ(q.ArgMaxLabel(2), 0);
}

TEST(DistributionMatrixTest, IsNormalizedDetectsBadRows) {
  // SetRow itself rejects denormalised rows when DCHECKs are compiled in,
  // so smuggling a bad row through it to exercise IsNormalized is only
  // possible in Release flavours; in Debug the same write is a death.
  if (qasca::util::kDChecksEnabled) {
    DistributionMatrix q(1, 2);
    EXPECT_DEATH(q.SetRow(0, std::vector<double>{0.9, 0.3}), "sums to");
  } else {
    DistributionMatrix q(1, 2);
    q.SetRow(0, std::vector<double>{0.9, 0.3});
    EXPECT_FALSE(q.IsNormalized());
  }
}

TEST(DistributionMatrixTest, CopyIsIndependent) {
  DistributionMatrix a(1, 2);
  a.SetRow(0, std::vector<double>{0.9, 0.1});
  DistributionMatrix b = a;
  b.SetRow(0, std::vector<double>{0.1, 0.9});
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(b.At(0, 0), 0.1);
}

TEST(DistributionMatrixTest, ZeroQuestionsAllowed) {
  DistributionMatrix q(0, 2);
  EXPECT_EQ(q.num_questions(), 0);
  EXPECT_TRUE(q.IsNormalized());
}

TEST(DistributionMatrixDeathTest, OutOfRangeAccessAborts) {
  DistributionMatrix q(2, 2);
  EXPECT_DEATH((void)q.At(2, 0), "Check failed");
  EXPECT_DEATH((void)q.At(0, 2), "Check failed");
}

TEST(DistributionMatrixDeathTest, BadRowSizeAborts) {
  DistributionMatrix q(1, 2);
  EXPECT_DEATH(q.SetRow(0, std::vector<double>{1.0}), "Check failed");
}

TEST(DistributionMatrixDeathTest, AllZeroWeightsAbort) {
  DistributionMatrix q(1, 2);
  EXPECT_DEATH(q.SetRowNormalized(0, std::vector<double>{0.0, 0.0}),
               "zero");
}

}  // namespace
}  // namespace qasca
