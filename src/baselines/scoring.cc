#include "baselines/scoring.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace qasca::baselines_internal {

std::vector<QuestionIndex> TopKByScore(
    const std::vector<QuestionIndex>& candidates,
    const std::vector<double>& scores, int k, util::Rng& rng) {
  QASCA_CHECK_EQ(candidates.size(), scores.size());
  QASCA_CHECK_GT(k, 0);
  QASCA_CHECK_LE(static_cast<size_t>(k), candidates.size());

  // Random jitter order breaks score ties uniformly: permute positions,
  // then select on (score, permuted position).
  std::vector<int> jitter = rng.Permutation(static_cast<int>(candidates.size()));
  std::vector<int> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](int a, int b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return jitter[a] < jitter[b];
                   });
  std::vector<QuestionIndex> selected;
  selected.reserve(k);
  for (int c = 0; c < k; ++c) selected.push_back(candidates[order[c]]);
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace qasca::baselines_internal
