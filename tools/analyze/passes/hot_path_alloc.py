"""Pass `hot-path-alloc`: no avoidable allocation in the per-HIT kernels.

The three kernels that run on every HIT request/completion — the Top-K
benefit scan (core/assignment/topk_benefit.cc), Dinkelbach's online
F-score scan (core/assignment/fscore_online.cc), Qw estimation
(model/posterior.cc) and the EM E-step (model/em.cc) — dominate assignment
latency (BENCH_PR3 stage_breakdown). An unreserved vector growing inside
them, or a container constructed afresh every loop iteration, turns an
O(n) scan into an allocator benchmark and invalidates the
ParallelFor capture audit (DESIGN.md §10), which assumes pre-sized slots.

Two rules, applied to every function defined in the hot files:

  * `push_back`/`emplace_back` on a receiver that the same function never
    `reserve`s/`resize`s/`assign`s is an error — size the container before
    the loop (callers passing in pre-sized buffers satisfy this at the
    call boundary and may be suppressed with a justification);
  * constructing a standard container (vector/map/set/string/...) inside a
    loop body is an error — hoist it out and reuse the storage.
"""

from __future__ import annotations

from ..base import ERROR, Finding, SourceTree

HOT_FILES = (
    "core/assignment/topk_benefit.cc",
    "core/assignment/fscore_online.cc",
    "model/posterior.cc",
    "model/em.cc",
)


class HotPathAllocPass:
    name = "hot-path-alloc"
    description = ("in the Top-K scan, Qw estimation and E-step kernels: "
                   "push_back requires a reserve/resize in the same "
                   "function, and containers must not be constructed "
                   "per loop iteration")
    severity = ERROR
    roots = ("src/core", "src/model")

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            if not source.rel.endswith(HOT_FILES):
                continue
            for facts in tree.model(source).allocs:
                for receiver, line in sorted(facts.push_back.items(),
                                             key=lambda kv: kv[1]):
                    if receiver in facts.prealloc:
                        continue
                    findings.append(Finding(
                        pass_name=self.name, severity=self.severity,
                        path=source.rel, line=line,
                        message=(f"hot path: {facts.function}() grows "
                                 f"`{receiver}` with push_back but never "
                                 "reserves it — pre-size the container")))
                for line, decl in facts.loop_constructions:
                    findings.append(Finding(
                        pass_name=self.name, severity=self.severity,
                        path=source.rel, line=line,
                        message=(f"hot path: {facts.function}() constructs "
                                 f"`{decl}` every loop iteration — hoist "
                                 "it out of the loop and reuse the "
                                 "storage")))
        return findings
