#include "model/likelihood_cache.h"

#include "util/logging.h"

namespace qasca {

WorkerLikelihoods WorkerLikelihoods::FromModel(const WorkerModel& model) {
  WorkerLikelihoods likelihoods;
  likelihoods.Rebuild(model);
  return likelihoods;
}

void WorkerLikelihoods::Rebuild(const WorkerModel& model) {
  num_labels_ = model.num_labels();
  table_.resize(static_cast<size_t>(num_labels_) * num_labels_);
  // Filled through AnswerProbability so the table holds the exact doubles
  // the model-call loops multiply by (the bit-identity contract above).
  for (int answered = 0; answered < num_labels_; ++answered) {
    double* row = table_.data() + static_cast<size_t>(answered) * num_labels_;
    for (int truth = 0; truth < num_labels_; ++truth) {
      row[truth] = model.AnswerProbability(answered, truth);
    }
  }
}

const WorkerLikelihoods& LikelihoodCache::Get(WorkerId worker,
                                              const WorkerModel& model) {
  auto it = entries_.find(worker);
  if (it != entries_.end()) {
    QASCA_DCHECK_EQ(it->second.num_labels(), model.num_labels());
    ++hits_;
    if (hits_counter_ != nullptr) hits_counter_->Add(1);
    return it->second;
  }
  ++misses_;
  if (misses_counter_ != nullptr) misses_counter_->Add(1);
  return entries_.emplace(worker, WorkerLikelihoods::FromModel(model))
      .first->second;
}

void LikelihoodCache::Invalidate() {
  entries_.clear();
  ++generation_;
}

}  // namespace qasca
