#ifndef QASCA_PLATFORM_GOOD_CONTRACT_H_
#define QASCA_PLATFORM_GOOD_CONTRACT_H_

/// Threading contract: engine-thread-only; kernels never see this type.
/// (Fixture: a platform class whose documented contract satisfies the
/// lock-annotations pass.)
class Contracted {
 public:
  void Mutate();

 private:
  int state_ = 0;
};

#endif  // QASCA_PLATFORM_GOOD_CONTRACT_H_
