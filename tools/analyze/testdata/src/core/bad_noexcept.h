#ifndef QASCA_CORE_BAD_NOEXCEPT_H_
#define QASCA_CORE_BAD_NOEXCEPT_H_

// noexcept-audit fixture: user-provided move operations without noexcept
// must fire; noexcept, defaulted and allow'd ones must not.

class Movable {
 public:
  Movable(Movable&& other);  // analyze:expect(noexcept-audit)
  Movable& operator=(Movable&& other);  // analyze:expect(noexcept-audit)
};

class GoodMovable {
 public:
  GoodMovable(GoodMovable&& other) noexcept;
  GoodMovable& operator=(GoodMovable&& other) noexcept;
};

class DefaultedMovable {
 public:
  DefaultedMovable(DefaultedMovable&& other) = default;
  DefaultedMovable& operator=(DefaultedMovable&& other) = default;
};

class AllowedMovable {
 public:
  AllowedMovable(AllowedMovable&& other);  // analyze:allow(noexcept-audit)
};

#endif  // QASCA_CORE_BAD_NOEXCEPT_H_
