#ifndef QASCA_PLATFORM_BAD_CONTRACT_H_
#define QASCA_PLATFORM_BAD_CONTRACT_H_

// lock-annotations fixture: a platform header defining a class without
// the required threading-contract comment.

class Contractless {  // analyze:expect(lock-annotations)
 public:
  void Mutate();

 private:
  int state_ = 0;
};

#endif  // QASCA_PLATFORM_BAD_CONTRACT_H_
