// Golden-trace regression test (ISSUE 5): pins the end-to-end decision hash
// of the engine — every selected question, the final result vector R*, and
// the bit patterns of every Qc cell — for three seeds under both the
// Accuracy* metric (confusion-matrix workers) and the F-score* metric
// (worker-probability workers). Any silent behavioural drift in the
// assignment path, EM, the incremental Qc refresh, or the result-selection
// algorithms fails tier-1 here.
//
// The pinned hashes were generated against the pre-lease engine (PR 4
// head), so they additionally prove that the HIT-lifecycle robustness layer
// (leases, duplicate detection, journaling) is byte-identical to the old
// engine while disarmed.
//
// Regenerating after an INTENDED behaviour change:
//
//   cmake --build build -j --target integration_golden_trace_test
//   ./build/tests/integration_golden_trace_test --update-golden
//
// prints a fresh kGoldenCases table; paste it over the one below and
// explain the behaviour change in the commit message. Never regenerate to
// silence an unexplained mismatch — that is the drift this test exists to
// catch.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "platform/engine.h"
#include "platform/qasca_strategy.h"

namespace qasca {

// Not in an anonymous namespace: main() below (outside namespace qasca)
// reuses RunGoldenTrace and kGoldenCases for --update-golden.
uint64_t FnvMix(uint64_t hash, uint64_t value) {
  hash ^= value;
  hash *= 1099511628211ull;
  return hash;
}

uint64_t BitsOf(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Deterministic pseudo-noisy worker (~25% wrong): the answer is a pure
// function of (worker, question, truth), so the trace replays identically
// on every platform and build configuration.
LabelIndex SimulatedAnswer(WorkerId worker, QuestionIndex question,
                           LabelIndex truth, int num_labels) {
  uint64_t h = (static_cast<uint64_t>(worker) * 1000003u +
                static_cast<uint64_t>(question) + 1) *
               0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  if (h % 100 < 25) {
    return static_cast<LabelIndex>(
        (static_cast<uint64_t>(truth) + 1 + h % (num_labels - 1)) %
        num_labels);
  }
  return truth;
}

enum class GoldenMetric { kAccuracy, kFScore };

struct GoldenCase {
  const char* name;
  GoldenMetric metric;
  uint64_t seed;
  uint64_t expected_hash;
};

// Regenerate with --update-golden (see file header). Hash covers every
// assignment decision, the final R*, and every Qc cell bit pattern.
constexpr GoldenCase kGoldenCases[] = {
    {"accuracy_seed1", GoldenMetric::kAccuracy, 1, 0x036b70759255c554ull},
    {"accuracy_seed2", GoldenMetric::kAccuracy, 2, 0xb7bb7b48f2ab6adcull},
    {"accuracy_seed3", GoldenMetric::kAccuracy, 3, 0x9a05354c2f14bd48ull},
    {"fscore_seed1", GoldenMetric::kFScore, 1, 0x238241fc60998c0bull},
    {"fscore_seed2", GoldenMetric::kFScore, 2, 0x1fe9d74672674633ull},
    {"fscore_seed3", GoldenMetric::kFScore, 3, 0x72a18340e252d8a0ull},
};

uint64_t RunGoldenTrace(GoldenMetric metric, uint64_t seed) {
  AppConfig config;
  config.name = "golden";
  config.num_questions = 36;
  config.num_labels = 2;
  config.questions_per_hit = 3;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 20;  // 20 HITs
  config.em.max_iterations = 10;
  config.em_refresh_interval = 3;  // exercise the incremental Qc path
  if (metric == GoldenMetric::kAccuracy) {
    config.metric = MetricSpec::Accuracy();
    config.worker_kind = WorkerModel::Kind::kConfusionMatrix;
  } else {
    config.metric = MetricSpec::FScore(0.6, 0);
    config.worker_kind = WorkerModel::Kind::kWorkerProbability;
  }

  GroundTruthVector truth(config.num_questions);
  for (int q = 0; q < config.num_questions; ++q) truth[q] = q % 2;

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              seed);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 6;
    auto hit = engine.RequestHit(worker);
    if (!hit.ok()) break;  // worker pool exhausted before the budget
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      hash = FnvMix(hash, static_cast<uint64_t>(q) + 1);
      labels.push_back(SimulatedAnswer(worker, q, truth[q], 2));
    }
    EXPECT_TRUE(engine.CompleteHit(worker, labels).ok());
  }
  for (LabelIndex r : engine.CurrentResults()) {
    hash = FnvMix(hash, static_cast<uint64_t>(r) + 1);
  }
  const DistributionMatrix& qc = engine.database().current();
  for (int i = 0; i < qc.num_questions(); ++i) {
    for (int j = 0; j < qc.num_labels(); ++j) {
      hash = FnvMix(hash, BitsOf(qc.At(i, j)));
    }
  }
  return hash;
}

class GoldenTraceTest : public testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTraceTest, DecisionHashMatchesPinnedValue) {
  const GoldenCase& c = GetParam();
  const uint64_t actual = RunGoldenTrace(c.metric, c.seed);
  EXPECT_EQ(actual, c.expected_hash)
      << c.name << ": decision hash drifted — if the behaviour change is "
      << "intended, regenerate with --update-golden (see file header); "
      << "actual 0x" << std::hex << actual;
}

INSTANTIATE_TEST_SUITE_P(
    AllSeeds, GoldenTraceTest, testing::ValuesIn(kGoldenCases),
    [](const testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace qasca

// Custom main so the binary doubles as the golden-table regenerator.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      for (const qasca::GoldenCase& c : qasca::kGoldenCases) {
        std::printf(
            "    {\"%s\", GoldenMetric::%s, %llu, 0x%016llxull},\n", c.name,
            c.metric == qasca::GoldenMetric::kAccuracy ? "kAccuracy"
                                                       : "kFScore",
            static_cast<unsigned long long>(c.seed),
            static_cast<unsigned long long>(
                qasca::RunGoldenTrace(c.metric, c.seed)));
      }
      return 0;
    }
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
