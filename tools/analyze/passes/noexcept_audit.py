"""Pass `noexcept-audit`: user-provided move operations must be noexcept.

Core types travel through std::vector and std::move on the hot path;
a throwing (or potentially-throwing) move constructor silently downgrades
vector growth to copying and poisons exception-safety reasoning. Any
user-provided move constructor or move assignment operator in src/core,
src/model or src/util must therefore be declared noexcept. Defaulted
(`= default`) and deleted (`= delete`) declarations are exempt — their
noexcept-ness is derived from the members, which is what we want.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceFile, SourceTree

# `Foo(Foo&& other) <trail> ;|{` — the class name must repeat as the sole
# parameter type; the trail (everything up to the declaration's `;` or
# body `{`, including any `= default`) is where noexcept must appear.
MOVE_CTOR = re.compile(
    r"\b(\w+)\s*\(\s*\1\s*&&[^)]*\)\s*([^;{]*)[;{]", re.DOTALL)
MOVE_ASSIGN = re.compile(
    r"\b(\w+)&?\s*operator=\s*\(\s*\1\s*&&[^)]*\)\s*([^;{]*)[;{]", re.DOTALL)
DEFAULTED = re.compile(r"=\s*(?:default|delete)\b")


class NoexceptAuditPass:
    name = "noexcept-audit"
    description = ("user-provided move constructors / move assignments in "
                   "src/core, src/model and src/util must be noexcept")
    severity = ERROR
    roots = ("src/core", "src/model", "src/util")

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            findings.extend(self._check(source))
        return findings

    def _check(self, source: SourceFile) -> list[Finding]:
        findings = []
        for kind, pattern in (("move constructor", MOVE_CTOR),
                              ("move assignment", MOVE_ASSIGN)):
            for match in pattern.finditer(source.code):
                trail = match.group(2)
                if "noexcept" in trail or DEFAULTED.search(trail):
                    continue
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=source.line_of(match.start()),
                    message=(f"{kind} of {match.group(1)} is user-provided "
                             "but not noexcept — vector growth falls back "
                             "to copies and exception safety is lost")))
        return findings
