"""Pass `determinism`: decision code must be replayable bit-for-bit.

QASCA's guarantees are probabilistic invariants over shared distribution
matrices; every stochastic choice flows through the seeded util::Rng /
counter-based SplitMix64 streams so a run is a pure function of
(dataset, config, seed). This pass bans the three ways nondeterminism
leaks into src/core, src/model and src/platform:

  * C / hardware randomness: rand(), srand(), std::random_device;
  * wall-clock reads: std::chrono::system_clock, time(), gettimeofday,
    clock() — steady_clock is fine (used for latency telemetry, never for
    decisions);
  * iteration over unordered containers feeding computation: a range-for
    whose range names an unordered_map/unordered_set (declared in the same
    file or its companion header) folds values in bucket order, which
    depends on hash seeding and insertion history. Iterate a sorted view
    instead (see GroupByWorker in src/model/em.cc), or suppress with
    `// analyze:allow(determinism)` plus a justification when order
    provably cannot reach a decision or a float accumulation.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceFile, SourceTree

BANNED = [
    (re.compile(r"(?<![\w:.])rand\s*\("), "rand() — use util::Rng"),
    (re.compile(r"(?<![\w:.])srand\s*\("), "srand() — use util::Rng seeding"),
    (re.compile(r"std::random_device"),
     "std::random_device — nondeterministic; seeds come from AppConfig"),
    (re.compile(r"system_clock"),
     "wall clock (system_clock) — use steady_clock (telemetry) or the "
     "injectable TickSource (trace timestamps)"),
    (re.compile(r"(?<![\w:.])time\s*\("),
     "time() — wall clock reads are banned in decision code"),
    (re.compile(r"(?<![\w:.])gettimeofday\s*\("),
     "gettimeofday() — wall clock reads are banned in decision code"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
     "clock() — wall clock reads are banned in decision code"),
]

# Declarations (members, locals, parameters) of unordered containers; group
# 1 is the variable name. Handles multi-line template arguments.
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)\s*[;={(]", re.DOTALL)

RANGE_FOR = re.compile(r"\bfor\s*\(([^;]*?):([^;{]*?)\)\s*\{", re.DOTALL)


def _companion_header(tree: SourceTree, rel: str) -> SourceFile | None:
    if not rel.endswith(".cc"):
        return None
    return tree.file(rel[:-3] + ".h")


class DeterminismPass:
    name = "determinism"
    description = ("no rand()/random_device/wall-clock reads, and no "
                   "iteration over unordered containers, in decision code "
                   "(src/core, src/model, src/platform)")
    severity = ERROR
    roots = ("src/core", "src/model", "src/platform")

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            findings.extend(self._check(tree, source))
        return findings

    def _check(self, tree: SourceTree,
               source: SourceFile) -> list[Finding]:
        findings = []
        for pattern, why in BANNED:
            for match in pattern.finditer(source.code):
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=source.line_of(match.start()),
                    message=f"nondeterminism: {why}"))

        unordered_names = set(UNORDERED_DECL.findall(source.code))
        header = _companion_header(tree, source.rel)
        if header is not None:
            unordered_names |= set(UNORDERED_DECL.findall(header.code))
        for match in RANGE_FOR.finditer(source.code):
            range_expr = match.group(2)
            tokens = set(re.findall(r"\w+", range_expr))
            if "unordered_map" in range_expr or "unordered_set" in range_expr \
                    or tokens & unordered_names:
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=source.line_of(match.start()),
                    message=("iteration over an unordered container "
                             f"({range_expr.strip()}) — bucket order is not "
                             "deterministic; fold a sorted view instead")))
        return findings
