#include "platform/qasca_strategy.h"

#include "core/assignment/assignment.h"
#include "core/assignment/fscore_online.h"
#include "core/assignment/topk_benefit.h"
#include "core/metrics/cost_accuracy.h"
#include "platform/database.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"

namespace qasca {

std::vector<QuestionIndex> QascaStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.database != nullptr);
  QASCA_CHECK(context.metric != nullptr);
  QASCA_CHECK(context.worker_model != nullptr);
  QASCA_CHECK(context.rng != nullptr);

  const DistributionMatrix& qc = context.database->current();
  DistributionMatrix qw = [&] {
    util::Span span(context.telemetry, util::tnames::kSpanEstimateQw);
    return EstimateWorkerDistribution(qc, *context.worker_model, candidates,
                                      qw_mode_, *context.rng, context.pool,
                                      context.telemetry);
  }();

  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = candidates;
  request.k = k;
  request.pool = context.pool;
  request.telemetry = context.telemetry;

  AssignmentResult result;
  if (context.metric->kind == MetricSpec::Kind::kAccuracy) {
    result = AssignTopKBenefit(request);
  } else if (context.metric->kind == MetricSpec::Kind::kCostAccuracy) {
    // Decomposable like Accuracy*: Top-K Benefit with the metric's row
    // quality (expected-cost minimiser per question).
    CostAccuracyMetric metric(context.metric->costs,
                              context.metric->CostLabels());
    result = AssignTopKBenefitDecomposable(
        request,
        [&metric](std::span<const double> row) {
          return metric.RowQuality(row);
        });
  } else {
    FScoreAssignmentOptions options;
    options.alpha = context.metric->alpha;
    options.target_label = context.metric->target_label;
    options.warm_start = true;
    result = AssignFScoreOnline(request, options);
  }
  last_outer_iterations_ = result.outer_iterations;
  last_inner_iterations_ = result.inner_iterations;
  return result.selected;
}

}  // namespace qasca
