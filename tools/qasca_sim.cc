// qasca_sim — command-line driver for the simulated end-to-end comparison.
//
// Usage:
//   qasca_sim [--app FS|SA|ER|PSA|NSA|CompanyLogo] [--seeds N]
//             [--checkpoints N] [--systems a,b,...] [--csv] [--scale F]
//
//   --app          application to run (default FS)
//   --seeds        number of independent simulated worlds to average
//                  (default 3)
//   --checkpoints  quality samples along the HIT axis (default 10)
//   --systems      comma-separated subset of
//                  Baseline,CDAS,AskIt!,QASCA,MaxMargin,ExpLoss
//                  (default: all six)
//   --scale        shrink factor in (0,1] applied to n and the worker pool
//                  for quick runs (default 1.0)
//   --csv          emit CSV instead of an aligned table
//
// Examples:
//   qasca_sim --app ER --seeds 5
//   qasca_sim --app NSA --systems Baseline,QASCA --scale 0.25 --csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/experiment_driver.h"
#include "util/table.h"

namespace qasca {
namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app NAME] [--seeds N] [--checkpoints N] "
               "[--systems a,b,...] [--scale F] [--csv]\n",
               argv0);
  std::exit(2);
}

ApplicationSpec AppByName(const std::string& name) {
  for (const ApplicationSpec& spec : PaperApplications()) {
    if (spec.name == name) return spec;
  }
  if (name == "CompanyLogo") return CompanyLogoApp();
  std::fprintf(stderr, "unknown app '%s' (try FS SA ER PSA NSA CompanyLogo)\n",
               name.c_str());
  std::exit(2);
}

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : value) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

int Run(int argc, char** argv) {
  std::string app_name = "FS";
  int seeds = 3;
  int checkpoints = 10;
  double scale = 1.0;
  bool csv = false;
  std::vector<std::string> system_names;

  for (int a = 1; a < argc; ++a) {
    std::string flag = argv[a];
    auto next_value = [&]() -> std::string {
      if (a + 1 >= argc) Usage(argv[0]);
      return argv[++a];
    };
    if (flag == "--app") {
      app_name = next_value();
    } else if (flag == "--seeds") {
      seeds = std::atoi(next_value().c_str());
      if (seeds <= 0) Usage(argv[0]);
    } else if (flag == "--checkpoints") {
      checkpoints = std::atoi(next_value().c_str());
      if (checkpoints <= 0) Usage(argv[0]);
    } else if (flag == "--systems") {
      system_names = SplitCommas(next_value());
    } else if (flag == "--scale") {
      scale = std::atof(next_value().c_str());
      if (scale <= 0.0 || scale > 1.0) Usage(argv[0]);
    } else if (flag == "--csv") {
      csv = true;
    } else {
      Usage(argv[0]);
    }
  }

  ApplicationSpec spec = AppByName(app_name);
  if (scale < 1.0) {
    spec.num_questions =
        std::max(spec.questions_per_hit * 4,
                 static_cast<int>(spec.num_questions * scale));
    spec.workers.num_workers =
        std::max(4, static_cast<int>(spec.workers.num_workers * scale));
  }

  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems;
  if (system_names.empty()) {
    systems = all;
  } else {
    for (const std::string& name : system_names) {
      bool found = false;
      for (const SystemFactory& factory : all) {
        if (factory.name == name) {
          systems.push_back(factory);
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown system '%s'\n", name.c_str());
        return 2;
      }
    }
  }

  std::fprintf(stderr,
               "running %s: n=%d, k=%d, %d HITs, %d worker(s) pool, %d "
               "seed(s), metric=%s\n",
               spec.name.c_str(), spec.num_questions, spec.questions_per_hit,
               spec.TotalHits(), spec.workers.num_workers, seeds,
               spec.metric.Make()->name().c_str());

  bench::AveragedTraces traces = bench::RunAveraged(
      spec, systems, seeds, checkpoints, /*track_estimation_deviation=*/false);

  std::vector<std::string> header = {"HITs"};
  for (const std::string& name : traces.system_names) header.push_back(name);
  util::Table table(header);
  for (size_t c = 0; c < traces.completed_hits.size(); ++c) {
    table.AddRow().Cell(int64_t{traces.completed_hits[c]});
    for (size_t s = 0; s < traces.system_names.size(); ++s) {
      table.Percent(traces.quality[s][c], 2);
    }
  }
  if (csv) {
    std::fputs(table.ToCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace qasca

int main(int argc, char** argv) { return qasca::Run(argc, argv); }
