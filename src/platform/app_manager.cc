#include "platform/app_manager.h"

#include <string>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace qasca {

util::StatusOr<AppId> AppManager::RegisterApp(AppOptions options) {
  if (!options.strategy_factory) {
    return util::Status::InvalidArgument(
        "RegisterApp requires a strategy factory");
  }
  QASCA_RETURN_IF_ERROR(options.config.Validate());
  auto owned = std::make_unique<AppShard>();
  AppShard* shard = owned.get();
  AppId id = 0;
  {
    util::MutexLock registry(mu_);
    id = static_cast<AppId>(shards_.size());
    shards_.push_back(std::move(owned));
  }
  // Published before the engine exists; every serving path checks for a
  // still-initialising shard. The caller only learns the id after this
  // block, so a well-behaved client never observes the window.
  util::MutexLock lock(shard->mu);
  shard->config = std::move(options.config);
  if (!shard->config.persistence_path.empty()) {
    // Journal scoping: sibling apps must never share a journal file, and a
    // restarted process that re-registers the same apps in the same order
    // reattaches each app to its own journal.
    shard->config.persistence_path += ".app" + std::to_string(id);
  }
  shard->strategy_factory = std::move(options.strategy_factory);
  shard->seed = options.seed;
  shard->engine = BuildEngine(*shard);
  return id;
}

int AppManager::app_count() const {
  util::MutexLock registry(mu_);
  return static_cast<int>(shards_.size());
}

util::StatusOr<std::vector<QuestionIndex>> AppManager::SubmitHitRequest(
    AppId app, WorkerId worker) {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  return shard->engine->RequestHit(worker);
}

util::StatusOr<std::vector<util::StatusOr<std::vector<QuestionIndex>>>>
AppManager::SubmitHitRequestBatch(AppId app,
                                  const std::vector<WorkerId>& workers) {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  // One lock hold for the whole batch: the b decisions run back to back
  // against one Qc/EM snapshot, with the shared state warmed once
  // (TaskAssignmentEngine::ServeRequestBatch).
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  return shard->engine->ServeRequestBatch(workers);
}

util::Status AppManager::SubmitHitCompletion(
    AppId app, WorkerId worker, const std::vector<LabelIndex>& labels) {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  return shard->engine->CompleteHit(worker, labels);
}

util::StatusOr<int> AppManager::AdvanceAppClock(AppId app, uint64_t ticks) {
  if (ticks == 0) {
    return util::Status::InvalidArgument("ticks must be > 0");
  }
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  return shard->engine->Tick(ticks);
}

util::Status AppManager::CrashAndRecoverApp(AppId app) {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  if (shard->config.persistence_path.empty()) {
    return util::Status::FailedPrecondition(
        "app has no journal to recover from");
  }
  // Hit() is called directly rather than through QASCA_FAIL_POINT so the
  // injection point is armable in every build and the lock-order pass sees
  // the FailPoints acquisition under the shard lock — a runtime nesting
  // the journal's own fail points produce on this path anyway.
  if (util::FailPoints::Global().Hit("app_manager.crash_recover")) {
    return util::Status::Internal(
        "fail point app_manager.crash_recover: recovery refused");
  }
  // The crash: every byte of in-memory state is discarded. Sibling shards
  // keep serving throughout — only this app's lock is held. The journal
  // (and the registered config/factory/seed) is the sole survivor, and
  // replaying it through a fresh engine IS the recovery.
  shard->engine.reset();
  shard->engine = BuildEngine(*shard);
  return shard->engine->Recover();
}

util::StatusOr<uint64_t> AppManager::AppStateFingerprint(AppId app) const {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  return shard->engine->StateFingerprint();
}

util::StatusOr<std::string> AppManager::AppTelemetryJson(AppId app) const {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  return shard->engine->telemetry().ToJson();
}

util::StatusOr<AppManager::AppStats> AppManager::StatsFor(AppId app) const {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  const TaskAssignmentEngine& engine = *shard->engine;
  AppStats stats;
  stats.assigned_hits = engine.assigned_hits();
  stats.completed_hits = engine.completed_hits();
  stats.open_hits = engine.open_hit_count();
  stats.leases_expired = engine.leases_expired();
  stats.duplicates_dropped = engine.duplicates_dropped();
  stats.late_completions_rejected = engine.late_completions_rejected();
  if (engine.provenance() != nullptr) {
    stats.provenance_records = engine.provenance()->size();
  }
  if (engine.assign_slo() != nullptr) {
    stats.window_p95_seconds = engine.assign_slo()->WindowP95();
  }
  stats.max_assignment_seconds = engine.max_assignment_seconds();
  return stats;
}

util::Status AppManager::InspectApp(
    AppId app,
    const std::function<void(const TaskAssignmentEngine&)>& fn) const {
  AppShard* shard = ShardFor(app);
  if (shard == nullptr) {
    return util::Status::InvalidArgument("unknown app id");
  }
  util::MutexLock lock(shard->mu);
  if (shard->engine == nullptr) {
    return util::Status::FailedPrecondition("app is still initialising");
  }
  fn(*shard->engine);
  return util::Status::Ok();
}

AppManager::AppShard* AppManager::ShardFor(AppId app) const {
  util::MutexLock registry(mu_);
  if (app < 0 || app >= static_cast<AppId>(shards_.size())) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(app)].get();
}

std::unique_ptr<TaskAssignmentEngine> AppManager::BuildEngine(
    const AppShard& shard) {
  return std::make_unique<TaskAssignmentEngine>(
      shard.config, shard.strategy_factory(), shard.seed);
}

}  // namespace qasca
