#include "util/table.h"

#include <gtest/gtest.h>

namespace qasca::util {
namespace {

TEST(TableTest, CsvRendering) {
  Table table({"app", "quality"});
  table.AddRow().Cell("FS").Percent(0.983);
  table.AddRow().Cell("SA").Percent(0.846);
  EXPECT_EQ(table.ToCsv(), "app,quality\nFS,98.30%\nSA,84.60%\n");
}

TEST(TableTest, NumericFormatting) {
  Table table({"x", "y", "n"});
  table.AddRow().Cell(1.23456, 2).Cell(0.5).Cell(int64_t{42});
  EXPECT_EQ(table.ToCsv(), "x,y,n\n1.23,0.5000,42\n");
}

TEST(TableDeathTest, TooManyCellsAborts) {
  Table table({"only"});
  table.AddRow().Cell("a");
  EXPECT_DEATH(table.Cell("b"), "too many cells");
}

TEST(TableDeathTest, CellBeforeRowAborts) {
  Table table({"h"});
  EXPECT_DEATH(table.Cell("x"), "Cell\\(\\) before AddRow\\(\\)");
}

}  // namespace
}  // namespace qasca::util
