#ifndef QASCA_CORE_ASSIGNMENT_QW_OVERLAY_H_
#define QASCA_CORE_ASSIGNMENT_QW_OVERLAY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/logging.h"

namespace qasca {

/// Zero-copy view of the estimated distribution matrix Qw (DESIGN.md §12):
/// instead of deep-copying all n rows of Qc and overwriting the candidate
/// rows, only the candidate rows are materialised into a reusable scratch
/// buffer, and reads fall through to the base matrix for every other row.
/// AssignmentRequest::EstimatedRow is the fall-through read; the assignment
/// algorithms never touch non-candidate estimated rows, so the two
/// representations are interchangeable bit-for-bit.
///
/// Epoch discipline: Begin() starts a new request in O(1) by bumping an
/// epoch counter — a row is "materialised" iff its stamp matches the
/// current epoch, so the per-question stamp array never needs clearing
/// between requests (it is cleared only on shape changes and on the
/// ~4-billion-request epoch wraparound).
///
/// Ownership and threading: owned by the strategy that fills it
/// (QascaStrategy holds one as per-strategy scratch) and valid only for the
/// duration of one SelectQuestions call, like every other AssignmentRequest
/// pointer. Fill protocol: the engine thread calls Begin() then Stamp()s
/// every candidate; parallel kernel chunks may then write disjoint
/// MutableRow(slot) buffers concurrently (slot = candidate position, so
/// writes never overlap). Readers run after the fill completes.
class QwOverlay {
 public:
  /// Starts a new overlay epoch over a base matrix of shape
  /// [num_questions, num_labels], with room for `rows` materialised rows.
  /// Invalidates every row stamped in previous epochs.
  void Begin(int num_questions, int num_labels, int rows) {
    QASCA_CHECK_GT(num_questions, 0);
    QASCA_CHECK_GT(num_labels, 0);
    QASCA_CHECK_GE(rows, 0);
    QASCA_CHECK_LE(rows, num_questions);
    if (static_cast<int>(epoch_of_.size()) != num_questions) {
      epoch_of_.assign(static_cast<size_t>(num_questions), 0);
      slot_of_.assign(static_cast<size_t>(num_questions), 0);
      epoch_ = 0;
    }
    if (++epoch_ == 0) {
      // uint32 wraparound: stale stamps from 2^32 requests ago would alias
      // the new epoch, so clear them once and restart from epoch 1.
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0u);
      epoch_ = 1;
    }
    num_labels_ = num_labels;
    rows_ = rows;
    scratch_.resize(static_cast<size_t>(rows) * num_labels);
    total_rows_materialized_ += rows;
    quality_epoch_ = 0;  // disarm: qualities must be re-armed every epoch
  }

  /// Claims scratch slot `slot` (in [0, rows)) for question `i` in the
  /// current epoch. Engine-thread-only (the serial part of the fill).
  void Stamp(QuestionIndex i, int slot) {
    QASCA_CHECK_GE(i, 0);
    QASCA_CHECK_LT(i, static_cast<int>(epoch_of_.size()));
    QASCA_DCHECK_GE(slot, 0);
    QASCA_DCHECK_LT(slot, rows_);
    epoch_of_[static_cast<size_t>(i)] = epoch_;
    slot_of_[static_cast<size_t>(i)] = slot;
  }

  /// The writable row buffer for slot `slot`. Distinct slots never overlap,
  /// so parallel chunks may fill their own slots concurrently.
  double* MutableRow(int slot) {
    return scratch_.data() + static_cast<size_t>(slot) * num_labels_;
  }

  /// Whether question `i` was stamped in the current epoch.
  bool Contains(QuestionIndex i) const {
    QASCA_DCHECK_GE(i, 0);
    QASCA_DCHECK_LT(i, static_cast<int>(epoch_of_.size()));
    return epoch_of_[static_cast<size_t>(i)] == epoch_;
  }

  /// Arms the fused per-row quality channel for the current epoch and
  /// returns its slot-indexed buffer (one double per materialised row).
  /// The estimation kernel writes each row's decomposable quality — the
  /// Accuracy* row max — into slot c while the row is still in registers,
  /// so the benefit scan reads one contiguous double per candidate instead
  /// of re-reducing the row. Engine-thread-only, like Stamp(); parallel
  /// fill chunks then write disjoint slots. Begin() disarms the channel, so
  /// a stale epoch can never leak qualities into the next request.
  double* ArmQualities() {
    quality_.resize(static_cast<size_t>(rows_));
    quality_epoch_ = epoch_;
    return quality_.data();
  }

  /// Whether the current epoch armed (and filled) the quality channel.
  bool has_qualities() const noexcept {
    return epoch_ != 0 && quality_epoch_ == epoch_;
  }

  /// The fused quality for question `i`; Contains(i) and has_qualities()
  /// must hold.
  double Quality(QuestionIndex i) const {
    QASCA_DCHECK(Contains(i));
    QASCA_DCHECK(has_qualities());
    return quality_[static_cast<size_t>(slot_of_[static_cast<size_t>(i)])];
  }

  /// The materialised row for question `i`; Contains(i) must hold.
  std::span<const double> Row(QuestionIndex i) const {
    QASCA_DCHECK(Contains(i));
    return {scratch_.data() +
                static_cast<size_t>(slot_of_[static_cast<size_t>(i)]) *
                    num_labels_,
            static_cast<size_t>(num_labels_)};
  }

  int num_labels() const noexcept { return num_labels_; }
  int num_questions() const noexcept {
    return static_cast<int>(epoch_of_.size());
  }
  /// Rows materialised by the current epoch / across all epochs (the bench
  /// `kernels` section reports the cumulative count).
  int rows_materialized() const noexcept { return rows_; }
  int64_t total_rows_materialized() const noexcept {
    return total_rows_materialized_;
  }

 private:
  std::vector<double> scratch_;
  std::vector<double> quality_;
  std::vector<uint32_t> epoch_of_;
  std::vector<int32_t> slot_of_;
  uint32_t epoch_ = 0;
  uint32_t quality_epoch_ = 0;
  int num_labels_ = 0;
  int rows_ = 0;
  int64_t total_rows_materialized_ = 0;
};

}  // namespace qasca

#endif  // QASCA_CORE_ASSIGNMENT_QW_OVERLAY_H_
