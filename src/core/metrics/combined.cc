#include "core/metrics/combined.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "util/fold.h"
#include "util/logging.h"

namespace qasca {

CombinedMetric::CombinedMetric(double beta, double alpha,
                               LabelIndex target_label)
    : beta_(beta),
      alpha_(alpha),
      target_label_(target_label),
      fscore_(alpha, target_label) {
  QASCA_CHECK_GE(beta, 0.0);
  QASCA_CHECK_LE(beta, 1.0);
}

std::string CombinedMetric::name() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer),
                "Combined(beta=%.2f, alpha=%.2f)", beta_, alpha_);
  return buffer;
}

double CombinedMetric::EvaluateAgainstTruth(const GroundTruthVector& truth,
                                            const ResultVector& result) const {
  return beta_ * accuracy_.EvaluateAgainstTruth(truth, result) +
         (1.0 - beta_) * fscore_.EvaluateAgainstTruth(truth, result);
}

double CombinedMetric::Evaluate(const DistributionMatrix& q,
                                const ResultVector& result) const {
  return beta_ * accuracy_.Evaluate(q, result) +
         (1.0 - beta_) * fscore_.Evaluate(q, result);
}

ResultVector CombinedMetric::OptimalResult(const DistributionMatrix& q) const {
  const int n = q.num_questions();
  const int num_labels = q.num_labels();
  QASCA_CHECK_LT(target_label_, num_labels);
  QASCA_CHECK_GT(n, 0);

  // Per question: target probability, the best non-target probability, and
  // the best non-target label (what an unselected question returns).
  std::vector<double> target_probability(n);
  std::vector<double> best_other(n);
  std::vector<LabelIndex> best_other_label(n);
  for (int i = 0; i < n; ++i) {
    std::span<const double> row = q.Row(i);
    target_probability[i] = row[target_label_];
    double best = -1.0;
    LabelIndex best_label = target_label_ == 0 ? 1 : 0;
    for (int j = 0; j < num_labels; ++j) {
      if (j == target_label_) continue;
      if (row[j] > best) {
        best = row[j];
        best_label = j;
      }
    }
    best_other[i] = best;
    best_other_label[i] = best_label;
  }
  const double target_mass = util::DeterministicSum(
      0, n, [&](int i) { return target_probability[i]; });
  // Sum of M_i: the accuracy mass if no question is returned as target.
  const double base_accuracy = util::DeterministicSum(
      0, n, [&](int i) { return best_other[i]; });
  const double gamma = (1.0 - alpha_) * target_mass;

  // Sweep the number m of returned-as-target questions; for each m the
  // per-item score is fixed, so linear-time selection finds the optimal
  // m-subset.
  std::vector<int> order(n);
  std::vector<double> scores(n);
  double best_objective = beta_ * base_accuracy / n;  // m = 0
  int best_m = 0;
  std::vector<int> best_selection;
  for (int m = 1; m <= n; ++m) {
    double denominator = alpha_ * m + gamma;
    if (denominator <= 0.0) continue;  // degenerate: no target mass at all
    for (int i = 0; i < n; ++i) {
      scores[i] = beta_ * (target_probability[i] - best_other[i]) / n +
                  (1.0 - beta_) * target_probability[i] / denominator;
    }
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(), order.begin() + (m - 1), order.end(),
                     [&](int a, int b) {
                       return scores[a] > scores[b] ||
                              (scores[a] == scores[b] && a < b);
                     });
    const double objective = util::DeterministicFold(
        beta_ * base_accuracy / n, 0, m,
        [&](double acc, int c) { return acc + scores[order[c]]; });
    if (objective > best_objective + 1e-15) {
      best_objective = objective;
      best_m = m;
      best_selection.assign(order.begin(), order.begin() + m);
    }
  }

  ResultVector result(n);
  for (int i = 0; i < n; ++i) result[i] = best_other_label[i];
  if (best_m > 0) {
    for (int i : best_selection) result[i] = target_label_;
  }
  return result;
}

}  // namespace qasca
