#include "model/posterior.h"

#include <algorithm>

#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry_names.h"

namespace qasca {
namespace {

// Scales `weights` to sum to one and returns the pre-normalisation total.
// A non-positive total (all labels ruled out, which can happen with
// degenerate 0/1 worker models giving contradictory answers) falls back to
// uniform rather than abort: the data is inconsistent with the model, not
// with the caller.
double NormalizeInPlace(std::vector<double>& weights) {
  const double total = util::DeterministicSum(
      0, static_cast<int>(weights.size()),
      [&](int j) { return weights[j]; });
  if (total <= 0.0) {
    std::fill(weights.begin(), weights.end(),
              1.0 / static_cast<double>(weights.size()));
    return total;
  }
  for (double& w : weights) w /= total;
  return total;
}

}  // namespace

std::vector<double> ComputePosteriorRow(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const WorkerModelLookup& models,
                                        double* marginal) {
  const int num_labels = static_cast<int>(prior.size());
  QASCA_CHECK_GT(num_labels, 0);
  std::vector<double> weights(prior.begin(), prior.end());
  for (const Answer& answer : answers) {
    const WorkerModel& model = models(answer.worker);
    QASCA_CHECK_EQ(model.num_labels(), num_labels);
    for (int j = 0; j < num_labels; ++j) {
      weights[j] *= model.AnswerProbability(answer.label, j);
    }
  }
  double total = NormalizeInPlace(weights);
  if (marginal != nullptr) *marginal = total;
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(weights));
  return weights;
}

DistributionMatrix ComputeCurrentDistribution(
    const AnswerSet& answers, const std::vector<double>& prior,
    const WorkerModelLookup& models) {
  const int n = static_cast<int>(answers.size());
  const int num_labels = static_cast<int>(prior.size());
  DistributionMatrix qc(n, num_labels);
  for (int i = 0; i < n; ++i) {
    // ComputePosteriorRow's return buffer (see the em.cc E-step note).
    // analyze:allow(hot-path-alloc)
    std::vector<double> row = ComputePosteriorRow(answers[i], prior, models);
    qc.SetRow(i, row);
  }
  return qc;
}

std::vector<double> EstimateWorkerRowAt(std::span<const double> current_row,
                                        const WorkerModel& model, QwMode mode,
                                        double u01) {
  const int num_labels = static_cast<int>(current_row.size());
  QASCA_CHECK_EQ(model.num_labels(), num_labels);

  // Predicted answer distribution P(a = j' | D_i) (Eq. 17). For WP models
  // the double sum collapses to a closed form — O(l) instead of O(l^2),
  // which matters for many-label applications like CompanyLogo (l = 214).
  std::vector<double> answer_distribution(num_labels, 0.0);
  if (model.kind() == WorkerModel::Kind::kWorkerProbability &&
      num_labels > 1) {
    double m = model.worker_probability();
    double off = (1.0 - m) / (num_labels - 1);
    for (int answered = 0; answered < num_labels; ++answered) {
      answer_distribution[answered] =
          m * current_row[answered] + off * (1.0 - current_row[answered]);
    }
  } else {
    for (int answered = 0; answered < num_labels; ++answered) {
      for (int truth = 0; truth < num_labels; ++truth) {
        answer_distribution[answered] +=
            model.AnswerProbability(answered, truth) * current_row[truth];
      }
    }
  }

  auto conditioned = [&](LabelIndex answered) {
    // Qw_{i,j} proportional to Qc_{i,j} * P(a = answered | t = j) (Eq. 18).
    std::vector<double> weights(num_labels);
    for (int j = 0; j < num_labels; ++j) {
      weights[j] = current_row[j] * model.AnswerProbability(answered, j);
    }
    NormalizeInPlace(weights);
    return weights;
  };

  if (mode == QwMode::kSampled) {
    LabelIndex sampled = util::SampleWeightedAt(answer_distribution, u01);
    return conditioned(sampled);
  }

  // kExpected: mixture of the conditioned posteriors weighted by the
  // predicted answer distribution.
  std::vector<double> expected(num_labels, 0.0);
  for (int answered = 0; answered < num_labels; ++answered) {
    if (answer_distribution[answered] <= 0.0) continue;
    // `conditioned`'s return buffer; num_labels iterations, small vectors.
    // analyze:allow(hot-path-alloc)
    std::vector<double> weights = conditioned(answered);
    for (int j = 0; j < num_labels; ++j) {
      expected[j] += answer_distribution[answered] * weights[j];
    }
  }
  NormalizeInPlace(expected);
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(expected));
  return expected;
}

std::vector<double> EstimateWorkerRow(std::span<const double> current_row,
                                      const WorkerModel& model, QwMode mode,
                                      util::Rng& rng) {
  return EstimateWorkerRowAt(current_row, model, mode,
                             mode == QwMode::kSampled ? rng.Uniform() : 0.0);
}

// Candidate rows are independent, so the scan parallelises by chunk; the
// grain is fixed (never derived from the pool size) to keep the chunk
// decomposition — and with it any scheduling-sensitive behaviour —
// identical across thread counts.
namespace {
constexpr int kQwScanGrain = 256;
}  // namespace

DistributionMatrix EstimateWorkerDistribution(
    const DistributionMatrix& current, const WorkerModel& model,
    const std::vector<QuestionIndex>& candidates, QwMode mode, util::Rng& rng,
    util::ThreadPool* pool, util::MetricRegistry* telemetry) {
  if (telemetry != nullptr && mode == QwMode::kSampled) {
    // One weighted draw per candidate row (Eq. 17's sampling step).
    telemetry->GetCounter(util::tnames::kQwSamplesDrawn)
        ->Add(static_cast<int64_t>(candidates.size()));
  }
  DistributionMatrix qw = current;
  // One base draw per call keeps the caller's Rng stream advanced the same
  // way regardless of candidate count or threading; every candidate then
  // derives its own counter-based stream from (base, question index).
  const uint64_t base = mode == QwMode::kSampled ? rng.engine()() : 0;
  const int count = static_cast<int>(candidates.size());
  util::ParallelFor(pool, 0, count, kQwScanGrain, [&](int cb, int ce) {
    for (int c = cb; c < ce; ++c) {
      QuestionIndex i = candidates[static_cast<size_t>(c)];
      double u01 = 0.0;
      if (mode == QwMode::kSampled) {
        util::SplitMix64 stream(
            util::SplitMix64::MixSeed(base, static_cast<uint64_t>(i)));
        u01 = stream.NextDouble();
      }
      qw.SetRow(i, EstimateWorkerRowAt(current.Row(i), model, mode, u01));
    }
  });
  return qw;
}

}  // namespace qasca
