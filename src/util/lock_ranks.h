#ifndef QASCA_UTIL_LOCK_RANKS_H_
#define QASCA_UTIL_LOCK_RANKS_H_

namespace qasca::util::lock_ranks {

/// The process-wide lock ranking, mirroring the total order the analyzer's
/// `lock-order` pass computes from the interprocedural lock-acquisition
/// graph and checks in as tools/analyze/lock_order.json. A thread may only
/// acquire ranked mutexes in strictly increasing rank order; DCHECK builds
/// enforce this at runtime (util/mutex.h, QASCA_MUTEX_RANK_CHECKS).
///
/// When a new mutex member or a new nesting edge appears, rerun
///   python3 tools/analyze.py --write-lock-order
/// and update these constants to match the regenerated json — the analyzer
/// fails the tree when the checked-in ranking is stale, and the deadlock
/// tests in tests/util/ pin the runtime check itself.
///
/// Gaps of 10 leave room to slot a new lock between two existing ones
/// without renumbering everything.
inline constexpr int kServingLane = 10;            // ServingLane::turn_mu (simulation/serving_driver.cc)
inline constexpr int kAppShard = 20;               // AppManager::AppShard::mu
inline constexpr int kAppManagerRegistry = 30;     // AppManager::mu_
inline constexpr int kFailPointsRegistry = 40;     // FailPoints::mutex_
inline constexpr int kFlightRecorderShard = 50;    // FlightRecorder::Shard::mutex
inline constexpr int kMetricRegistry = 60;         // MetricRegistry::mutex_
inline constexpr int kLatencyHistogram = 70;       // LatencyHistogram::mutex_
inline constexpr int kThreadPool = 80;             // ThreadPool::mutex_
inline constexpr int kWindowedLatency = 90;        // WindowedLatency::mutex_

}  // namespace qasca::util::lock_ranks

#endif  // QASCA_UTIL_LOCK_RANKS_H_
