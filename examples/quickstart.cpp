// Quickstart: deploy a small crowdsourcing application on the QASCA engine,
// serve HITs to a simulated crowd, and read back the results.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "simulation/simulated_worker.h"
#include "util/rng.h"

int main() {
  using namespace qasca;

  // 1. The requester's configuration (the paper's Appendix A deployment):
  //    60 two-label questions, 4 questions per HIT, $0.02 per HIT, enough
  //    budget for 45 HITs (z = 3 answers per question), judged by Accuracy.
  AppConfig config;
  config.name = "quickstart";
  config.num_questions = 60;
  config.num_labels = 2;
  config.questions_per_hit = 4;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 45;
  config.metric = MetricSpec::Accuracy();

  // 2. The engine: QASCA's quality-aware strategy behind the HIT workflow.
  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/2026);

  // 3. A simulated crowd: 10 workers of varying latent quality and the
  //    hidden ground truth they answer against.
  util::Rng rng(7);
  WorkerPoolSpec pool_spec;
  pool_spec.num_workers = 10;
  pool_spec.num_labels = 2;
  pool_spec.mean_accuracy = 0.8;
  std::vector<SimulatedWorker> crowd = GenerateWorkerPool(pool_spec, rng);
  GroundTruthVector truth(config.num_questions);
  for (LabelIndex& t : truth) t = rng.UniformInt(2);

  // 4. Serve HITs until the budget is spent: each arriving worker requests
  //    a HIT, answers it, and completes it.
  while (!engine.BudgetExhausted()) {
    const SimulatedWorker& worker =
        crowd[rng.UniformInt(static_cast<int>(crowd.size()))];
    util::StatusOr<std::vector<QuestionIndex>> hit =
        engine.RequestHit(worker.id);
    if (!hit.ok()) continue;  // e.g. this worker has seen every question
    std::vector<LabelIndex> answers;
    for (QuestionIndex q : *hit) {
      answers.push_back(worker.AnswerQuestion(truth[q], rng));
    }
    util::Status status = engine.CompleteHit(worker.id, answers);
    QASCA_CHECK(status.ok()) << status.ToString();
  }

  // 5. Read the results: the metric-optimal result vector R*.
  ResultVector results = engine.CurrentResults();
  int correct = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i] == truth[i]) ++correct;
  }
  std::printf("completed HITs : %d\n", engine.completed_hits());
  std::printf("answers stored : %d\n",
              engine.completed_hits() * config.questions_per_hit);
  std::printf("accuracy       : %d/%d = %.1f%%\n", correct,
              config.num_questions,
              100.0 * correct / config.num_questions);
  std::printf("fitted workers : %zu (each with an estimated quality model)\n",
              engine.database().parameters().workers.size());
  return 0;
}
