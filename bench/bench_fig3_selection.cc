// Reproduces Figure 3(d)-(f): the value of choosing the optimal result
// vector R* (Theorem 2 / Algorithm 1) over the argmax-label rule R-tilde,
// and the efficiency of Algorithm 1.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/metrics/fscore.h"
#include "util/stats.h"
#include "util/table.h"

namespace qasca {
namespace {

void Figure3d() {
  util::PrintSection(
      "Figure 3(d) — quality improvement Delta = F(R*) - F(R-tilde) vs "
      "alpha, n=2000");
  // At n=2000 the F-score* approximation is within 0.01% of E[F-score]
  // (Figure 3(c)), so it serves as the expectation here — evaluating Eq. 8
  // exactly at this n would add nothing but O(n^2) cost per trial.
  util::Rng rng(304);
  const int n = 2000;
  const int kTrials = 50;
  util::Table table({"alpha", "mean Delta"});
  for (int a = 0; a <= 20; ++a) {
    double alpha = a / 20.0;
    util::RunningStats stats;
    for (int t = 0; t < kTrials; ++t) {
      DistributionMatrix q = bench::RandomBinaryMatrix(n, rng);
      FScoreQualityResult optimal = SolveFScoreQuality(q, alpha);
      ResultVector argmax(n);
      for (int i = 0; i < n; ++i) argmax[i] = q.ArgMaxLabel(i);
      stats.Add(optimal.lambda - FScoreStar(q, argmax, alpha));
    }
    table.AddRow().Cell(alpha, 2).Percent(stats.mean(), 2);
  }
  table.Print();
  std::printf(
      "Expected shape: asymmetric bowl; Delta ~0 near alpha=0.65 (the\n"
      "paper derives alpha'=0.667 for uniform Q), large at small alpha.\n");
}

void Figure3e() {
  util::PrintSection(
      "Figure 3(e) — Dinkelbach iterations c to converge, n=2000 "
      "(alpha swept 0..1)");
  util::Rng rng(305);
  const int n = 2000;
  util::Histogram histogram(0.5, 15.5, 15);
  int max_c = 0;
  for (int a = 0; a <= 10; ++a) {
    double alpha = a / 10.0;
    for (int t = 0; t < 100; ++t) {
      DistributionMatrix q = bench::RandomBinaryMatrix(n, rng);
      int c = SolveFScoreQuality(q, alpha).iterations;
      histogram.Add(c);
      max_c = std::max(max_c, c);
    }
  }
  util::Table table({"c (iterations)", "frequency"});
  for (int b = 0; b < histogram.buckets(); ++b) {
    if (histogram.count(b) == 0) continue;
    table.AddRow().Cell(int64_t{b + 1}).Cell(histogram.count(b));
  }
  table.Print();
  std::printf("max c observed = %d (paper: c <= 15 at n=2000)\n", max_c);
}

void Figure3f() {
  util::PrintSection(
      "Figure 3(f) — Algorithm 1 runtime vs n, alpha=0.5 (linear; <=0.05s "
      "at n=10^4)");
  util::Rng rng(306);
  util::Table table({"n", "seconds/solve"});
  for (int n : {1000, 2000, 4000, 6000, 8000, 10000}) {
    const int kRepeats = 20;
    DistributionMatrix q = bench::RandomBinaryMatrix(n, rng);
    util::Stopwatch stopwatch;
    for (int t = 0; t < kRepeats; ++t) {
      (void)SolveFScoreQuality(q, 0.5);
    }
    table.AddRow().Cell(int64_t{n}).Cell(stopwatch.ElapsedSeconds() / kRepeats,
                                         6);
  }
  table.Print();
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::Figure3d();
  qasca::Figure3e();
  qasca::Figure3f();
  return 0;
}
