#include "simulation/dataset.h"

#include "util/logging.h"

namespace qasca {

ApplicationSpec FilmPostersApp() {
  ApplicationSpec spec;
  spec.name = "FS";
  spec.num_questions = 1000;
  spec.num_labels = 2;
  spec.truth_prior = {0.5, 0.5};
  spec.metric = MetricSpec::Accuracy();
  spec.workers.num_labels = 2;
  spec.workers.num_workers = 97;  // Worker head-count from Section 6.2.1.
  spec.workers.mean_accuracy = 0.82;
  spec.workers.accuracy_stddev = 0.13;
  spec.workers.label_skill_stddev = 0.12;
  spec.workers.min_accuracy = 0.45;
  spec.workers.spammer_fraction = 0.15;
  return spec;
}

ApplicationSpec SentimentAnalysisApp() {
  ApplicationSpec spec;
  spec.name = "SA";
  spec.num_questions = 1000;
  spec.num_labels = 3;  // positive / neutral / negative
  spec.truth_prior = {0.35, 0.40, 0.25};
  spec.metric = MetricSpec::Accuracy();
  spec.workers.num_labels = 3;
  spec.workers.num_workers = 101;
  spec.workers.mean_accuracy = 0.75;
  spec.workers.accuracy_stddev = 0.12;
  // Sentiment skill is strongly class-dependent in real crowds (some
  // workers never use "neutral"); a wide per-label jitter reflects that.
  spec.workers.label_skill_stddev = 0.20;
  spec.workers.min_accuracy = 0.45;
  spec.workers.spammer_fraction = 0.15;
  // With labels ordered (positive, neutral, negative), sentiment confusion
  // concentrates on the adjacent class: positive<->neutral and
  // neutral<->negative are likelier than positive<->negative.
  spec.workers.adjacent_confusion_bias = 0.6;
  return spec;
}

ApplicationSpec EntityResolutionApp() {
  ApplicationSpec spec;
  spec.name = "ER";
  spec.num_questions = 2000;
  spec.num_labels = 2;  // equal (target) / non-equal
  // Pairs pre-filtered to Jaccard >= 0.7, so "equal" is common but the
  // minority.
  spec.truth_prior = {0.38, 0.62};
  spec.metric = MetricSpec::FScore(0.5, /*target_label=*/0);
  spec.workers.num_labels = 2;
  spec.workers.num_workers = 193;
  spec.workers.mean_accuracy = 0.82;
  spec.workers.accuracy_stddev = 0.12;
  spec.workers.label_skill_stddev = 0.12;
  spec.workers.min_accuracy = 0.45;
  spec.workers.spammer_fraction = 0.15;
  // Spotting a single differing feature settles "non-equal"; confirming
  // "equal" needs every feature checked, so it is harder (Section 6.2.2).
  spec.workers.label_difficulty = {-0.07, +0.05};
  return spec;
}

ApplicationSpec PositiveSentimentApp() {
  ApplicationSpec spec;
  spec.name = "PSA";
  spec.num_questions = 1000;
  spec.num_labels = 2;  // positive (target) / non-positive
  spec.truth_prior = {0.32, 0.68};
  spec.metric = MetricSpec::FScore(0.75, /*target_label=*/0);
  spec.workers.num_labels = 2;
  spec.workers.num_workers = 104;
  spec.workers.mean_accuracy = 0.82;
  spec.workers.accuracy_stddev = 0.12;
  spec.workers.label_skill_stddev = 0.12;
  spec.workers.min_accuracy = 0.45;
  spec.workers.spammer_fraction = 0.15;
  return spec;
}

ApplicationSpec NegativeSentimentApp() {
  ApplicationSpec spec;
  spec.name = "NSA";
  spec.num_questions = 1000;
  spec.num_labels = 2;  // negative (target) / non-negative
  spec.truth_prior = {0.28, 0.72};
  spec.metric = MetricSpec::FScore(0.25, /*target_label=*/0);
  spec.workers.num_labels = 2;
  spec.workers.num_workers = 101;
  spec.workers.mean_accuracy = 0.80;
  spec.workers.accuracy_stddev = 0.12;
  spec.workers.label_skill_stddev = 0.12;
  spec.workers.min_accuracy = 0.45;
  spec.workers.spammer_fraction = 0.15;
  return spec;
}

ApplicationSpec CompanyLogoApp() {
  ApplicationSpec spec;
  spec.name = "CompanyLogo";
  spec.num_questions = 500;
  spec.num_labels = 214;  // countries
  // 128/500 questions have ground truth "USA" (label 0, the target); the
  // remaining mass spreads over the other 213 countries.
  spec.truth_prior.assign(214, (1.0 - 128.0 / 500.0) / 213.0);
  spec.truth_prior[0] = 128.0 / 500.0;
  spec.metric = MetricSpec::FScore(0.5, /*target_label=*/0);
  spec.questions_per_hit = 5;
  spec.workers.num_labels = 214;
  spec.workers.num_workers = 60;
  spec.workers.mean_accuracy = 0.70;
  spec.workers.accuracy_stddev = 0.10;
  // A 214x214 per-worker CM cannot be estimated from a few dozen answers;
  // the paper's own optimisation reduces F-score to target/non-target, so
  // the platform fits WP models here.
  spec.worker_kind = WorkerModel::Kind::kWorkerProbability;
  return spec;
}

std::vector<ApplicationSpec> PaperApplications() {
  return {FilmPostersApp(), SentimentAnalysisApp(), EntityResolutionApp(),
          PositiveSentimentApp(), NegativeSentimentApp()};
}

GroundTruthVector GenerateGroundTruth(const ApplicationSpec& spec,
                                      util::Rng& rng) {
  QASCA_CHECK_EQ(static_cast<int>(spec.truth_prior.size()), spec.num_labels);
  GroundTruthVector truth(spec.num_questions);
  for (int i = 0; i < spec.num_questions; ++i) {
    truth[i] = rng.SampleWeighted(spec.truth_prior);
  }
  return truth;
}

std::vector<double> GenerateQuestionDifficulty(const ApplicationSpec& spec,
                                               util::Rng& rng) {
  QASCA_CHECK_GE(spec.ambiguous_fraction, 0.0);
  QASCA_CHECK_LE(spec.ambiguous_fraction, 1.0);
  std::vector<double> difficulty(spec.num_questions);
  for (double& d : difficulty) {
    double mode = rng.Uniform();
    if (mode < spec.ambiguous_fraction) {
      d = rng.Uniform(spec.ambiguous_difficulty_min, 1.0);
    } else if (mode < spec.ambiguous_fraction + spec.hard_fraction) {
      d = rng.Uniform(spec.hard_difficulty_min, spec.hard_difficulty_max);
    } else {
      d = rng.Uniform(0.0, spec.easy_difficulty_max);
    }
  }
  return difficulty;
}

AppConfig MakeAppConfig(const ApplicationSpec& spec) {
  AppConfig config;
  config.name = spec.name;
  config.num_questions = spec.num_questions;
  config.num_labels = spec.num_labels;
  config.questions_per_hit = spec.questions_per_hit;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * spec.TotalHits();
  config.metric = spec.metric;
  config.worker_kind = spec.worker_kind;
  config.em.worker_kind = spec.worker_kind;
  // EM re-runs on every HIT completion; it converges in a handful of
  // rounds from the vote-count bootstrap, so a tight budget keeps the
  // end-to-end experiments fast without measurable quality impact.
  config.em.max_iterations = 15;
  config.em.tolerance = 1e-5;
  config.em.smoothing = 0.3;
  return config;
}

}  // namespace qasca
