#include <gtest/gtest.h>

#include "util/lock_ranks.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace qasca::util {
namespace {

// Runtime counterpart of the analyzer's `lock-order` pass: ranked mutexes
// must be acquired in strictly increasing rank order per thread
// (tools/analyze/lock_order.json is the authoritative ranking; the
// constants live in util/lock_ranks.h). These tests pin the
// QASCA_MUTEX_RANK_CHECKS machinery itself, so they use local ad-hoc ranks
// rather than the named project locks.

constexpr bool kRankChecksEnabled = QASCA_MUTEX_RANK_CHECKS != 0;

TEST(LockRankTest, IncreasingOrderIsAccepted) {
  Mutex low(10);
  Mutex high(20);
  MutexLock outer(low);
  MutexLock inner(high);  // 10 -> 20: strictly increasing, fine
  SUCCEED();
}

TEST(LockRankTest, UnrankedMutexesDoNotParticipate) {
  Mutex ranked(10);
  Mutex unranked_below;
  Mutex unranked_above;
  // Unranked locks may interleave anywhere without tripping the check.
  MutexLock a(unranked_below);
  MutexLock b(ranked);
  MutexLock c(unranked_above);
  SUCCEED();
}

TEST(LockRankTest, ReleaseResetsTheHeldStack) {
  Mutex low(10);
  Mutex high(20);
  {
    MutexLock lock(high);
  }
  // `high` was released, so taking `low` afterwards is sequential, not
  // nested — no violation.
  MutexLock lock(low);
  SUCCEED();
}

TEST(LockRankDeathTest, ConflictingRanksTripTheCheck) {
  if (!kRankChecksEnabled) {
    GTEST_SKIP() << "QASCA_MUTEX_RANK_CHECKS compiled out in this build";
  }
  Mutex low(10);
  Mutex high(20);
  EXPECT_DEATH(
      {
        MutexLock outer(high);
        MutexLock inner(low);  // 20 -> 10: out of order
      },
      "lock-rank order violation");
}

TEST(LockRankDeathTest, EqualRanksTripTheCheck) {
  if (!kRankChecksEnabled) {
    GTEST_SKIP() << "QASCA_MUTEX_RANK_CHECKS compiled out in this build";
  }
  // Strictly increasing: two distinct locks of the same rank must not
  // nest either (same-rank nesting is exactly how ABBA deadlocks between
  // two instances of one class arise).
  Mutex a(10);
  Mutex b(10);
  EXPECT_DEATH(
      {
        MutexLock outer(a);
        MutexLock inner(b);
      },
      "lock-rank order violation");
}

TEST(LockRankTest, TryLockJoinsTheHeldStack) {
  if (!kRankChecksEnabled) {
    GTEST_SKIP() << "QASCA_MUTEX_RANK_CHECKS compiled out in this build";
  }
  Mutex low(10);
  Mutex high(20);
  ASSERT_TRUE(high.TryLock());
  // A successful TryLock participates: a blocking Lock() of a lower rank
  // underneath it is a real inversion and must die.
  EXPECT_DEATH((void)MutexLock(low), "lock-rank order violation");
  high.Unlock();
}

}  // namespace
}  // namespace qasca::util
