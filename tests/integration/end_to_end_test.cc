#include <gtest/gtest.h>

#include "simulation/experiment.h"

namespace qasca {
namespace {

// Scaled-down versions of the paper's applications: same structure (labels,
// priors, metric, worker phenomena), smaller n so the whole matrix of
// systems x apps runs in seconds.
ApplicationSpec Shrink(ApplicationSpec spec, int n, int workers) {
  spec.num_questions = n;
  spec.workers.num_workers = workers;
  return spec;
}

// Mean final quality of (Baseline, QASCA) over a few seeds. Deterministic,
// but averaging keeps the comparison out of single-run sampling noise at
// this reduced scale (the benches run the paper-scale comparison).
std::pair<double, double> MeanFinalQuality(const ApplicationSpec& spec,
                                           std::vector<uint64_t> seeds) {
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[0], all[3]};  // Baseline, QASCA
  double baseline = 0.0;
  double qasca = 0.0;
  for (uint64_t seed : seeds) {
    ExperimentOptions options;
    options.seed = seed;
    options.checkpoints = 2;
    options.track_estimation_deviation = false;
    ExperimentResult result = RunParallelExperiment(spec, systems, options);
    baseline += result.systems[0].final_quality;
    qasca += result.systems[1].final_quality;
  }
  return {baseline / seeds.size(), qasca / seeds.size()};
}

TEST(EndToEndTest, QascaBeatsRandomBaselineOnAccuracyApp) {
  ApplicationSpec spec = Shrink(FilmPostersApp(), 120, 15);
  // Make workers noisy enough that assignment policy matters.
  spec.workers.mean_accuracy = 0.72;
  auto [baseline, qasca] = MeanFinalQuality(spec, {31, 32, 33, 34});
  EXPECT_GT(qasca, 0.7);
  EXPECT_GE(qasca, baseline - 0.03);
}

TEST(EndToEndTest, QascaBeatsRandomBaselineOnFScoreApp) {
  // Needs moderate scale: below ~n=300 single-run noise swamps the policy
  // effect (at n=500 QASCA beats Baseline by ~0.1 F-score, matching the
  // paper's ER margin).
  ApplicationSpec spec = Shrink(EntityResolutionApp(), 300, 30);
  auto [baseline, qasca] = MeanFinalQuality(spec, {37, 38});
  EXPECT_GT(qasca, 0.6);
  EXPECT_GE(qasca, baseline - 0.02);
}

TEST(EndToEndTest, AllSixSystemsCompleteAnFScoreRun) {
  ApplicationSpec spec = Shrink(NegativeSentimentApp(), 80, 10);
  ExperimentOptions options;
  options.seed = 41;
  options.checkpoints = 4;
  ExperimentResult result =
      RunParallelExperiment(spec, DefaultSystems(), options);
  ASSERT_EQ(result.systems.size(), 6u);
  for (const SystemTrace& trace : result.systems) {
    EXPECT_EQ(trace.completed_hits.back(), spec.TotalHits()) << trace.name;
    EXPECT_GT(trace.final_quality, 0.3) << trace.name;
    EXPECT_GT(trace.max_assignment_seconds, 0.0) << trace.name;
  }
}

TEST(EndToEndTest, ThreeLabelAccuracyAppRuns) {
  ApplicationSpec spec = Shrink(SentimentAnalysisApp(), 90, 12);
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[3]};  // QASCA
  // At n=90 a single run swings ~±0.1 with the seed, so average a few.
  double quality = 0.0;
  const std::vector<uint64_t> seeds = {43, 44, 45};
  for (uint64_t seed : seeds) {
    ExperimentOptions options;
    options.seed = seed;
    options.checkpoints = 4;
    ExperimentResult result = RunParallelExperiment(spec, systems, options);
    quality += result.systems[0].final_quality;
  }
  EXPECT_GT(quality / seeds.size(), 0.6);
}

TEST(EndToEndTest, ManyLabelFScoreAppRuns) {
  // CompanyLogo structure at reduced scale: many labels, F-score target.
  ApplicationSpec spec = CompanyLogoApp();
  spec.num_questions = 60;
  spec.num_labels = 25;
  spec.workers.num_labels = 25;
  spec.workers.num_workers = 10;
  spec.truth_prior.assign(25, (1.0 - 0.25) / 24.0);
  spec.truth_prior[0] = 0.25;
  ExperimentOptions options;
  options.seed = 47;
  options.checkpoints = 3;
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[3]};
  ExperimentResult result = RunParallelExperiment(spec, systems, options);
  EXPECT_GT(result.systems[0].final_quality, 0.4);
}

}  // namespace
}  // namespace qasca
