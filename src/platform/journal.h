#ifndef QASCA_PLATFORM_JOURNAL_H_
#define QASCA_PLATFORM_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/attributes.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace qasca {

/// Write-ahead journal of the HIT lifecycle, the persistence behind
/// Engine::Recover (DESIGN.md §11). Every assignment, completion and
/// virtual-clock tick is appended; because engine decisions are a pure
/// function of (config, seed, event history), replaying the journal through
/// the normal engine paths reproduces the crashed engine bit-for-bit —
/// posteriors, worker models, RNG stream, open leases — with no
/// field-by-field state serialisation at all.
///
/// On-disk layout ("<prefix>" is AppConfig::persistence_path):
///  * <prefix>.snapshot — the compacted event history. Replaced only by
///    atomic rename, so it is always whole; a parse error here is data
///    corruption, not a crash artefact, and recovery refuses it.
///  * <prefix>.log — events appended since the last compaction. A crash can
///    tear or lose its tail; recovery keeps the longest well-formed,
///    strictly seq-ascending prefix and drops the rest (those events never
///    happened, exactly like a redo log). Events with seq numbers already
///    covered by the snapshot are skipped, so a crash between the
///    compaction rename and the log truncation double-counts nothing.
///
/// Construction loads whatever survived and immediately compacts it, so a
/// torn tail never receives further appends.
///
/// Threading contract: engine-thread-only, like the Database — appends
/// happen between kernel dispatches on the thread driving the engine; pool
/// workers never touch the journal.
class LifecycleJournal {
 public:
  struct Event {
    enum class Kind { kAssign, kComplete, kTick };
    /// Strictly ascending, 0-based; the snapshot/log dedup key.
    uint64_t seq = 0;
    Kind kind = Kind::kAssign;
    WorkerId worker = 0;
    /// Virtual-clock advance (kTick only).
    uint64_t ticks = 0;
    /// The assigned questions (kAssign only).
    std::vector<QuestionIndex> questions;
    /// The answered labels (kComplete only).
    std::vector<LabelIndex> labels;
  };

  /// Loads surviving events from "<prefix>.snapshot" / "<prefix>.log"
  /// (tolerating a torn log tail) and compacts them. Aborts on a corrupt
  /// snapshot — that file is written atomically, so damage there is not a
  /// crash artefact.
  explicit LifecycleJournal(std::string path_prefix);

  /// Wires the journal's counters (journal.appends, journal.compactions,
  /// failpoint.triggered) into `registry`. nullptr detaches.
  void AttachTelemetry(util::MetricRegistry* registry);

  /// Durably appends one lifecycle event. A non-OK Status means the record
  /// did not verifiably reach the log file (open or write failure): the
  /// caller must not report the event as durable — an append that "succeeds"
  /// without reaching disk is exactly the silent recovery divergence the
  /// journal exists to prevent. The in-memory history still advances, so a
  /// caller that treats the failure as fatal crashes consistent.
  QASCA_NODISCARD
  util::Status AppendAssign(WorkerId worker,
                            const std::vector<QuestionIndex>& questions);
  QASCA_NODISCARD
  util::Status AppendComplete(WorkerId worker,
                              const std::vector<LabelIndex>& labels);
  QASCA_NODISCARD util::Status AppendTick(uint64_t ticks);

  /// Folds the log into the snapshot: writes the full history to a temp
  /// file, renames it over the snapshot, then truncates the log. A non-OK
  /// Status means the snapshot was not replaced (the old one is intact —
  /// the rename is atomic) or the log truncation failed; either way the
  /// on-disk state is still recoverable, just uncompacted.
  QASCA_NODISCARD util::Status Compact();

  /// The event history that survived on disk, seq-ascending. Recovery
  /// replays exactly this.
  const std::vector<Event>& events() const { return history_; }

 private:
  QASCA_NODISCARD util::Status Append(Event event);

  std::string snapshot_path() const { return path_prefix_ + ".snapshot"; }
  std::string log_path() const { return path_prefix_ + ".log"; }

  std::string path_prefix_;
  /// In-memory mirror of the on-disk history; source of truth for Compact.
  std::vector<Event> history_;
  uint64_t next_seq_ = 0;
  util::Counter* appends_ = nullptr;
  util::Counter* compactions_ = nullptr;
  util::Counter* failpoints_triggered_ = nullptr;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_JOURNAL_H_
