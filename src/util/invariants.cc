#include "util/invariants.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace qasca::invariants {
namespace {

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

util::Status CheckDistributionRow(std::span<const double> row,
                                  double tolerance) {
  if (row.empty()) {
    return util::Status::Internal("distribution row is empty");
  }
  double total = 0.0;
  for (size_t j = 0; j < row.size(); ++j) {
    double p = row[j];
    if (!std::isfinite(p)) {
      return util::Status::Internal("entry " + std::to_string(j) +
                                    " is not finite: " + FormatDouble(p));
    }
    if (p < -tolerance || p > 1.0 + tolerance) {
      return util::Status::Internal("entry " + std::to_string(j) +
                                    " outside [0,1]: " + FormatDouble(p));
    }
    total += p;
  }
  if (std::fabs(total - 1.0) > tolerance) {
    return util::Status::Internal("row sums to " + FormatDouble(total) +
                                  ", expected 1");
  }
  return util::Status::Ok();
}

util::Status CheckConfusionMatrix(std::span<const double> matrix,
                                  int num_labels, double tolerance) {
  if (num_labels <= 0) {
    return util::Status::Internal("num_labels must be positive");
  }
  if (matrix.size() != static_cast<size_t>(num_labels) * num_labels) {
    return util::Status::Internal(
        "confusion matrix has " + std::to_string(matrix.size()) +
        " entries, expected " + std::to_string(num_labels * num_labels));
  }
  for (int j = 0; j < num_labels; ++j) {
    util::Status status = CheckDistributionRow(
        matrix.subspan(static_cast<size_t>(j) * num_labels,
                       static_cast<size_t>(num_labels)),
        tolerance);
    if (!status.ok()) {
      return util::Status::Internal("true-label row " + std::to_string(j) +
                                    ": " + status.message());
    }
  }
  return util::Status::Ok();
}

util::Status CheckCandidateSet(std::span<const int> candidates,
                               int num_questions) {
  // Single pass with a seen-bitmap: O(num_questions + candidates.size())
  // and no sort, so the always-on boundary call sites stay cheap.
  std::vector<unsigned char> seen(static_cast<size_t>(
      num_questions > 0 ? num_questions : 0));
  for (int id : candidates) {
    if (id < 0 || id >= num_questions) {
      return util::Status::Internal("question id " + std::to_string(id) +
                                    " outside [0, " +
                                    std::to_string(num_questions) + ")");
    }
    if (seen[static_cast<size_t>(id)]) {
      return util::Status::Internal("duplicate question id " +
                                    std::to_string(id));
    }
    seen[static_cast<size_t>(id)] = 1;
  }
  return util::Status::Ok();
}

util::Status CheckAssignment(std::span<const int> selected, int k,
                             int num_questions) {
  if (static_cast<int>(selected.size()) != k) {
    return util::Status::Internal(
        "assignment has " + std::to_string(selected.size()) +
        " questions, expected exactly k = " + std::to_string(k));
  }
  return CheckCandidateSet(selected, num_questions);
}

util::Status CheckFractionalDenominator(double denominator) {
  if (!std::isfinite(denominator) || denominator <= 0.0) {
    return util::Status::Internal(
        "0-1 FP denominator must stay strictly positive over the feasible "
        "region, got " +
        FormatDouble(denominator));
  }
  return util::Status::Ok();
}

util::Status CheckLambdaMonotone(double previous, double updated,
                                 double tolerance) {
  if (!std::isfinite(updated)) {
    return util::Status::Internal("Dinkelbach lambda is not finite: " +
                                  FormatDouble(updated));
  }
  if (updated < previous - tolerance) {
    return util::Status::Internal(
        "Dinkelbach lambda decreased: " + FormatDouble(previous) + " -> " +
        FormatDouble(updated) +
        " (lambda_init must be a lower bound on the optimum)");
  }
  return util::Status::Ok();
}

util::Status CheckLogLikelihoodMonotone(double previous, double updated,
                                        double tolerance) {
  if (!std::isfinite(updated)) {
    return util::Status::Internal("log-likelihood is not finite: " +
                                  FormatDouble(updated));
  }
  if (updated < previous - tolerance) {
    return util::Status::Internal(
        "EM log-likelihood decreased: " + FormatDouble(previous) + " -> " +
        FormatDouble(updated));
  }
  return util::Status::Ok();
}

}  // namespace qasca::invariants
