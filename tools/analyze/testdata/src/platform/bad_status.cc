// status-discard fixture: a call to a Status/StatusOr-returning function
// whose result is dropped on the floor must fire; consumed results, the
// explicit (void) discard and the allow'd line must not. The Status types
// are mocked locally — the pass indexes declarations by name, it does not
// resolve includes.

namespace util {
class Status;
template <typename T>
class StatusOr;
}  // namespace util

util::Status PersistLease(int hit_id);
util::StatusOr<int> LoadLeaseCount();

void DropsTheStatus() {
  PersistLease(7);  // analyze:expect(status-discard)
}

int UsesTheValue() {
  auto count = LoadLeaseCount();  // consumed: assigned, then inspected
  return &count != nullptr ? 1 : 0;
}

void ExplicitDiscard() {
  // Lease persistence is advisory here; recovery replays the journal.
  (void)PersistLease(9);
}

void AllowedDiscard() {
  PersistLease(11);  // analyze:allow(status-discard)
}
