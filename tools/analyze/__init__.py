"""QASCA's unified static analyzer (ISSUE 4; DESIGN.md "Static analysis").

A small pass framework over the source tree: each pass in
tools/analyze/passes/ walks the files it cares about and emits Findings
with a severity and a repo-relative location. The driver
(tools/analyze.py) runs every pass, honours `// analyze:allow(<pass>)`
suppression comments, and reports either human-readable text or a
machine-readable JSON document (--json). Self-test fixtures live in
tools/analyze/testdata/, a miniature source tree whose known-bad snippets
carry `// analyze:expect(<pass>)` markers (--self-test checks the passes
fire exactly there and nowhere else).
"""
