#ifndef QASCA_CORE_METRICS_COST_ACCURACY_H_
#define QASCA_CORE_METRICS_COST_ACCURACY_H_

#include <string>
#include <vector>

#include "core/metrics/metric.h"

namespace qasca {

/// Cost-sensitive accuracy — an instance of the paper's future-work item
/// "more evaluation metrics" (Section 8(3)) that stays within the
/// decomposable family, so the whole Accuracy* machinery (Theorem 1 and the
/// Top-K Benefit assignment of Section 4.1) carries over.
///
/// A requester supplies an l-by-l cost matrix C where C[t][r] >= 0 is the
/// penalty for returning label r when the truth is t (C[t][t] = 0). The
/// metric value is 1 minus the (normalised) mean expected cost:
///
///   CostAccuracy*(Q, R) = 1 - (1/n) * sum_i sum_t Q_{i,t} * C[t][r_i] / Cmax
///
/// where Cmax = max_t,r C[t][r] normalises into [0, 1]. With the 0/1 cost
/// matrix this reduces exactly to Accuracy* (Eq. 3).
///
/// Because the objective decomposes per question, the optimal result picks,
/// per row, the label with the smallest expected cost, and the benefit of
/// assigning a question to a worker is the expected-cost reduction —
/// directly usable by AssignTopKBenefit via DecomposableQuality().
class CostAccuracyMetric final : public EvaluationMetric {
 public:
  /// `costs` is row-major l*l, costs[t * l + r] >= 0 with zero diagonal.
  CostAccuracyMetric(std::vector<double> costs, int num_labels);

  /// The classical 0/1 cost matrix (reduces to plain Accuracy).
  static CostAccuracyMetric ZeroOne(int num_labels);

  int num_labels() const { return num_labels_; }
  double CostOf(LabelIndex truth, LabelIndex returned) const;

  std::string name() const override { return "CostAccuracy"; }

  /// 1 - mean normalised cost of R against known truth.
  double EvaluateAgainstTruth(const GroundTruthVector& truth,
                              const ResultVector& result) const override;

  /// 1 - mean normalised *expected* cost under Q.
  double Evaluate(const DistributionMatrix& q,
                  const ResultVector& result) const override;

  /// Per-question expected-cost minimiser (the Theorem 1 analogue).
  ResultVector OptimalResult(const DistributionMatrix& q) const override;

  double Quality(const DistributionMatrix& q) const override;

  /// The per-row quality max_r (1 - expected normalised cost of r) — the
  /// decomposable building block: Quality(Q) is its mean, and the benefit
  /// of assigning question i to a worker is RowQuality(Qw_i) -
  /// RowQuality(Qc_i).
  double RowQuality(std::span<const double> row) const;

 private:
  std::vector<double> costs_;
  int num_labels_;
  double max_cost_;
};

}  // namespace qasca

#endif  // QASCA_CORE_METRICS_COST_ACCURACY_H_
