#ifndef QASCA_MODEL_POSTERIOR_H_
#define QASCA_MODEL_POSTERIOR_H_

#include <functional>
#include <vector>

#include "core/distribution_matrix.h"
#include "core/types.h"
#include "model/worker_model.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace qasca {

/// Resolves a worker id to that worker's current model. Supplied by the
/// caller (platform database, EM output, or simulation oracle).
using WorkerModelLookup = std::function<const WorkerModel&(WorkerId)>;

/// Posterior distribution of one question's true label given its answers
/// (Eq. 16): weight_j = p_j * prod_{(w,j') in answers} P(a_w = j' | t = j),
/// normalised. With no answers this returns the prior.
///
/// If `marginal` is non-null it receives the normalisation constant
/// sum_j weight_j, i.e. the marginal likelihood P(D_i) of this question's
/// answers under the prior and worker models. EM uses it to track the
/// observed-data log-likelihood (and to assert its monotone ascent). A
/// non-positive marginal means the answers are inconsistent with degenerate
/// 0/1 models; the returned row falls back to uniform in that case.
std::vector<double> ComputePosteriorRow(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const WorkerModelLookup& models,
                                        double* marginal = nullptr);

/// The current distribution matrix Qc over all questions (Section 5.1).
DistributionMatrix ComputeCurrentDistribution(const AnswerSet& answers,
                                              const std::vector<double>& prior,
                                              const WorkerModelLookup& models);

/// How the estimated row Qw_i is derived from the predicted answer
/// distribution (Section 5.3).
enum class QwMode {
  /// The paper's method: sample the label the worker would answer by
  /// weighted random sampling over P(a = j' | D_i) (Eq. 17), then condition
  /// on it (Eq. 18).
  kSampled,
  /// Deterministic ablation: average the conditioned posterior over the
  /// whole predicted answer distribution instead of sampling one label.
  kExpected,
};

/// Estimates row i of Qw for a worker with model `model`, given the current
/// row Qc_i and the uniform variate `u01` in [0, 1) that drives the kSampled
/// weighted draw (ignored in kExpected mode). This is the deterministic core
/// of Qw estimation: given identical inputs it returns an identical row on
/// any thread, which is what lets EstimateWorkerDistribution parallelise
/// without perturbing HIT selection.
std::vector<double> EstimateWorkerRowAt(std::span<const double> current_row,
                                        const WorkerModel& model, QwMode mode,
                                        double u01);

/// Estimates row i of Qw for a worker with model `model`, given the current
/// row Qc_i. `rng` is used only in kSampled mode (exactly one draw).
std::vector<double> EstimateWorkerRow(std::span<const double> current_row,
                                      const WorkerModel& model, QwMode mode,
                                      util::Rng& rng);

/// The estimated distribution matrix Qw for a worker (Section 5.3). Only
/// rows in `candidates` are estimated; all other rows are copied from
/// `current` (they are never read by the assignment algorithms, but copying
/// keeps the matrix fully normalised).
///
/// Randomness contract: in kSampled mode exactly one 64-bit base draw is
/// taken from `rng` per call, and each candidate row samples from its own
/// SplitMix64 stream seeded by (base, question index). Row values therefore
/// depend only on the base draw and the question — not on candidate order,
/// pool size, or scheduling — so runs with any `pool` (including none)
/// select byte-identical HITs.
///
/// `telemetry` (optional) counts the weighted draws taken in kSampled mode
/// (tnames::kQwSamplesDrawn); it never affects the sampled rows.
DistributionMatrix EstimateWorkerDistribution(
    const DistributionMatrix& current, const WorkerModel& model,
    const std::vector<QuestionIndex>& candidates, QwMode mode, util::Rng& rng,
    util::ThreadPool* pool = nullptr,
    util::MetricRegistry* telemetry = nullptr);

}  // namespace qasca

#endif  // QASCA_MODEL_POSTERIOR_H_
