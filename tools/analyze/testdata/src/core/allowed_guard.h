#ifndef CORE_ALLOWED_GUARD_H  // analyze:allow(include-hygiene)
#define CORE_ALLOWED_GUARD_H

// include-hygiene suppression fixture: same non-canonical guard as
// bad_guard.h, silenced on the finding line.

#endif  // CORE_ALLOWED_GUARD_H
