#ifndef QASCA_PLATFORM_APP_CONFIG_H_
#define QASCA_PLATFORM_APP_CONFIG_H_

#include <string>

#include "core/metrics/metric.h"
#include "model/em.h"
#include "model/posterior.h"
#include "util/status.h"

namespace qasca {

/// Everything a requester supplies when deploying an application — the
/// contents of the paper's Configuration File plus question-set shape
/// (Appendix A): n questions with l labels, k questions per HIT, payment b
/// per HIT, total budget B, and the evaluation metric.
struct AppConfig {
  std::string name = "app";
  /// Number of questions n.
  int num_questions = 0;
  /// Number of labels l (>= 2).
  int num_labels = 2;
  /// Questions per HIT (the paper's k).
  int questions_per_hit = 4;
  /// Payment per HIT in dollars (the paper's b).
  double pay_per_hit = 0.02;
  /// Total invested budget in dollars (the paper's B). The engine stops
  /// issuing HITs once B/b HITs have been assigned.
  double budget = 1.0;
  /// The application-driven evaluation metric.
  MetricSpec metric = MetricSpec::Accuracy();
  /// Worker-model parameterisation fitted by EM on HIT completion.
  WorkerModel::Kind worker_kind = WorkerModel::Kind::kConfusionMatrix;
  /// How Qw rows are derived (Section 5.3; the paper samples).
  QwMode qw_mode = QwMode::kSampled;
  /// EM settings used on each HIT-completion event.
  EmOptions em;
  /// Warm-start each EM refit from the previous fit's worker models.
  /// Cheaper per completion, but OFF by default: in the sparse early phase
  /// (a handful of answers per worker) a warm start can lock in a bad early
  /// local optimum that the cold vote bootstrap would wash out, noticeably
  /// hurting end quality. Enable only when seeding from a mature fit.
  bool warm_start_em = false;

  /// Total number of HITs the budget affords: m = B / b (rounded to the
  /// nearest whole HIT to absorb floating-point currency arithmetic).
  int TotalHits() const {
    return pay_per_hit > 0 ? static_cast<int>(budget / pay_per_hit + 0.5) : 0;
  }

  /// Checks the configuration for structural errors.
  util::Status Validate() const;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_APP_CONFIG_H_
