#!/usr/bin/env bash
# Builds the release preset and writes the bench snapshot for this PR:
# the serving-layer benchmark (bench/bench_serving.cc) runs the multi-app
# AppManager over an apps × worker-threads grid and reports per-cell event
# throughput + per-app sliding-window p95 assignment latency (SloTracker)
# to BENCH_PR10.json at the repo root (schema v5, documented in README.md).
#
# --hotpath instead reruns the PR 7 hot-path scaling benchmark
# (bench/bench_hotpath_scaling.cc, schema v4: thread scaling, EM refresh,
# fault tolerance, kernel sections) — kept runnable so older baselines can
# be regenerated for apples-to-apples diffs.
#
# Usage: tools/run_bench.sh [--out FILE] [--hotpath]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

OUT=""
BENCH=serving
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out)
      OUT="$2"
      shift 2
      ;;
    --hotpath)
      BENCH=hotpath
      shift
      ;;
    *)
      echo "usage: tools/run_bench.sh [--out FILE] [--hotpath]" >&2
      exit 2
      ;;
  esac
done

JOBS="${JOBS:-$(nproc)}"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

cmake --preset release >/dev/null

if [[ "${BENCH}" == hotpath ]]; then
  OUT="${OUT:-${REPO_ROOT}/BENCH_PR7.json}"
  cmake --build --preset release -j "${JOBS}" --target bench_hotpath_scaling
  ./build-release/bench/bench_hotpath_scaling \
    --commit "${COMMIT}" --date "${DATE}" --out "${OUT}"
else
  OUT="${OUT:-${REPO_ROOT}/BENCH_PR10.json}"
  cmake --build --preset release -j "${JOBS}" --target bench_serving
  ./build-release/bench/bench_serving \
    --commit "${COMMIT}" --date "${DATE}" --out "${OUT}"

  python3 - "${OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["serving"]
det = report["determinism"]["identical_decisions_across_thread_counts"]
print(f"BENCH: host threads={report['machine']['hardware_threads']}, "
      f"decisions identical across thread counts: {det}")
for r in rows:
    print(f"  serving apps={r['apps']} worker-threads={r['worker_threads']}: "
          f"{r['events_per_second']:.0f} events/s, "
          f"p95 assignment {r['p95_assignment_seconds']*1e3:.3f} ms "
          f"(SLO {'met' if r['slo_met'] else 'MISSED'})")
unmet = [r for r in rows if not r["slo_met"]]
if unmet:
    print(f"BENCH: {len(unmet)} grid cell(s) missed the p95 SLO target")
EOF
  echo "wrote ${OUT}"
  exit 0
fi

python3 - "${OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["thread_scaling"]
best = max(r["speedup_vs_1_thread"] for r in rows if r["n"] == 10000)
refresh = max(r["speedup_vs_interval_1"] for r in report["em_refresh"])
det = report["determinism"]["identical_decisions_across_thread_counts"]
print(f"BENCH: host threads={report['machine']['hardware_threads']}, "
      f"best thread speedup @ n=10k: {best:.2f}x, "
      f"incremental-refresh speedup: {refresh:.2f}x, "
      f"decisions identical across thread counts: {det}")
for stage in report["stage_breakdown"]:
    print(f"  stage breakdown [{stage['metric']}] n={stage['n']}: "
          f"em_refit={stage['em_refit_ms']:.1f}ms "
          f"qw_estimate={stage['qw_estimate_ms']:.1f}ms "
          f"topk_scan={stage['topk_scan_ms']:.1f}ms "
          f"dinkelbach_iters={stage['dinkelbach_iters']}")
for ft in report.get("fault_tolerance", []):
    print(f"  fault tolerance n={ft['n']}: "
          f"{ft['completions_per_second']:.1f} completions/s at "
          f"{ft['abandon_rate']:.0%} abandonment "
          f"({ft['throughput_vs_fault_free']:.2f}x of fault-free, "
          f"{ft['leases_expired']} leases expired, "
          f"{ft['questions_requeued']} questions requeued)")
kernels = report.get("kernels")
if kernels:
    print(f"  kernels: isa={kernels['isa']} "
          f"cache_hit_rate={kernels['cache_hit_rate']:.2f} "
          f"overlay_rows={kernels['overlay_rows']} "
          f"closed_form_rows={kernels['closed_form_rows']}")
for ko in report.get("kernel_optimization", []):
    print(f"  kernel path n={ko['n']}: p50 assignment "
          f"{ko['legacy_p50_assignment_seconds']*1e3:.2f}ms legacy -> "
          f"{ko['optimized_p50_assignment_seconds']*1e3:.2f}ms optimized "
          f"({ko['p50_speedup']:.2f}x), qw_estimate "
          f"{ko['legacy_qw_estimate_ms']:.0f}ms -> "
          f"{ko['optimized_qw_estimate_ms']:.0f}ms, topk_scan "
          f"{ko['legacy_topk_scan_ms']:.0f}ms -> "
          f"{ko['optimized_topk_scan_ms']:.0f}ms, identical decisions: "
          f"{ko['identical_decisions']}")
EOF

echo "wrote ${OUT}"
