// Reproduces Figure 3(a)-(c): how closely F-score*(Q, R, alpha) (Eq. 9)
// approximates E[F-score(T, R, alpha)] (Eq. 8) on randomly generated
// distribution matrices.
//
// The paper averages over 1000 trials per point; we do the same at small n
// and scale the trial count down as the exact O(n^2) computation grows.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/metrics/fscore.h"
#include "util/stats.h"
#include "util/table.h"

namespace qasca {
namespace {

double ApproximationError(int n, double alpha, util::Rng& rng) {
  DistributionMatrix q = bench::RandomBinaryMatrix(n, rng);
  ResultVector r = bench::RandomBinaryResult(n, rng);
  return std::fabs(FScoreStar(q, r, alpha) - ExactExpectedFScore(q, r, alpha));
}

void Figure3a() {
  util::PrintSection(
      "Figure 3(a) — approximation error vs alpha, n in {20,30,40,50} "
      "(1000 trials/point)");
  util::Rng rng(301);
  const int kTrials = 1000;
  util::Table table({"alpha", "n=20", "n=30", "n=40", "n=50"});
  for (int a = 0; a <= 10; ++a) {
    double alpha = a / 10.0;
    table.AddRow().Cell(alpha, 1);
    for (int n : {20, 30, 40, 50}) {
      util::RunningStats stats;
      for (int t = 0; t < kTrials; ++t) {
        stats.Add(ApproximationError(n, alpha, rng));
      }
      table.Percent(stats.mean(), 3);
    }
  }
  table.Print();
  std::printf(
      "Expected shape: error peaks near alpha=0.5, shrinks with n, and is\n"
      "exactly 0 at alpha=1 (Precision's denominator is deterministic) but\n"
      "not at alpha=0 (Recall's is random) — the asymmetry the paper notes.\n");
}

void Figure3b() {
  util::PrintSection(
      "Figure 3(b) — error frequency over 1000 trials, n=50, alpha=0.5");
  util::Rng rng(302);
  util::RunningStats stats;
  util::Histogram histogram(0.0, 0.005, 10);
  for (int t = 0; t < 1000; ++t) {
    double error = ApproximationError(50, 0.5, rng);
    stats.Add(error);
    histogram.Add(error);
  }
  util::Table table({"error bucket", "frequency"});
  for (int b = 0; b < histogram.buckets(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%.3f%%, %.3f%%)",
                  histogram.BucketLow(b) * 100, histogram.BucketHigh(b) * 100);
    table.AddRow().Cell(std::string(label)).Cell(histogram.count(b));
  }
  table.Print();
  std::printf("mean error = %.3f%%  max error = %.3f%% (paper: centred ~0.19%%,"
              " range up to ~0.31%%)\n",
              stats.mean() * 100, stats.max() * 100);
}

void Figure3c() {
  util::PrintSection(
      "Figure 3(c) — approximation error vs n, alpha=0.5 (error = O(1/n))");
  util::Rng rng(303);
  util::Table table({"n", "trials", "mean error"});
  for (int n : {10, 20, 50, 100, 200, 400, 700, 1000}) {
    int trials = n <= 100 ? 1000 : (n <= 400 ? 300 : 100);
    util::RunningStats stats;
    for (int t = 0; t < trials; ++t) {
      stats.Add(ApproximationError(n, 0.5, rng));
    }
    table.AddRow().Cell(int64_t{n}).Cell(int64_t{trials}).Percent(stats.mean(),
                                                                  4);
  }
  table.Print();
  std::printf("Expected shape: monotone decrease; <= 0.01%% by n=1000.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::Figure3a();
  qasca::Figure3b();
  qasca::Figure3c();
  return 0;
}
