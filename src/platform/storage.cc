#include "platform/storage.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace qasca {
namespace {

constexpr char kHeader[] = "question,worker,label";

// Parses one non-negative integer field ending at `delimiter`; advances
// `cursor` past the delimiter. Returns -1 on malformed input.
long ParseField(const std::string& text, size_t& cursor, char delimiter) {
  size_t start = cursor;
  long value = 0;
  bool any = false;
  while (cursor < text.size() && text[cursor] >= '0' && text[cursor] <= '9') {
    value = value * 10 + (text[cursor] - '0');
    if (value > 1'000'000'000) return -1;
    ++cursor;
    any = true;
  }
  if (!any || start == cursor) return -1;
  if (delimiter == '\0') return value;  // caller checks the terminator
  if (cursor >= text.size() || text[cursor] != delimiter) return -1;
  ++cursor;
  return value;
}

}  // namespace

std::string AnswerSetToCsv(const AnswerSet& answers) {
  std::string out = kHeader;
  out += '\n';
  char line[64];
  for (size_t i = 0; i < answers.size(); ++i) {
    for (const Answer& answer : answers[i]) {
      std::snprintf(line, sizeof(line), "%zu,%d,%d\n", i, answer.worker,
                    answer.label);
      out += line;
    }
  }
  return out;
}

util::StatusOr<AnswerSet> AnswerSetFromCsv(const std::string& csv,
                                           int num_questions,
                                           int num_labels) {
  if (num_questions <= 0 || num_labels <= 0) {
    return util::Status::InvalidArgument("invalid pool shape");
  }
  size_t cursor = 0;
  // Header line.
  size_t header_end = csv.find('\n');
  if (header_end == std::string::npos ||
      csv.compare(0, header_end, kHeader) != 0) {
    return util::Status::InvalidArgument(
        "expected header 'question,worker,label'");
  }
  cursor = header_end + 1;

  AnswerSet answers(num_questions);
  int line_number = 1;
  while (cursor < csv.size()) {
    ++line_number;
    if (csv[cursor] == '\n') {  // tolerate blank lines
      ++cursor;
      continue;
    }
    long question = ParseField(csv, cursor, ',');
    long worker = ParseField(csv, cursor, ',');
    long label = ParseField(csv, cursor, '\0');
    bool line_ok = question >= 0 && worker >= 0 && label >= 0 &&
                   (cursor == csv.size() || csv[cursor] == '\n');
    if (!line_ok) {
      return util::Status::InvalidArgument(
          "malformed row at line " + std::to_string(line_number));
    }
    if (cursor < csv.size()) ++cursor;  // consume '\n'
    if (question >= num_questions) {
      return util::Status::OutOfRange(
          "question index out of range at line " +
          std::to_string(line_number));
    }
    if (label >= num_labels) {
      return util::Status::OutOfRange("label out of range at line " +
                                      std::to_string(line_number));
    }
    answers[question].push_back(
        Answer{static_cast<WorkerId>(worker), static_cast<LabelIndex>(label)});
  }
  return answers;
}

util::Status SaveAnswerSet(const std::string& path, const AnswerSet& answers) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::Status::Internal("cannot open " + path + ": " +
                                  std::strerror(errno));
  }
  std::string csv = AnswerSetToCsv(answers);
  size_t written = std::fwrite(csv.data(), 1, csv.size(), file);
  int close_result = std::fclose(file);
  if (written != csv.size() || close_result != 0) {
    return util::Status::Internal("short write to " + path);
  }
  return util::Status::Ok();
}

util::StatusOr<AnswerSet> LoadAnswerSet(const std::string& path,
                                        int num_questions, int num_labels) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return util::Status::NotFound("cannot open " + path + ": " +
                                  std::strerror(errno));
  }
  std::string csv;
  char buffer[4096];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    csv.append(buffer, read);
  }
  std::fclose(file);
  return AnswerSetFromCsv(csv, num_questions, num_labels);
}

}  // namespace qasca
