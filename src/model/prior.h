#ifndef QASCA_MODEL_PRIOR_H_
#define QASCA_MODEL_PRIOR_H_

#include <vector>

#include "core/distribution_matrix.h"

namespace qasca {

/// The uniform prior p_j = 1/l — the paper's initial state.
std::vector<double> UniformPrior(int num_labels);

/// Prior estimated as the expected fraction of questions whose ground truth
/// is each label: p_j = (1/n) * sum_i Q_{i,j} (Section 5.1).
std::vector<double> EstimatePrior(const DistributionMatrix& posterior);

}  // namespace qasca

#endif  // QASCA_MODEL_PRIOR_H_
