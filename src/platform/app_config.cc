#include "platform/app_config.h"

#include <algorithm>

namespace qasca {

util::Status AppConfig::Validate() const {
  if (num_questions <= 0) {
    return util::Status::InvalidArgument("num_questions must be positive");
  }
  if (num_labels < 2) {
    return util::Status::InvalidArgument("num_labels must be at least 2");
  }
  if (questions_per_hit <= 0 || questions_per_hit > num_questions) {
    return util::Status::InvalidArgument(
        "questions_per_hit must be in [1, num_questions]");
  }
  if (pay_per_hit <= 0.0) {
    return util::Status::InvalidArgument("pay_per_hit must be positive");
  }
  if (budget < pay_per_hit) {
    return util::Status::InvalidArgument(
        "budget must afford at least one HIT");
  }
  if (num_threads < 1) {
    return util::Status::InvalidArgument("num_threads must be at least 1");
  }
  if (em_refresh_interval < 1) {
    return util::Status::InvalidArgument(
        "em_refresh_interval must be at least 1");
  }
  if (em_drift_tolerance <= 0.0) {
    return util::Status::InvalidArgument(
        "em_drift_tolerance must be positive");
  }
  if (flight_recorder_enabled && flight_recorder_capacity < 2) {
    return util::Status::InvalidArgument(
        "flight_recorder_capacity must hold at least one span (2 events)");
  }
  if (provenance_enabled && provenance_capacity < 1) {
    return util::Status::InvalidArgument(
        "provenance_capacity must be at least 1");
  }
  if (slo_p95_assign_ms < 0.0) {
    return util::Status::InvalidArgument(
        "slo_p95_assign_ms must be non-negative (0 disables)");
  }
  if (latency_window_samples < 1) {
    return util::Status::InvalidArgument(
        "latency_window_samples must be at least 1");
  }
  if (metric.kind == MetricSpec::Kind::kCostAccuracy) {
    size_t expected = static_cast<size_t>(num_labels) * num_labels;
    if (metric.costs.size() != expected) {
      return util::Status::InvalidArgument(
          "cost matrix must be num_labels x num_labels");
    }
    double max_cost = 0.0;
    for (int t = 0; t < num_labels; ++t) {
      if (metric.costs[static_cast<size_t>(t) * num_labels + t] != 0.0) {
        return util::Status::InvalidArgument(
            "cost matrix diagonal must be zero");
      }
      for (int r = 0; r < num_labels; ++r) {
        double c = metric.costs[static_cast<size_t>(t) * num_labels + r];
        if (c < 0.0) {
          return util::Status::InvalidArgument("costs must be non-negative");
        }
        max_cost = std::max(max_cost, c);
      }
    }
    if (max_cost <= 0.0) {
      return util::Status::InvalidArgument("cost matrix must not be zero");
    }
  }
  if (metric.kind == MetricSpec::Kind::kFScore) {
    if (metric.alpha <= 0.0 || metric.alpha >= 1.0) {
      return util::Status::InvalidArgument("F-score alpha must be in (0,1)");
    }
    if (metric.target_label < 0 || metric.target_label >= num_labels) {
      return util::Status::InvalidArgument("target label out of range");
    }
  }
  return util::Status::Ok();
}

}  // namespace qasca
