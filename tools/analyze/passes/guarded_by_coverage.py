"""Pass `guarded-by-coverage`: lock-owning classes annotate ALL their state.

The lock-annotations pass already demands that every util::Mutex member be
named by at least one QASCA annotation; this pass closes the remaining gap:
a class that owns a mutex (directly, or through a by-value member whose
type owns one — e.g. an array of per-shard cells) has declared itself
concurrent, so every one of its mutable members needs a stated contract.
A member passes if it is

  * QASCA_GUARDED_BY / QASCA_PT_GUARDED_BY annotated,
  * const / constexpr (immutable after construction),
  * std::atomic (its own synchronization),
  * itself a mutex / condition variable / once_flag,
  * of a mutex-owning type (internally synchronized), or
  * justified with `// analyze:allow(guarded-by-coverage)` (e.g. state
    confined to one thread by a documented protocol).

static members are skipped here; mutable statics are the global-state
pass's business.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceTree
from .concurrency import ClassIndex, _type_ids

_POINTER_MARKERS = ("*", "&")


class GuardedByCoveragePass:
    name = "guarded-by-coverage"
    description = ("every mutable member of a mutex-owning class must be "
                   "QASCA_GUARDED_BY-annotated, const, atomic, or "
                   "explicitly justified")
    severity = ERROR
    roots = ("src",)

    def run(self, tree: SourceTree) -> list[Finding]:
        index = ClassIndex(tree, roots=self.roots)
        owners = self._owning_closure(index)
        owner_components = {qual.rsplit("::", 1)[-1] for qual in owners}
        owner_components |= owners
        findings: list[Finding] = []
        for qual in sorted(owners):
            cls, rel = index.classes[qual]
            for member in cls.members:
                if member.guarded or member.const or member.static or \
                        member.atomic or member.mutex or member.condvar:
                    continue
                if _type_ids(member.type_text) & owner_components:
                    continue  # internally synchronized member type
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=rel, line=member.line,
                    message=(f"{qual}::{member.name} is mutable state in a "
                             "mutex-owning class without a QASCA_GUARDED_BY "
                             "contract — annotate which lock protects it, "
                             "make it const, or justify with "
                             "analyze:allow(guarded-by-coverage)")))
        return findings

    @staticmethod
    def _owning_closure(index: ClassIndex) -> set[str]:
        """Classes owning a mutex directly, or through a by-value member
        whose type is a mutex-owning class NESTED in them (an array of
        per-shard cells is the outer class's own locking design). A foreign
        mutex-owning type held by value (a ThreadPool, a registry) is an
        internally-synchronized component and does not make the holder
        concurrent."""
        owners = set(index.mutex_members)
        changed = True
        while changed:
            changed = False
            for qual, (cls, _rel) in index.classes.items():
                if qual in owners:
                    continue
                nested_owners = {
                    inner.rsplit("::", 1)[-1] for inner in owners
                    if inner.startswith(f"{qual}::")}
                if not nested_owners:
                    continue
                for member in cls.members:
                    if any(mark in member.type_text
                           for mark in _POINTER_MARKERS):
                        continue
                    if _type_ids(member.type_text) & nested_owners:
                        owners.add(qual)
                        changed = True
                        break
        return owners
