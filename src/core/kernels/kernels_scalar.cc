// Scalar kernel table: the reference implementation of the fold schedules
// every wider ISA must reproduce bit-for-bit (see kernels.h). Compiled with
// -ffp-contract=off like the SIMD tables, so the compiler cannot fuse the
// multiply-add sequences here either.

#include "core/kernels/kernel_table.h"

namespace qasca::kernels {
namespace {

// The canonical 4-lane-accumulator schedule (kernels.h): lane j collects
// x[4t + j], lanes merge as ((acc0 + acc1) + acc2) + acc3, tail
// left-to-right. For n <= 4 the lane loop never runs (or runs once with
// every lane summing a single term), so the result is exactly the
// left-to-right sum util::DeterministicSum would produce.
double RowSumImpl(const double* x, int n) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i + 0];
    acc1 += x[i + 1];
    acc2 += x[i + 2];
    acc3 += x[i + 3];
  }
  double result = ((acc0 + acc1) + acc2) + acc3;
  for (; i < n; ++i) result += x[i];
  return result;
}

double RowMaxImpl(const double* x, int n) {
  double best = x[0];
  for (int i = 1; i < n; ++i) best = best < x[i] ? x[i] : best;
  return best;
}

void MulRowImpl(double* out, const double* a, const double* b, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void MulRowInPlaceImpl(double* inout, const double* b, int n) {
  for (int i = 0; i < n; ++i) inout[i] *= b[i];
}

void DivRowImpl(double* inout, int n, double divisor) {
  for (int i = 0; i < n; ++i) inout[i] /= divisor;
}

void AxpyRowImpl(double* acc, double scale, const double* x, int n) {
  for (int i = 0; i < n; ++i) acc[i] += scale * x[i];
}

void WpAnswerDistributionImpl(const double* row, int n, double m, double off,
                              double* out) {
  for (int i = 0; i < n; ++i) out[i] = m * row[i] + off * (1.0 - row[i]);
}

// Loop order is truth-major so each out[answered] accumulates in ascending
// truth order — the order the pre-kernel code used — while the inner loop
// walks cm's row-major [truth][answered] layout contiguously.
void CmAnswerDistributionImpl(const double* cm, const double* row, int l,
                              double* out) {
  for (int a = 0; a < l; ++a) out[a] = 0.0;
  for (int t = 0; t < l; ++t) {
    const double* cm_row = cm + static_cast<long>(t) * l;
    const double rt = row[t];
    for (int a = 0; a < l; ++a) out[a] += cm_row[a] * rt;
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      RowSumImpl,        RowMaxImpl,
      MulRowImpl,        MulRowInPlaceImpl,
      DivRowImpl,        AxpyRowImpl,
      WpAnswerDistributionImpl, CmAnswerDistributionImpl,
  };
  return table;
}

}  // namespace qasca::kernels
