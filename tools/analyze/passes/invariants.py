"""Pass `invariants`: distribution-row mutations must be validator-aware.

Port of the first rule of the retired tools/lint_invariants.py (ISSUE 1):
any translation unit under src/core/ or src/model/ that constructs or
mutates probability-distribution rows — SetRow / SetRowNormalized calls, or
manual normalisation loops — must reference the invariant subsystem:
include util/invariants.h, call an invariants::Check* validator, or use
QASCA_DCHECK_OK / QASCA_CHECK_OK. Every producer of probability mass stays
wired to a mechanical proof of row-stochasticity.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceFile, SourceTree

MUTATION_PATTERNS = [
    re.compile(r"\bSetRowNormalized\s*\("),
    re.compile(r"\bSetRow\s*\("),
    re.compile(r"\bNormalizeInPlace\s*\("),
]

VALIDATOR_PATTERNS = [
    re.compile(r'#include\s+"util/invariants\.h"'),
    re.compile(r"\binvariants::Check\w+\s*\("),
    re.compile(r"\bQASCA_DCHECK_OK\s*\("),
    re.compile(r"\bQASCA_CHECK_OK\s*\("),
]

# distribution_matrix.h only *declares* the mutators (definitions live in
# the .cc, which is covered).
ALLOWLIST = {"src/core/distribution_matrix.h"}


class InvariantsPass:
    name = "invariants"
    description = ("distribution-row mutations in src/core and src/model "
                   "must reference util/invariants.h validators")
    severity = ERROR
    roots = ("src/core", "src/model")

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            if source.rel in ALLOWLIST:
                continue
            findings.extend(self._check(source))
        return findings

    def _check(self, source: SourceFile) -> list[Finding]:
        # The validator reference may sit anywhere in the file (an include,
        # a DCHECK at another call site), so the rule is file-scoped; the
        # finding is anchored at the first mutation for suppressions.
        if any(p.search(source.code) for p in VALIDATOR_PATTERNS):
            return []
        findings = []
        for pattern in MUTATION_PATTERNS:
            match = pattern.search(source.code)
            if match:
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=source.line_of(match.start()),
                    message=(f"mutates distribution rows "
                             f"({match.group(0).strip()}...) without "
                             "referencing util/invariants.h or a Check* "
                             "validator")))
                break  # one finding per file, like the original lint
        return findings
