#ifndef QASCA_CORE_DISTRIBUTION_MATRIX_H_
#define QASCA_CORE_DISTRIBUTION_MATRIX_H_

#include <span>
#include <vector>

#include "core/types.h"
#include "util/logging.h"

namespace qasca {

/// An n-by-l matrix whose i-th row is the probability distribution of
/// question i's true label (Section 2.1). Instances of this type serve as
/// the paper's current distribution matrix Qc, estimated distribution matrix
/// Qw, and assignment distribution matrix QX.
///
/// Rows are stored densely in row-major order. Rows of a Qw matrix that are
/// outside the worker's candidate set S^w are left untouched by callers and
/// must not be read; this class does not track validity itself (the
/// assignment code carries the candidate set separately).
class DistributionMatrix {
 public:
  /// Creates an n-by-l matrix with every row set to the uniform
  /// distribution — the paper's initial state for Qc (Section 5.1).
  DistributionMatrix(int num_questions, int num_labels);

  int num_questions() const noexcept { return num_questions_; }
  int num_labels() const noexcept { return num_labels_; }

  /// Probability that question i's true label is `label` (cell Q_{i,j}).
  double At(QuestionIndex i, LabelIndex label) const noexcept {
    QASCA_CHECK_GE(i, 0);
    QASCA_CHECK_LT(i, num_questions_);
    QASCA_CHECK_GE(label, 0);
    QASCA_CHECK_LT(label, num_labels_);
    return cells_[static_cast<size_t>(i) * num_labels_ + label];
  }

  /// Read-only view of row i (question i's label distribution Q_i).
  std::span<const double> Row(QuestionIndex i) const noexcept {
    QASCA_CHECK_GE(i, 0);
    QASCA_CHECK_LT(i, num_questions_);
    return {cells_.data() + static_cast<size_t>(i) * num_labels_,
            static_cast<size_t>(num_labels_)};
  }

  /// Overwrites row i with `distribution`, which must have l entries.
  /// Callers are responsible for passing a normalized distribution; use
  /// SetRowNormalized for raw proportional weights.
  void SetRow(QuestionIndex i, std::span<const double> distribution);

  /// Overwrites row i with `weights` scaled to sum to one. This is the
  /// "derive proportions then normalize" step of Eq. 16 / Eq. 18. All
  /// weights must be non-negative and not all zero.
  void SetRowNormalized(QuestionIndex i, std::span<const double> weights);

  /// Label with the highest probability in row i (ties broken toward the
  /// smaller label index). This is the paper's R-tilde per-question choice.
  LabelIndex ArgMaxLabel(QuestionIndex i) const noexcept;

  /// True if every row sums to 1 within `tolerance` and has no negative
  /// entries. Used by tests and debug assertions.
  bool IsNormalized(double tolerance = 1e-9) const noexcept;

 private:
  int num_questions_;
  int num_labels_;
  std::vector<double> cells_;
};

}  // namespace qasca

#endif  // QASCA_CORE_DISTRIBUTION_MATRIX_H_
