#ifndef QASCA_CORE_FRACTIONAL_H_
#define QASCA_CORE_FRACTIONAL_H_

#include <vector>

namespace qasca {

/// A 0-1 fractional program (Section 3.2.3):
///
///   maximize  f(z) = (sum_i z_i * b[i] + beta) / (sum_i z_i * d[i] + gamma)
///   subject to z in Omega, a subset of {0,1}^n.
///
/// Two feasible regions Omega arise in the paper:
///  * all of {0,1}^n — used to evaluate F-score*'s optimal result vector
///    (Algorithm 1), and
///  * "exactly k ones, all within a candidate set" — used by the Update
///    Algorithm for online assignment (Algorithm 3, Theorem 4).
struct ZeroOneFractionalProgram {
  std::vector<double> b;
  std::vector<double> d;
  double beta = 0.0;
  double gamma = 0.0;
};

/// Solution of a 0-1 fractional program found by the Dinkelbach iteration.
struct FractionalSolution {
  /// Optimal objective value lambda* = max_z f(z).
  double value = 0.0;
  /// A maximizer: z[i] is 0 or 1.
  std::vector<unsigned char> z;
  /// Number of Dinkelbach iterations performed until convergence (the
  /// paper's c for Algorithm 1, v for each Update call).
  int iterations = 0;
};

/// Solves `problem` over Omega = {0,1}^n with the Dinkelbach framework [12]:
/// starting from lambda = lambda_init, repeatedly pick
/// z = argmax_z g(z, lambda) = sum_i (b[i] - lambda*d[i]) * z_i — i.e.
/// z_i = 1 iff b[i] - lambda*d[i] >= 0 — and update lambda = f(z) until
/// lambda is unchanged. Requires the denominator to stay strictly positive
/// over the feasible region (true in the paper's reductions since
/// gamma > 0 there).
///
/// `lambda_init` must be a lower bound on the optimum (the framework then
/// guarantees monotone convergence); 0 is always valid in the paper's
/// instances because F-score* is non-negative.
FractionalSolution SolveUnconstrained(const ZeroOneFractionalProgram& problem,
                                      double lambda_init = 0.0);

/// Solves `problem` over Omega = { z : sum z_i = k, z_i = 1 only for
/// i in `candidates` }. Each Dinkelbach step selects the k candidates with
/// the largest b[i] - lambda*d[i] via linear-time selection (the paper's
/// PICK step in Algorithm 3).
///
/// `k` must satisfy 0 < k <= candidates.size(); candidate indices must be
/// unique and within [0, n).
FractionalSolution SolveExactlyK(const ZeroOneFractionalProgram& problem,
                                 const std::vector<int>& candidates, int k,
                                 double lambda_init = 0.0);

}  // namespace qasca

#endif  // QASCA_CORE_FRACTIONAL_H_
