#include "core/fractional.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace qasca {
namespace {

double Objective(const ZeroOneFractionalProgram& p,
                 const std::vector<unsigned char>& z) {
  double num = p.beta;
  double den = p.gamma;
  for (size_t i = 0; i < z.size(); ++i) {
    if (z[i]) {
      num += p.b[i];
      den += p.d[i];
    }
  }
  return num / den;
}

// Exhaustive maximum over all of {0,1}^n.
double BruteForceUnconstrained(const ZeroOneFractionalProgram& p) {
  const int n = static_cast<int>(p.b.size());
  double best = -1e18;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<unsigned char> z(n, 0);
    for (int i = 0; i < n; ++i) z[i] = (mask >> i) & 1u;
    best = std::max(best, Objective(p, z));
  }
  return best;
}

// Exhaustive maximum over exactly-k subsets of `candidates`.
double BruteForceExactlyK(const ZeroOneFractionalProgram& p,
                          const std::vector<int>& candidates, int k) {
  const int m = static_cast<int>(candidates.size());
  double best = -1e18;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    std::vector<unsigned char> z(p.b.size(), 0);
    for (int c = 0; c < m; ++c) {
      if ((mask >> c) & 1u) z[candidates[c]] = 1;
    }
    best = std::max(best, Objective(p, z));
  }
  return best;
}

ZeroOneFractionalProgram RandomProgram(util::Rng& rng, int n) {
  ZeroOneFractionalProgram p;
  p.b.resize(n);
  p.d.resize(n);
  for (int i = 0; i < n; ++i) {
    p.b[i] = rng.Uniform();
    p.d[i] = rng.Uniform(0.05, 1.0);
  }
  p.beta = rng.Uniform();
  p.gamma = rng.Uniform(0.5, 2.0);
  return p;
}

TEST(FractionalTest, SingleVariableTakesBetterChoice) {
  ZeroOneFractionalProgram p;
  p.b = {1.0};
  p.d = {0.5};
  p.beta = 0.0;
  p.gamma = 1.0;
  // z=0 gives 0; z=1 gives 1/1.5.
  FractionalSolution solution = SolveUnconstrained(p);
  EXPECT_NEAR(solution.value, 1.0 / 1.5, 1e-12);
  EXPECT_EQ(solution.z[0], 1);
}

TEST(FractionalTest, RejectsHarmfulVariable) {
  ZeroOneFractionalProgram p;
  p.b = {0.01};
  p.d = {1.0};
  p.beta = 1.0;
  p.gamma = 1.0;
  // z=0 gives 1.0; z=1 gives 1.01/2.
  FractionalSolution solution = SolveUnconstrained(p);
  EXPECT_NEAR(solution.value, 1.0, 1e-12);
  EXPECT_EQ(solution.z[0], 0);
}

TEST(FractionalTest, SolutionVectorAttainsReportedValue) {
  util::Rng rng(77);
  ZeroOneFractionalProgram p = RandomProgram(rng, 10);
  FractionalSolution solution = SolveUnconstrained(p);
  EXPECT_NEAR(Objective(p, solution.z), solution.value, 1e-12);
}

class UnconstrainedSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnconstrainedSweep, MatchesBruteForce) {
  util::Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + rng.UniformInt(9);  // 2..10
    ZeroOneFractionalProgram p = RandomProgram(rng, n);
    FractionalSolution solution = SolveUnconstrained(p);
    EXPECT_NEAR(solution.value, BruteForceUnconstrained(p), 1e-10)
        << "n=" << n << " trial=" << trial;
    EXPECT_LE(solution.iterations, 20);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnconstrainedSweep, ::testing::Range(0, 10));

class ExactlyKSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExactlyKSweep, MatchesBruteForce) {
  util::Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + rng.UniformInt(7);  // 4..10
    ZeroOneFractionalProgram p = RandomProgram(rng, n);
    // Candidate subset of size >= 2.
    int m = 2 + rng.UniformInt(n - 1);
    std::vector<int> candidates = rng.SampleWithoutReplacement(n, m);
    int k = 1 + rng.UniformInt(m);
    FractionalSolution solution = SolveExactlyK(p, candidates, k);
    EXPECT_NEAR(solution.value, BruteForceExactlyK(p, candidates, k), 1e-10)
        << "n=" << n << " m=" << m << " k=" << k;
    int selected = 0;
    for (unsigned char zi : solution.z) selected += zi;
    EXPECT_EQ(selected, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactlyKSweep, ::testing::Range(0, 10));

TEST(FractionalTest, ExactlyKRespectsCandidateSet) {
  util::Rng rng(3);
  ZeroOneFractionalProgram p = RandomProgram(rng, 6);
  std::vector<int> candidates = {1, 3, 5};
  FractionalSolution solution = SolveExactlyK(p, candidates, 2);
  EXPECT_EQ(solution.z[0], 0);
  EXPECT_EQ(solution.z[2], 0);
  EXPECT_EQ(solution.z[4], 0);
}

TEST(FractionalTest, NegativeSwingCoefficientsHandled) {
  // The Update Algorithm produces negative b/d entries; the solver must
  // still converge (denominator stays positive via gamma).
  ZeroOneFractionalProgram p;
  p.b = {-0.2, 0.4, -0.1, 0.3};
  p.d = {-0.1, 0.2, -0.3, 0.1};
  p.beta = 1.0;
  p.gamma = 2.0;
  std::vector<int> candidates = {0, 1, 2, 3};
  FractionalSolution solution = SolveExactlyK(p, candidates, 2);
  EXPECT_NEAR(solution.value, BruteForceExactlyK(p, candidates, 2), 1e-10);
}

TEST(FractionalTest, IterationCountRegressionPin) {
  // Pins the Dinkelbach iteration counts on fixed-seed instances. The
  // framework converges superlinearly (the paper observes <= 15 iterations
  // at n = 2000); a change that alters these counts either changed the
  // iteration's semantics or broke a warm-start/threshold rule, and should
  // be reviewed — not silently absorbed.
  util::Rng rng(2026);
  std::vector<int> unconstrained_iterations;
  std::vector<int> exactly_k_iterations;
  for (int trial = 0; trial < 5; ++trial) {
    ZeroOneFractionalProgram p = RandomProgram(rng, 50);
    FractionalSolution unconstrained = SolveUnconstrained(p);
    EXPECT_NEAR(Objective(p, unconstrained.z), unconstrained.value, 1e-12);
    unconstrained_iterations.push_back(unconstrained.iterations);

    std::vector<int> candidates = rng.SampleWithoutReplacement(50, 20);
    FractionalSolution constrained = SolveExactlyK(p, candidates, 8);
    EXPECT_NEAR(Objective(p, constrained.z), constrained.value, 1e-12);
    exactly_k_iterations.push_back(constrained.iterations);
  }
  EXPECT_EQ(unconstrained_iterations, (std::vector<int>{6, 5, 5, 7, 5}));
  EXPECT_EQ(exactly_k_iterations, (std::vector<int>{3, 3, 3, 3, 4}));
}

}  // namespace
}  // namespace qasca
