"""Core types of the analyzer framework: findings, source files, the tree.

A pass is an object with `name`, `description`, `severity` and a
`run(tree) -> list[Finding]` method (see passes/). Passes read files
through SourceFile, which pre-computes a comment-stripped view (`code`)
with line structure preserved, so regexes neither fire on commented-out
code nor report wrong line numbers.

Suppressions: a finding of pass P at line L is suppressed when the raw
source carries `analyze:allow(P)` in a comment on line L or on line L-1
(an allow comment on its own line covers the next line). Suppressed
findings are counted and reported, but do not fail the run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

ERROR = "error"
WARNING = "warning"

_ALLOW = re.compile(r"analyze:allow\(([a-z0-9_-]+)\)")
_EXPECT = re.compile(r"analyze:expect\(([a-z0-9_-]+)\)")

# Comment matcher used for stripping: block comments first (newlines inside
# are preserved by the replacement), then line comments. String literals are
# not parsed; none of the passes' patterns plausibly match inside QASCA's
# string constants, and a lint must stay cheap.
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT = re.compile(r"//[^\n]*")


@dataclass
class Finding:
    pass_name: str
    severity: str
    path: str  # repo-relative, posix
    line: int  # 1-based; 0 for whole-file findings
    message: str
    suppressed: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_json(self) -> dict:
        return {
            "pass": self.pass_name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }


def _strip_comments(text: str) -> str:
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _LINE_COMMENT.sub(" ", _BLOCK_COMMENT.sub(blank, text))


@dataclass
class SourceFile:
    """One file plus the derived views every pass shares."""

    absolute: Path
    rel: str  # repo-relative posix path
    text: str = field(repr=False)

    def __post_init__(self) -> None:
        self.lines = self.text.splitlines()
        self.code = _strip_comments(self.text)
        self.code_lines = self.code.splitlines()
        # line number -> pass names allowed on that line.
        self.allows: dict[int, set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            for match in _ALLOW.finditer(line):
                self.allows.setdefault(number, set()).add(match.group(1))

    def line_of(self, offset: int) -> int:
        """1-based line containing character `offset` of text/code."""
        return self.code.count("\n", 0, offset) + 1

    def allowed(self, pass_name: str, line: int) -> bool:
        return (pass_name in self.allows.get(line, ())
                or pass_name in self.allows.get(line - 1, ()))

    def expects(self) -> list[tuple[str, int]]:
        """(pass, line) markers declared by a self-test fixture."""
        found = []
        for number, line in enumerate(self.lines, start=1):
            for match in _EXPECT.finditer(line):
                found.append((match.group(1), number))
        return found


class SourceTree:
    """Walks and caches SourceFiles under a repository root.

    Passes address directories repo-relative (e.g. "src/core"), which makes
    the same pass objects run unmodified over the real tree and over the
    testdata fixture tree (whose layout mirrors src/...).
    """

    def __init__(self, root: Path):
        self.root = root.resolve()
        self._cache: dict[str, SourceFile] = {}

    def file(self, rel: str) -> SourceFile | None:
        if rel not in self._cache:
            path = self.root / rel
            if not path.is_file():
                return None
            self._cache[rel] = SourceFile(
                absolute=path, rel=rel,
                text=path.read_text(encoding="utf-8"))
        return self._cache[rel]

    def files(self, roots: tuple[str, ...],
              extensions: tuple[str, ...] = (".h", ".cc")) -> list[SourceFile]:
        out: list[SourceFile] = []
        for root in roots:
            base = self.root / root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in extensions and path.is_file():
                    rel = path.relative_to(self.root).as_posix()
                    out.append(self.file(rel))
        return out


def apply_suppressions(tree: SourceTree,
                       findings: list[Finding]) -> list[Finding]:
    """Marks findings covered by an analyze:allow comment as suppressed."""
    for finding in findings:
        source = tree.file(finding.path)
        if source is not None and finding.line > 0 and \
                source.allowed(finding.pass_name, finding.line):
            finding.suppressed = True
    return findings
