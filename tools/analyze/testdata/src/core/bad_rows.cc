// invariants fixture: mutates a distribution row without referencing the
// invariant subsystem (no util/invariants.h include, no Check* call, no
// QASCA_DCHECK_OK). The finding anchors at the first mutating call.

#include <vector>

void MutateWithoutValidators(DistributionMatrix& matrix,
                             const std::vector<double>& row) {
  matrix.SetRow(0, row);  // analyze:expect(invariants)
}
