#include "model/em.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/likelihood_cache.h"
#include "model/posterior.h"
#include "model/prior.h"
#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry_names.h"
#include "util/thread_pool.h"

namespace qasca {
namespace {

// Per-worker view of the answer set: which questions the worker answered
// and with which label.
struct WorkerAnswers {
  std::vector<QuestionIndex> questions;
  std::vector<LabelIndex> labels;
};

// Grouped per-worker answers in ascending WorkerId order. The M-step and
// the DCHECK objective fold iterate this vector, so model fits, the
// insertion order of EmResult::workers and every floating-point
// accumulation over workers are independent of unordered_map bucket layout
// (the determinism pass of tools/analyze.py bans decision-feeding
// iteration over unordered containers in src/model).
std::vector<std::pair<WorkerId, WorkerAnswers>> GroupByWorker(
    const AnswerSet& answers) {
  // Counting pre-pass so each worker's answer arrays are sized once: the
  // fill loop below runs per full EM refit over the whole answer set, and
  // unreserved growth there is pure allocator churn (hot-path-alloc pass).
  std::unordered_map<WorkerId, size_t> answer_counts;
  for (size_t i = 0; i < answers.size(); ++i) {
    for (const Answer& answer : answers[i]) ++answer_counts[answer.worker];
  }
  std::unordered_map<WorkerId, WorkerAnswers> by_worker;
  by_worker.reserve(answer_counts.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    for (const Answer& answer : answers[i]) {
      WorkerAnswers& wa = by_worker[answer.worker];
      if (wa.questions.empty()) {
        const size_t count = answer_counts[answer.worker];
        wa.questions.reserve(count);
        wa.labels.reserve(count);
      }
      wa.questions.push_back(static_cast<QuestionIndex>(i));
      wa.labels.push_back(answer.label);
    }
  }
  std::vector<std::pair<WorkerId, WorkerAnswers>> ordered;
  ordered.reserve(by_worker.size());
  // Drain order is irrelevant: the vector is sorted by id right below.
  for (auto& [worker, wa] : by_worker) {  // analyze:allow(determinism)
    ordered.emplace_back(worker, std::move(wa));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return ordered;
}

// M-step: re-fit one worker's model from the current posteriors.
WorkerModel FitWorker(const WorkerAnswers& wa,
                      const DistributionMatrix& posterior, int num_labels,
                      const EmOptions& options) {
  if (options.worker_kind == WorkerModel::Kind::kWorkerProbability) {
    // m_w = expected fraction of this worker's answers that match the true
    // label, Laplace-smoothed. Both accumulators run through the blessed
    // left-to-right fold seeded with their smoothing pseudo-counts, which
    // reproduces the historical `seed; seed += term` order bit-for-bit.
    const int answered = static_cast<int>(wa.questions.size());
    const double agree = util::DeterministicFold(
        options.smoothing, 0, answered, [&](double acc, int a) {
          return acc + posterior.At(wa.questions[static_cast<size_t>(a)],
                                    wa.labels[static_cast<size_t>(a)]);
        });
    const double total = util::DeterministicFold(
        2.0 * options.smoothing, 0, answered,
        [](double acc, int) { return acc + 1.0; });
    return WorkerModel::Wp(std::clamp(agree / total, 0.0, 1.0), num_labels);
  }

  // Confusion matrix: M[j][j'] = expected count of (true j, answered j')
  // over expected count of true j among this worker's answers.
  std::vector<double> counts(static_cast<size_t>(num_labels) * num_labels,
                             options.smoothing);
  for (size_t a = 0; a < wa.questions.size(); ++a) {
    std::span<const double> row = posterior.Row(wa.questions[a]);
    for (int j = 0; j < num_labels; ++j) {
      counts[static_cast<size_t>(j) * num_labels + wa.labels[a]] += row[j];
    }
  }
  for (int j = 0; j < num_labels; ++j) {
    const double row_total =
        util::DeterministicSum(0, num_labels, [&](int j2) {
          return counts[static_cast<size_t>(j) * num_labels + j2];
        });
    for (int j2 = 0; j2 < num_labels; ++j2) {
      counts[static_cast<size_t>(j) * num_labels + j2] /= row_total;
    }
  }
  return WorkerModel::Cm(std::move(counts), num_labels);
}

#if QASCA_ENABLE_DCHECKS
// Log Dirichlet/Beta penalty the smoothed M-step implicitly maximises:
// smoothing * sum(log theta) over the fitted worker parameters. Adding it
// to the data log-likelihood gives the objective MAP-EM ascends, which is
// the quantity the monotonicity DCHECK tracks (the raw likelihood alone may
// legitimately dip when smoothing > 0). Returns false if any parameter sits
// on the boundary (log would be -inf; only possible with smoothing == 0,
// where the penalty is zero anyway and the caller passes over it).
bool AccumulateLogPenalty(const WorkerModel& model, double smoothing,
                          double* penalty) {
  if (smoothing <= 0.0) return true;
  if (model.kind() == WorkerModel::Kind::kWorkerProbability) {
    double m = model.worker_probability();
    if (m <= 0.0 || m >= 1.0) return false;
    *penalty += smoothing * (std::log(m) + std::log(1.0 - m));
    return true;
  }
  for (double entry : model.AsConfusionMatrix()) {
    if (entry <= 0.0) return false;
    *penalty += smoothing * std::log(entry);
  }
  return true;
}
#endif

}  // namespace

const WorkerModel& EmResult::WorkerFor(WorkerId worker) const {
  auto it = workers.find(worker);
  return it != workers.end() ? it->second : fallback;
}

namespace {

// Questions are partitioned into chunks of this many rows for the parallel
// E-step. The grain is a fixed constant — never derived from the pool size —
// so the chunk decomposition (and the chunk-ordered fold of the reductions
// below) is identical for every thread count, making parallel results
// bit-identical to the serial path.
constexpr int kEStepGrain = 128;

// Per-chunk E-step reduction state, merged in chunk-index order after the
// parallel sweep.
struct EStepPartial {
  // Max absolute posterior-cell change in this chunk (convergence test).
  double max_change = 0.0;
  // Sum of log marginal likelihoods (the observed-data log-likelihood
  // contribution); only accumulated when DCHECKs are on.
  double log_marginal = 0.0;
  // False if any marginal in the chunk was non-positive (degenerate 0/1
  // models with contradictory answers), which voids the ascent guarantee.
  bool marginals_positive = true;
};

// Shared E/M loop: iterate from the posterior already stored in `result`.
EmResult RunEmIterations(const AnswerSet& answers, int num_labels,
                         const EmOptions& options, EmResult result,
                         util::ThreadPool* pool,
                         util::MetricRegistry* telemetry) {
  const int n = static_cast<int>(answers.size());
  const std::vector<std::pair<WorkerId, WorkerAnswers>> grouped =
      GroupByWorker(answers);
  std::vector<EStepPartial> partials(
      static_cast<size_t>(util::NumChunks(0, n, kEStepGrain)));

  // Per-worker likelihood tables for the table-based posterior kernel
  // (model/likelihood_cache.h). Entries are created once here — grouped is
  // exactly the fitted-worker set — and rebuilt in place after each
  // M-step, so the E-step's per-answer inner loop is one contiguous
  // elementwise multiply with no per-row table construction.
  std::unordered_map<WorkerId, WorkerLikelihoods> tables;
  tables.reserve(grouped.size());
  for (const auto& [worker, wa] : grouped) {
    tables.emplace(worker, WorkerLikelihoods{});
  }
  WorkerLikelihoods fallback_table;
  // One posterior-row buffer per E-step chunk, reused across rows and
  // iterations (the out-parameter posterior API; no per-row allocation).
  std::vector<std::vector<double>> chunk_rows(partials.size());

#if QASCA_ENABLE_DCHECKS
  // MAP objective (data log-likelihood + log penalty) of the previous
  // iteration's parameters; EM theory guarantees it never decreases.
  double previous_objective = 0.0;
  bool have_previous_objective = false;
#endif

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    result.iterations = iteration;

    // M-step: worker models and prior from posteriors.
    result.workers.clear();
    for (const auto& [worker, wa] : grouped) {
      result.workers.emplace(
          worker, FitWorker(wa, result.posterior, num_labels, options));
    }
    if (options.estimate_prior) {
      result.prior = EstimatePrior(result.posterior);
    }

#if QASCA_ENABLE_DCHECKS
    double objective = 0.0;
    bool objective_valid = true;
    // Fold in ascending-WorkerId order (grouped's order, which is exactly
    // the fitted-worker set) so the objective is bit-stable across runs.
    for (const auto& [worker, wa] : grouped) {
      objective_valid =
          objective_valid && AccumulateLogPenalty(result.WorkerFor(worker),
                                                  options.smoothing,
                                                  &objective);
    }
#endif

    // Refresh the likelihood tables against the models this M-step just
    // fitted (grouped's ascending-id order; the table values are the
    // AnswerProbability doubles verbatim, so the table-based E-step below
    // is bit-identical to the model-call loop it replaced).
    for (const auto& [worker, wa] : grouped) {
      tables.find(worker)->second.Rebuild(result.WorkerFor(worker));
    }
    fallback_table.Rebuild(result.fallback);

    // E-step: posteriors from worker models and prior (Eq. 16). Rows are
    // independent, so the sweep runs chunk-parallel; each chunk writes its
    // own posterior rows and reduction slot, and the slots fold in chunk
    // order below.
    LikelihoodLookup lookup =
        [&tables, &fallback_table](WorkerId worker) -> const WorkerLikelihoods& {
      auto it = tables.find(worker);
      return it != tables.end() ? it->second : fallback_table;
    };
    partials.assign(partials.size(), EStepPartial{});
    util::ParallelFor(pool, 0, n, kEStepGrain, [&](int cb, int ce) {
      const size_t chunk =
          static_cast<size_t>(util::ChunkIndex(0, cb, kEStepGrain));
      EStepPartial& part = partials[chunk];
      std::vector<double>& row = chunk_rows[chunk];
      for (int i = cb; i < ce; ++i) {
        double marginal = 0.0;
        ComputePosteriorRowWithLikelihoods(answers[i], result.prior, lookup,
                                           &row, &marginal);
        for (int j = 0; j < num_labels; ++j) {
          part.max_change = std::max(
              part.max_change, std::fabs(row[j] - result.posterior.At(i, j)));
        }
        result.posterior.SetRow(i, row);
#if QASCA_ENABLE_DCHECKS
        if (marginal > 0.0) {
          part.log_marginal += std::log(marginal);
        } else {
          // Contradictory answers under degenerate 0/1 models: the fallback
          // row is not a true posterior, so the ascent guarantee lapses.
          part.marginals_positive = false;
        }
#endif
      }
    });
    double max_change = 0.0;
    for (const EStepPartial& part : partials) {
      max_change = std::max(max_change, part.max_change);
    }

#if QASCA_ENABLE_DCHECKS
    objective = util::DeterministicFold(
        objective, 0, static_cast<int>(partials.size()),
        [&](double acc, int p) {
          return acc + partials[static_cast<size_t>(p)].log_marginal;
        });
    for (const EStepPartial& part : partials) {
      objective_valid = objective_valid && part.marginals_positive;
    }
    if (have_previous_objective && objective_valid) {
      QASCA_DCHECK_OK(invariants::CheckLogLikelihoodMonotone(
          previous_objective, objective,
          /*tolerance=*/1e-8 * (1.0 + std::fabs(previous_objective))));
    }
    previous_objective = objective;
    have_previous_objective = objective_valid;
#endif

    if (max_change <= options.tolerance) break;
  }
  if (telemetry != nullptr) {
    // Iterations-to-convergence of this fit (Section 5.2's EM loop).
    telemetry->GetCounter(util::tnames::kEmIterations)
        ->Add(result.iterations);
  }
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(result.posterior));
  return result;
}

}  // namespace

EmResult RunEm(const AnswerSet& answers, int num_labels,
               const EmOptions& options, util::ThreadPool* pool,
               util::MetricRegistry* telemetry) {
  QASCA_CHECK_GT(num_labels, 0);
  const int n = static_cast<int>(answers.size());

  EmResult result;
  result.prior = UniformPrior(num_labels);
  result.posterior = DistributionMatrix(n, num_labels);
  result.fallback = options.worker_kind == WorkerModel::Kind::kConfusionMatrix
                        ? WorkerModel::PerfectCm(num_labels)
                        : WorkerModel::PerfectWp(num_labels);

  // Dawid–Skene bootstrap: initialise posteriors from smoothed vote counts.
  std::vector<double> votes(num_labels);
  for (int i = 0; i < n; ++i) {
    std::fill(votes.begin(), votes.end(), 1.0);
    for (const Answer& answer : answers[i]) votes[answer.label] += 1.0;
    result.posterior.SetRowNormalized(i, votes);
  }
  return RunEmIterations(answers, num_labels, options, std::move(result),
                         pool, telemetry);
}

EmResult RunEmWarmStart(const AnswerSet& answers, int num_labels,
                        const EmOptions& options, const EmResult& previous,
                        util::ThreadPool* pool,
                        util::MetricRegistry* telemetry) {
  QASCA_CHECK_GT(num_labels, 0);
  const int n = static_cast<int>(answers.size());
  if (previous.posterior.num_questions() != n ||
      previous.posterior.num_labels() != num_labels ||
      previous.workers.empty()) {
    // Shape changed (different question pool) or nothing was ever fitted.
    // The second case matters: an all-uniform posterior is a *fixed point*
    // of the EM update (the symmetric saddle), so warm-starting from a
    // blank state would never leave it — bootstrap from votes instead.
    return RunEm(answers, num_labels, options, pool, telemetry);
  }
  EmResult result;
  result.prior = previous.prior.size() == static_cast<size_t>(num_labels)
                     ? previous.prior
                     : UniformPrior(num_labels);
  result.fallback = options.worker_kind == WorkerModel::Kind::kConfusionMatrix
                        ? WorkerModel::PerfectCm(num_labels)
                        : WorkerModel::PerfectWp(num_labels);
  // Seed from the previous *worker models*, not the previous posteriors: an
  // initial E-step against the full (old + new) answer set re-anchors every
  // posterior to the data, so stale per-question beliefs cannot persist and
  // the label-flip degeneracies a posterior-seeded restart can drift into
  // are avoided.
  result.posterior = DistributionMatrix(n, num_labels);
  WorkerModelLookup lookup =
      [&previous](WorkerId worker) -> const WorkerModel& {
    return previous.WorkerFor(worker);
  };
  // One posterior-row buffer per chunk (out-parameter API; no per-row
  // allocation in the sweep).
  std::vector<std::vector<double>> warm_rows(
      static_cast<size_t>(util::NumChunks(0, n, kEStepGrain)));
  util::ParallelFor(pool, 0, n, kEStepGrain, [&](int cb, int ce) {
    std::vector<double>& row =
        warm_rows[static_cast<size_t>(util::ChunkIndex(0, cb, kEStepGrain))];
    for (int i = cb; i < ce; ++i) {
      ComputePosteriorRowInto(answers[i], result.prior, lookup, &row);
      result.posterior.SetRow(i, row);
    }
  });
  return RunEmIterations(answers, num_labels, options, std::move(result),
                         pool, telemetry);
}

}  // namespace qasca
