#include "platform/trace.h"

#include <memory>

#include <gtest/gtest.h>

#include "platform/engine.h"
#include "platform/qasca_strategy.h"

namespace qasca {
namespace {

TEST(EventTraceTest, RecordsInOrder) {
  EventTrace trace;
  trace.RecordAssignment(7, {1, 2});
  trace.RecordCompletion(7, {1, 2}, {0, 1});
  ASSERT_EQ(trace.size(), 2);
  EXPECT_EQ(trace.events()[0].sequence, 0);
  EXPECT_EQ(trace.events()[0].kind, EventTrace::Kind::kHitAssigned);
  EXPECT_EQ(trace.events()[1].sequence, 1);
  EXPECT_EQ(trace.events()[1].kind, EventTrace::Kind::kHitCompleted);
  EXPECT_EQ(trace.events()[1].labels, (std::vector<LabelIndex>{0, 1}));
}

TEST(EventTraceTest, CountOf) {
  EventTrace trace;
  trace.RecordAssignment(1, {0});
  trace.RecordAssignment(2, {1});
  trace.RecordCompletion(1, {0}, {1});
  EXPECT_EQ(trace.CountOf(EventTrace::Kind::kHitAssigned), 2);
  EXPECT_EQ(trace.CountOf(EventTrace::Kind::kHitCompleted), 1);
}

TEST(EventTraceTest, JsonLinesFormat) {
  // Inject a deterministic tick source so the JSON is byte-exact.
  uint64_t ticks = 0;
  EventTrace trace([&ticks] { return ticks += 1200; });
  trace.RecordAssignment(3, {1, 4});
  trace.RecordCompletion(3, {1, 4}, {0, 1});
  EXPECT_EQ(trace.ToJsonLines(),
            "{\"seq\":0,\"t_ns\":1200,\"kind\":\"assigned\",\"worker\":3,"
            "\"questions\":[1,4],\"labels\":[]}\n"
            "{\"seq\":1,\"t_ns\":2400,\"kind\":\"completed\",\"worker\":3,"
            "\"questions\":[1,4],\"labels\":[0,1]}\n");
}

TEST(EventTraceTest, DefaultTimestampsAreMonotone) {
  EventTrace trace;
  trace.RecordAssignment(1, {0});
  trace.RecordAssignment(2, {1});
  trace.RecordCompletion(1, {0}, {1});
  ASSERT_EQ(trace.size(), 3);
  EXPECT_LE(trace.events()[0].t_ns, trace.events()[1].t_ns);
  EXPECT_LE(trace.events()[1].t_ns, trace.events()[2].t_ns);
}

TEST(EventTraceDeathTest, CompletionShapeMismatchAborts) {
  EventTrace trace;
  EXPECT_DEATH(trace.RecordCompletion(1, {0, 1}, {0}), "Check failed");
}

TEST(EventTraceTest, EngineRecordsItsWorkflows) {
  AppConfig config;
  config.num_questions = 12;
  config.num_labels = 2;
  config.questions_per_hit = 3;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 4;
  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(), 1);
  auto hit = engine.RequestHit(5);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(engine.CompleteHit(5, {0, 1, 0}).ok());
  EXPECT_EQ(engine.trace().size(), 2);
  EXPECT_EQ(engine.trace().events()[0].worker, 5);
  EXPECT_EQ(engine.trace().events()[0].questions, *hit);
  EXPECT_EQ(engine.trace().events()[1].labels,
            (std::vector<LabelIndex>{0, 1, 0}));
}

}  // namespace
}  // namespace qasca
