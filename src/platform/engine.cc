#include "platform/engine.h"

#include <algorithm>
#include <cmath>

#include "model/posterior.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/telemetry_names.h"

namespace qasca {

TaskAssignmentEngine::TaskAssignmentEngine(
    AppConfig config, std::unique_ptr<AssignmentStrategy> strategy,
    uint64_t seed)
    : config_(std::move(config)),
      telemetry_(config_.telemetry_enabled),
      strategy_(std::move(strategy)),
      metric_(config_.metric.Make()),
      database_(config_.num_questions, config_.num_labels),
      rng_(seed) {
  util::Status status = config_.Validate();
  QASCA_CHECK(status.ok()) << status.ToString();
  QASCA_CHECK(strategy_ != nullptr);
  config_.em.worker_kind = config_.worker_kind;
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool_->AttachTelemetry(&telemetry_);
  }
  database_.AttachTelemetry(&telemetry_);
  instruments_.hits_assigned =
      telemetry_.GetCounter(util::tnames::kHitsAssigned);
  instruments_.hits_completed =
      telemetry_.GetCounter(util::tnames::kHitsCompleted);
  instruments_.em_full_refits =
      telemetry_.GetCounter(util::tnames::kEmFullRefits);
  instruments_.em_incremental_refreshes =
      telemetry_.GetCounter(util::tnames::kEmIncrementalRefreshes);
  instruments_.open_hits = telemetry_.GetGauge(util::tnames::kOpenHits);
  instruments_.remaining_hits =
      telemetry_.GetGauge(util::tnames::kRemainingHits);
  instruments_.last_refresh_drift =
      telemetry_.GetGauge(util::tnames::kLastRefreshDrift);
}

util::StatusOr<std::vector<QuestionIndex>> TaskAssignmentEngine::RequestHit(
    WorkerId worker) {
  if (BudgetExhausted()) {
    return util::Status::ResourceExhausted("budget spent: no HITs left");
  }
  if (open_hits_.contains(worker)) {
    return util::Status::FailedPrecondition(
        "worker already holds an open HIT");
  }
  // Root span of the HIT-request workflow; every stage below (estimate_qw,
  // topk_scan / fscore_online -> dinkelbach_inner) nests inside it.
  util::Span span(&telemetry_, util::tnames::kSpanAssignHit);
  std::vector<QuestionIndex> candidates = database_.CandidatesFor(worker);
  const int k = config_.questions_per_hit;
  if (static_cast<int>(candidates.size()) < k) {
    return util::Status::NotFound(
        "fewer than k unassigned questions remain for this worker");
  }

  StrategyContext context;
  context.database = &database_;
  context.metric = &config_.metric;
  context.worker = worker;
  const WorkerModel& model = ModelFor(worker);
  context.worker_model = &model;
  context.typical_worker = &TypicalWorker();
  context.rng = &rng_;
  context.pool = pool_.get();
  context.telemetry = &telemetry_;

  util::Stopwatch stopwatch;
  std::vector<QuestionIndex> selected =
      strategy_->SelectQuestions(context, candidates, k);
  last_assignment_seconds_ = stopwatch.ElapsedSeconds();
  max_assignment_seconds_ =
      std::max(max_assignment_seconds_, last_assignment_seconds_);

  // Every HIT leaving the engine must be exactly k distinct in-range
  // questions, and each must come from the candidate set the strategy was
  // given. Always on: a malformed HIT reaching the platform corrupts the
  // answer set silently.
  QASCA_CHECK_OK(
      invariants::CheckAssignment(selected, k, config_.num_questions));
#if QASCA_ENABLE_DCHECKS
  // CandidatesFor returns ascending indices, so membership is a binary
  // search — O(k log n) instead of the O(k n) linear scan that used to
  // dominate debug-build latency measurements.
  QASCA_DCHECK(std::is_sorted(candidates.begin(), candidates.end()));
  for (QuestionIndex question : selected) {
    QASCA_DCHECK(
        std::binary_search(candidates.begin(), candidates.end(), question))
        << "strategy selected question " << question
        << " outside the candidate set";
  }
#endif
  database_.MarkAssigned(worker, selected);
  trace_.RecordAssignment(worker, selected);
  open_hits_.emplace(worker, selected);
  ++assigned_hits_;
  instruments_.hits_assigned->Add(1);
  instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));
  instruments_.remaining_hits->Set(static_cast<double>(remaining_hits()));
  return selected;
}

util::Status TaskAssignmentEngine::CompleteHit(
    WorkerId worker, const std::vector<LabelIndex>& labels) {
  auto it = open_hits_.find(worker);
  if (it == open_hits_.end()) {
    return util::Status::NotFound("worker has no open HIT");
  }
  const std::vector<QuestionIndex>& questions = it->second;
  if (labels.size() != questions.size()) {
    return util::Status::InvalidArgument(
        "answer count does not match HIT size");
  }
  for (LabelIndex label : labels) {
    if (label < 0 || label >= config_.num_labels) {
      return util::Status::InvalidArgument("answer label out of range");
    }
  }
  // Root span of the HIT-completion workflow (steps A-C); em_full_refit /
  // incremental_refresh nest inside it.
  util::Span span(&telemetry_, util::tnames::kSpanCompleteHit);
  // Step A: update the answer set D.
  for (size_t q = 0; q < questions.size(); ++q) {
    database_.RecordAnswer(questions[q], worker, labels[q]);
  }
  std::vector<QuestionIndex> touched = it->second;
  trace_.RecordCompletion(worker, questions, labels);
  open_hits_.erase(it);
  ++completed_hits_;
  ++completions_since_refit_;
  instruments_.hits_completed->Add(1);
  instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));

  // Steps B + C: re-estimate the parameters and refresh Qc. A full EM refit
  // is the dominant per-completion cost at scale, and only the k touched
  // rows' answer sets changed — so between scheduled refits we keep the
  // fitted worker models and prior frozen and re-derive just those rows
  // (Eq. 5). The first fit is always full: before it, the fallback model is
  // a perfect worker and a Bayes update under it would drive rows to 0/1
  // certainty that EM would never assert.
  const bool can_refresh_incrementally =
      config_.em_refresh_interval > 1 &&
      !database_.parameters().workers.empty();
  if (can_refresh_incrementally) {
    util::Span refresh_span(&telemetry_,
                            util::tnames::kSpanIncrementalRefresh);
    // Applied even on a completion that triggers a scheduled refit, so the
    // refit's drift invariant compares a fully-updated incremental Qc —
    // never one stale by this HIT's k new answers.
    const EmResult& parameters = database_.parameters();
    WorkerModelLookup lookup =
        [&parameters](WorkerId w) -> const WorkerModel& {
      return parameters.WorkerFor(w);
    };
    for (QuestionIndex question : touched) {
      std::vector<double> row = ComputePosteriorRow(
          database_.answers()[static_cast<size_t>(question)],
          parameters.prior, lookup);
      // Always on: an incremental row is the only writer of Qc between
      // refits, so a denormalised one corrupts every later assignment
      // decision without crashing.
      QASCA_CHECK_OK(invariants::CheckDistributionRow(row));
      database_.UpdatePosteriorRow(question, row);
    }
    incremental_since_refit_ = true;
  }
  if (!can_refresh_incrementally ||
      completions_since_refit_ >= config_.em_refresh_interval) {
    RunFullEmRefit();
  } else {
    ++incremental_refreshes_;
    instruments_.em_incremental_refreshes->Add(1);
  }
  return util::Status::Ok();
}

void TaskAssignmentEngine::ForceFullEmRefit() { RunFullEmRefit(); }

void TaskAssignmentEngine::RunFullEmRefit() {
  util::Span span(&telemetry_, util::tnames::kSpanEmFullRefit);
  const bool check_drift = incremental_since_refit_;
  DistributionMatrix incremental = database_.current();
  database_.SetParameters(
      config_.warm_start_em
          ? RunEmWarmStart(database_.answers(), config_.num_labels,
                           config_.em, database_.parameters(), pool_.get(),
                           &telemetry_)
          : RunEm(database_.answers(), config_.num_labels, config_.em,
                  pool_.get(), &telemetry_));
  // The refreshed Qc is what every later assignment decision reads; a
  // denormalised row here corrupts all of them without crashing.
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(database_.current()));
  if (check_drift) {
    // Always-on incremental-agreement invariant: the Qc the incremental
    // path maintained must agree with the full refit within the configured
    // tolerance. A violation means the incremental updates diverged from
    // the model (stale rows, wrong parameters), not floating-point noise.
    const DistributionMatrix& refit = database_.current();
    double drift = 0.0;
    for (int i = 0; i < refit.num_questions(); ++i) {
      for (int j = 0; j < refit.num_labels(); ++j) {
        drift = std::max(drift,
                         std::fabs(refit.At(i, j) - incremental.At(i, j)));
      }
    }
    last_refresh_drift_ = drift;
    max_refresh_drift_ = std::max(max_refresh_drift_, drift);
    instruments_.last_refresh_drift->Set(drift);
    QASCA_CHECK(drift <= config_.em_drift_tolerance)
        << "incremental Qc drifted" << drift << "from the full EM refit"
        << "(tolerance" << config_.em_drift_tolerance << ")";
  }
  ++full_em_refits_;
  instruments_.em_full_refits->Add(1);
  completions_since_refit_ = 0;
  incremental_since_refit_ = false;
  // The fitted worker pool changed; the cached typical worker is stale.
  typical_worker_.reset();
}

ResultVector TaskAssignmentEngine::CurrentResults() const {
  return metric_->OptimalResult(database_.current());
}

double TaskAssignmentEngine::QualityAgainstTruth(
    const GroundTruthVector& truth) const {
  return metric_->EvaluateAgainstTruth(truth, CurrentResults());
}

const WorkerModel& TaskAssignmentEngine::ModelFor(WorkerId worker) const {
  return database_.parameters().WorkerFor(worker);
}

const WorkerModel& TaskAssignmentEngine::TypicalWorker() {
  if (!typical_worker_.has_value()) {
    typical_worker_ = ComputeTypicalWorker();
  }
  return *typical_worker_;
}

WorkerModel TaskAssignmentEngine::ComputeTypicalWorker() const {
  const auto& workers = database_.parameters().workers;
  if (workers.empty()) {
    return WorkerModel::Wp(0.75, config_.num_labels);
  }
  // Fold worker qualities in ascending-id order: the mean feeds assignment
  // decisions through the typical-worker model, so its floating-point
  // association must not depend on unordered_map bucket layout (determinism
  // pass, tools/analyze.py).
  std::vector<WorkerId> ids;
  ids.reserve(workers.size());
  for (const auto& [id, model] : workers) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  double total_quality = 0.0;
  for (WorkerId id : ids) {
    std::vector<double> cm = workers.at(id).AsConfusionMatrix();
    double diagonal = 0.0;
    for (int j = 0; j < config_.num_labels; ++j) {
      diagonal += cm[static_cast<size_t>(j) * config_.num_labels + j];
    }
    total_quality += diagonal / config_.num_labels;
  }
  return WorkerModel::Wp(
      std::clamp(total_quality / static_cast<double>(workers.size()), 0.0,
                 1.0),
      config_.num_labels);
}

}  // namespace qasca
