#include "model/worker_model.h"

#include <cmath>

#include "util/fold.h"
#include "util/invariants.h"

namespace qasca {

WorkerModel WorkerModel::PerfectWp(int num_labels) {
  return Wp(1.0, num_labels);
}

WorkerModel WorkerModel::PerfectCm(int num_labels) {
  std::vector<double> identity(static_cast<size_t>(num_labels) * num_labels,
                               0.0);
  for (int j = 0; j < num_labels; ++j) {
    identity[static_cast<size_t>(j) * num_labels + j] = 1.0;
  }
  return Cm(std::move(identity), num_labels);
}

WorkerModel WorkerModel::Wp(double m, int num_labels) {
  QASCA_CHECK_GE(m, 0.0);
  QASCA_CHECK_LE(m, 1.0);
  QASCA_CHECK_GT(num_labels, 0);
  WorkerModel model(Kind::kWorkerProbability, num_labels);
  model.wp_ = m;
  return model;
}

WorkerModel WorkerModel::Cm(std::vector<double> matrix, int num_labels) {
  QASCA_CHECK_GT(num_labels, 0);
  QASCA_CHECK_OK(invariants::CheckConfusionMatrix(matrix, num_labels));
  WorkerModel model(Kind::kConfusionMatrix, num_labels);
  model.cm_ = std::move(matrix);
  return model;
}

std::vector<double> WorkerModel::AsConfusionMatrix() const {
  if (kind_ == Kind::kConfusionMatrix) return cm_;
  std::vector<double> expanded(static_cast<size_t>(num_labels_) * num_labels_);
  for (int j = 0; j < num_labels_; ++j) {
    for (int j2 = 0; j2 < num_labels_; ++j2) {
      expanded[static_cast<size_t>(j) * num_labels_ + j2] =
          AnswerProbability(j2, j);
    }
  }
  return expanded;
}

double WorkerModel::Deviation(const WorkerModel& other) const {
  QASCA_CHECK_EQ(num_labels_, other.num_labels());
  std::vector<double> a = AsConfusionMatrix();
  std::vector<double> b = other.AsConfusionMatrix();
  const double total = util::DeterministicSum(
      0, static_cast<int>(a.size()),
      [&](int i) { return std::fabs(a[i] - b[i]); });
  return total / static_cast<double>(a.size());
}

}  // namespace qasca
