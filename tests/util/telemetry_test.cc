#include "util/telemetry.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/telemetry_names.h"

namespace qasca::util {
namespace {

TEST(MetricRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricRegistry registry(true);
  Counter* a = registry.GetCounter("a");
  Counter* again = registry.GetCounter("a");
  EXPECT_EQ(a, again);
  EXPECT_EQ(a->name(), "a");
  Gauge* g = registry.GetGauge("g");
  EXPECT_EQ(registry.GetGauge("g"), g);
  LatencyHistogram* h = registry.GetLatency("h");
  EXPECT_EQ(registry.GetLatency("h"), h);
  // Same name in different instrument kinds is fine: separate maps.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("x")),
            static_cast<void*>(registry.GetGauge("x")));
}

TEST(MetricRegistryTest, CounterAndGaugeRecord) {
  MetricRegistry registry(true);
  Counter* c = registry.GetCounter("c");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  Gauge* g = registry.GetGauge("g");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(MetricRegistryTest, DisabledInstrumentsAreNoOps) {
  MetricRegistry registry(false);
  EXPECT_FALSE(registry.enabled());
  Counter* c = registry.GetCounter("c");
  c->Add(100);
  EXPECT_EQ(c->value(), 0);
  Gauge* g = registry.GetGauge("g");
  g->Set(3.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  LatencyHistogram* h = registry.GetLatency("h");
  h->RecordSeconds(1.0);
  EXPECT_EQ(h->count(), 0);
  TelemetrySnapshot snapshot = registry.Snapshot();
  EXPECT_FALSE(snapshot.enabled);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry registry(true);
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("apple")->Add(2);
  registry.GetCounter("mango")->Add(3);
  TelemetrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "apple");
  EXPECT_EQ(snapshot.counters[1].name, "mango");
  EXPECT_EQ(snapshot.counters[2].name, "zebra");
  EXPECT_EQ(snapshot.counters[0].value, 2);
}

// The concurrency contract: many threads hammering the same instruments
// must lose no increments and produce exact final counts.
TEST(MetricRegistryThreadsTest, ConcurrentCountersAreExact) {
  MetricRegistry registry(true);
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  Counter* shared = registry.GetCounter("shared");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, shared, t] {
      // Mix pre-resolved and get-or-create lookups so map access races
      // with recording.
      Counter* own =
          registry.GetCounter("per_thread." + std::to_string(t % 2));
      LatencyHistogram* lat = registry.GetLatency("lat");
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        shared->Add(1);
        own->Add(2);
        lat->RecordSeconds(1e-6);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared->value(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.GetCounter("per_thread.0")->value() +
                registry.GetCounter("per_thread.1")->value(),
            int64_t{2} * kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.GetLatency("lat")->count(),
            int64_t{kThreads} * kIncrementsPerThread);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBounded) {
  MetricRegistry registry(true);
  LatencyHistogram* h = registry.GetLatency("h");
  // Spread samples over several orders of magnitude.
  for (int i = 0; i < 100; ++i) h->RecordSeconds(1e-6);
  for (int i = 0; i < 10; ++i) h->RecordSeconds(1e-3);
  h->RecordSeconds(1e-1);
  EXPECT_EQ(h->count(), 111);
  const double p50 = h->Percentile(0.50);
  const double p95 = h->Percentile(0.95);
  const double p99 = h->Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // All quantiles clamp to the observed range.
  EXPECT_GE(p50, 1e-6 * 0.9);
  EXPECT_LE(p99, h->max_seconds());
  // The p50 must sit near the dominant 1us mode, far from the 1ms tail.
  EXPECT_LT(p50, 1e-4);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 1e-1);
  EXPECT_NEAR(h->total_seconds(), 100 * 1e-6 + 10 * 1e-3 + 1e-1, 1e-9);
}

TEST(SpanTest, NestingTracksDepthAndParent) {
  MetricRegistry registry(true);
  EXPECT_EQ(Span::current(), nullptr);
  {
    Span outer(&registry, tnames::kSpanAssignHit);
    EXPECT_EQ(Span::current(), &outer);
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(outer.parent(), nullptr);
    {
      Span mid(&registry, tnames::kSpanEstimateQw);
      Span inner(&registry, tnames::kSpanDinkelbachInner);
      EXPECT_EQ(Span::current(), &inner);
      EXPECT_EQ(inner.depth(), 2);
      EXPECT_EQ(inner.parent(), &mid);
      EXPECT_EQ(mid.parent(), &outer);
      EXPECT_STREQ(inner.name(), "dinkelbach_inner");
    }
    EXPECT_EQ(Span::current(), &outer);
  }
  EXPECT_EQ(Span::current(), nullptr);
  // Each span recorded exactly one sample into its histogram.
  EXPECT_EQ(registry.GetLatency(tnames::kSpanAssignHit)->count(), 1);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanEstimateQw)->count(), 1);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanDinkelbachInner)->count(), 1);
  // A child's elapsed time is contained in its parent's.
  EXPECT_LE(registry.GetLatency(tnames::kSpanEstimateQw)->max_seconds(),
            registry.GetLatency(tnames::kSpanAssignHit)->max_seconds());
}

TEST(SpanTest, NullAndDisabledRegistriesRecordNothing) {
  {
    Span span(nullptr, tnames::kSpanAssignHit);
    EXPECT_EQ(Span::current(), nullptr);
    EXPECT_EQ(span.depth(), 0);
  }
  MetricRegistry disabled(false);
  {
    Span span(&disabled, tnames::kSpanAssignHit);
    EXPECT_EQ(Span::current(), nullptr);
  }
  EXPECT_EQ(disabled.GetLatency(tnames::kSpanAssignHit)->count(), 0);
}

TEST(SpanThreadsTest, PerThreadStacksAreIndependent) {
  MetricRegistry registry(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer(&registry, tnames::kSpanAssignHit);
        Span inner(&registry, tnames::kSpanEstimateQw);
        // The stack is thread-local: this thread's innermost span is its
        // own `inner`, never another thread's.
        ASSERT_EQ(Span::current(), &inner);
        ASSERT_EQ(inner.parent(), &outer);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Span::current(), nullptr);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanAssignHit)->count(),
            int64_t{kThreads} * kSpansPerThread);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanEstimateQw)->count(),
            int64_t{kThreads} * kSpansPerThread);
}

TEST(MetricRegistryExportTest, ToJsonShape) {
  MetricRegistry registry(true);
  registry.GetCounter("em.iterations")->Add(7);
  registry.GetGauge("open_hits")->Set(3.0);
  registry.GetLatency("assign_hit")->RecordSeconds(0.002);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"em.iterations\":7"), std::string::npos);
  EXPECT_NE(json.find("\"open_hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"assign_hit\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\":"), std::string::npos);
}

TEST(MetricRegistryExportTest, ToPrometheusTextShape) {
  MetricRegistry registry(true);
  registry.GetCounter("em.iterations")->Add(7);
  registry.GetLatency("assign_hit")->RecordSeconds(0.002);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE qasca_em_iterations counter"),
            std::string::npos);
  EXPECT_NE(text.find("qasca_em_iterations 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qasca_assign_hit_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("qasca_assign_hit_seconds{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("qasca_assign_hit_seconds_count 1"),
            std::string::npos);
}

TEST(MetricRegistryExportTest, DisabledReportSaysSo) {
  MetricRegistry registry(false);
  EXPECT_NE(registry.ToReport().find("telemetry disabled"),
            std::string::npos);
}

TEST(LatencyHistogramTest, InterpolatedPercentilesAreMonotone) {
  MetricRegistry registry(true);
  LatencyHistogram* h = registry.GetLatency("h");
  for (int i = 1; i <= 1000; ++i) {
    h->RecordSeconds(static_cast<double>(i) * 1e-6);
  }
  double previous = 0.0;
  for (int step = 0; step <= 100; ++step) {
    const double p = static_cast<double>(step) / 100.0;
    const double value = h->Percentile(p);
    EXPECT_GE(value, previous) << "non-monotone at p=" << p;
    previous = value;
  }
}

TEST(LatencyHistogramTest, InterpolationErrorBoundedByBucketWidth) {
  MetricRegistry registry(true);
  LatencyHistogram* h = registry.GetLatency("h");
  for (int i = 1; i <= 1000; ++i) {
    h->RecordSeconds(static_cast<double>(i) * 1e-6);
  }
  // The interpolated value lies inside the log2 bucket of the true
  // empirical quantile, whose width is at most the quantile itself — so
  // the result is always within a factor of 2 of exact.
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const double exact = (1.0 + p * 999.0) * 1e-6;
    const double value = h->Percentile(p);
    EXPECT_GE(value, exact * 0.5) << "p=" << p;
    EXPECT_LE(value, exact * 2.0) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, InterpolatesWithinBucketInsteadOfSnapping) {
  MetricRegistry registry(true);
  LatencyHistogram* h = registry.GetLatency("h");
  // 1024 samples spanning one log2 bucket ([8192, 16384) ns) uniformly:
  // snapping would pin every quantile to a bucket edge; interpolation must
  // place the median near the bucket midpoint.
  for (int i = 0; i < 1024; ++i) {
    h->RecordSeconds((8192.0 + 8.0 * i) * 1e-9);
  }
  const double p50 = h->Percentile(0.50);
  EXPECT_NEAR(p50, 12288e-9, 256e-9);
  // Different quantiles map to different points of the same bucket.
  EXPECT_LT(h->Percentile(0.25), h->Percentile(0.75));
}

TEST(WindowedLatencyTest, SlidingWindowEvictsOldSamples) {
  MetricRegistry registry(true);
  WindowedLatency* window = registry.GetWindowed("w", 4);
  EXPECT_EQ(registry.GetWindowed("w", 4), window);
  EXPECT_EQ(window->window(), 4);
  EXPECT_EQ(window->count(), 0);
  // Fill with 1..4 ms, then push 5..8 ms: the first four must be evicted.
  for (int i = 1; i <= 4; ++i) {
    window->RecordSeconds(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(window->count(), 4);
  const double p0_before = window->Percentile(0.0);
  EXPECT_LT(p0_before, 2e-3);  // the 1ms sample's bucket
  for (int i = 5; i <= 8; ++i) {
    window->RecordSeconds(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(window->count(), 8);  // lifetime count keeps growing
  // Only 5..8 ms remain; every quantile sits in their log2 bucket
  // ([4.19, 8.39] ms), above the evicted 1ms sample.
  EXPECT_GT(window->Percentile(0.0), 4e-3);
  EXPECT_LE(window->Percentile(1.0), 8.4e-3);
}

TEST(WindowedLatencyTest, DisabledRecordsNothing) {
  MetricRegistry registry(false);
  WindowedLatency* window = registry.GetWindowed("w", 4);
  window->RecordSeconds(1e-3);
  EXPECT_EQ(window->count(), 0);
}

TEST(SloTrackerTest, TracksBreachTransitions) {
  MetricRegistry registry(true);
  SloTracker::Instruments instruments;
  instruments.window_name = "slo.test.window";
  instruments.over_target_name = "slo.test.over_target";
  instruments.breaches_name = "slo.test.breaches";
  instruments.window_p95_name = "slo.test.window_p95_ms";
  SloTracker::Options options;
  options.target_p95_seconds = 1e-3;
  options.window = 8;
  SloTracker slo(&registry, instruments, options);
  EXPECT_DOUBLE_EQ(slo.target_p95_seconds(), 1e-3);

  // Fast samples keep the window p95 under target: no breach.
  for (int i = 0; i < 8; ++i) slo.RecordSeconds(1e-4);
  EXPECT_FALSE(slo.in_breach());
  EXPECT_EQ(slo.breaches(), 0);
  EXPECT_EQ(slo.samples_over_target(), 0);
  EXPECT_LT(slo.WindowP95(), 1e-3);

  // A slow burst drives the window p95 over target exactly once.
  for (int i = 0; i < 8; ++i) slo.RecordSeconds(1e-2);
  EXPECT_TRUE(slo.in_breach());
  EXPECT_EQ(slo.breaches(), 1);
  EXPECT_EQ(slo.samples_over_target(), 8);
  EXPECT_GT(slo.WindowP95(), 1e-3);
  EXPECT_EQ(registry.GetCounter("slo.test.breaches")->value(), 1);
  EXPECT_EQ(registry.GetCounter("slo.test.over_target")->value(), 8);
  EXPECT_GT(registry.GetGauge("slo.test.window_p95_ms")->value(), 1.0);

  // Recovery: fast samples wash the slow ones out of the window and close
  // the breach; a second burst counts as a new breach.
  for (int i = 0; i < 8; ++i) slo.RecordSeconds(1e-4);
  EXPECT_FALSE(slo.in_breach());
  EXPECT_EQ(slo.breaches(), 1);
  for (int i = 0; i < 8; ++i) slo.RecordSeconds(1e-2);
  EXPECT_TRUE(slo.in_breach());
  EXPECT_EQ(slo.breaches(), 2);
  EXPECT_EQ(registry.GetCounter("slo.test.breaches")->value(), 2);
}

TEST(MetricRegistryExportTest, WindowsAppearInExports) {
  MetricRegistry registry(true);
  WindowedLatency* window = registry.GetWindowed("assign.window", 16);
  for (int i = 0; i < 16; ++i) window->RecordSeconds(2e-3);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"windows\":{\"assign.window\":{\"window\":16"),
            std::string::npos);
  std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("qasca_assign_window_window_seconds"),
            std::string::npos);
  std::string report = registry.ToReport();
  EXPECT_NE(report.find("sliding windows"), std::string::npos);
}

}  // namespace
}  // namespace qasca::util
