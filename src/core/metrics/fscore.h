#ifndef QASCA_CORE_METRICS_FSCORE_H_
#define QASCA_CORE_METRICS_FSCORE_H_

#include <string>

#include "core/metrics/metric.h"

namespace qasca {

/// Result of running Algorithm 1 ("Measure the Quality of Q for F-score").
struct FScoreQualityResult {
  /// lambda* = max_R F-score*(Q, R, alpha).
  double lambda = 0.0;
  /// The maximizing result vector R*.
  ResultVector optimal_result;
  /// Dinkelbach iterations until convergence (the paper's c; observed
  /// c <= 15 at n = 2000 in Section 6.1.2).
  int iterations = 0;
};

/// F-score (Section 3.2): the weighted harmonic mean of Precision and Recall
/// for a designated target label, with emphasis parameter alpha in (0,1)
/// (alpha > 1/2 emphasises Precision, alpha < 1/2 Recall).
///
/// The distribution-based variant F-score*(Q, R, alpha) (Eq. 9) approximates
/// E[F-score(T, R, alpha)] by the ratio of expectations of numerator and
/// denominator; the error is O(1/n) (Section 3.2.2).
///
/// Unlike Accuracy*, the optimal result vector R* is *not* the per-question
/// argmax: by Theorem 2, R*_i = target iff Q_{i,target} >= lambda* * alpha,
/// where lambda* = max_R F-score*(Q, R, alpha) is itself found by the
/// Dinkelbach iteration of Algorithm 1.
///
/// Questions need not be binary: with l > 2 labels, every non-target label
/// plays the role of L_2 ("non-target"), exactly as in the paper's
/// CompanyLogo experiment (Appendix J).
class FScoreMetric final : public EvaluationMetric {
 public:
  /// `alpha` must lie strictly inside (0, 1); `target_label` is the paper's
  /// L_1 (default: label 0).
  explicit FScoreMetric(double alpha, LabelIndex target_label = 0);

  double alpha() const { return alpha_; }
  LabelIndex target_label() const { return target_label_; }

  std::string name() const override;

  /// F-score(T, R, alpha) per Eq. 7; returns 0 when no question is both
  /// returned-as-target and truly the target (the 0/0 convention).
  double EvaluateAgainstTruth(const GroundTruthVector& truth,
                              const ResultVector& result) const override;

  /// F-score*(Q, R, alpha) per Eq. 9; returns 0 when the denominator is 0
  /// (possible only if no question is returned as target and all target
  /// probabilities are zero).
  double Evaluate(const DistributionMatrix& q,
                  const ResultVector& result) const override;

  /// The optimal result vector by Theorem 2: runs Algorithm 1 to find
  /// lambda*, then thresholds each Q_{i,target} at lambda* * alpha.
  ResultVector OptimalResult(const DistributionMatrix& q) const override;

  /// F(Q) = lambda* via Algorithm 1 (avoids re-evaluating R*).
  double Quality(const DistributionMatrix& q) const override;

  using QualityResult = FScoreQualityResult;

  /// Runs Algorithm 1 and returns lambda*, R*, and the iteration count.
  QualityResult ComputeQuality(const DistributionMatrix& q) const;

 private:
  double alpha_;
  LabelIndex target_label_;
};

/// F-score*(Q, R, alpha) (Eq. 9) as a free function. Unlike FScoreMetric,
/// alpha may take the closed interval [0, 1]: alpha = 1 is Precision*,
/// alpha = 0 is Recall* (the paper's Figure 3(a) sweeps the endpoints).
double FScoreStar(const DistributionMatrix& q, const ResultVector& result,
                  double alpha, LabelIndex target_label = 0);

/// Algorithm 1 over the closed alpha interval [0, 1]: returns lambda*, the
/// optimal result vector, and the Dinkelbach iteration count. FScoreMetric
/// delegates here with its stricter (0, 1) domain.
FScoreQualityResult SolveFScoreQuality(const DistributionMatrix& q,
                                       double alpha,
                                       LabelIndex target_label = 0);

/// Exact expected F-score E[F-score(T, R, alpha)] under Q (Eq. 8), computed
/// by conditioning on the number of true targets inside and outside the
/// returned-target set. Two independent Poisson-binomial DPs give the counts'
/// distributions; total cost O(n^2) — polynomial, unlike the 2^n sum of
/// Eq. 8, and cheaper than the O(n^3) method of [24]. Used to measure the
/// approximation error of F-score* (Figure 3(a)-(c)).
double ExactExpectedFScore(const DistributionMatrix& q,
                           const ResultVector& result, double alpha,
                           LabelIndex target_label = 0);

/// Literal evaluation of Eq. 8 by enumerating all 2^n ground-truth vectors.
/// Exponential; only for cross-checking ExactExpectedFScore in tests
/// (n <= ~18).
double BruteForceExpectedFScore(const DistributionMatrix& q,
                                const ResultVector& result, double alpha,
                                LabelIndex target_label = 0);

}  // namespace qasca

#endif  // QASCA_CORE_METRICS_FSCORE_H_
