#ifndef QASCA_BENCH_EXPERIMENT_DRIVER_H_
#define QASCA_BENCH_EXPERIMENT_DRIVER_H_

#include <string>
#include <vector>

#include "simulation/experiment.h"

namespace qasca::bench {

/// Seed-averaged traces for one application across systems. The paper runs
/// each application once on live AMT workers; a simulation can and should
/// average a few independent worlds to separate policy effects from
/// single-run noise.
struct AveragedTraces {
  ApplicationSpec spec;
  std::vector<std::string> system_names;
  /// Checkpoint x-axis (completed HITs), shared by all systems and seeds.
  std::vector<int> completed_hits;
  /// [system][checkpoint] mean quality.
  std::vector<std::vector<double>> quality;
  /// [system][checkpoint] mean worker-quality estimation deviation.
  std::vector<std::vector<double>> estimation_deviation;
  /// [system] mean final quality (Table 4).
  std::vector<double> final_quality;
  /// [system] worst assignment latency over all runs (Figure 6(a)).
  std::vector<double> max_assignment_seconds;
  /// [system] mean optimal-result-selection gain (Table 3).
  std::vector<double> result_selection_gain;
};

/// Runs the parallel experiment `seeds` times and averages.
AveragedTraces RunAveraged(const ApplicationSpec& spec,
                           const std::vector<SystemFactory>& systems,
                           int seeds, int checkpoints,
                           bool track_estimation_deviation);

/// Number of seeds to average, from the QASCA_BENCH_SEEDS environment
/// variable; `fallback` if unset.
int SeedsFromEnv(int fallback);

/// Prints a quality-vs-completed-HITs table for every system.
void PrintQualitySeries(const AveragedTraces& traces);

}  // namespace qasca::bench

#endif  // QASCA_BENCH_EXPERIMENT_DRIVER_H_
