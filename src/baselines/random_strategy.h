#ifndef QASCA_BASELINES_RANDOM_STRATEGY_H_
#define QASCA_BASELINES_RANDOM_STRATEGY_H_

#include <string>
#include <vector>

#include "platform/strategy.h"

namespace qasca {

/// The "Baseline" system of Section 6.2.1: assigns k questions drawn
/// uniformly at random from the worker's candidate set. This mirrors AMT's
/// own metric-oblivious behaviour.
class RandomStrategy final : public AssignmentStrategy {
 public:
  std::string name() const override { return "Baseline"; }

  std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) override;
};

}  // namespace qasca

#endif  // QASCA_BASELINES_RANDOM_STRATEGY_H_
