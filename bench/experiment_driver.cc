#include "bench/experiment_driver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/table.h"

namespace qasca::bench {

AveragedTraces RunAveraged(const ApplicationSpec& spec,
                           const std::vector<SystemFactory>& systems,
                           int seeds, int checkpoints,
                           bool track_estimation_deviation) {
  QASCA_CHECK_GT(seeds, 0);
  AveragedTraces averaged;
  averaged.spec = spec;
  for (const SystemFactory& factory : systems) {
    averaged.system_names.push_back(factory.name);
  }
  const size_t num_systems = systems.size();
  averaged.quality.assign(num_systems, {});
  averaged.estimation_deviation.assign(num_systems, {});
  averaged.final_quality.assign(num_systems, 0.0);
  averaged.max_assignment_seconds.assign(num_systems, 0.0);
  averaged.result_selection_gain.assign(num_systems, 0.0);

  for (int seed = 0; seed < seeds; ++seed) {
    ExperimentOptions options;
    options.seed = 1000 + 97 * seed;
    options.checkpoints = checkpoints;
    options.track_estimation_deviation = track_estimation_deviation;
    ExperimentResult result = RunParallelExperiment(spec, systems, options);
    for (size_t s = 0; s < num_systems; ++s) {
      const SystemTrace& trace = result.systems[s];
      if (seed == 0) {
        averaged.completed_hits = trace.completed_hits;
        averaged.quality[s].assign(trace.quality.size(), 0.0);
        averaged.estimation_deviation[s].assign(
            trace.estimation_deviation.size(), 0.0);
      }
      for (size_t c = 0; c < trace.quality.size(); ++c) {
        averaged.quality[s][c] += trace.quality[c] / seeds;
      }
      for (size_t c = 0; c < trace.estimation_deviation.size(); ++c) {
        averaged.estimation_deviation[s][c] +=
            trace.estimation_deviation[c] / seeds;
      }
      averaged.final_quality[s] += trace.final_quality / seeds;
      averaged.max_assignment_seconds[s] = std::max(
          averaged.max_assignment_seconds[s], trace.max_assignment_seconds);
      averaged.result_selection_gain[s] += trace.result_selection_gain / seeds;
    }
  }
  return averaged;
}

int SeedsFromEnv(int fallback) {
  const char* value = std::getenv("QASCA_BENCH_SEEDS");
  if (value == nullptr) return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

void PrintQualitySeries(const AveragedTraces& traces) {
  std::vector<std::string> header = {"HITs"};
  for (const std::string& name : traces.system_names) header.push_back(name);
  util::Table table(header);
  for (size_t c = 0; c < traces.completed_hits.size(); ++c) {
    table.AddRow().Cell(int64_t{traces.completed_hits[c]});
    for (size_t s = 0; s < traces.system_names.size(); ++s) {
      table.Percent(traces.quality[s][c], 2);
    }
  }
  table.Print();
}

}  // namespace qasca::bench
