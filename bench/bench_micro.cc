// Google-benchmark microbenchmarks for the core algorithmic kernels:
// Algorithm 1 (F-score quality via Dinkelbach), the two online assignment
// algorithms, posterior updates, Qw estimation, one EM fit, and the exact
// expected-F-score DP.

#include <benchmark/benchmark.h>

#include <numeric>

#include "bench/bench_util.h"
#include "core/assignment/fscore_online.h"
#include "core/assignment/topk_benefit.h"
#include "core/metrics/accuracy.h"
#include "core/metrics/fscore.h"
#include "model/em.h"
#include "model/posterior.h"
#include "simulation/dataset.h"
#include "simulation/simulated_worker.h"
#include "util/rng.h"

namespace qasca {
namespace {

void BM_FScoreQuality(benchmark::State& state) {
  util::Rng rng(1);
  DistributionMatrix q =
      bench::RandomBinaryMatrix(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveFScoreQuality(q, 0.5));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FScoreQuality)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_AccuracyQuality(benchmark::State& state) {
  util::Rng rng(2);
  DistributionMatrix q =
      bench::RandomMatrix(static_cast<int>(state.range(0)), 3, rng);
  AccuracyMetric metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Quality(q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AccuracyQuality)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_TopKBenefitAssignment(benchmark::State& state) {
  util::Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  DistributionMatrix qc = bench::RandomBinaryMatrix(n, rng);
  DistributionMatrix qw = bench::DeriveEstimatedMatrix(qc, rng);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates.resize(n);
  std::iota(request.candidates.begin(), request.candidates.end(), 0);
  request.k = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignTopKBenefit(request));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TopKBenefitAssignment)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

void BM_FScoreOnlineAssignment(benchmark::State& state) {
  util::Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  DistributionMatrix qc = bench::RandomBinaryMatrix(n, rng);
  DistributionMatrix qw = bench::DeriveEstimatedMatrix(qc, rng);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates.resize(n);
  std::iota(request.candidates.begin(), request.candidates.end(), 0);
  request.k = 20;
  FScoreAssignmentOptions options;
  options.alpha = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignFScoreOnline(request, options));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FScoreOnlineAssignment)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

void BM_PosteriorRow(benchmark::State& state) {
  const int answers_count = static_cast<int>(state.range(0));
  WorkerModel model = WorkerModel::Cm({0.8, 0.2, 0.3, 0.7}, 2);
  AnswerList answers;
  for (int a = 0; a < answers_count; ++a) {
    answers.push_back(Answer{a, a % 2});
  }
  std::vector<double> prior = {0.5, 0.5};
  WorkerModelLookup lookup = [&model](WorkerId) -> const WorkerModel& {
    return model;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePosteriorRow(answers, prior, lookup));
  }
}
BENCHMARK(BM_PosteriorRow)->Arg(3)->Arg(10)->Arg(30);

void BM_EstimateWorkerRow(benchmark::State& state) {
  const int num_labels = static_cast<int>(state.range(0));
  util::Rng rng(5);
  std::vector<double> row(num_labels, 1.0 / num_labels);
  WorkerModel model = WorkerModel::Wp(0.8, num_labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateWorkerRow(row, model, QwMode::kSampled, rng));
  }
}
BENCHMARK(BM_EstimateWorkerRow)->Arg(2)->Arg(3)->Arg(214);

void BM_EmFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(6);
  ApplicationSpec spec = FilmPostersApp();
  spec.num_questions = n;
  GroundTruthVector truth = GenerateGroundTruth(spec, rng);
  std::vector<SimulatedWorker> pool = GenerateWorkerPool(spec.workers, rng);
  AnswerSet answers(n);
  for (int i = 0; i < n; ++i) {
    for (int w : rng.SampleWithoutReplacement(
             static_cast<int>(pool.size()), 3)) {
      answers[i].push_back(Answer{w, pool[w].AnswerQuestion(truth[i], rng)});
    }
  }
  EmOptions options;
  options.max_iterations = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunEm(answers, 2, options));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EmFit)->Range(250, 4000)->Complexity(benchmark::oN);

void BM_EmWarmStartRefit(benchmark::State& state) {
  // The HIT-completion path: refit after k new answers arrive, warm-started
  // from the previous fixed point.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(8);
  ApplicationSpec spec = FilmPostersApp();
  spec.num_questions = n;
  GroundTruthVector truth = GenerateGroundTruth(spec, rng);
  std::vector<SimulatedWorker> pool = GenerateWorkerPool(spec.workers, rng);
  AnswerSet answers(n);
  for (int i = 0; i < n; ++i) {
    for (int w : rng.SampleWithoutReplacement(
             static_cast<int>(pool.size()), 3)) {
      answers[i].push_back(Answer{w, pool[w].AnswerQuestion(truth[i], rng)});
    }
  }
  EmOptions options;
  options.max_iterations = 15;
  EmResult previous = RunEm(answers, 2, options);
  for (int i = 0; i < 4; ++i) answers[i].push_back(Answer{0, truth[i]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunEmWarmStart(answers, 2, options, previous));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EmWarmStartRefit)->Range(250, 4000)->Complexity(benchmark::oN);

void BM_ExactExpectedFScore(benchmark::State& state) {
  util::Rng rng(7);
  const int n = static_cast<int>(state.range(0));
  DistributionMatrix q = bench::RandomBinaryMatrix(n, rng);
  ResultVector r = bench::RandomBinaryResult(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactExpectedFScore(q, r, 0.5));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ExactExpectedFScore)
    ->Range(64, 2048)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace qasca

BENCHMARK_MAIN();
