#!/usr/bin/env python3
"""Static lint: distribution-row mutations must be validator-aware.

Any translation unit under src/core/ or src/model/ that constructs or
mutates probability-distribution rows — calls to SetRow / SetRowNormalized,
or manual normalisation loops (`w /= total` style divides following a sum
accumulation) — must reference the invariant subsystem: include
util/invariants.h, call an invariants::Check* validator, or use
QASCA_DCHECK_OK / QASCA_CHECK_OK. This keeps every producer of probability
mass wired to a mechanical proof of row-stochasticity (ISSUE 1; see
DESIGN.md "Correctness tooling").

Exit status: 0 when clean, 1 when any file violates the rule, 2 on usage
errors. Intended to run from tools/run_checks.sh.
"""

import argparse
import re
import sys
from pathlib import Path

# Call sites that create or overwrite a probability distribution row.
MUTATION_PATTERNS = [
    re.compile(r"\bSetRowNormalized\s*\("),
    re.compile(r"\bSetRow\s*\("),
    re.compile(r"\bNormalizeInPlace\s*\("),
]

# Evidence that the file participates in the invariant subsystem.
VALIDATOR_PATTERNS = [
    re.compile(r'#include\s+"util/invariants\.h"'),
    re.compile(r"\binvariants::Check\w+\s*\("),
    re.compile(r"\bQASCA_DCHECK_OK\s*\("),
    re.compile(r"\bQASCA_CHECK_OK\s*\("),
]

# Files exempt from the rule. distribution_matrix.h only *declares* the
# mutators (definitions live in the .cc, which is covered).
ALLOWLIST = {
    "src/core/distribution_matrix.h",
}

LINTED_ROOTS = ("src/core", "src/model")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments so commented-out code cannot satisfy
    or trigger the lint."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def lint_file(path: Path, repo_root: Path) -> list[str]:
    rel = path.relative_to(repo_root).as_posix()
    if rel in ALLOWLIST:
        return []
    text = strip_comments(path.read_text(encoding="utf-8"))
    mutations = [p.pattern for p in MUTATION_PATTERNS if p.search(text)]
    if not mutations:
        return []
    if any(p.search(text) for p in VALIDATOR_PATTERNS):
        return []
    return [
        f"{rel}: mutates distribution rows (matched {', '.join(mutations)}) "
        "without referencing util/invariants.h or a Check* validator"
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (defaults to the parent of tools/)",
    )
    args = parser.parse_args()
    repo_root = args.repo_root.resolve()

    failures: list[str] = []
    checked = 0
    for root in LINTED_ROOTS:
        base = repo_root / root
        if not base.is_dir():
            print(f"lint_invariants: missing directory {base}", file=sys.stderr)
            return 2
        for path in sorted(base.rglob("*.cc")) + sorted(base.rglob("*.h")):
            checked += 1
            failures.extend(lint_file(path, repo_root))

    if failures:
        print("lint_invariants: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"lint_invariants: OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
