#ifndef QASCA_CORE_NOT_FIRST_H_
#define QASCA_CORE_NOT_FIRST_H_

// Companion header for not_first.cc (itself hygienic).

int NotFirst();

#endif  // QASCA_CORE_NOT_FIRST_H_
