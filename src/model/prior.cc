#include "model/prior.h"

#include "util/logging.h"

namespace qasca {

std::vector<double> UniformPrior(int num_labels) {
  QASCA_CHECK_GT(num_labels, 0);
  return std::vector<double>(num_labels, 1.0 / num_labels);
}

std::vector<double> EstimatePrior(const DistributionMatrix& posterior) {
  QASCA_CHECK_GT(posterior.num_questions(), 0);
  std::vector<double> prior(posterior.num_labels(), 0.0);
  for (int i = 0; i < posterior.num_questions(); ++i) {
    std::span<const double> row = posterior.Row(i);
    for (int j = 0; j < posterior.num_labels(); ++j) prior[j] += row[j];
  }
  for (double& p : prior) p /= posterior.num_questions();
  return prior;
}

}  // namespace qasca
