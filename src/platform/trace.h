#ifndef QASCA_PLATFORM_TRACE_H_
#define QASCA_PLATFORM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/tick.h"

namespace qasca {

/// Append-only event log of the platform: every HIT assignment and
/// completion, in order. The real QASCA persists this in its Database; here
/// it backs experiment post-mortems (which questions went to which workers
/// and when) and can be exported as JSON Lines for external analysis.
///
/// Threading contract: engine-thread-only, like the Database — events are
/// appended between kernel dispatches and never touched by pool workers,
/// so the log needs no locking.
class EventTrace {
 public:
  enum class Kind { kHitAssigned, kHitCompleted, kLeaseExpired };

  /// Produces the timestamp recorded on each event. Injectable so tests and
  /// replay tooling can pin timestamps; the default reads a steady clock
  /// (util::SteadyTickSource — platform code never reads clocks directly,
  /// per the clock-discipline analyzer pass).
  using TickSource = util::TickSource;

  struct Event {
    /// Monotone 0-based position in the log.
    int sequence = 0;
    /// Nanoseconds since the trace was constructed (steady clock), or
    /// whatever the injected TickSource returns. Monotone non-decreasing
    /// under the default source.
    uint64_t t_ns = 0;
    Kind kind = Kind::kHitAssigned;
    WorkerId worker = 0;
    /// The HIT's questions; for completions, parallel to `labels`.
    std::vector<QuestionIndex> questions;
    /// Answered labels; empty for assignments.
    std::vector<LabelIndex> labels;
  };

  /// Default: timestamps are steady-clock nanoseconds since construction.
  EventTrace();
  /// Timestamps come from `tick_source` (must be non-null). Tests inject a
  /// counter here so JSON output stays byte-exact.
  explicit EventTrace(TickSource tick_source);

  void RecordAssignment(WorkerId worker,
                        const std::vector<QuestionIndex>& questions);
  void RecordCompletion(WorkerId worker,
                        const std::vector<QuestionIndex>& questions,
                        const std::vector<LabelIndex>& labels);
  /// The worker's lease timed out before completion; `questions` returned
  /// to the assignment pool.
  void RecordLeaseExpiry(WorkerId worker,
                         const std::vector<QuestionIndex>& questions);

  const std::vector<Event>& events() const { return events_; }
  int size() const { return static_cast<int>(events_.size()); }

  /// Number of events of the given kind.
  int CountOf(Kind kind) const;

  /// One JSON object per line, e.g.
  /// {"seq":0,"t_ns":1200,"kind":"assigned","worker":3,
  ///  "questions":[1,4],"labels":[]}.
  std::string ToJsonLines() const;

 private:
  TickSource tick_source_;
  std::vector<Event> events_;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_TRACE_H_
