#include "core/metrics/accuracy.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace qasca {
namespace {

// The current distribution matrix Qc of Figure 2.
DistributionMatrix Figure2Qc() {
  DistributionMatrix qc(6, 2);
  qc.SetRow(0, std::vector<double>{0.8, 0.2});
  qc.SetRow(1, std::vector<double>{0.6, 0.4});
  qc.SetRow(2, std::vector<double>{0.25, 0.75});
  qc.SetRow(3, std::vector<double>{0.5, 0.5});
  qc.SetRow(4, std::vector<double>{0.9, 0.1});
  qc.SetRow(5, std::vector<double>{0.3, 0.7});
  return qc;
}

TEST(AccuracyTest, GroundTruthDefinition) {
  // Section 3.1's example: n=4, T=[2,1,3,2], R=[2,1,3,1] -> 0.75
  // (labels are 0-based here).
  AccuracyMetric metric;
  GroundTruthVector truth = {1, 0, 2, 1};
  ResultVector result = {1, 0, 2, 0};
  EXPECT_DOUBLE_EQ(metric.EvaluateAgainstTruth(truth, result), 0.75);
}

TEST(AccuracyTest, GroundTruthAllCorrectAndAllWrong) {
  AccuracyMetric metric;
  GroundTruthVector truth = {0, 1, 0};
  EXPECT_DOUBLE_EQ(metric.EvaluateAgainstTruth(truth, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(metric.EvaluateAgainstTruth(truth, {1, 0, 1}), 0.0);
}

TEST(AccuracyTest, PaperExampleExpectedAccuracy) {
  // Section 3.1.1: R = [1,2,2,1,1,1] (1-based) on Figure 2's Qc gives
  // Accuracy* = 60.83%.
  AccuracyMetric metric;
  ResultVector result = {0, 1, 1, 0, 0, 0};
  EXPECT_NEAR(metric.Evaluate(Figure2Qc(), result), 0.6083, 1e-4);
}

TEST(AccuracyTest, PaperExampleOptimalQuality) {
  // Section 3.1.2: F(Qc) = Accuracy*(Qc, R*) = 70.83%.
  AccuracyMetric metric;
  DistributionMatrix qc = Figure2Qc();
  EXPECT_NEAR(metric.Quality(qc), 0.7083, 1e-4);
  // R* = [1,1,2,1,1,2] (1-based; index 3 ties, argmax picks label 0).
  EXPECT_EQ(metric.OptimalResult(qc), (ResultVector{0, 0, 1, 0, 0, 1}));
}

TEST(AccuracyTest, Theorem1OptimalBeatsEveryOtherResult) {
  // Exhaustively verify Theorem 1 on random small matrices: the argmax
  // result is at least as good as every alternative result vector.
  AccuracyMetric metric;
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    DistributionMatrix q(4, 3);
    for (int i = 0; i < 4; ++i) {
      std::vector<double> w = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
      q.SetRowNormalized(i, w);
    }
    double best = metric.Evaluate(q, metric.OptimalResult(q));
    ResultVector r(4);
    for (int mask = 0; mask < 81; ++mask) {
      int m = mask;
      for (int i = 0; i < 4; ++i) {
        r[i] = m % 3;
        m /= 3;
      }
      EXPECT_LE(metric.Evaluate(q, r), best + 1e-12);
    }
  }
}

TEST(AccuracyTest, QualityEqualsEvaluateOfOptimal) {
  util::Rng rng(5);
  AccuracyMetric metric;
  DistributionMatrix q(10, 4);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> w(4);
    for (double& x : w) x = rng.Uniform(0.01, 1.0);
    q.SetRowNormalized(i, w);
  }
  EXPECT_NEAR(metric.Quality(q), metric.Evaluate(q, metric.OptimalResult(q)),
              1e-12);
}

TEST(AccuracyTest, ExpectationMatchesMonteCarlo) {
  // Accuracy*(Q, R) is E[Accuracy(T, R)] when T ~ Q.
  util::Rng rng(6);
  AccuracyMetric metric;
  DistributionMatrix q(5, 2);
  for (int i = 0; i < 5; ++i) {
    double p = rng.Uniform(0.1, 0.9);
    q.SetRow(i, std::vector<double>{p, 1.0 - p});
  }
  ResultVector result = {0, 1, 0, 1, 0};
  double expected = metric.Evaluate(q, result);

  double total = 0.0;
  const int trials = 200000;
  GroundTruthVector truth(5);
  for (int t = 0; t < trials; ++t) {
    for (int i = 0; i < 5; ++i) truth[i] = rng.Uniform() < q.At(i, 0) ? 0 : 1;
    total += metric.EvaluateAgainstTruth(truth, result);
  }
  EXPECT_NEAR(total / trials, expected, 0.005);
}

TEST(AccuracyTest, UniformMatrixQualityIsOneOverL) {
  AccuracyMetric metric;
  DistributionMatrix q(7, 5);
  EXPECT_NEAR(metric.Quality(q), 0.2, 1e-12);
}

TEST(AccuracyDeathTest, MismatchedSizesAbort) {
  AccuracyMetric metric;
  DistributionMatrix q(3, 2);
  EXPECT_DEATH((void)metric.Evaluate(q, ResultVector{0, 1}), "Check failed");
}

}  // namespace
}  // namespace qasca
