#include "simulation/dataset.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(DatasetTest, PaperApplicationsMatchTable1) {
  std::vector<ApplicationSpec> apps = PaperApplications();
  ASSERT_EQ(apps.size(), 5u);

  EXPECT_EQ(apps[0].name, "FS");
  EXPECT_EQ(apps[0].num_questions, 1000);
  EXPECT_EQ(apps[0].metric.kind, MetricSpec::Kind::kAccuracy);

  EXPECT_EQ(apps[1].name, "SA");
  EXPECT_EQ(apps[1].num_labels, 3);
  EXPECT_EQ(apps[1].metric.kind, MetricSpec::Kind::kAccuracy);

  EXPECT_EQ(apps[2].name, "ER");
  EXPECT_EQ(apps[2].num_questions, 2000);
  EXPECT_EQ(apps[2].metric.kind, MetricSpec::Kind::kFScore);
  EXPECT_DOUBLE_EQ(apps[2].metric.alpha, 0.5);

  EXPECT_EQ(apps[3].name, "PSA");
  EXPECT_DOUBLE_EQ(apps[3].metric.alpha, 0.75);

  EXPECT_EQ(apps[4].name, "NSA");
  EXPECT_DOUBLE_EQ(apps[4].metric.alpha, 0.25);

  for (const ApplicationSpec& app : apps) {
    EXPECT_EQ(app.questions_per_hit, 4);
    EXPECT_EQ(app.answers_per_question, 3);
    // m = n * z / k (Table 1: 750 HITs, 1500 for ER).
    EXPECT_EQ(app.TotalHits(), app.num_questions * 3 / 4);
  }
}

TEST(DatasetTest, CompanyLogoMatchesAppendixJ) {
  ApplicationSpec app = CompanyLogoApp();
  EXPECT_EQ(app.num_questions, 500);
  EXPECT_EQ(app.num_labels, 214);
  EXPECT_EQ(app.questions_per_hit, 5);
  EXPECT_EQ(app.TotalHits(), 300);
  EXPECT_NEAR(app.truth_prior[0], 0.256, 1e-9);
  double total = 0.0;
  for (double p : app.truth_prior) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DatasetTest, GroundTruthHasSpecShapeAndPrior) {
  util::Rng rng(9);
  ApplicationSpec app = EntityResolutionApp();
  GroundTruthVector truth = GenerateGroundTruth(app, rng);
  ASSERT_EQ(truth.size(), 2000u);
  int target = 0;
  for (LabelIndex t : truth) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 2);
    if (t == 0) ++target;
  }
  EXPECT_NEAR(target / 2000.0, app.truth_prior[0], 0.04);
}

TEST(DatasetTest, MakeAppConfigIsValidAndBudgeted) {
  for (const ApplicationSpec& app : PaperApplications()) {
    AppConfig config = MakeAppConfig(app);
    EXPECT_TRUE(config.Validate().ok()) << app.name;
    EXPECT_EQ(config.TotalHits(), app.TotalHits()) << app.name;
    EXPECT_EQ(config.num_questions, app.num_questions);
  }
}

TEST(DatasetTest, CompanyLogoUsesWpModels) {
  AppConfig config = MakeAppConfig(CompanyLogoApp());
  EXPECT_EQ(config.worker_kind, WorkerModel::Kind::kWorkerProbability);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(DatasetTest, WorkerPoolSpecsAreInternallyConsistent) {
  for (const ApplicationSpec& app : PaperApplications()) {
    EXPECT_EQ(app.workers.num_labels, app.num_labels) << app.name;
    EXPECT_EQ(static_cast<int>(app.truth_prior.size()), app.num_labels)
        << app.name;
  }
}

}  // namespace
}  // namespace qasca
