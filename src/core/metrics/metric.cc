#include "core/metrics/metric.h"

#include <cmath>

#include "core/metrics/accuracy.h"
#include "core/metrics/cost_accuracy.h"
#include "core/metrics/fscore.h"
#include "util/logging.h"

namespace qasca {

int MetricSpec::CostLabels() const {
  QASCA_CHECK(kind == Kind::kCostAccuracy);
  int num_labels = static_cast<int>(std::lround(std::sqrt(costs.size())));
  QASCA_CHECK_EQ(static_cast<size_t>(num_labels) * num_labels, costs.size())
      << "cost matrix must be square";
  return num_labels;
}

std::unique_ptr<EvaluationMetric> MetricSpec::Make() const {
  switch (kind) {
    case Kind::kAccuracy:
      return std::make_unique<AccuracyMetric>();
    case Kind::kFScore:
      return std::make_unique<FScoreMetric>(alpha, target_label);
    case Kind::kCostAccuracy:
      return std::make_unique<CostAccuracyMetric>(costs, CostLabels());
  }
  return nullptr;
}

}  // namespace qasca
