// PR 2 hot-path scaling benchmark: end-to-end HIT request/complete cycles
// on the engine while sweeping AppConfig::num_threads and
// AppConfig::em_refresh_interval.
//
// Measures, per (n, threads) configuration:
//   * p50 / p95 assignment latency (the strategy call inside RequestHit),
//   * completions per second (EM refresh is the dominant completion cost),
//   * a decision hash over every selected question index, in order — equal
//     hashes across thread counts prove the determinism contract end to end,
//   * speedup vs the 1-thread run of the same n.
//
// Also measures the algorithmic speedup of the incremental Qc refresh:
// em_refresh_interval 1 (the paper's refit-every-completion engine) vs 8,
// and (PR 3) a per-stage breakdown from the engine's telemetry registry:
// where each HIT cycle's time goes (EM refit, Qw estimation, Top-K scan /
// Dinkelbach solves), with the full MetricRegistry::ToJson() embedded.
//
// (PR 5) adds a fault-tolerance section: the same workload with 5% of HIT
// requests abandoned — the lease expires, the questions requeue, the
// budget refunds — reporting completion throughput against the fault-free
// run plus the robustness layer's lease/requeue counters (schema v3).
//
// (PR 7, schema v4) adds the assignment-kernel sections:
//   * "kernels": the runtime-dispatched SIMD ISA the host resolved, the
//     likelihood-cache hit rate, and the overlay / closed-form row counts
//     from a telemetry-enabled run;
//   * "kernel_optimization": legacy Qw path (full deep copy, no cache —
//     use_qw_overlay=false + likelihood_cache_enabled=false) vs the
//     optimized path at each n, with p50 assignment latency, the per-stage
//     qw_estimate / topk_scan attribution, and a decision-hash equality
//     check (the two representations must select identical HITs).
//
// Emits a single JSON document (schema documented in README.md; written to
// --out, default stdout). tools/run_bench.sh drives this binary and places
// BENCH_PR7.json at the repo root.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/kernels/kernels.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/telemetry_names.h"

namespace qasca {
namespace {

// Deterministic pseudo-noisy worker (~25% wrong): the answer depends only
// on (worker, question, truth), so every configuration replays the same
// answer stream and decision hashes are comparable.
LabelIndex SimulatedAnswer(WorkerId worker, QuestionIndex question,
                           LabelIndex truth, int num_labels) {
  uint64_t h = (static_cast<uint64_t>(worker) * 1000003u +
                static_cast<uint64_t>(question) + 1) *
               0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  if (h % 100 < 25) {
    return static_cast<LabelIndex>(
        (static_cast<uint64_t>(truth) + 1 + h % (num_labels - 1)) %
        num_labels);
  }
  return truth;
}

struct RunResult {
  double p50_assignment_seconds = 0.0;
  double p95_assignment_seconds = 0.0;
  double completions_per_second = 0.0;
  double total_seconds = 0.0;
  uint64_t decision_hash = 0;
  int full_em_refits = 0;
  int incremental_refreshes = 0;
  int completed_hits = 0;
  int leases_expired = 0;
  int questions_requeued = 0;
  // Filled only when CycleOptions::telemetry is set.
  double qw_estimate_ms = 0.0;
  double topk_scan_ms = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t overlay_rows = 0;
  int64_t closed_form_rows = 0;
};

struct CycleOptions {
  int abandon_permille = 0;
  // false = legacy Qw path: full deep copy of Qc per request, per-request
  // likelihood-table rebuild (use_qw_overlay and likelihood_cache_enabled
  // both off). Decisions are bit-identical either way.
  bool optimized_assignment = true;
  bool telemetry = false;
};

// Deterministic per-round abandonment decision (same mixing as
// SimulatedAnswer): true on ~abandon_permille/1000 of rounds.
bool AbandonsRound(int round, int abandon_permille) {
  if (abandon_permille == 0) return false;
  uint64_t h = (static_cast<uint64_t>(round) + 1) * 0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return h % 1000 < static_cast<uint64_t>(abandon_permille);
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double index = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(index);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = index - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

RunResult RunHitCycles(int n, int num_threads, int em_refresh_interval,
                       int hits, CycleOptions options = {}) {
  const int abandon_permille = options.abandon_permille;
  AppConfig config;
  config.name = "hotpath";
  config.num_questions = n;
  config.num_labels = 2;
  config.questions_per_hit = 20;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * hits;
  config.metric = MetricSpec::Accuracy();
  config.worker_kind = WorkerModel::Kind::kWorkerProbability;
  config.em.max_iterations = 15;
  config.num_threads = num_threads;
  config.em_refresh_interval = em_refresh_interval;
  config.use_qw_overlay = options.optimized_assignment;
  config.likelihood_cache_enabled = options.optimized_assignment;
  config.telemetry_enabled = options.telemetry;
  // Abandoned HITs expire on the next Tick; the questions requeue and the
  // budget refunds, so the run still completes `hits` HITs total.
  if (abandon_permille > 0) config.lease_timeout_ticks = 1;

  GroundTruthVector truth(n);
  for (int q = 0; q < n; ++q) truth[q] = q % 2;

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/11);
  RunResult result;
  std::vector<double> request_seconds;
  request_seconds.reserve(static_cast<size_t>(hits));
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  double completion_seconds = 0.0;

  util::Stopwatch total;
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 30;
    util::Stopwatch stopwatch;
    auto hit = engine.RequestHit(worker);
    request_seconds.push_back(stopwatch.ElapsedSeconds());
    QASCA_CHECK(hit.ok()) << hit.status().ToString();
    if (AbandonsRound(round - 1, abandon_permille)) {
      // The worker walks away; the lease (timeout 1) expires on this tick,
      // requeueing the questions and refunding the HIT.
      engine.Tick(1);
      continue;
    }
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      hash ^= static_cast<uint64_t>(q) + 1;
      hash *= 1099511628211ull;
      labels.push_back(SimulatedAnswer(worker, q, truth[q], 2));
    }
    stopwatch.Reset();
    QASCA_CHECK(engine.CompleteHit(worker, labels).ok());
    completion_seconds += stopwatch.ElapsedSeconds();
  }
  result.total_seconds = total.ElapsedSeconds();

  std::sort(request_seconds.begin(), request_seconds.end());
  result.p50_assignment_seconds = PercentileOfSorted(request_seconds, 0.50);
  result.p95_assignment_seconds = PercentileOfSorted(request_seconds, 0.95);
  result.completions_per_second =
      completion_seconds > 0.0
          ? static_cast<double>(engine.completed_hits()) / completion_seconds
          : 0.0;
  result.decision_hash = hash;
  result.full_em_refits = engine.full_em_refits();
  result.incremental_refreshes = engine.incremental_refreshes();
  result.completed_hits = engine.completed_hits();
  result.leases_expired = engine.leases_expired();
  result.questions_requeued = engine.questions_requeued();
  if (options.telemetry) {
    const util::TelemetrySnapshot snapshot = engine.TelemetrySnapshot();
    for (const util::LatencySnapshot& latency : snapshot.latencies) {
      if (latency.name == "estimate_qw") {
        result.qw_estimate_ms = latency.total_seconds * 1e3;
      }
      if (latency.name == "topk_scan") {
        result.topk_scan_ms = latency.total_seconds * 1e3;
      }
    }
    for (const util::CounterSnapshot& counter : snapshot.counters) {
      if (counter.name == util::tnames::kQwLikelihoodCacheHits) {
        result.cache_hits = counter.value;
      }
      if (counter.name == util::tnames::kQwLikelihoodCacheMisses) {
        result.cache_misses = counter.value;
      }
      if (counter.name == util::tnames::kQwOverlayRows) {
        result.overlay_rows = counter.value;
      }
      if (counter.name == util::tnames::kQwClosedFormRows) {
        result.closed_form_rows = counter.value;
      }
    }
  }
  return result;
}

// One fully instrumented engine run; returns the telemetry registry's JSON
// plus the headline per-stage numbers tools/run_bench.sh summarises.
struct StageBreakdown {
  double em_refit_ms = 0.0;
  double qw_estimate_ms = 0.0;
  double topk_scan_ms = 0.0;
  double fscore_online_ms = 0.0;
  int64_t dinkelbach_iters = 0;
  std::string telemetry_json;
};

StageBreakdown RunStageBreakdown(const MetricSpec& metric, int n, int hits) {
  AppConfig config;
  config.name = "hotpath-breakdown";
  config.num_questions = n;
  config.num_labels = 2;
  config.questions_per_hit = 20;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * hits;
  config.metric = metric;
  config.worker_kind = WorkerModel::Kind::kWorkerProbability;
  config.em.max_iterations = 15;
  config.em_refresh_interval = 4;
  config.telemetry_enabled = true;

  GroundTruthVector truth(n);
  for (int q = 0; q < n; ++q) truth[q] = q % 2;

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/11);
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 30;
    auto hit = engine.RequestHit(worker);
    QASCA_CHECK(hit.ok()) << hit.status().ToString();
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      labels.push_back(SimulatedAnswer(worker, q, truth[q], 2));
    }
    QASCA_CHECK(engine.CompleteHit(worker, labels).ok());
  }

  StageBreakdown breakdown;
  const util::TelemetrySnapshot snapshot = engine.TelemetrySnapshot();
  for (const util::LatencySnapshot& latency : snapshot.latencies) {
    const double total_ms = latency.total_seconds * 1e3;
    if (latency.name == "em_full_refit") breakdown.em_refit_ms = total_ms;
    if (latency.name == "estimate_qw") breakdown.qw_estimate_ms = total_ms;
    if (latency.name == "topk_scan") breakdown.topk_scan_ms = total_ms;
    if (latency.name == "fscore_online") {
      breakdown.fscore_online_ms = total_ms;
    }
  }
  for (const util::CounterSnapshot& counter : snapshot.counters) {
    if (counter.name == "dinkelbach.inner_iterations") {
      breakdown.dinkelbach_iters = counter.value;
    }
  }
  breakdown.telemetry_json = engine.telemetry().ToJson();
  return breakdown;
}

int Main(int argc, char** argv) {
  std::string commit = "unknown";
  std::string date = "unknown";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      QASCA_CHECK(i + 1 < argc) << "missing value for" << arg;
      return argv[++i];
    };
    if (arg == "--commit") {
      commit = value();
    } else if (arg == "--date") {
      date = value();
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath_scaling [--commit SHA] [--date D] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  const std::vector<int> sizes = {2000, 10000};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const int kHits = 30;

  std::FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  QASCA_CHECK(out != nullptr) << "cannot open" << out_path;

  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_hotpath_scaling\",\n");
  std::fprintf(out, "  \"schema_version\": 4,\n");
  std::fprintf(out, "  \"commit\": \"%s\",\n", commit.c_str());
  std::fprintf(out, "  \"date\": \"%s\",\n", date.c_str());
  std::fprintf(out, "  \"machine\": { \"hardware_threads\": %u },\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"workload\": { \"metric\": \"accuracy\", \"worker_kind\": "
               "\"wp\", \"num_labels\": 2, \"k\": 20, \"hits\": %d, "
               "\"workers\": 30 },\n",
               kHits);

  // --- thread scaling ---------------------------------------------------
  bool identical = true;
  std::fprintf(out, "  \"thread_scaling\": [\n");
  bool first = true;
  for (int n : sizes) {
    double serial_total = 0.0;
    uint64_t serial_hash = 0;
    for (int threads : thread_counts) {
      std::fprintf(stderr, "[bench] n=%d threads=%d ...\n", n, threads);
      const RunResult r = RunHitCycles(n, threads, /*interval=*/1, kHits);
      if (threads == 1) {
        serial_total = r.total_seconds;
        serial_hash = r.decision_hash;
      }
      identical = identical && r.decision_hash == serial_hash;
      if (!first) std::fprintf(out, ",\n");
      first = false;
      std::fprintf(
          out,
          "    { \"n\": %d, \"threads\": %d, "
          "\"p50_assignment_seconds\": %.6g, "
          "\"p95_assignment_seconds\": %.6g, "
          "\"completions_per_second\": %.6g, "
          "\"total_seconds\": %.6g, "
          "\"speedup_vs_1_thread\": %.4g, "
          "\"decision_hash\": \"%016llx\" }",
          n, threads, r.p50_assignment_seconds, r.p95_assignment_seconds,
          r.completions_per_second, r.total_seconds,
          serial_total > 0.0 ? serial_total / r.total_seconds : 1.0,
          static_cast<unsigned long long>(r.decision_hash));
    }
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out,
               "  \"determinism\": { "
               "\"identical_decisions_across_thread_counts\": %s },\n",
               identical ? "true" : "false");

  // --- incremental Qc refresh (em_refresh_interval) ---------------------
  std::fprintf(out, "  \"em_refresh\": [\n");
  first = true;
  for (int n : sizes) {
    double full_total = 0.0;
    for (int interval : {1, 8}) {
      std::fprintf(stderr, "[bench] n=%d interval=%d ...\n", n, interval);
      const RunResult r = RunHitCycles(n, /*threads=*/1, interval, kHits);
      if (interval == 1) full_total = r.total_seconds;
      if (!first) std::fprintf(out, ",\n");
      first = false;
      std::fprintf(
          out,
          "    { \"n\": %d, \"em_refresh_interval\": %d, "
          "\"completions_per_second\": %.6g, "
          "\"total_seconds\": %.6g, "
          "\"speedup_vs_interval_1\": %.4g, "
          "\"full_em_refits\": %d, \"incremental_refreshes\": %d }",
          n, interval, r.completions_per_second, r.total_seconds,
          full_total > 0.0 ? full_total / r.total_seconds : 1.0,
          r.full_em_refits, r.incremental_refreshes);
    }
  }
  std::fprintf(out, "\n  ],\n");

  // --- fault tolerance: abandonment overhead (PR 5) ----------------------
  // 5% of HIT requests are abandoned (the worker never answers; the lease
  // expires, the questions requeue, the budget refunds) and the run still
  // has to complete the full budget. Reports the completion throughput
  // against the fault-free run of the same n, plus the lease/requeue
  // counters the robustness layer maintains.
  std::fprintf(out, "  \"fault_tolerance\": [\n");
  first = true;
  for (int n : sizes) {
    std::fprintf(stderr, "[bench] n=%d fault-free vs 5%% abandonment ...\n",
                 n);
    const RunResult clean =
        RunHitCycles(n, /*threads=*/1, /*interval=*/1, kHits);
    const RunResult faulty = RunHitCycles(n, /*threads=*/1, /*interval=*/1,
                                          kHits, {.abandon_permille = 50});
    QASCA_CHECK(faulty.completed_hits == clean.completed_hits)
        << "abandonment must not change the completed budget";
    QASCA_CHECK(faulty.leases_expired > 0)
        << "the 5% abandonment plan never fired";
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(
        out,
        "    { \"n\": %d, \"abandon_rate\": 0.05, "
        "\"completed_hits\": %d, "
        "\"leases_expired\": %d, \"questions_requeued\": %d, "
        "\"completions_per_second\": %.6g, "
        "\"fault_free_completions_per_second\": %.6g, "
        "\"throughput_vs_fault_free\": %.4g }",
        n, faulty.completed_hits, faulty.leases_expired,
        faulty.questions_requeued, faulty.completions_per_second,
        clean.completions_per_second,
        clean.completions_per_second > 0.0
            ? faulty.completions_per_second / clean.completions_per_second
            : 1.0);
  }
  std::fprintf(out, "\n  ],\n");

  // --- assignment kernels: legacy vs optimized Qw path (PR 7) -----------
  // The same workload (accuracy / WP / k=20 / 30 workers) through both Qw
  // representations: the legacy full deep copy with per-request likelihood
  // rebuilds, and the kernel path (zero-copy overlay + likelihood cache).
  // Both must select byte-identical HITs; the headline is the p50
  // assignment-latency ratio at the largest n, with the telemetry stage
  // totals attributing the win to qw_estimate + topk_scan.
  int64_t opt_cache_hits = 0, opt_cache_misses = 0;
  int64_t opt_overlay_rows = 0, opt_closed_form_rows = 0;
  std::fprintf(out, "  \"kernel_optimization\": [\n");
  first = true;
  for (int n : {10000, 100000}) {
    std::fprintf(stderr, "[bench] n=%d legacy vs optimized Qw path ...\n", n);
    const RunResult legacy =
        RunHitCycles(n, /*threads=*/1, /*interval=*/8, kHits,
                     {.optimized_assignment = false, .telemetry = true});
    const RunResult optimized =
        RunHitCycles(n, /*threads=*/1, /*interval=*/8, kHits,
                     {.optimized_assignment = true, .telemetry = true});
    QASCA_CHECK(legacy.decision_hash == optimized.decision_hash)
        << "legacy and optimized Qw paths selected different HITs";
    opt_cache_hits = optimized.cache_hits;
    opt_cache_misses = optimized.cache_misses;
    opt_overlay_rows = optimized.overlay_rows;
    opt_closed_form_rows = optimized.closed_form_rows;
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(
        out,
        "    { \"n\": %d, "
        "\"legacy_p50_assignment_seconds\": %.6g, "
        "\"optimized_p50_assignment_seconds\": %.6g, "
        "\"p50_speedup\": %.4g, "
        "\"legacy_qw_estimate_ms\": %.6g, "
        "\"optimized_qw_estimate_ms\": %.6g, "
        "\"legacy_topk_scan_ms\": %.6g, "
        "\"optimized_topk_scan_ms\": %.6g, "
        "\"identical_decisions\": true }",
        n, legacy.p50_assignment_seconds, optimized.p50_assignment_seconds,
        optimized.p50_assignment_seconds > 0.0
            ? legacy.p50_assignment_seconds /
                  optimized.p50_assignment_seconds
            : 1.0,
        legacy.qw_estimate_ms, optimized.qw_estimate_ms,
        legacy.topk_scan_ms, optimized.topk_scan_ms);
  }
  std::fprintf(out, "\n  ],\n");

  // --- kernel layer configuration + counters (PR 7) ---------------------
  const int64_t cache_lookups = opt_cache_hits + opt_cache_misses;
  std::fprintf(
      out,
      "  \"kernels\": { \"isa\": \"%s\", "
      "\"cache_hits\": %lld, \"cache_misses\": %lld, "
      "\"cache_hit_rate\": %.4g, "
      "\"overlay_rows\": %lld, \"closed_form_rows\": %lld },\n",
      kernels::IsaName(kernels::ActiveIsa()),
      static_cast<long long>(opt_cache_hits),
      static_cast<long long>(opt_cache_misses),
      cache_lookups > 0
          ? static_cast<double>(opt_cache_hits) /
                static_cast<double>(cache_lookups)
          : 0.0,
      static_cast<long long>(opt_overlay_rows),
      static_cast<long long>(opt_closed_form_rows));

  // --- per-stage telemetry breakdown (PR 3) -----------------------------
  std::fprintf(out, "  \"stage_breakdown\": [\n");
  struct BreakdownSpec {
    const char* name;
    MetricSpec metric;
  };
  const BreakdownSpec breakdown_specs[] = {
      {"accuracy", MetricSpec::Accuracy()},
      {"fscore", MetricSpec::FScore(0.5, 0)},
  };
  // Denser coverage than the scaling sweeps (30 HITs x k=20 over n=1000 is
  // ~0.6 answers/question): with coverage much below that, a sparsely
  // answered contested row can legitimately flip by more than the drift
  // tolerance between an incremental refresh and the next full refit.
  const int breakdown_n = 1000;
  first = true;
  for (const BreakdownSpec& spec : breakdown_specs) {
    std::fprintf(stderr, "[bench] stage breakdown metric=%s ...\n",
                 spec.name);
    const StageBreakdown b =
        RunStageBreakdown(spec.metric, breakdown_n, kHits);
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "    { \"metric\": \"%s\", \"n\": %d, "
                 "\"em_refit_ms\": %.6g, \"qw_estimate_ms\": %.6g, "
                 "\"topk_scan_ms\": %.6g, \"fscore_online_ms\": %.6g, "
                 "\"dinkelbach_iters\": %lld,\n      \"telemetry\": %s }",
                 spec.name, breakdown_n, b.em_refit_ms, b.qw_estimate_ms,
                 b.topk_scan_ms, b.fscore_online_ms,
                 static_cast<long long>(b.dinkelbach_iters),
                 b.telemetry_json.c_str());
  }
  std::fprintf(out, "\n  ]\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);
  QASCA_CHECK(identical)
      << "decision hashes diverged across thread counts";
  return 0;
}

}  // namespace
}  // namespace qasca

int main(int argc, char** argv) { return qasca::Main(argc, argv); }
