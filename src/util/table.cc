#include "util/table.h"

#include <algorithm>
#include <cinttypes>

#include "util/logging.h"

namespace qasca::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  QASCA_CHECK(!header_.empty());
}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& text) {
  QASCA_CHECK(!rows_.empty()) << "Cell() before AddRow()";
  QASCA_CHECK_LT(rows_.back().size(), header_.size()) << "too many cells";
  rows_.back().push_back(text);
  return *this;
}

Table& Table::Cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return Cell(std::string(buffer));
}

Table& Table::Percent(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, value * 100.0);
  return Cell(std::string(buffer));
}

Table& Table::Cell(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  return Cell(std::string(buffer));
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), cell.c_str(),
                   c + 1 < header_.size() ? "  " : "\n");
    }
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total > 2 ? total - 2 : total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void PrintSection(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace qasca::util
