// Extension experiment (paper future-work 8(3), "more evaluation
// metrics"): when the application's real loss is asymmetric — here a
// triage-style task where missing a positive costs 8x a false alarm — does
// configuring QASCA with the matching cost-sensitive metric beat running it
// with plain Accuracy? This replays the paper's central claim (the
// assignment should optimise the metric the application is judged by) on a
// metric outside the paper's pair.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/metrics/cost_accuracy.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "simulation/dataset.h"
#include "simulation/simulated_worker.h"
#include "util/stats.h"
#include "util/table.h"

namespace qasca {
namespace {

// Missing a true "positive" (label 0) costs 8; a false alarm costs 1.
const std::vector<double> kTriageCosts = {0.0, 8.0, 1.0, 0.0};

struct RunOutcome {
  double cost_quality = 0.0;  // CostAccuracy(T, R*)
};

RunOutcome RunOnce(const MetricSpec& engine_metric, uint64_t seed) {
  ApplicationSpec spec = PositiveSentimentApp();
  spec.num_questions = 600;
  spec.workers.num_workers = 60;
  // A tight budget (z = 2) makes assignment choices decisive.
  spec.answers_per_question = 2;

  AppConfig config = MakeAppConfig(spec);
  config.metric = engine_metric;
  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              seed * 13 + 1);

  util::Rng world(seed);
  GroundTruthVector truth = GenerateGroundTruth(spec, world);
  std::vector<double> difficulty = GenerateQuestionDifficulty(spec, world);
  std::vector<SimulatedWorker> pool = GenerateWorkerPool(spec.workers, world);
  util::Rng arrival = world.Fork();
  util::Rng answers = world.Fork();

  std::vector<int> served(pool.size(), 0);
  const int k = spec.questions_per_hit;
  for (int round = 0; round < spec.TotalHits(); ++round) {
    const SimulatedWorker* worker = nullptr;
    while (worker == nullptr) {
      const SimulatedWorker& candidate =
          pool[arrival.UniformInt(static_cast<int>(pool.size()))];
      if (spec.num_questions - k * (served[candidate.id] + 1) >= 0) {
        worker = &candidate;
      }
    }
    ++served[worker->id];
    auto hit = engine.RequestHit(worker->id);
    QASCA_CHECK(hit.ok()) << hit.status().ToString();
    std::vector<LabelIndex> labels;
    for (QuestionIndex q : *hit) {
      labels.push_back(worker->AnswerQuestion(truth[q], answers,
                                              difficulty[q]));
    }
    QASCA_CHECK(engine.CompleteHit(worker->id, labels).ok());
  }

  // Judge both configurations by the application's *real* loss.
  CostAccuracyMetric judge(kTriageCosts, 2);
  RunOutcome outcome;
  outcome.cost_quality =
      judge.EvaluateAgainstTruth(truth, judge.OptimalResult(
                                            engine.database().current()));
  return outcome;
}

void RunAll() {
  util::PrintSection(
      "Extension — cost-sensitive metric (miss costs 8x false alarm), "
      "QASCA engine configured with matching vs mismatched metric");
  const int kSeeds = 8;
  util::RunningStats cost_aware;
  util::RunningStats accuracy_configured;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    cost_aware.Add(
        RunOnce(MetricSpec::CostAccuracy(kTriageCosts), seed).cost_quality);
    accuracy_configured.Add(RunOnce(MetricSpec::Accuracy(), seed).cost_quality);
  }
  util::Table table({"engine metric", "cost-quality (1 - norm. loss)"});
  table.AddRow().Cell("CostAccuracy (matched)").Percent(cost_aware.mean(), 2);
  table.AddRow()
      .Cell("Accuracy (mismatched)")
      .Percent(accuracy_configured.mean(), 2);
  table.Print();
  std::printf(
      "Expected shape: the matched configuration wins — the same\n"
      "metric-awareness argument the paper makes for Accuracy vs F-score\n"
      "extends to any decomposable metric via generalised Top-K Benefit.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
