// Concurrency conformance suite for the multi-app serving layer (ISSUE 10
// tentpole). The core claim under test: a hosted app's decisions are a pure
// function of (config, seed, the app's own event order) — so one generated
// multi-app schedule, replayed single-threaded and by 2/4/8 racing worker
// threads, must leave every app with bit-identical decision hashes and
// state fingerprints. The seeded turnstile harness in
// simulation/serving_driver.{h,cc} makes the concurrent replays
// deterministic without weakening them: threads really do contend on the
// shard locks (TSan runs this suite via the tsan-threads preset), only the
// per-app event order is pinned.
//
// Also pinned here:
//  * batching equivalence — a batch of b requests is byte-identical to the
//    same b requests submitted serially in batch order;
//  * cross-app isolation — sibling traffic never perturbs an app;
//  * crash + recovery of one app mid-schedule keeps the bit-identity;
//  * the lease-expiry-vs-completion race refunds the budget at most once
//    (regression for the double-refund hazard the shard lock closes).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "platform/app_manager.h"
#include "platform/qasca_strategy.h"
#include "simulation/serving_driver.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace qasca {
namespace {

AppConfig SmallConfig(const std::string& name) {
  AppConfig config;
  config.name = name;
  config.num_questions = 24;
  config.num_labels = 2;
  config.questions_per_hit = 2;
  config.pay_per_hit = 1.0;
  config.budget = 40.0;
  config.em.max_iterations = 6;
  config.em_refresh_interval = 3;
  return config;
}

AppManager::AppOptions SmallApp(const std::string& name, uint64_t seed) {
  AppManager::AppOptions options;
  options.config = SmallConfig(name);
  options.strategy_factory = [] { return std::make_unique<QascaStrategy>(); };
  options.seed = seed;
  return options;
}

// Removes any stale per-app journal files under TempDir so each manager
// build starts from a clean slate. Must run BEFORE the apps are registered
// (registration attaches each engine to its journal path).
std::string FreshServingDir(int apps) {
  const std::string dir = ::testing::TempDir();
  for (int app = 0; app < apps; ++app) {
    const std::string prefix =
        dir + "/journal.app" + std::to_string(app);
    std::remove((prefix + ".snapshot").c_str());
    std::remove((prefix + ".log").c_str());
  }
  return dir;
}

TEST(AppManagerTest, RegisterAppValidatesInputs) {
  AppManager manager;
  AppManager::AppOptions no_factory;
  no_factory.config = SmallConfig("no_factory");
  EXPECT_EQ(manager.RegisterApp(std::move(no_factory)).status().code(),
            util::StatusCode::kInvalidArgument);

  AppManager::AppOptions bad = SmallApp("bad", 1);
  bad.config.num_questions = 0;
  EXPECT_FALSE(manager.RegisterApp(std::move(bad)).ok());
  EXPECT_EQ(manager.app_count(), 0);

  util::StatusOr<AppId> first = manager.RegisterApp(SmallApp("a", 1));
  util::StatusOr<AppId> second = manager.RegisterApp(SmallApp("b", 2));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, 0);
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(manager.app_count(), 2);
}

TEST(AppManagerTest, UnknownAppIdIsRejectedEverywhere) {
  AppManager manager;
  ASSERT_TRUE(manager.RegisterApp(SmallApp("only", 7)).ok());
  for (AppId bogus : {-1, 1, 42}) {
    EXPECT_EQ(manager.SubmitHitRequest(bogus, 0).status().code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.SubmitHitRequestBatch(bogus, {0, 1}).status().code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.SubmitHitCompletion(bogus, 0, {0, 0}).code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.AdvanceAppClock(bogus).status().code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.CrashAndRecoverApp(bogus).code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.AppStateFingerprint(bogus).status().code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.StatsFor(bogus).status().code(),
              util::StatusCode::kInvalidArgument);
  }
}

TEST(AppManagerTest, ServesIndependentAppLifecycles) {
  AppManager manager;
  util::StatusOr<AppId> a = manager.RegisterApp(SmallApp("a", 11));
  util::StatusOr<AppId> b = manager.RegisterApp(SmallApp("b", 22));
  ASSERT_TRUE(a.ok() && b.ok());

  util::StatusOr<std::vector<QuestionIndex>> hit_a =
      manager.SubmitHitRequest(*a, 0);
  ASSERT_TRUE(hit_a.ok()) << hit_a.status().ToString();
  ASSERT_EQ(hit_a->size(), 2u);
  ASSERT_TRUE(
      manager.SubmitHitCompletion(*a, 0, {0, 0}).ok());

  util::StatusOr<AppManager::AppStats> stats_a = manager.StatsFor(*a);
  util::StatusOr<AppManager::AppStats> stats_b = manager.StatsFor(*b);
  ASSERT_TRUE(stats_a.ok() && stats_b.ok());
  EXPECT_EQ(stats_a->assigned_hits, 1);
  EXPECT_EQ(stats_a->completed_hits, 1);
  EXPECT_EQ(stats_a->open_hits, 0);
  EXPECT_EQ(stats_b->assigned_hits, 0);
  EXPECT_EQ(stats_b->completed_hits, 0);
}

// A batch of b requests must be byte-identical to the same b requests
// submitted serially in batch order — the amortised Qc snapshot + warmed EM
// shared state must never change a decision (ISSUE 10 batching contract).
TEST(AppManagerTest, BatchMatchesSerialInBatchOrder) {
  const std::vector<WorkerId> batch = {3, 0, 5, 1, 4, 2, 0};
  AppManager batched;
  AppManager serial;
  ASSERT_TRUE(batched.RegisterApp(SmallApp("batch", 99)).ok());
  ASSERT_TRUE(serial.RegisterApp(SmallApp("batch", 99)).ok());

  for (int round = 0; round < 4; ++round) {
    util::StatusOr<std::vector<util::StatusOr<std::vector<QuestionIndex>>>>
        results = batched.SubmitHitRequestBatch(0, batch);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      util::StatusOr<std::vector<QuestionIndex>> lone =
          serial.SubmitHitRequest(0, batch[i]);
      const util::StatusOr<std::vector<QuestionIndex>>& slot = (*results)[i];
      ASSERT_EQ(slot.ok(), lone.ok()) << "round " << round << " slot " << i;
      if (slot.ok()) {
        EXPECT_EQ(*slot, *lone) << "round " << round << " slot " << i;
      } else {
        EXPECT_EQ(slot.status().code(), lone.status().code());
      }
    }
    // Drain both replicas identically so later rounds decide from evolved,
    // identical state (duplicate workers in the batch were rejected with
    // AlreadyExists on both sides and hold one open HIT each).
    for (WorkerId worker : {0, 1, 2, 3, 4, 5}) {
      util::Status done_batched =
          batched.SubmitHitCompletion(0, worker, {0, 1});
      util::Status done_serial = serial.SubmitHitCompletion(0, worker, {0, 1});
      ASSERT_EQ(done_batched.code(), done_serial.code());
    }
    ASSERT_EQ(*batched.AppStateFingerprint(0), *serial.AppStateFingerprint(0))
        << "state diverged after round " << round;
  }
}

TEST(AppManagerTest, BatchTelemetryCountsBatches) {
  AppManager manager;
  AppManager::AppOptions options = SmallApp("telemetry", 5);
  options.config.telemetry_enabled = true;
  ASSERT_TRUE(manager.RegisterApp(std::move(options)).ok());
  ASSERT_TRUE(manager.SubmitHitRequestBatch(0, {0, 1, 2}).ok());
  util::StatusOr<std::string> json = manager.AppTelemetryJson(0);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"serving.batches\":1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"serving.batch_requests\":3"), std::string::npos)
      << *json;
}

// The conformance core: one schedule, every thread count, bit-identical
// per-app outcomes. Fingerprints AND decision hashes — the former pins the
// engines' end states, the latter pins every intermediate decision (two
// wrong interleavings could cancel in the end state; they cannot cancel in
// the order-sensitive hash fold).
class ServingConformanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServingConformanceTest, ThreadCountNeverChangesDecisions) {
  const uint64_t seed = GetParam();
  ServingWorkloadOptions options;
  options.apps = 5;
  options.workers_per_app = 6;
  options.events_per_app = 90;
  options.num_questions = 24;
  options.questions_per_hit = 2;
  options.em_refresh_interval = 3;
  // Short leases so the storm actually exercises expiry + late rejection.
  options.lease_timeout_ticks = 3;

  const ServingSchedule schedule = ServingSchedule::Generate(options, seed);

  AppManager reference;
  ASSERT_TRUE(BuildServingApps(reference, options, seed).ok());
  const ServingRunResult serial =
      RunServingSchedule(reference, schedule, options, 1);
  ASSERT_GT(serial.assignments, 0);
  ASSERT_GT(serial.completions, 0);
  ASSERT_GT(serial.leases_expired, 0);
  ASSERT_GT(serial.batches, 0);

  for (int threads : {2, 4, 8}) {
    AppManager manager;
    ASSERT_TRUE(BuildServingApps(manager, options, seed).ok());
    const ServingRunResult concurrent =
        RunServingSchedule(manager, schedule, options, threads);
    EXPECT_EQ(concurrent.decision_hashes, serial.decision_hashes)
        << threads << " threads, seed " << seed;
    EXPECT_EQ(concurrent.fingerprints, serial.fingerprints)
        << threads << " threads, seed " << seed;
    EXPECT_EQ(concurrent.assignments, serial.assignments);
    EXPECT_EQ(concurrent.completions, serial.completions);
    EXPECT_EQ(concurrent.rejects, serial.rejects);
    EXPECT_EQ(concurrent.leases_expired, serial.leases_expired);
  }
}

// Same claim with the fault layer armed: per-app journals, provenance, and
// a crash + journal recovery every 30th event of every app's stream, raced
// by sibling traffic. Recovery replays must land on the same bit-identical
// state no matter how many threads are storming the other apps.
TEST_P(ServingConformanceTest, CrashRecoveryKeepsBitIdentityUnderRace) {
  const uint64_t seed = GetParam();
  ServingWorkloadOptions options;
  options.apps = 3;
  options.workers_per_app = 5;
  options.events_per_app = 60;
  options.num_questions = 24;
  options.questions_per_hit = 2;
  options.em_refresh_interval = 3;
  options.crash_every = 30;
  options.provenance = true;
  options.persistence_dir = FreshServingDir(options.apps);

  const ServingSchedule schedule = ServingSchedule::Generate(options, seed);

  AppManager reference;
  ASSERT_TRUE(BuildServingApps(reference, options, seed).ok());
  const ServingRunResult serial =
      RunServingSchedule(reference, schedule, options, 1);
  ASSERT_GT(serial.crash_recoveries, 0);

  for (int threads : {2, 4}) {
    AppManager manager;
    FreshServingDir(options.apps);
    ASSERT_TRUE(BuildServingApps(manager, options, seed).ok());
    const ServingRunResult concurrent =
        RunServingSchedule(manager, schedule, options, threads);
    EXPECT_EQ(concurrent.decision_hashes, serial.decision_hashes)
        << threads << " threads, seed " << seed;
    EXPECT_EQ(concurrent.fingerprints, serial.fingerprints)
        << threads << " threads, seed " << seed;
    EXPECT_EQ(concurrent.crash_recoveries, serial.crash_recoveries);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingConformanceTest,
                         ::testing::Values(101u, 202u, 303u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Cross-app isolation: app 0's stream is generated from a per-app RNG, so
// the same (options, seed) with apps = 1 yields exactly app 0's events.
// Hosting four noisy siblings next to it must not perturb a single
// decision or state bit of app 0.
TEST(AppManagerTest, SiblingTrafficNeverPerturbsAnApp) {
  const uint64_t seed = 4242;
  ServingWorkloadOptions crowded;
  crowded.apps = 5;
  crowded.events_per_app = 80;
  crowded.num_questions = 24;
  crowded.questions_per_hit = 2;
  ServingWorkloadOptions solo = crowded;
  solo.apps = 1;

  AppManager crowded_manager;
  ASSERT_TRUE(BuildServingApps(crowded_manager, crowded, seed).ok());
  const ServingRunResult crowded_run = RunServingSchedule(
      crowded_manager, ServingSchedule::Generate(crowded, seed), crowded, 4);

  AppManager solo_manager;
  ASSERT_TRUE(BuildServingApps(solo_manager, solo, seed).ok());
  const ServingRunResult solo_run = RunServingSchedule(
      solo_manager, ServingSchedule::Generate(solo, seed), solo, 1);

  ASSERT_EQ(solo_run.decision_hashes.size(), 1u);
  EXPECT_EQ(crowded_run.decision_hashes[0], solo_run.decision_hashes[0]);
  EXPECT_EQ(crowded_run.fingerprints[0], solo_run.fingerprints[0]);
}

TEST(AppManagerTest, CrashRecoverRequiresAJournal) {
  AppManager manager;
  ASSERT_TRUE(manager.RegisterApp(SmallApp("ephemeral", 3)).ok());
  EXPECT_EQ(manager.CrashAndRecoverApp(0).code(),
            util::StatusCode::kFailedPrecondition);
}

// The "app_manager.crash_recover" fail point refuses the recovery before
// the engine is discarded: the refusal must surface as Internal and leave
// the app serving from its intact in-memory engine.
TEST(AppManagerTest, CrashRecoverFailPointRefusesWithoutDataLoss) {
  AppManager manager;
  AppManager::AppOptions options = SmallApp("faulty", 8);
  options.config.persistence_path = FreshServingDir(1) + "/journal";
  ASSERT_TRUE(manager.RegisterApp(std::move(options)).ok());
  ASSERT_TRUE(manager.SubmitHitRequest(0, 0).ok());
  const uint64_t before = *manager.AppStateFingerprint(0);

  util::FailPoints::Global().Arm("app_manager.crash_recover");
  EXPECT_EQ(manager.CrashAndRecoverApp(0).code(),
            util::StatusCode::kInternal);
  util::FailPoints::Global().Disarm("app_manager.crash_recover");

  EXPECT_EQ(*manager.AppStateFingerprint(0), before);
  util::Status recovered = manager.CrashAndRecoverApp(0);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(*manager.AppStateFingerprint(0), before);
}

// Regression (ISSUE 10 fix): a lease expiry refunds the HIT's budget; the
// late completion racing it must be rejected WITHOUT refunding again. With
// a budget of exactly one HIT, a double refund would hand out a third
// assignment — pin that it cannot.
TEST(AppManagerTest, ExpiryRacingCompletionRefundsBudgetAtMostOnce) {
  AppManager manager;
  AppManager::AppOptions options = SmallApp("refund", 17);
  options.config.budget = 1.0;  // pay_per_hit 1.0 → exactly one HIT
  options.config.lease_timeout_ticks = 2;
  ASSERT_TRUE(manager.RegisterApp(std::move(options)).ok());

  ASSERT_TRUE(manager.SubmitHitRequest(0, 0).ok());
  EXPECT_EQ(manager.SubmitHitRequest(0, 1).status().code(),
            util::StatusCode::kResourceExhausted);

  util::StatusOr<int> expired = manager.AdvanceAppClock(0, 3);
  ASSERT_TRUE(expired.ok());
  ASSERT_EQ(*expired, 1);  // the lease expired and refunded the budget

  // The worker's completion arrives after the expiry won the race: late,
  // rejected, and — the regression — no second refund.
  EXPECT_EQ(manager.SubmitHitCompletion(0, 0, {0, 0}).code(),
            util::StatusCode::kFailedPrecondition);

  ASSERT_TRUE(manager.SubmitHitRequest(0, 1).ok());  // spends the one refund
  EXPECT_EQ(manager.SubmitHitRequest(0, 2).status().code(),
            util::StatusCode::kResourceExhausted);

  util::StatusOr<AppManager::AppStats> stats = manager.StatsFor(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->leases_expired, 1);
  EXPECT_EQ(stats->late_completions_rejected, 1);
  // Expiry un-counts the abandoned assignment (assigned - completed must
  // keep equalling open), so of the two grants only the live one remains.
  EXPECT_EQ(stats->assigned_hits, 1);
  EXPECT_EQ(stats->open_hits, 1);
}

}  // namespace
}  // namespace qasca
