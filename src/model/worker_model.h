#ifndef QASCA_MODEL_WORKER_MODEL_H_
#define QASCA_MODEL_WORKER_MODEL_H_

#include <vector>

#include "core/types.h"
#include "util/logging.h"

namespace qasca {

/// A worker's answering behaviour: the conditional probability
/// P(a = j' | t = j) that the worker answers label j' when the true label is
/// j (Section 5.2).
///
/// Two parameterisations from the literature are supported:
///  * Worker Probability (WP) — a single value m in [0,1]:
///      P(a = j' | t = j) = m               if j' == j,
///                          (1 - m)/(l - 1) otherwise.
///  * Confusion Matrix (CM) — a full l-by-l row-stochastic matrix M with
///      P(a = j' | t = j) = M[j][j'].
///
/// CM subsumes WP; Table 2 of the paper compares the two empirically.
class WorkerModel {
 public:
  enum class Kind { kWorkerProbability, kConfusionMatrix };

  /// A perfect worker — the paper's initial assumption for new workers
  /// (Ipeirotis et al. [22]): WP m = 1.
  static WorkerModel PerfectWp(int num_labels);
  /// A perfect worker in CM form: the identity matrix.
  static WorkerModel PerfectCm(int num_labels);
  /// WP model with probability `m` of answering the true label.
  static WorkerModel Wp(double m, int num_labels);
  /// CM model; `matrix` is row-major l*l, rows sum to 1 (row = true label,
  /// column = answered label).
  static WorkerModel Cm(std::vector<double> matrix, int num_labels);

  Kind kind() const noexcept { return kind_; }
  int num_labels() const noexcept { return num_labels_; }

  /// P(a = answered | t = truth).
  double AnswerProbability(LabelIndex answered, LabelIndex truth) const
      noexcept {
    QASCA_CHECK_GE(answered, 0);
    QASCA_CHECK_LT(answered, num_labels_);
    QASCA_CHECK_GE(truth, 0);
    QASCA_CHECK_LT(truth, num_labels_);
    if (kind_ == Kind::kWorkerProbability) {
      if (answered == truth) return wp_;
      return num_labels_ > 1 ? (1.0 - wp_) / (num_labels_ - 1) : 0.0;
    }
    return cm_[static_cast<size_t>(truth) * num_labels_ + answered];
  }

  /// The WP value m; only valid for WP models.
  double worker_probability() const noexcept {
    QASCA_CHECK(kind_ == Kind::kWorkerProbability);
    return wp_;
  }

  /// Row-major confusion matrix; for WP models, the expanded equivalent.
  std::vector<double> AsConfusionMatrix() const;

  /// Mean absolute elementwise difference to `other`'s confusion matrix —
  /// the paper's estimation deviation of worker quality (Section 6.2.3,
  /// Figure 6(b)).
  double Deviation(const WorkerModel& other) const;

 private:
  WorkerModel(Kind kind, int num_labels)
      : kind_(kind), num_labels_(num_labels) {}

  Kind kind_;
  int num_labels_;
  double wp_ = 1.0;
  std::vector<double> cm_;
};

}  // namespace qasca

#endif  // QASCA_MODEL_WORKER_MODEL_H_
