#include "platform/assignment_core.h"

#include <algorithm>
#include <cmath>

#include "core/kernels/kernels.h"
#include "model/posterior.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry_names.h"

namespace qasca {

AssignmentCore::AssignmentCore(const AppConfig* config,
                               std::unique_ptr<AssignmentStrategy> strategy,
                               uint64_t seed,
                               util::MetricRegistry* telemetry)
    : config_(*config),
      telemetry_(*telemetry),
      strategy_(std::move(strategy)),
      metric_(config_.metric.Make()),
      database_(config_.num_questions, config_.num_labels),
      rng_(seed) {
  QASCA_CHECK(strategy_ != nullptr);
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool_->AttachTelemetry(&telemetry_);
  }
  database_.AttachTelemetry(&telemetry_);
  em_full_refits_counter_ = telemetry_.GetCounter(util::tnames::kEmFullRefits);
  em_incremental_refreshes_counter_ =
      telemetry_.GetCounter(util::tnames::kEmIncrementalRefreshes);
  last_refresh_drift_gauge_ =
      telemetry_.GetGauge(util::tnames::kLastRefreshDrift);
  likelihood_cache_.AttachCounters(
      telemetry_.GetCounter(util::tnames::kQwLikelihoodCacheHits),
      telemetry_.GetCounter(util::tnames::kQwLikelihoodCacheMisses));
}

util::StatusOr<AssignmentCore::Decision> AssignmentCore::Decide(
    WorkerId worker, DecisionProvenance* provenance) {
  std::vector<QuestionIndex> candidates = database_.CandidatesFor(worker);
  const int k = config_.questions_per_hit;
  if (static_cast<int>(candidates.size()) < k) {
    return util::Status::NotFound(
        "fewer than k unassigned questions remain for this worker");
  }

  StrategyContext context;
  context.database = &database_;
  context.metric = &config_.metric;
  context.worker = worker;
  const WorkerModel& model = ModelFor(worker);
  context.worker_model = &model;
  context.typical_worker = &TypicalWorker();
  context.rng = &rng_;
  context.pool = pool_.get();
  context.telemetry = &telemetry_;
  context.likelihood_cache =
      config_.likelihood_cache_enabled ? &likelihood_cache_ : nullptr;
  context.use_qw_overlay = config_.use_qw_overlay;
  context.provenance = provenance;
  // The cache-hit bit comes from the cache's own lifetime counters
  // (telemetry-independent), read as a delta around the strategy call.
  const int64_t cache_hits_before = likelihood_cache_.hits();

  Decision decision;
  decision.questions = strategy_->SelectQuestions(context, candidates, k);
  decision.candidates = static_cast<int>(candidates.size());

  // Every HIT leaving the core must be exactly k distinct in-range
  // questions, and each must come from the candidate set the strategy was
  // given. Always on: a malformed HIT reaching the platform corrupts the
  // answer set silently.
  QASCA_CHECK_OK(invariants::CheckAssignment(decision.questions, k,
                                             config_.num_questions));
#if QASCA_ENABLE_DCHECKS
  // CandidatesFor returns ascending indices, so membership is a binary
  // search — O(k log n) instead of the O(k n) linear scan that used to
  // dominate debug-build latency measurements.
  QASCA_DCHECK(std::is_sorted(candidates.begin(), candidates.end()));
  for (QuestionIndex question : decision.questions) {
    QASCA_DCHECK(
        std::binary_search(candidates.begin(), candidates.end(), question))
        << "strategy selected question " << question
        << " outside the candidate set";
  }
#endif
  if (provenance != nullptr) {
    provenance->candidates = decision.candidates;
    provenance->likelihood_cache_hit =
        likelihood_cache_.hits() > cache_hits_before;
    provenance->em_generation = static_cast<uint64_t>(full_em_refits_);
    provenance->kernel_isa = static_cast<int>(kernels::ActiveIsa());
  }
  return decision;
}

void AssignmentCore::CommitAssignment(
    WorkerId worker, const std::vector<QuestionIndex>& questions) {
  database_.MarkAssigned(worker, questions);
}

void AssignmentCore::ReleaseAssignment(
    WorkerId worker, const std::vector<QuestionIndex>& questions) {
  database_.Unassign(worker, questions);
}

void AssignmentCore::ApplyCompletion(
    WorkerId worker, const std::vector<QuestionIndex>& questions,
    const std::vector<LabelIndex>& labels) {
  QASCA_CHECK_EQ(questions.size(), labels.size());
  // Step A: update the answer set D.
  for (size_t q = 0; q < questions.size(); ++q) {
    database_.RecordAnswer(questions[q], worker, labels[q]);
  }
  ++completions_since_refit_;

  // Steps B + C: re-estimate the parameters and refresh Qc. A full EM refit
  // is the dominant per-completion cost at scale, and only the k touched
  // rows' answer sets changed — so between scheduled refits we keep the
  // fitted worker models and prior frozen and re-derive just those rows
  // (Eq. 5). The first fit is always full: before it, the fallback model is
  // a perfect worker and a Bayes update under it would drive rows to 0/1
  // certainty that EM would never assert.
  const bool can_refresh_incrementally =
      config_.em_refresh_interval > 1 &&
      !database_.parameters().workers.empty();
  if (can_refresh_incrementally) {
    util::Span refresh_span(&telemetry_,
                            util::tnames::kSpanIncrementalRefresh);
    // Applied even on a completion that triggers a scheduled refit, so the
    // refit's drift invariant compares a fully-updated incremental Qc —
    // never one stale by this HIT's k new answers.
    const EmResult& parameters = database_.parameters();
    std::vector<double> row;
    row.reserve(static_cast<size_t>(config_.num_labels));
    if (config_.likelihood_cache_enabled) {
      // Table-based refresh: the answering workers' likelihood tables are
      // memoised across completions (models are frozen between refits, so
      // entries stay valid until RunFullEmRefit invalidates them).
      LikelihoodLookup lookup =
          [this, &parameters](WorkerId w) -> const WorkerLikelihoods& {
        return likelihood_cache_.Get(w, parameters.WorkerFor(w));
      };
      for (QuestionIndex question : questions) {
        ComputePosteriorRowWithLikelihoods(
            database_.answers()[static_cast<size_t>(question)],
            parameters.prior, lookup, &row);
        // Always on: an incremental row is the only writer of Qc between
        // refits, so a denormalised one corrupts every later assignment
        // decision without crashing.
        QASCA_CHECK_OK(invariants::CheckDistributionRow(row));
        database_.UpdatePosteriorRow(question, row);
      }
    } else {
      WorkerModelLookup lookup =
          [&parameters](WorkerId w) -> const WorkerModel& {
        return parameters.WorkerFor(w);
      };
      for (QuestionIndex question : questions) {
        ComputePosteriorRowInto(
            database_.answers()[static_cast<size_t>(question)],
            parameters.prior, lookup, &row);
        QASCA_CHECK_OK(invariants::CheckDistributionRow(row));
        database_.UpdatePosteriorRow(question, row);
      }
    }
    incremental_since_refit_ = true;
  }
  if (!can_refresh_incrementally ||
      completions_since_refit_ >= config_.em_refresh_interval) {
    RunFullEmRefit();
  } else {
    ++incremental_refreshes_;
    em_incremental_refreshes_counter_->Add(1);
  }
}

void AssignmentCore::ForceFullEmRefit() { RunFullEmRefit(); }

void AssignmentCore::WarmSharedState() { (void)TypicalWorker(); }

void AssignmentCore::RunFullEmRefit() {
  util::Span span(&telemetry_, util::tnames::kSpanEmFullRefit);
  const bool check_drift = incremental_since_refit_;
  DistributionMatrix incremental = database_.current();
  database_.SetParameters(
      config_.warm_start_em
          ? RunEmWarmStart(database_.answers(), config_.num_labels,
                           config_.em, database_.parameters(), pool_.get(),
                           &telemetry_)
          : RunEm(database_.answers(), config_.num_labels, config_.em,
                  pool_.get(), &telemetry_));
  // The refreshed Qc is what every later assignment decision reads; a
  // denormalised row here corrupts all of them without crashing.
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(database_.current()));
  if (check_drift) {
    // Always-on incremental-agreement invariant: the Qc the incremental
    // path maintained must agree with the full refit within the configured
    // tolerance. A violation means the incremental updates diverged from
    // the model (stale rows, wrong parameters), not floating-point noise.
    const DistributionMatrix& refit = database_.current();
    double drift = 0.0;
    for (int i = 0; i < refit.num_questions(); ++i) {
      for (int j = 0; j < refit.num_labels(); ++j) {
        drift = std::max(drift,
                         std::fabs(refit.At(i, j) - incremental.At(i, j)));
      }
    }
    last_refresh_drift_ = drift;
    max_refresh_drift_ = std::max(max_refresh_drift_, drift);
    last_refresh_drift_gauge_->Set(drift);
    QASCA_CHECK(drift <= config_.em_drift_tolerance)
        << "incremental Qc drifted" << drift << "from the full EM refit"
        << "(tolerance" << config_.em_drift_tolerance << ")";
  }
  ++full_em_refits_;
  em_full_refits_counter_->Add(1);
  completions_since_refit_ = 0;
  incremental_since_refit_ = false;
  // The fitted worker pool changed; the cached typical worker and every
  // memoised likelihood table are stale.
  typical_worker_.reset();
  likelihood_cache_.Invalidate();
}

ResultVector AssignmentCore::CurrentResults() const {
  return metric_->OptimalResult(database_.current());
}

double AssignmentCore::QualityAgainstTruth(
    const GroundTruthVector& truth) const {
  return metric_->EvaluateAgainstTruth(truth, CurrentResults());
}

const WorkerModel& AssignmentCore::ModelFor(WorkerId worker) const {
  return database_.parameters().WorkerFor(worker);
}

const WorkerModel& AssignmentCore::TypicalWorker() {
  if (!typical_worker_.has_value()) {
    typical_worker_ = ComputeTypicalWorker();
  }
  return *typical_worker_;
}

WorkerModel AssignmentCore::ComputeTypicalWorker() const {
  const auto& workers = database_.parameters().workers;
  if (workers.empty()) {
    return WorkerModel::Wp(0.75, config_.num_labels);
  }
  // Fold worker qualities in ascending-id order: the mean feeds assignment
  // decisions through the typical-worker model, so its floating-point
  // association must not depend on unordered_map bucket layout (determinism
  // pass, tools/analyze.py).
  std::vector<WorkerId> ids;
  ids.reserve(workers.size());
  for (const auto& [id, model] : workers) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  double total_quality = 0.0;
  for (WorkerId id : ids) {
    std::vector<double> cm = workers.at(id).AsConfusionMatrix();
    double diagonal = 0.0;
    for (int j = 0; j < config_.num_labels; ++j) {
      diagonal += cm[static_cast<size_t>(j) * config_.num_labels + j];
    }
    total_quality += diagonal / config_.num_labels;
  }
  return WorkerModel::Wp(
      std::clamp(total_quality / static_cast<double>(workers.size()), 0.0,
                 1.0),
      config_.num_labels);
}

}  // namespace qasca
