#include "baselines/random_strategy.h"

#include <algorithm>

#include "util/logging.h"

namespace qasca {

std::vector<QuestionIndex> RandomStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.rng != nullptr);
  std::vector<int> picks =
      context.rng->SampleWithoutReplacement(static_cast<int>(candidates.size()),
                                            k);
  std::vector<QuestionIndex> selected;
  selected.reserve(k);
  for (int index : picks) selected.push_back(candidates[index]);
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace qasca
