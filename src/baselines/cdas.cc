#include "baselines/cdas.h"

#include <algorithm>
#include <span>

#include "baselines/scoring.h"
#include "platform/database.h"
#include "util/logging.h"

namespace qasca {

std::vector<QuestionIndex> CdasStrategy::SelectQuestions(
    const StrategyContext& context,
    const std::vector<QuestionIndex>& candidates, int k) {
  QASCA_CHECK(context.database != nullptr);
  QASCA_CHECK(context.rng != nullptr);
  const DistributionMatrix& qc = context.database->current();

  // Score: live questions first (confidence below threshold), then by
  // fewest answers. Encoded as a single descending score:
  //   live:       score = 1e6 - answer_count   (always > terminated)
  //   terminated: score =     - answer_count
  std::vector<double> scores(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    QuestionIndex i = candidates[c];
    std::span<const double> row = qc.Row(i);
    double confidence = *std::max_element(row.begin(), row.end());
    double answers = context.database->AnswerCount(i);
    bool live = confidence < confidence_threshold_;
    scores[c] = (live ? 1e6 : 0.0) - answers;
  }
  return baselines_internal::TopKByScore(candidates, scores, k, *context.rng);
}

}  // namespace qasca
