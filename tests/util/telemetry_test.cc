#include "util/telemetry.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/telemetry_names.h"

namespace qasca::util {
namespace {

TEST(MetricRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricRegistry registry(true);
  Counter* a = registry.GetCounter("a");
  Counter* again = registry.GetCounter("a");
  EXPECT_EQ(a, again);
  EXPECT_EQ(a->name(), "a");
  Gauge* g = registry.GetGauge("g");
  EXPECT_EQ(registry.GetGauge("g"), g);
  LatencyHistogram* h = registry.GetLatency("h");
  EXPECT_EQ(registry.GetLatency("h"), h);
  // Same name in different instrument kinds is fine: separate maps.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("x")),
            static_cast<void*>(registry.GetGauge("x")));
}

TEST(MetricRegistryTest, CounterAndGaugeRecord) {
  MetricRegistry registry(true);
  Counter* c = registry.GetCounter("c");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  Gauge* g = registry.GetGauge("g");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(MetricRegistryTest, DisabledInstrumentsAreNoOps) {
  MetricRegistry registry(false);
  EXPECT_FALSE(registry.enabled());
  Counter* c = registry.GetCounter("c");
  c->Add(100);
  EXPECT_EQ(c->value(), 0);
  Gauge* g = registry.GetGauge("g");
  g->Set(3.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  LatencyHistogram* h = registry.GetLatency("h");
  h->RecordSeconds(1.0);
  EXPECT_EQ(h->count(), 0);
  TelemetrySnapshot snapshot = registry.Snapshot();
  EXPECT_FALSE(snapshot.enabled);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry registry(true);
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("apple")->Add(2);
  registry.GetCounter("mango")->Add(3);
  TelemetrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "apple");
  EXPECT_EQ(snapshot.counters[1].name, "mango");
  EXPECT_EQ(snapshot.counters[2].name, "zebra");
  EXPECT_EQ(snapshot.counters[0].value, 2);
}

// The concurrency contract: many threads hammering the same instruments
// must lose no increments and produce exact final counts.
TEST(MetricRegistryThreadsTest, ConcurrentCountersAreExact) {
  MetricRegistry registry(true);
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  Counter* shared = registry.GetCounter("shared");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, shared, t] {
      // Mix pre-resolved and get-or-create lookups so map access races
      // with recording.
      Counter* own =
          registry.GetCounter("per_thread." + std::to_string(t % 2));
      LatencyHistogram* lat = registry.GetLatency("lat");
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        shared->Add(1);
        own->Add(2);
        lat->RecordSeconds(1e-6);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared->value(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.GetCounter("per_thread.0")->value() +
                registry.GetCounter("per_thread.1")->value(),
            int64_t{2} * kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.GetLatency("lat")->count(),
            int64_t{kThreads} * kIncrementsPerThread);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBounded) {
  MetricRegistry registry(true);
  LatencyHistogram* h = registry.GetLatency("h");
  // Spread samples over several orders of magnitude.
  for (int i = 0; i < 100; ++i) h->RecordSeconds(1e-6);
  for (int i = 0; i < 10; ++i) h->RecordSeconds(1e-3);
  h->RecordSeconds(1e-1);
  EXPECT_EQ(h->count(), 111);
  const double p50 = h->Percentile(0.50);
  const double p95 = h->Percentile(0.95);
  const double p99 = h->Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // All quantiles clamp to the observed range.
  EXPECT_GE(p50, 1e-6 * 0.9);
  EXPECT_LE(p99, h->max_seconds());
  // The p50 must sit near the dominant 1us mode, far from the 1ms tail.
  EXPECT_LT(p50, 1e-4);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 1e-1);
  EXPECT_NEAR(h->total_seconds(), 100 * 1e-6 + 10 * 1e-3 + 1e-1, 1e-9);
}

TEST(SpanTest, NestingTracksDepthAndParent) {
  MetricRegistry registry(true);
  EXPECT_EQ(Span::current(), nullptr);
  {
    Span outer(&registry, tnames::kSpanAssignHit);
    EXPECT_EQ(Span::current(), &outer);
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(outer.parent(), nullptr);
    {
      Span mid(&registry, tnames::kSpanEstimateQw);
      Span inner(&registry, tnames::kSpanDinkelbachInner);
      EXPECT_EQ(Span::current(), &inner);
      EXPECT_EQ(inner.depth(), 2);
      EXPECT_EQ(inner.parent(), &mid);
      EXPECT_EQ(mid.parent(), &outer);
      EXPECT_STREQ(inner.name(), "dinkelbach_inner");
    }
    EXPECT_EQ(Span::current(), &outer);
  }
  EXPECT_EQ(Span::current(), nullptr);
  // Each span recorded exactly one sample into its histogram.
  EXPECT_EQ(registry.GetLatency(tnames::kSpanAssignHit)->count(), 1);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanEstimateQw)->count(), 1);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanDinkelbachInner)->count(), 1);
  // A child's elapsed time is contained in its parent's.
  EXPECT_LE(registry.GetLatency(tnames::kSpanEstimateQw)->max_seconds(),
            registry.GetLatency(tnames::kSpanAssignHit)->max_seconds());
}

TEST(SpanTest, NullAndDisabledRegistriesRecordNothing) {
  {
    Span span(nullptr, tnames::kSpanAssignHit);
    EXPECT_EQ(Span::current(), nullptr);
    EXPECT_EQ(span.depth(), 0);
  }
  MetricRegistry disabled(false);
  {
    Span span(&disabled, tnames::kSpanAssignHit);
    EXPECT_EQ(Span::current(), nullptr);
  }
  EXPECT_EQ(disabled.GetLatency(tnames::kSpanAssignHit)->count(), 0);
}

TEST(SpanThreadsTest, PerThreadStacksAreIndependent) {
  MetricRegistry registry(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer(&registry, tnames::kSpanAssignHit);
        Span inner(&registry, tnames::kSpanEstimateQw);
        // The stack is thread-local: this thread's innermost span is its
        // own `inner`, never another thread's.
        ASSERT_EQ(Span::current(), &inner);
        ASSERT_EQ(inner.parent(), &outer);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Span::current(), nullptr);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanAssignHit)->count(),
            int64_t{kThreads} * kSpansPerThread);
  EXPECT_EQ(registry.GetLatency(tnames::kSpanEstimateQw)->count(),
            int64_t{kThreads} * kSpansPerThread);
}

TEST(MetricRegistryExportTest, ToJsonShape) {
  MetricRegistry registry(true);
  registry.GetCounter("em.iterations")->Add(7);
  registry.GetGauge("open_hits")->Set(3.0);
  registry.GetLatency("assign_hit")->RecordSeconds(0.002);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"em.iterations\":7"), std::string::npos);
  EXPECT_NE(json.find("\"open_hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"assign_hit\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\":"), std::string::npos);
}

TEST(MetricRegistryExportTest, ToPrometheusTextShape) {
  MetricRegistry registry(true);
  registry.GetCounter("em.iterations")->Add(7);
  registry.GetLatency("assign_hit")->RecordSeconds(0.002);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE qasca_em_iterations counter"),
            std::string::npos);
  EXPECT_NE(text.find("qasca_em_iterations 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qasca_assign_hit_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("qasca_assign_hit_seconds{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("qasca_assign_hit_seconds_count 1"),
            std::string::npos);
}

TEST(MetricRegistryExportTest, DisabledReportSaysSo) {
  MetricRegistry registry(false);
  EXPECT_NE(registry.ToReport().find("telemetry disabled"),
            std::string::npos);
}

}  // namespace
}  // namespace qasca::util
