#ifndef QASCA_MODEL_POSTERIOR_H_
#define QASCA_MODEL_POSTERIOR_H_

#include <functional>
#include <vector>

#include "core/assignment/qw_overlay.h"
#include "core/distribution_matrix.h"
#include "core/types.h"
#include "model/likelihood_cache.h"
#include "model/worker_model.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace qasca {

/// Resolves a worker id to that worker's current model. Supplied by the
/// caller (platform database, EM output, or simulation oracle).
using WorkerModelLookup = std::function<const WorkerModel&(WorkerId)>;

/// Posterior distribution of one question's true label given its answers
/// (Eq. 16): weight_j = p_j * prod_{(w,j') in answers} P(a_w = j' | t = j),
/// normalised. With no answers this returns the prior.
///
/// If `marginal` is non-null it receives the normalisation constant
/// sum_j weight_j, i.e. the marginal likelihood P(D_i) of this question's
/// answers under the prior and worker models. EM uses it to track the
/// observed-data log-likelihood (and to assert its monotone ascent). A
/// non-positive marginal means the answers are inconsistent with degenerate
/// 0/1 models; the returned row falls back to uniform in that case.
std::vector<double> ComputePosteriorRow(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const WorkerModelLookup& models,
                                        double* marginal = nullptr);

/// Out-parameter variant of ComputePosteriorRow for the hot loops (E-step,
/// incremental refresh): writes the posterior into `*out` (resized to the
/// label count), so a caller-owned buffer is reused instead of allocating a
/// fresh return vector per row. Identical results bit-for-bit.
void ComputePosteriorRowInto(const AnswerList& answers,
                             const std::vector<double>& prior,
                             const WorkerModelLookup& models,
                             std::vector<double>* out,
                             double* marginal = nullptr);

/// Table-based variant: resolves each answering worker to a transposed
/// likelihood table (model/likelihood_cache.h) instead of a WorkerModel, so
/// the per-answer weight update is one contiguous kernels::MulRowInPlace
/// rather than l strided AnswerProbability calls. Tables hold the exact
/// AnswerProbability doubles, so results match the model-lookup variants
/// bit-for-bit. (Named separately from ComputePosteriorRowInto because both
/// lookups are std::functions and a lambda would convert to either.)
void ComputePosteriorRowWithLikelihoods(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const LikelihoodLookup& likelihoods,
                                        std::vector<double>* out,
                                        double* marginal = nullptr);

/// The current distribution matrix Qc over all questions (Section 5.1).
DistributionMatrix ComputeCurrentDistribution(const AnswerSet& answers,
                                              const std::vector<double>& prior,
                                              const WorkerModelLookup& models);

/// How the estimated row Qw_i is derived from the predicted answer
/// distribution (Section 5.3).
enum class QwMode {
  /// The paper's method: sample the label the worker would answer by
  /// weighted random sampling over P(a = j' | D_i) (Eq. 17), then condition
  /// on it (Eq. 18).
  kSampled,
  /// Deterministic ablation: average the conditioned posterior over the
  /// whole predicted answer distribution instead of sampling one label.
  /// For WP models this expectation has an exact closed form — it is the
  /// current row Qc_i itself (law of total probability over Eqs. 17–18) —
  /// which the overlay path returns directly instead of materialising the
  /// mixture (counted as tnames::kQwClosedFormRows).
  kExpected,
};

/// Estimates row i of Qw for a worker with model `model`, given the current
/// row Qc_i and the uniform variate `u01` in [0, 1) that drives the kSampled
/// weighted draw (ignored in kExpected mode). This is the deterministic core
/// of Qw estimation: given identical inputs it returns an identical row on
/// any thread, which is what lets EstimateWorkerDistribution parallelise
/// without perturbing HIT selection.
std::vector<double> EstimateWorkerRowAt(std::span<const double> current_row,
                                        const WorkerModel& model, QwMode mode,
                                        double u01);

/// Estimates row i of Qw for a worker with model `model`, given the current
/// row Qc_i. `rng` is used only in kSampled mode (exactly one draw).
std::vector<double> EstimateWorkerRow(std::span<const double> current_row,
                                      const WorkerModel& model, QwMode mode,
                                      util::Rng& rng);

/// The estimated distribution matrix Qw for a worker (Section 5.3). Only
/// rows in `candidates` are estimated; all other rows are copied from
/// `current` (they are never read by the assignment algorithms, but copying
/// keeps the matrix fully normalised).
///
/// Randomness contract: in kSampled mode exactly one 64-bit base draw is
/// taken from `rng` per call, and each candidate row samples from its own
/// SplitMix64 stream seeded by (base, question index). Row values therefore
/// depend only on the base draw and the question — not on candidate order,
/// pool size, or scheduling — so runs with any `pool` (including none)
/// select byte-identical HITs.
///
/// `telemetry` (optional) counts the weighted draws taken in kSampled mode
/// (tnames::kQwSamplesDrawn); it never affects the sampled rows.
///
/// This is the legacy deep-copy representation (an O(n*l) copy per call);
/// the serving path uses EstimateWorkerRowsInto + QwOverlay instead and
/// keeps this entry point as the reference the equivalence suite and the
/// bench's legacy mode compare against.
DistributionMatrix EstimateWorkerDistribution(
    const DistributionMatrix& current, const WorkerModel& model,
    const std::vector<QuestionIndex>& candidates, QwMode mode, util::Rng& rng,
    util::ThreadPool* pool = nullptr,
    util::MetricRegistry* telemetry = nullptr);

/// Zero-copy Qw estimation (DESIGN.md §12): materialises only the candidate
/// rows into `overlay` (reusable per-strategy scratch; reads of other rows
/// fall through to `current` via AssignmentRequest::EstimatedRow) and runs
/// the answer-distribution / posterior-weight inner loops through the
/// runtime-dispatched kernels with zero per-candidate allocations.
/// `likelihoods` must be the transposed table for `model` (from the
/// engine's LikelihoodCache or a strategy-local rebuild).
///
/// Same randomness contract as EstimateWorkerDistribution, and bit-identical
/// overlay rows: for every candidate i, overlay->Row(i) holds exactly the
/// doubles EstimateWorkerDistribution's row i would hold — the kernel
/// equivalence suite pins this across every ISA. The one deliberate
/// exception is kExpected with a WP model, where the rows come from the
/// exact closed form (see QwMode) instead of the numerically-accumulated
/// mixture: the closed form is the true value the legacy mixture only
/// approaches to within rounding, so those rows agree with the legacy path
/// to ~1e-12 rather than bitwise. Golden traces and the engine default run
/// kSampled, which is bitwise-pinned.
/// When `fuse_row_max` is set, the overlay's quality channel is armed and
/// each materialised row's maximum — the Accuracy* row quality — is written
/// alongside the row while it is still hot (QwOverlay::ArmQualities), so
/// the Top-K benefit scan reads one contiguous double per candidate instead
/// of re-reducing the row. The fused maxima are exactly kernels::RowMax of
/// the materialised rows; they never change which rows are produced.
void EstimateWorkerRowsInto(const DistributionMatrix& current,
                            const WorkerModel& model,
                            const WorkerLikelihoods& likelihoods,
                            const std::vector<QuestionIndex>& candidates,
                            QwMode mode, util::Rng& rng, QwOverlay* overlay,
                            util::ThreadPool* pool = nullptr,
                            util::MetricRegistry* telemetry = nullptr,
                            bool fuse_row_max = false);

}  // namespace qasca

#endif  // QASCA_MODEL_POSTERIOR_H_
