#include "util/rng.h"

#include <numeric>

namespace qasca::util {

int SampleWeightedAt(std::span<const double> weights, double u01) {
  QASCA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    QASCA_CHECK_GE(w, 0.0) << "negative sampling weight";
    total += w;
  }
  QASCA_CHECK_GT(total, 0.0) << "all sampling weights are zero";
  double target = u01 * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return static_cast<int>(i);
  }
  // Floating-point slack: fall back to the last non-zero weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int SampleWeightedAt(const std::vector<double>& weights, double u01) {
  return SampleWeightedAt(std::span<const double>(weights), u01);
}

int Rng::SampleWeighted(const std::vector<double>& weights) {
  return SampleWeightedAt(weights, Uniform());
}

std::vector<int> Rng::SampleWithoutReplacement(int population, int count) {
  QASCA_CHECK_GE(count, 0);
  QASCA_CHECK_LE(count, population);
  std::vector<int> pool(population);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < count; ++i) {
    int j = i + UniformInt(population - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

std::vector<int> Rng::Permutation(int count) {
  return SampleWithoutReplacement(count, count);
}

}  // namespace qasca::util
