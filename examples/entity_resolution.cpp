// Entity resolution with an F-score objective — the deployment scenario of
// the paper's Appendix A: product pairs are labelled "equal" / "non-equal",
// the requester cares about the F-score of the "equal" label (alpha = 0.5),
// and QASCA's F-score Online Assignment decides which pairs each arriving
// worker should verify. A random-assignment baseline runs side by side on
// the identical crowd for comparison.
//
// Build & run:  ./build/examples/entity_resolution

#include <cstdio>

#include "core/metrics/fscore.h"
#include "simulation/experiment.h"

int main() {
  using namespace qasca;

  // A scaled-down ER application (the full Table 1 shape lives in
  // EntityResolutionApp(); shrinking keeps this example instant).
  ApplicationSpec spec = EntityResolutionApp();
  spec.num_questions = 400;
  spec.workers.num_workers = 40;

  std::printf("Entity resolution: %d product pairs, metric = %s on "
              "\"equal\", %d HITs of %d questions\n\n",
              spec.num_questions, spec.metric.Make()->name().c_str(),
              spec.TotalHits(), spec.questions_per_hit);

  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[0], all[3]};  // Baseline, QASCA

  ExperimentOptions options;
  options.seed = 11;
  options.checkpoints = 8;
  ExperimentResult result = RunParallelExperiment(spec, systems, options);

  std::printf("%-6s  %-10s  %-10s\n", "HITs", "Baseline", "QASCA");
  for (size_t c = 0; c < result.systems[0].completed_hits.size(); ++c) {
    std::printf("%-6d  %-10.4f  %-10.4f\n",
                result.systems[0].completed_hits[c],
                result.systems[0].quality[c], result.systems[1].quality[c]);
  }

  // Break the final result down into Precision / Recall for the report.
  for (const SystemTrace& trace : result.systems) {
    std::printf("\n%s final F-score(alpha=0.5) = %.4f", trace.name.c_str(),
                trace.final_quality);
  }
  std::printf("\n\nQASCA's optimal-result selection gain over argmax "
              "labelling (Table 3's Delta-hat): %.4f\n",
              result.systems[1].result_selection_gain);
  return 0;
}
