#ifndef QASCA_UTIL_LOGGING_H_
#define QASCA_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace qasca::util {

/// Terminates the process after printing `message` with source location.
/// Used by the QASCA_CHECK family for unrecoverable programmer errors;
/// recoverable conditions use util::Status instead.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& message) {
  std::fprintf(stderr, "[QASCA FATAL] %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace internal {

/// Stream-collecting helper so check macros can accept `<< "context"`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "Check failed: " << condition;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    FatalError(file_, line_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qasca::util

/// Aborts with a diagnostic if `condition` is false. Enabled in all build
/// types: these guard API contracts, not internal debugging.
#define QASCA_CHECK(condition)                                       \
  if (condition) {                                                   \
  } else                                                             \
    ::qasca::util::internal::CheckMessageBuilder(__FILE__, __LINE__, \
                                                 #condition)

#define QASCA_CHECK_EQ(a, b) QASCA_CHECK((a) == (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_NE(a, b) QASCA_CHECK((a) != (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_LT(a, b) QASCA_CHECK((a) < (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_LE(a, b) QASCA_CHECK((a) <= (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_GT(a, b) QASCA_CHECK((a) > (b)) << "(" #a " vs " #b ")"
#define QASCA_CHECK_GE(a, b) QASCA_CHECK((a) >= (b)) << "(" #a " vs " #b ")"

#endif  // QASCA_UTIL_LOGGING_H_
