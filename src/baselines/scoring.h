#ifndef QASCA_BASELINES_SCORING_H_
#define QASCA_BASELINES_SCORING_H_

#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace qasca::baselines_internal {

/// Selects the k questions with the *largest* scores; ties are broken
/// uniformly at random (scores.size() == candidates.size()). Returns the
/// chosen question indices in ascending order.
std::vector<QuestionIndex> TopKByScore(
    const std::vector<QuestionIndex>& candidates,
    const std::vector<double>& scores, int k, util::Rng& rng);

}  // namespace qasca::baselines_internal

#endif  // QASCA_BASELINES_SCORING_H_
