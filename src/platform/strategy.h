#ifndef QASCA_PLATFORM_STRATEGY_H_
#define QASCA_PLATFORM_STRATEGY_H_

#include <string>
#include <vector>

#include "core/distribution_matrix.h"
#include "core/metrics/metric.h"
#include "core/types.h"
#include "model/worker_model.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace qasca {

class Database;
class LikelihoodCache;
struct DecisionProvenance;

/// Everything a task-assignment policy may inspect when a worker requests a
/// HIT. All pointers are non-owning and valid only for the duration of the
/// SelectQuestions call.
///
/// Threading contract: built and consumed on the engine thread.
/// `database`, `metric` and the worker models are const views that kernel
/// chunks dispatched onto `pool` may read concurrently; `rng` is
/// engine-thread-only (kernels derive counter-based per-question streams
/// instead of sharing it); `telemetry` instruments are internally
/// synchronised.
struct StrategyContext {
  /// The system state (answer set, Qc, fitted parameters).
  const Database* database = nullptr;
  /// The application's evaluation metric.
  const MetricSpec* metric = nullptr;
  /// The requesting worker's id and fitted model (perfect for new workers).
  WorkerId worker = 0;
  const WorkerModel* worker_model = nullptr;
  /// A representative "average worker" model fitted over all workers —
  /// used by policies that disregard who is asking (MaxMargin).
  const WorkerModel* typical_worker = nullptr;
  /// Randomness source for tie-breaking and sampling.
  util::Rng* rng = nullptr;
  /// Optional worker pool for parallel per-candidate kernels (Qw
  /// estimation, benefit scans); nullptr runs serial. Selections are
  /// byte-identical either way.
  util::ThreadPool* pool = nullptr;
  /// Optional engine telemetry registry for stage spans and hot-path
  /// counters; nullptr (or a disabled registry) records nothing and
  /// instruments cost a dead branch. Never influences decisions.
  util::MetricRegistry* telemetry = nullptr;
  /// Optional per-worker likelihood-table cache (model/likelihood_cache.h),
  /// owned and invalidated by the engine across EM refits. nullptr makes
  /// strategies rebuild the requesting worker's table locally; decisions
  /// are bit-identical either way (the cache is pure memoisation).
  LikelihoodCache* likelihood_cache = nullptr;
  /// Whether Qw-estimating strategies may use the zero-copy overlay path
  /// (EstimateWorkerRowsInto) instead of the legacy deep-copy
  /// EstimateWorkerDistribution. Both produce bit-identical selections
  /// (DESIGN.md §12); the flag exists for the equivalence suite and the
  /// legacy bench mode.
  bool use_qw_overlay = true;
  /// Optional out-record for decision provenance (platform/provenance.h).
  /// When non-null, strategies that can explain their choice fill the
  /// selection scores and optimizer diagnostics; the engine fills the
  /// identity fields (ids, ticks, journal seq) and appends the record.
  /// Purely write-only diagnostics — never read back, never influences the
  /// selection.
  DecisionProvenance* provenance = nullptr;
};

/// A task-assignment policy: given the candidate set S^w, choose the k
/// questions to put in the worker's HIT. Implemented by QASCA itself and by
/// the five comparison systems of Section 6.2.1.
///
/// Threading contract: SelectQuestions runs on the engine thread only.
/// Implementations may parallelise internally through `context.pool`
/// (ParallelFor bodies limited to const reads of context state plus writes
/// to their own pre-sized chunk slots) but must not retain `context`
/// pointers past the call.
class AssignmentStrategy {
 public:
  virtual ~AssignmentStrategy() = default;

  /// Name used in experiment reports ("QASCA", "CDAS", ...).
  virtual std::string name() const = 0;

  /// Selects exactly `k` distinct questions from `candidates`.
  /// `candidates` is non-empty and has at least k elements.
  virtual std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) = 0;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_STRATEGY_H_
