// Tests for the deterministic fault-injection registry (util/failpoint.h):
// trigger windows, re-arming semantics, the disarmed fast path, and
// QASCA_FAILPOINTS environment parsing. All tests restore the registry to
// fully disarmed so they cannot leak injected faults into other tests in
// the same binary.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace qasca::util {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPoints::Global().DisarmAll();
    ::unsetenv("QASCA_FAILPOINTS");
  }
};

TEST_F(FailPointTest, DisarmedPointNeverTriggers) {
  auto& points = FailPoints::Global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(points.Hit("never.armed"));
  }
  EXPECT_EQ(points.TriggeredCount("never.armed"), 0u);
}

TEST_F(FailPointTest, DefaultArmTriggersExactlyOnce) {
  auto& points = FailPoints::Global();
  points.Arm("fp.once");
  EXPECT_TRUE(points.Hit("fp.once"));
  EXPECT_FALSE(points.Hit("fp.once"));
  EXPECT_FALSE(points.Hit("fp.once"));
  EXPECT_EQ(points.TriggeredCount("fp.once"), 1u);
}

TEST_F(FailPointTest, SkipAndLimitDefineTheTriggerWindow) {
  auto& points = FailPoints::Global();
  points.Arm("fp.window", /*skip=*/2, /*limit=*/3);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(points.Hit("fp.window"));
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(points.TriggeredCount("fp.window"), 3u);
}

TEST_F(FailPointTest, RearmingResetsTheHitCounter) {
  auto& points = FailPoints::Global();
  points.Arm("fp.rearm", /*skip=*/1, /*limit=*/1);
  EXPECT_FALSE(points.Hit("fp.rearm"));
  EXPECT_TRUE(points.Hit("fp.rearm"));
  points.Arm("fp.rearm", /*skip=*/1, /*limit=*/1);
  EXPECT_FALSE(points.Hit("fp.rearm"));  // counter restarted
  EXPECT_TRUE(points.Hit("fp.rearm"));
  EXPECT_EQ(points.TriggeredCount("fp.rearm"), 1u);  // since last arm
}

TEST_F(FailPointTest, DisarmStopsTriggeringAndForgetsCounts) {
  auto& points = FailPoints::Global();
  points.Arm("fp.disarm", /*skip=*/0, /*limit=*/100);
  EXPECT_TRUE(points.Hit("fp.disarm"));
  points.Disarm("fp.disarm");
  EXPECT_FALSE(points.Hit("fp.disarm"));
  EXPECT_EQ(points.TriggeredCount("fp.disarm"), 0u);
  points.Disarm("fp.disarm");  // disarming an unarmed point is a no-op
}

TEST_F(FailPointTest, PointsAreIndependent) {
  auto& points = FailPoints::Global();
  points.Arm("fp.a");
  points.Arm("fp.b", /*skip=*/1, /*limit=*/1);
  EXPECT_TRUE(points.Hit("fp.a"));
  EXPECT_FALSE(points.Hit("fp.b"));
  EXPECT_TRUE(points.Hit("fp.b"));
  points.DisarmAll();
  EXPECT_FALSE(points.Hit("fp.a"));
  EXPECT_FALSE(points.Hit("fp.b"));
}

TEST_F(FailPointTest, ArmFromEnvUnsetIsEmpty) {
  ::unsetenv("QASCA_FAILPOINTS");
  EXPECT_TRUE(FailPoints::Global().ArmFromEnv().empty());
  ::setenv("QASCA_FAILPOINTS", "", /*overwrite=*/1);
  EXPECT_TRUE(FailPoints::Global().ArmFromEnv().empty());
}

TEST_F(FailPointTest, ArmFromEnvParsesAllThreeForms) {
  ::setenv("QASCA_FAILPOINTS", "fp.bare,fp.skip=2,fp.full=1:3",
           /*overwrite=*/1);
  auto& points = FailPoints::Global();
  const std::vector<std::string> armed = points.ArmFromEnv();
  EXPECT_EQ(armed,
            (std::vector<std::string>{"fp.bare", "fp.skip", "fp.full"}));

  // bare: skip=0, limit=1
  EXPECT_TRUE(points.Hit("fp.bare"));
  EXPECT_FALSE(points.Hit("fp.bare"));
  // name=skip: limit defaults to 1
  EXPECT_FALSE(points.Hit("fp.skip"));
  EXPECT_FALSE(points.Hit("fp.skip"));
  EXPECT_TRUE(points.Hit("fp.skip"));
  EXPECT_FALSE(points.Hit("fp.skip"));
  // name=skip:limit
  EXPECT_FALSE(points.Hit("fp.full"));
  EXPECT_TRUE(points.Hit("fp.full"));
  EXPECT_TRUE(points.Hit("fp.full"));
  EXPECT_TRUE(points.Hit("fp.full"));
  EXPECT_FALSE(points.Hit("fp.full"));
}

TEST_F(FailPointTest, ArmFromEnvIgnoresEmptyEntries) {
  ::setenv("QASCA_FAILPOINTS", ",fp.solo,,", /*overwrite=*/1);
  const std::vector<std::string> armed = FailPoints::Global().ArmFromEnv();
  EXPECT_EQ(armed, (std::vector<std::string>{"fp.solo"}));
}

#if QASCA_ENABLE_FAILPOINTS
TEST_F(FailPointTest, MacroRoutesThroughTheGlobalRegistry) {
  FailPoints::Global().Arm("fp.macro");
  EXPECT_TRUE(QASCA_FAIL_POINT("fp.macro"));
  EXPECT_FALSE(QASCA_FAIL_POINT("fp.macro"));
  EXPECT_EQ(FailPoints::Global().TriggeredCount("fp.macro"), 1u);
}
#endif

}  // namespace
}  // namespace qasca::util
