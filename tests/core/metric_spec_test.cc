#include "core/metrics/metric.h"

#include <gtest/gtest.h>

#include "core/metrics/accuracy.h"
#include "core/metrics/cost_accuracy.h"
#include "core/metrics/fscore.h"

namespace qasca {
namespace {

TEST(MetricSpecTest, MakesAccuracy) {
  auto metric = MetricSpec::Accuracy().Make();
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->name(), "Accuracy");
}

TEST(MetricSpecTest, MakesFScoreWithParameters) {
  auto metric = MetricSpec::FScore(0.75, 1).Make();
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->name(), "F-score(alpha=0.75)");
  auto* fscore = dynamic_cast<FScoreMetric*>(metric.get());
  ASSERT_NE(fscore, nullptr);
  EXPECT_EQ(fscore->target_label(), 1);
}

TEST(MetricSpecTest, MakesCostAccuracy) {
  auto spec = MetricSpec::CostAccuracy({0.0, 2.0, 1.0, 0.0});
  EXPECT_EQ(spec.CostLabels(), 2);
  auto metric = spec.Make();
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->name(), "CostAccuracy");
  auto* cost = dynamic_cast<CostAccuracyMetric*>(metric.get());
  ASSERT_NE(cost, nullptr);
  EXPECT_DOUBLE_EQ(cost->CostOf(0, 1), 2.0);
}

TEST(MetricSpecDeathTest, NonSquareCostMatrixAborts) {
  auto spec = MetricSpec::CostAccuracy({0.0, 1.0, 1.0});
  EXPECT_DEATH((void)spec.CostLabels(), "square");
}

TEST(MetricSpecTest, DefaultIsAccuracy) {
  MetricSpec spec;
  EXPECT_EQ(spec.kind, MetricSpec::Kind::kAccuracy);
}

}  // namespace
}  // namespace qasca
