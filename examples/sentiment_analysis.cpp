// Three-label sentiment analysis under the Accuracy metric, with a look at
// the worker models the platform learns. Demonstrates:
//  * a multi-label application (positive / neutral / negative),
//  * EM-fitted confusion matrices vs the latent ones (Section 6.2.2's
//    observation that sentiment confusion is structured: "positive" is
//    mistaken for "neutral" far more often than for "negative"),
//  * prior estimation.
//
// Build & run:  ./build/examples/sentiment_analysis

#include <cstdio>

#include "model/prior.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "simulation/dataset.h"
#include "simulation/experiment.h"

int main() {
  using namespace qasca;

  ApplicationSpec spec = SentimentAnalysisApp();
  spec.num_questions = 300;
  spec.workers.num_workers = 25;

  ExperimentOptions options;
  options.seed = 5;
  options.checkpoints = 6;
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems = {all[3]};  // QASCA
  ExperimentResult result = RunParallelExperiment(spec, systems, options);

  std::printf("Sentiment analysis: %d tweets, labels = {positive, neutral, "
              "negative}\n\n", spec.num_questions);
  std::printf("quality as HITs complete:\n");
  const SystemTrace& trace = result.systems[0];
  for (size_t c = 0; c < trace.completed_hits.size(); ++c) {
    std::printf("  %4d HITs -> accuracy %.4f\n", trace.completed_hits[c],
                trace.quality[c]);
  }

  // Re-run the final EM fit to inspect learned structure.
  util::Rng world(options.seed);
  (void)world;
  std::printf("\nground-truth label mix: ");
  std::vector<int> counts(3, 0);
  for (LabelIndex t : result.truth) ++counts[t];
  const char* names[] = {"positive", "neutral", "negative"};
  for (int j = 0; j < 3; ++j) {
    std::printf("%s %.2f  ", names[j],
                counts[j] / static_cast<double>(result.truth.size()));
  }
  std::printf("\n(the platform's estimated prior converges to this mix as "
              "answers arrive)\n");

  std::printf(
      "\nstructured confusion: with adjacent-sentiment errors, a full\n"
      "confusion matrix captures P(neutral | positive) > P(negative |\n"
      "positive) — something the single-parameter WP model cannot, which\n"
      "is why Table 2 shows CM > WP on this application.\n");
  std::printf("\nmean worker-quality estimation deviation at the end: %.4f\n",
              trace.estimation_deviation.back());
  return 0;
}
