"""Driver: grounds the tree, runs the passes, reports, self-tests.

Usage (normally via tools/analyze.py):

  python3 tools/analyze.py                 # human-readable, exit 1 on error
  python3 tools/analyze.py --json          # machine-readable report (schema 2)
  python3 tools/analyze.py --sarif out.sarif
  python3 tools/analyze.py --passes determinism,span-names
  python3 tools/analyze.py --list-passes
  python3 tools/analyze.py --write-baseline
  python3 tools/analyze.py --self-test     # run passes over testdata/

File universe: when a compile_commands.json exists (any build*/ dir, or
--compile-db), the analyzed set is exactly the TUs the build compiles plus
the transitive closure of their quoted includes. Source files the build
never sees are *not* silently analyzed — they are listed as orphan
warnings. Without a database the driver falls back to walking src/ and
says so.

Baseline: tools/analyze/baseline.json pins the ids of known findings.
A baselined finding is reported as a warning and does not fail the run; a
finding not in the baseline fails it. `--write-baseline` rewrites the file
from the current run (suppressed findings are never baselined — the allow
comment already owns them).

Exit status: 0 clean (suppressed and baselined findings do not fail the
run), 1 on any non-baselined error finding (or self-test mismatch), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .base import (ERROR, Finding, SourceTree, apply_suppressions,
                   assign_finding_ids)
from .frontend import CompilationDatabase, ModelCache, header_closure
from .passes import ALL_PASSES, by_name

TESTDATA = Path(__file__).resolve().parent / "testdata"
BASELINE = Path(__file__).resolve().parent / "baseline.json"
CACHE_NAME = ".analyze-cache.json"

JSON_SCHEMA_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def build_universe(tree: SourceTree,
                   db: CompilationDatabase) -> tuple[set[str], list[str]]:
    """(universe, orphans): the compile-DB-grounded file set and the src/
    files on disk that the build never compiles or includes."""

    def include_of(rel: str) -> list[str]:
        source = tree.file(rel)
        if source is None:
            return []
        return [i.target for i in tree.model(source).includes if not i.angled]

    universe = header_closure(
        [s for s in db.sources if s.startswith("src/")],
        include_of, tree.resolve_include)
    on_disk = {
        p.relative_to(tree.root).as_posix()
        for p in (tree.root / "src").rglob("*")
        if p.is_file() and p.suffix in (".h", ".cc")
    }
    orphans = sorted(on_disk - universe)
    return universe, orphans


def ground_tree(repo_root: Path, compile_db: Path | None,
                use_cache: bool) -> tuple[SourceTree, list[str], list[str]]:
    """Builds the SourceTree the passes run over, plus (orphans, notes)."""
    notes: list[str] = []
    cache = ModelCache(repo_root / CACHE_NAME) if use_cache else \
        ModelCache(None)

    db_path = compile_db or CompilationDatabase.discover(repo_root)
    if db_path is None:
        notes.append("no compile_commands.json under build*/ — analyzing "
                     "every file on disk (configure a preset to ground the "
                     "universe in the build)")
        return SourceTree(repo_root, model_cache=cache), [], notes

    db = CompilationDatabase(db_path, repo_root)
    # The closure walk needs an un-universed tree (it must read candidate
    # headers to chase their includes); the grounded tree shares the cache.
    scout = SourceTree(repo_root, model_cache=cache)
    universe, orphans = build_universe(scout, db)
    notes.append(f"universe: {len(universe)} files from "
                 f"{db_path.relative_to(repo_root).as_posix()} "
                 f"({len(db.sources)} TUs + quoted-include closure)")
    tree = SourceTree(repo_root, universe=universe, model_cache=cache)
    tree._models = scout._models  # reuse models built during the closure
    tree._cache = scout._cache
    return tree, orphans, notes


def run_passes(tree: SourceTree, passes) -> list[Finding]:
    findings: list[Finding] = []
    for pass_ in passes:
        findings.extend(pass_.run(tree))
    findings = apply_suppressions(tree, findings)
    assign_finding_ids(tree, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.pass_name, f.id))
    return findings


# ---------------------------------------------------------------------------
# Baseline


def load_baseline(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {entry["id"] for entry in data.get("findings", [])}


def apply_baseline(findings: list[Finding], baseline: set[str]) -> None:
    for finding in findings:
        if not finding.suppressed and finding.id in baseline:
            finding.baselined = True


def write_baseline(path: Path, findings: list[Finding]) -> int:
    entries = [
        {"id": f.id, "location": f.location(), "pass": f.pass_name,
         "message": f.message}
        for f in findings
        if not f.suppressed and f.severity == ERROR
    ]
    payload = {
        "comment": ("Known findings pinned by id (stable under line "
                    "shifts). New findings fail the run; remove entries "
                    "as the sites are migrated. Regenerate with "
                    "tools/analyze.py --write-baseline."),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2, ensure_ascii=False) + "\n",
                    encoding="utf-8")
    return len(entries)


# ---------------------------------------------------------------------------
# Reports


def failing(findings: list[Finding]) -> list[Finding]:
    return [f for f in findings
            if not f.suppressed and not f.baselined and f.severity == ERROR]


def report_text(findings: list[Finding], passes, orphans: list[str],
                notes: list[str]) -> str:
    lines = list(notes)
    for orphan in orphans:
        lines.append(f"{orphan}: warning [universe] file exists under src/ "
                     "but no configured build compiles or includes it")
    active = [f for f in findings if not f.suppressed]
    for finding in active:
        severity = "warning" if finding.baselined else finding.severity
        tag = " (baselined)" if finding.baselined else ""
        lines.append(f"{finding.location()}: {severity} "
                     f"[{finding.pass_name}] {finding.message}{tag}")
    errors = len(failing(findings))
    baselined = sum(1 for f in active if f.baselined)
    suppressed = len(findings) - len(active)
    warnings = sum(1 for f in active
                   if f.severity != ERROR and not f.baselined)
    lines.append(f"analyze: {len(passes)} passes, {errors} errors, "
                 f"{warnings + baselined} warnings "
                 f"({baselined} baselined), {suppressed} suppressed")
    return "\n".join(lines)


def report_json(findings: list[Finding], passes, orphans: list[str]) -> str:
    active = [f for f in findings if not f.suppressed]
    return json.dumps({
        "schema": JSON_SCHEMA_VERSION,
        "passes": [{"name": p.name, "description": p.description}
                   for p in passes],
        "findings": [f.to_json() for f in findings],
        "orphans": orphans,
        "errors": len(failing(findings)),
        "warnings": sum(1 for f in active
                        if f.severity != ERROR or f.baselined),
        "suppressed": sum(1 for f in findings if f.suppressed),
    }, indent=2)


def report_sarif(findings: list[Finding], passes) -> str:
    """SARIF 2.1.0: one run, one rule per pass, one result per active
    finding (suppressed findings are carried with a suppression record so
    the history stays visible in code-scanning UIs)."""
    rules = [{
        "id": p.name,
        "shortDescription": {"text": p.description},
        "defaultConfiguration": {
            "level": "error" if p.severity == ERROR else "warning"},
    } for p in passes]
    results = []
    for f in findings:
        result = {
            "ruleId": f.pass_name,
            "level": ("note" if f.suppressed else
                      "warning" if f.baselined else
                      "error" if f.severity == ERROR else "warning"),
            "message": {"text": f.message},
            "partialFingerprints": {"qascaFindingId/v1": f.id},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
        }
        if f.suppressed:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": f"analyze:allow({f.pass_name}) comment",
            }]
        elif f.baselined:
            result["suppressions"] = [{
                "kind": "external",
                "justification": "tools/analyze/baseline.json",
            }]
        results.append(result)
    return json.dumps({
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "qasca-analyze",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2)


# ---------------------------------------------------------------------------
# Self-test


def self_test(passes) -> int:
    """Checks the passes against the known-bad fixture tree.

    Every `analyze:expect(<pass>)` marker must be matched by an active
    finding of that pass on that exact line; there must be no unexpected
    active findings; every pass must demonstrate both a firing fixture and
    a working `analyze:allow` suppression; finding ids must be unique and
    stable-shaped; the JSON report must keep schema 2 and the
    (path, line, pass) sort; and the baseline mechanism must neutralize
    exactly the findings it names.
    """
    tree = SourceTree(TESTDATA)
    findings = run_passes(tree, passes)
    active = {(f.pass_name, f.path, max(f.line, 1))
              for f in findings if not f.suppressed}
    suppressed_by_pass: dict[str, int] = {}
    for f in findings:
        if f.suppressed:
            suppressed_by_pass[f.pass_name] = \
                suppressed_by_pass.get(f.pass_name, 0) + 1

    expected = set()
    for source in tree.files(("src",), extensions=(".h", ".cc")):
        for pass_name, line in source.expects():
            expected.add((pass_name, source.rel, line))

    problems = []
    for item in sorted(expected - active):
        problems.append(f"expected finding did not fire: {item[0]} at "
                        f"{item[1]}:{item[2]}")
    for item in sorted(active - expected):
        problems.append(f"unexpected finding: {item[0]} at "
                        f"{item[1]}:{item[2]}")
    for pass_ in passes:
        if not any(name == pass_.name for name, _, _ in expected):
            problems.append(f"pass {pass_.name} has no firing fixture in "
                            "testdata/")
        if suppressed_by_pass.get(pass_.name, 0) == 0:
            problems.append(f"pass {pass_.name} has no suppressed fixture "
                            "proving analyze:allow works")

    problems.extend(_check_ids(findings))
    problems.extend(_check_json_shape(findings, passes))
    problems.extend(_check_baseline_mechanism(tree, passes))

    if problems:
        print("analyze --self-test: FAIL")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"analyze --self-test: OK ({len(expected)} expected findings "
          f"fired, {sum(suppressed_by_pass.values())} suppressions held, "
          f"{len(passes)} passes)")
    return 0


def _check_ids(findings: list[Finding]) -> list[str]:
    problems = []
    ids = [f.id for f in findings]
    if len(ids) != len(set(ids)):
        problems.append("finding ids are not unique")
    for f in findings:
        parts = f.id.split(":")
        if len(parts) != 4 or parts[0] != f.pass_name or parts[1] != f.path:
            problems.append(f"malformed finding id: {f.id!r}")
            break
    return problems


def _check_json_shape(findings: list[Finding], passes) -> list[str]:
    """Regression-pins the report surface downstream tooling consumes."""
    problems = []
    report = json.loads(report_json(findings, passes, orphans=[]))
    if report.get("schema") != JSON_SCHEMA_VERSION:
        problems.append(f"json schema is {report.get('schema')!r}, "
                        f"expected {JSON_SCHEMA_VERSION}")
    for key in ("passes", "findings", "orphans", "errors", "warnings",
                "suppressed"):
        if key not in report:
            problems.append(f"json report lost the {key!r} key")
    rows = [(f["path"], f["line"], f["pass"])
            for f in report.get("findings", [])]
    if rows != sorted(rows):
        problems.append("json findings are not sorted by (path, line, pass)")
    expected_keys = {"id", "pass", "severity", "path", "line", "message",
                     "suppressed", "baselined"}
    for f in report.get("findings", []):
        if set(f) != expected_keys:
            problems.append(f"json finding keys changed: {sorted(f)}")
        break
    sarif = json.loads(report_sarif(findings, passes))
    if sarif.get("version") != SARIF_VERSION or not sarif.get("runs"):
        problems.append("sarif report lost its version or runs")
    return problems


def _check_baseline_mechanism(tree: SourceTree, passes) -> list[str]:
    """A baseline naming every current finding must neutralize exactly
    those findings and nothing else; a fresh run minus the baseline must
    still fail."""
    problems = []
    findings = run_passes(tree, passes)
    errors = [f for f in findings if not f.suppressed and
              f.severity == ERROR]
    if not errors:
        return ["baseline check needs at least one error fixture"]
    baseline = {f.id for f in errors}
    apply_baseline(findings, baseline)
    if failing(findings):
        problems.append("full baseline did not neutralize all findings")
    if sum(1 for f in findings if f.baselined) != len(errors):
        problems.append("baseline marked a suppressed or missing finding")
    findings = run_passes(tree, passes)
    apply_baseline(findings, set(list(baseline)[:1]))
    if len(failing(findings)) != len(errors) - 1:
        problems.append("partial baseline failed to keep new findings "
                        "failing")
    return problems


# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/analyze.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo-root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (defaults to the grandparent "
                             "of tools/analyze/)")
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="compile_commands.json to ground the file "
                             "universe (default: newest under build*/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the model cache "
                             f"({CACHE_NAME})")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report "
                             f"(schema {JSON_SCHEMA_VERSION})")
    parser.add_argument("--sarif", type=Path, default=None, metavar="PATH",
                        help="also write a SARIF 2.1.0 report to PATH")
    parser.add_argument("--passes", type=str, default="",
                        help="comma-separated subset of passes to run")
    parser.add_argument("--list-passes", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="baseline file (default: "
                             "tools/analyze/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "findings and exit 0")
    parser.add_argument("--write-lock-order", action="store_true",
                        help="recompute the interprocedural lock ranking "
                             "and rewrite tools/analyze/lock_order.json")
    parser.add_argument("--stats", action="store_true",
                        help="print timing and model-cache hit rates")
    parser.add_argument("--self-test", action="store_true",
                        help="run the passes over tools/analyze/testdata/ "
                             "and check the expected findings fire")
    args = parser.parse_args(argv)

    try:
        passes = by_name([n.strip() for n in args.passes.split(",")
                          if n.strip()]) if args.passes else ALL_PASSES
    except KeyError as unknown:
        print(f"analyze: unknown pass(es): {unknown}", file=sys.stderr)
        return 2

    if args.list_passes:
        for pass_ in passes:
            print(f"{pass_.name:18} {pass_.description}")
        return 0

    if args.self_test:
        return self_test(passes)

    repo_root = args.repo_root.resolve()
    if not (repo_root / "src").is_dir():
        print(f"analyze: {repo_root} has no src/ directory", file=sys.stderr)
        return 2
    if args.compile_db is not None and not args.compile_db.is_file():
        print(f"analyze: {args.compile_db} does not exist", file=sys.stderr)
        return 2

    started = time.monotonic()
    tree, orphans, notes = ground_tree(repo_root, args.compile_db,
                                       use_cache=not args.no_cache)

    if args.write_lock_order:
        from .passes.lock_order import LOCK_ORDER_JSON, compute_lock_order
        payload = compute_lock_order(tree)
        target = repo_root / LOCK_ORDER_JSON
        target.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        if tree.model_cache is not None:
            tree.model_cache.save()
        state = "CYCLIC — fix the cycle before trusting the ranks" \
            if payload["cyclic"] else "acyclic"
        print(f"analyze: lock order rewritten ({len(payload['nodes'])} "
              f"locks, {len(payload['edges'])} edges, {state}) — keep "
              "util/lock_ranks.h aligned")
        return 1 if payload["cyclic"] else 0

    findings = run_passes(tree, passes)

    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        if tree.model_cache is not None:
            tree.model_cache.save()
        print(f"analyze: baseline rewritten with {count} findings "
              f"({args.baseline})")
        return 0

    apply_baseline(findings, load_baseline(args.baseline))

    if args.sarif is not None:
        args.sarif.write_text(report_sarif(findings, passes) + "\n",
                              encoding="utf-8")
        notes.append(f"sarif report written to {args.sarif}")

    print(report_json(findings, passes, orphans) if args.json
          else report_text(findings, passes, orphans, notes))
    if tree.model_cache is not None:
        tree.model_cache.save()
        if args.stats:
            elapsed = time.monotonic() - started
            cache = tree.model_cache
            print(f"analyze --stats: {elapsed:.2f}s, model cache "
                  f"{cache.hits} hits / {cache.misses} misses",
                  file=sys.stderr)
    return 1 if failing(findings) else 0
