"""Lightweight C++ semantic frontend shared by the analyzer passes.

The PR-4 analyzer was regex-over-lines: it could not tell a call from a
declaration, see whether a call's result is consumed, walk the include
graph, or reason about what happens *inside a loop*. This module adds the
minimum semantic model those questions need — nothing close to a real
compiler, but grounded in the same translation units the build compiles:

  * a shared tokenizer over the comment-stripped view of each file
    (identifiers, literals, punctuators, with line numbers);
  * per-file models (`FileModel`): include directives, declarations of
    Status/StatusOr-returning functions, every call site with a verdict on
    whether its result is used, function definitions with body extents,
    scalar floating-point reduction sites inside loops, and allocation
    facts (push_back/reserve receivers, containers constructed inside
    loops);
  * a `compile_commands.json` loader (`CompilationDatabase`) so the file
    universe the passes see is exactly what the build compiles — every
    preset exports the database (CMakeLists.txt sets
    CMAKE_EXPORT_COMPILE_COMMANDS), and the driver grounds the tree in the
    newest one;
  * a content-addressed model cache (`ModelCache`, mtime/size fast path
    plus sha1 fallback) so re-running the analyzer only re-tokenizes files
    that actually changed — tokenization dominates a cold run.

Everything here is derived from the `code` view of base.SourceFile
(comments stripped, line structure preserved), so token line numbers agree
with the line numbers the regex passes report.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

# Bump whenever tokenization or fact extraction changes shape or meaning:
# a version mismatch invalidates the whole model cache.
FRONTEND_VERSION = 3

# ---------------------------------------------------------------------------
# Tokenizer


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "str" | "chr" | "punct"
    text: str
    line: int  # 1-based


_TOKEN = re.compile(
    r"""
      (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<str>(?:L|u8?|U)?"(?:[^"\\\n]|\\.)*")
    | (?P<chr>(?:L|u8?|U)?'(?:[^'\\\n]|\\.)*')
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
        |[-+*/%^&|~!<>=]=|[-+*/%^&|~!<>=?{}()\[\];:,.#])
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset(
    "if else for while do switch case default return break continue goto "
    "sizeof alignof new delete throw try catch static_cast dynamic_cast "
    "const_cast reinterpret_cast co_await co_return co_yield".split())

CONTROL_KEYWORDS = frozenset("if for while switch catch".split())


def tokenize(code: str) -> list[Token]:
    """Tokenizes the comment-stripped `code` view of a file."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    for match in _TOKEN.finditer(code):
        line += code.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup or "punct"
        tokens.append(Token(kind=kind, text=match.group(0), line=line))
    return tokens


# ---------------------------------------------------------------------------
# Per-file facts


@dataclass
class Include:
    line: int
    target: str  # as spelled between the delimiters
    angled: bool


@dataclass
class CallSite:
    name: str  # unqualified callee name
    line: int
    discarded: bool  # full-expression statement whose value is dropped
    void_cast: bool  # explicitly discarded via (void) / static_cast<void>


@dataclass
class FunctionDef:
    name: str
    line: int  # line of the opening brace's statement
    end_line: int


@dataclass
class ReductionSite:
    """`var += expr;` inside a loop, where `var` is a scalar double
    declared outside that loop — a loop-carried floating-point fold."""

    var: str
    line: int
    blessed: bool  # inside an argument of a blessed fold helper


@dataclass
class AllocFacts:
    """Allocation behavior of one function definition."""

    function: str
    line: int
    # receiver expression -> first line it appears on
    push_back: dict[str, int] = field(default_factory=dict)
    prealloc: dict[str, int] = field(default_factory=dict)
    # containers constructed inside a loop body: (line, "type name")
    loop_constructions: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class FileModel:
    includes: list[Include] = field(default_factory=list)
    status_functions: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    reductions: list[ReductionSite] = field(default_factory=list)
    accumulate_calls: list[int] = field(default_factory=list)
    allocs: list[AllocFacts] = field(default_factory=list)

    def to_json(self) -> dict:
        out = asdict(self)
        out["allocs"] = [
            {**a, "loop_constructions": [list(t) for t in a["loop_constructions"]]}
            for a in out["allocs"]
        ]
        return out

    @staticmethod
    def from_json(data: dict) -> "FileModel":
        return FileModel(
            includes=[Include(**i) for i in data["includes"]],
            status_functions=list(data["status_functions"]),
            calls=[CallSite(**c) for c in data["calls"]],
            functions=[FunctionDef(**f) for f in data["functions"]],
            reductions=[ReductionSite(**r) for r in data["reductions"]],
            accumulate_calls=list(data["accumulate_calls"]),
            allocs=[
                AllocFacts(
                    function=a["function"], line=a["line"],
                    push_back=dict(a["push_back"]),
                    prealloc=dict(a["prealloc"]),
                    loop_constructions=[tuple(t) for t in
                                        a["loop_constructions"]],
                )
                for a in data["allocs"]
            ],
        )


# ---------------------------------------------------------------------------
# Extraction

INCLUDE = re.compile(r'^[ \t]*#\s*include\s+([<"])([^>"]+)[>"]', re.MULTILINE)

# A function *returning* Status/StatusOr: the return type immediately
# precedes the function name, which immediately precedes the parameter
# list. Catches declarations and out-of-class definitions alike
# (`util::Status Engine::CompleteHit(...)`). References (`Status&`) and
# constructors (`Status(...)`, no whitespace before the paren) do not
# match. Template arguments may span lines.
STATUS_DECL = re.compile(
    r"\b(?:util\s*::\s*)?Status(?:Or\s*<[^;{}]*?>)?\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\(",
    re.DOTALL)

# Tokens a call's full expression may start after: statement boundaries,
# a control-statement's closing paren, label/ctor-init colons.
_STMT_BOUNDARY = {";", "{", "}", ")", ":"}

# Fold helpers whose argument lambdas legitimately contain chunk-partial
# `+=` accumulation; the float-determinism pass must not flag the blessed
# helpers' own usage pattern (util/thread_pool.h, util/fold.h).
BLESSED_FOLDS = frozenset(
    {"ParallelFor", "ParallelSum", "DeterministicSum", "DeterministicFold"})

_CONTAINER_TYPES = frozenset(
    "vector deque map set unordered_map unordered_set multimap multiset "
    "string basic_string list forward_list".split())

_PREALLOC_METHODS = frozenset({"reserve", "resize", "assign"})


def _matching_paren(tokens: list[Token], open_index: int) -> int:
    """Index of the `)` matching tokens[open_index] == `(`; -1 if torn."""
    depth = 0
    for i in range(open_index, len(tokens)):
        text = tokens[i].text
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _matching_brace(tokens: list[Token], open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(tokens)):
        text = tokens[i].text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


def _expression_start(tokens: list[Token], index: int) -> int:
    """Walks back from the callee name at `index` over the member/qualifier
    chain (`a.b->c::d(...)...`) to the first token of the full expression."""
    i = index
    steps = 0
    while i > 0 and steps < 64:
        steps += 1
        prev = tokens[i - 1].text
        if prev in {".", "->", "::"}:
            i -= 1
            # The chain element before the access operator: an identifier,
            # or a balanced () / [] group (e.g. `foo(1).bar`, `v[0].bar`).
            if i > 0 and tokens[i - 1].text in {")", "]"}:
                close = tokens[i - 1].text
                open_ = "(" if close == ")" else "["
                depth = 0
                j = i - 1
                while j >= 0:
                    if tokens[j].text == close:
                        depth += 1
                    elif tokens[j].text == open_:
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                i = j
                continue
            if i > 0 and tokens[i - 1].kind == "id":
                i -= 1
                continue
            break
        break
    return i


def _call_verdict(tokens: list[Token], name_index: int,
                  close_paren: int) -> tuple[bool, bool]:
    """(discarded, void_cast) for the call whose name is at name_index."""
    after = tokens[close_paren + 1].text if close_paren + 1 < len(tokens) \
        else ";"
    if after != ";":
        return False, False  # chained, assigned, compared, passed on...
    start = _expression_start(tokens, name_index)
    before = tokens[start - 1].text if start > 0 else ";"
    if before not in _STMT_BOUNDARY and before != "else" and before != "do":
        return False, False
    # (void)Foo(...) / static_cast<void>(...) wrapping is an explicit,
    # commented discard — the contract asks for exactly that.
    if start >= 2 and tokens[start - 1].text == ")" and \
            tokens[start - 2].text == "void":
        return True, True
    return True, False


def _extract_calls(tokens: list[Token]) -> list[CallSite]:
    calls: list[CallSite] = []
    for i, token in enumerate(tokens):
        if token.kind != "id" or token.text in KEYWORDS:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        prev = tokens[i - 1] if i > 0 else None
        # A type name directly before the callee means this is itself a
        # declaration (`util::Status Validate() const;`), not a call.
        if prev is not None and (prev.kind == "id" or prev.text in
                                 {">", "*", "&", "&&"}):
            continue
        close = _matching_paren(tokens, i + 1)
        if close < 0:
            continue
        discarded, void_cast = _call_verdict(tokens, i, close)
        calls.append(CallSite(name=token.text, line=token.line,
                              discarded=discarded, void_cast=void_cast))
    return calls


def _function_name_before_body(tokens: list[Token],
                               brace_index: int) -> str | None:
    """Name of the function whose body opens at tokens[brace_index], or
    None when the brace opens something else (namespace, class, init)."""
    i = brace_index - 1
    steps = 0
    # Skip the decoration between the parameter list and the body: cv/ref
    # qualifiers, virt-specifiers, a constructor initializer list (balanced
    # paren/brace groups after a `:`), and trailing return types.
    while i >= 0 and steps < 128:
        steps += 1
        text = tokens[i].text
        if text == ")":
            depth = 0
            j = i
            while j >= 0:
                if tokens[j].text == ")":
                    depth += 1
                elif tokens[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j <= 0:
                return None
            name = tokens[j - 1]
            if name.kind != "id":
                return None  # lambda, operator(), function-try oddities
            if name.text in CONTROL_KEYWORDS:
                return None
            if name.text in KEYWORDS:
                return None
            # Constructor initializer element (`: a_(x), b_(y) {`): keep
            # walking left past the `,`/`:` to the real parameter list.
            k = j - 2
            if k >= 0 and tokens[k].text in {":", ","}:
                i = k - 1
                continue
            return name.text
        if tokens[i].kind == "id" or text in {":", ",", "&", "&&", "*",
                                              "->", "::", ">", "<", "]",
                                              "["}:
            i -= 1
            continue
        if text == "}":  # braced member init inside a ctor-init list
            depth = 0
            while i >= 0:
                if tokens[i].text == "}":
                    depth += 1
                elif tokens[i].text == "{":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
            continue
        return None
    return None


def _extract_functions(tokens: list[Token]) -> list[tuple[str, int, int]]:
    """(name, body_open_index, body_close_index) for every outermost
    function definition."""
    out: list[tuple[str, int, int]] = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text == "{":
            name = _function_name_before_body(tokens, i)
            if name is not None:
                close = _matching_brace(tokens, i)
                out.append((name, i, close))
                i = close + 1
                continue
        i += 1
    return out


def _double_decls(tokens: list[Token], begin: int, end: int) -> dict[str, int]:
    """name -> token index of scalar `double` declarations in [begin, end)."""
    decls: dict[str, int] = {}
    for i in range(begin, end - 1):
        if tokens[i].text == "double" and tokens[i + 1].kind == "id":
            follower = tokens[i + 2].text if i + 2 < end else ";"
            if follower in {"=", ";", "{"}:
                decls.setdefault(tokens[i + 1].text, i)
    return decls


def _loop_bodies(tokens: list[Token], begin: int,
                 end: int) -> list[tuple[int, int, int]]:
    """(loop_keyword_index, body_begin, body_end) for for/while loops in
    [begin, end), including nested ones."""
    loops: list[tuple[int, int, int]] = []
    i = begin
    while i < end:
        if tokens[i].kind == "id" and tokens[i].text in {"for", "while"}:
            if i + 1 < end and tokens[i + 1].text == "(":
                close = _matching_paren(tokens, i + 1)
                if 0 < close < end - 1:
                    if tokens[close + 1].text == "{":
                        body_end = _matching_brace(tokens, close + 1)
                        loops.append((i, close + 2, body_end))
                    else:
                        # Single-statement body: up to the terminating `;`.
                        j = close + 1
                        depth = 0
                        while j < end:
                            text = tokens[j].text
                            if text in "([{":
                                depth += 1
                            elif text in ")]}":
                                depth -= 1
                            elif text == ";" and depth == 0:
                                break
                            j += 1
                        loops.append((i, close + 1, j))
        i += 1
    return loops


def _blessed_ranges(tokens: list[Token]) -> list[tuple[int, int]]:
    """Token ranges spanned by the arguments of blessed fold helpers."""
    ranges: list[tuple[int, int]] = []
    for i, token in enumerate(tokens):
        if token.kind == "id" and token.text in BLESSED_FOLDS and \
                i + 1 < len(tokens) and tokens[i + 1].text == "(":
            close = _matching_paren(tokens, i + 1)
            if close > 0:
                ranges.append((i + 1, close))
    return ranges


def _extract_reductions(tokens: list[Token],
                        functions: list[tuple[str, int, int]]
                        ) -> list[ReductionSite]:
    sites: list[ReductionSite] = []
    blessed = _blessed_ranges(tokens)
    for _name, body_open, body_close in functions:
        decls = _double_decls(tokens, body_open, body_close)
        if not decls:
            continue
        for _kw, loop_begin, loop_end in _loop_bodies(tokens, body_open,
                                                      body_close):
            for i in range(loop_begin, loop_end - 1):
                if tokens[i + 1].text != "+=" or tokens[i].kind != "id":
                    continue
                var = tokens[i].text
                decl_index = decls.get(var)
                if decl_index is None or decl_index >= loop_begin:
                    continue  # not a double, or declared inside the loop
                # `q[i] += ...` style scatter updates have an indexing
                # token before the += and are not scalar folds.
                sites.append(ReductionSite(
                    var=var, line=tokens[i].line,
                    blessed=any(lo <= i <= hi for lo, hi in blessed)))
    return sites


def _receiver_chain(tokens: list[Token], method_index: int) -> str | None:
    """`a.b->c` receiver spelling for the method name at method_index."""
    parts: list[str] = []
    i = method_index - 1  # at the `.` / `->`
    while i > 0 and tokens[i].text in {".", "->"}:
        if tokens[i - 1].kind == "id":
            parts.append(tokens[i - 1].text)
            i -= 2
        else:
            return None  # computed receiver: (*x).push_back etc.
    if not parts:
        return None
    return ".".join(reversed(parts))


def _extract_allocs(tokens: list[Token],
                    functions: list[tuple[str, int, int]]
                    ) -> list[AllocFacts]:
    out: list[AllocFacts] = []
    for name, body_open, body_close in functions:
        facts = AllocFacts(function=name, line=tokens[body_open].line)
        loops = _loop_bodies(tokens, body_open, body_close)
        for i in range(body_open, body_close):
            token = tokens[i]
            if token.kind != "id":
                continue
            if token.text in {"push_back", "emplace_back"} and \
                    i + 1 < body_close and tokens[i + 1].text == "(" and \
                    i > 0 and tokens[i - 1].text in {".", "->"}:
                receiver = _receiver_chain(tokens, i)
                if receiver is not None:
                    facts.push_back.setdefault(receiver, token.line)
            elif token.text in _PREALLOC_METHODS and \
                    i + 1 < body_close and tokens[i + 1].text == "(" and \
                    i > 0 and tokens[i - 1].text in {".", "->"}:
                receiver = _receiver_chain(tokens, i)
                if receiver is not None:
                    facts.prealloc.setdefault(receiver, token.line)
            elif token.text in _CONTAINER_TYPES and \
                    any(lo <= i < hi for _kw, lo, hi in loops):
                # `std::vector<double> weights(...)` declared per iteration.
                j = i + 1
                if j < body_close and tokens[j].text == "<":
                    depth = 0
                    while j < body_close:
                        if tokens[j].text == "<":
                            depth += 1
                        elif tokens[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif tokens[j].text in {";", "{"}:
                            break
                        j += 1
                    j += 1
                if j < body_close and tokens[j].kind == "id" and \
                        j + 1 < body_close and \
                        tokens[j + 1].text in {"(", "{", ";", "="}:
                    facts.loop_constructions.append(
                        (tokens[j].line, f"{token.text} {tokens[j].text}"))
        if facts.push_back or facts.prealloc or facts.loop_constructions:
            out.append(facts)
    return out


def build_model(code: str) -> FileModel:
    """Extracts the FileModel for one file's comment-stripped code."""
    model = FileModel()
    pos = 0
    line = 1
    for match in INCLUDE.finditer(code):
        line += code.count("\n", pos, match.start())
        pos = match.start()
        model.includes.append(Include(
            line=line, target=match.group(2), angled=match.group(1) == "<"))
    model.status_functions = sorted(
        {m.group(1) for m in STATUS_DECL.finditer(code)})

    tokens = tokenize(code)
    model.calls = _extract_calls(tokens)
    functions = _extract_functions(tokens)
    model.functions = [
        FunctionDef(name=name, line=tokens[open_].line,
                    end_line=tokens[close].line)
        for name, open_, close in functions
    ]
    model.reductions = _extract_reductions(tokens, functions)
    model.accumulate_calls = sorted(
        c.line for c in model.calls if c.name == "accumulate")
    model.allocs = _extract_allocs(tokens, functions)
    return model


# ---------------------------------------------------------------------------
# Compilation database


class CompilationDatabase:
    """The TU set the build actually compiles, from compile_commands.json."""

    def __init__(self, path: Path, repo_root: Path):
        self.path = path
        self.repo_root = repo_root.resolve()
        entries = json.loads(path.read_text(encoding="utf-8"))
        self.sources: list[str] = []
        seen: set[str] = set()
        for entry in entries:
            file_path = Path(entry["file"])
            if not file_path.is_absolute():
                file_path = Path(entry.get("directory", ".")) / file_path
            try:
                rel = file_path.resolve().relative_to(self.repo_root)
            except ValueError:
                continue  # generated TU outside the repo (build dir)
            rel_posix = rel.as_posix()
            if rel_posix not in seen:
                seen.add(rel_posix)
                self.sources.append(rel_posix)
        self.sources.sort()

    def sources_under(self, prefix: str) -> list[str]:
        return [s for s in self.sources if s.startswith(prefix)]

    @staticmethod
    def discover(repo_root: Path) -> Path | None:
        """Newest compile_commands.json among the conventional build dirs."""
        candidates = [
            p for p in repo_root.glob("build*/compile_commands.json")
            if p.is_file()
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.stat().st_mtime)


def header_closure(sources: list[str], include_of,
                   resolve) -> set[str]:
    """Transitive closure of `sources` over quoted includes.

    `include_of(rel) -> list[str]` returns the quoted include targets of a
    file; `resolve(target) -> str | None` maps a target to a repo-relative
    path (or None when it is not a project file).
    """
    universe: set[str] = set()
    frontier = list(sources)
    while frontier:
        rel = frontier.pop()
        if rel in universe:
            continue
        universe.add(rel)
        for target in include_of(rel):
            resolved = resolve(target)
            if resolved is not None and resolved not in universe:
                frontier.append(resolved)
    return universe


# ---------------------------------------------------------------------------
# Model cache


class ModelCache:
    """Content-addressed FileModel cache.

    Layout (JSON): {"frontend_version": N,
                    "files": {rel: {"mtime": f, "size": n, "sha1": h,
                                    "model": {...}}}}

    Lookup tries the (mtime, size) fast path first and falls back to the
    content hash, so `touch` alone does not re-tokenize and an edit that
    keeps mtime (rare, but rsync does it) still invalidates correctly via
    the driver passing the hash it computed for the SourceFile text.
    """

    def __init__(self, path: Path | None):
        self.path = path
        self.dirty = False
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if data.get("frontend_version") == FRONTEND_VERSION:
                    self._entries = data.get("files", {})
            except (ValueError, OSError):
                self._entries = {}

    @staticmethod
    def content_key(text: str) -> str:
        return hashlib.sha1(text.encode("utf-8")).hexdigest()

    def get(self, rel: str, stat, sha1: str | None,
            hasher) -> FileModel | None:
        """Cached model for `rel`, or None. `stat` is the os.stat_result of
        the file; `hasher()` lazily computes the content sha1 when the
        mtime/size fast path misses."""
        entry = self._entries.get(rel)
        if entry is None:
            self.misses += 1
            return None
        if entry["mtime"] == stat.st_mtime and entry["size"] == stat.st_size:
            self.hits += 1
            return FileModel.from_json(entry["model"])
        digest = sha1 if sha1 is not None else hasher()
        if entry["sha1"] == digest:
            # Same content, new mtime: refresh the fast path.
            entry["mtime"] = stat.st_mtime
            entry["size"] = stat.st_size
            self.dirty = True
            self.hits += 1
            return FileModel.from_json(entry["model"])
        self.misses += 1
        return None

    def put(self, rel: str, stat, sha1: str, model: FileModel) -> None:
        self._entries[rel] = {
            "mtime": stat.st_mtime,
            "size": stat.st_size,
            "sha1": sha1,
            "model": model.to_json(),
        }
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = json.dumps({
            "frontend_version": FRONTEND_VERSION,
            "files": self._entries,
        })
        try:
            self.path.write_text(payload, encoding="utf-8")
        except OSError:
            pass  # a read-only checkout just runs cold every time
        self.dirty = False
