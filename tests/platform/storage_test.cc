#include "platform/storage.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace qasca {
namespace {

AnswerSet SampleAnswers() {
  AnswerSet answers(3);
  answers[0] = {{17, 1}, {3, 0}};
  answers[2] = {{5, 1}};
  return answers;
}

TEST(StorageTest, SerialisesWithHeaderAndRows) {
  EXPECT_EQ(AnswerSetToCsv(SampleAnswers()),
            "question,worker,label\n"
            "0,17,1\n"
            "0,3,0\n"
            "2,5,1\n");
}

TEST(StorageTest, EmptyAnswerSetIsJustHeader) {
  EXPECT_EQ(AnswerSetToCsv(AnswerSet(2)), "question,worker,label\n");
}

TEST(StorageTest, RoundTripPreservesEverything) {
  AnswerSet original = SampleAnswers();
  auto parsed = AnswerSetFromCsv(AnswerSetToCsv(original), 3, 2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i], original[i]) << "question " << i;
  }
}

TEST(StorageTest, RejectsMissingHeader) {
  auto parsed = AnswerSetFromCsv("0,1,0\n", 2, 2);
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(StorageTest, RejectsMalformedRow) {
  auto parsed =
      AnswerSetFromCsv("question,worker,label\n0,banana,0\n", 2, 2);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(StorageTest, RejectsOutOfRangeQuestion) {
  auto parsed = AnswerSetFromCsv("question,worker,label\n9,1,0\n", 2, 2);
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kOutOfRange);
}

TEST(StorageTest, RejectsOutOfRangeLabel) {
  auto parsed = AnswerSetFromCsv("question,worker,label\n0,1,7\n", 2, 2);
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kOutOfRange);
}

TEST(StorageTest, ToleratesBlankLines) {
  auto parsed =
      AnswerSetFromCsv("question,worker,label\n\n0,1,0\n\n", 2, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].size(), 1u);
}

TEST(StorageTest, ToleratesMissingTrailingNewline) {
  auto parsed = AnswerSetFromCsv("question,worker,label\n0,1,0", 2, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].size(), 1u);
}

TEST(StorageTest, SaveAndLoadFile) {
  std::string path = ::testing::TempDir() + "/qasca_answers_test.csv";
  AnswerSet original = SampleAnswers();
  ASSERT_TRUE(SaveAnswerSet(path, original).ok());
  auto loaded = LoadAnswerSet(path, 3, 2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)[0], original[0]);
  EXPECT_EQ((*loaded)[2], original[2]);
  std::remove(path.c_str());
}

TEST(StorageTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadAnswerSet("/nonexistent/qasca.csv", 2, 2);
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace qasca
