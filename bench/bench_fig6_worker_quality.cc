// Reproduces Figure 6(a) — worst-case assignment time of each system on
// each application — and Figure 6(b) — how the estimated worker quality
// (fitted confusion matrix) converges to the latent one as HITs complete.

#include <cstdio>

#include "bench/experiment_driver.h"
#include "util/table.h"

namespace qasca {
namespace {

void RunAll() {
  const int seeds = bench::SeedsFromEnv(1);
  std::vector<SystemFactory> systems = DefaultSystems();
  std::vector<bench::AveragedTraces> all;
  for (const ApplicationSpec& app : PaperApplications()) {
    all.push_back(bench::RunAveraged(app, systems, seeds, /*checkpoints=*/10,
                                     /*track_estimation_deviation=*/true));
  }

  util::PrintSection(
      "Figure 6(a) — worst-case assignment time per system (seconds)");
  std::vector<std::string> header = {"Dataset"};
  for (const SystemFactory& factory : systems) header.push_back(factory.name);
  util::Table table(header);
  for (const bench::AveragedTraces& traces : all) {
    table.AddRow().Cell(traces.spec.name);
    for (double seconds : traces.max_assignment_seconds) {
      table.Cell(seconds, 5);
    }
  }
  table.Print();
  std::printf(
      "Expected shape: every system well under 0.06s; QASCA the costliest\n"
      "(its F-score datasets and ER's n=2000 are slowest), still "
      "interactive.\n");

  util::PrintSection(
      "Figure 6(b) — mean worker-quality estimation deviation vs % "
      "completed HITs (QASCA's engine)");
  std::vector<std::string> header_b = {"% HITs"};
  for (const bench::AveragedTraces& traces : all) {
    header_b.push_back(traces.spec.name);
  }
  util::Table table_b(header_b);
  // System index 3 is QASCA (paper order).
  const size_t kQasca = 3;
  const size_t checkpoints = all[0].estimation_deviation[kQasca].size();
  for (size_t c = 0; c < checkpoints; ++c) {
    double percent = 100.0 * all[0].completed_hits[c] /
                     all[0].completed_hits.back();
    table_b.AddRow().Cell(percent, 0);
    for (const bench::AveragedTraces& traces : all) {
      table_b.Cell(traces.estimation_deviation[kQasca][c], 4);
    }
  }
  table_b.Print();
  std::printf(
      "Expected shape: deviation shrinks monotonically as HITs complete —\n"
      "the estimated CMs approach the latent worker behaviour, which is\n"
      "why QASCA pulls away over time in Figure 5.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
