#ifndef QASCA_SIMULATION_SIMULATED_WORKER_H_
#define QASCA_SIMULATION_SIMULATED_WORKER_H_

#include <vector>

#include "core/types.h"
#include "model/worker_model.h"
#include "util/rng.h"

namespace qasca {

/// A stochastic stand-in for an AMT worker: a latent confusion matrix that
/// the platform never observes. Given a question's true label, the worker
/// samples an answer from the corresponding CM row — exactly the observable
/// behaviour (worker, question, label) the paper's algorithms consume, which
/// is what makes this substitution behaviour-preserving (see DESIGN.md).
struct SimulatedWorker {
  WorkerId id = 0;
  WorkerModel latent = WorkerModel::PerfectWp(2);

  /// Samples the label this worker would answer for a question whose true
  /// label is `truth`. `difficulty` in [0, 1] is the *question's* inherent
  /// hardness: with probability `difficulty` the worker answers uniformly
  /// at random (the question is too ambiguous for skill to help), otherwise
  /// by their latent confusion matrix. Difficulty 0 reduces to pure
  /// CM-driven answering. Per-question difficulty is the phenomenon the
  /// paper's introduction motivates: easy questions settle with fewer than
  /// z answers while ambiguous ones never settle at all.
  LabelIndex AnswerQuestion(LabelIndex truth, util::Rng& rng,
                            double difficulty = 0.0) const;
};

/// Generation recipe for a pool of simulated workers, with the structural
/// knobs needed to reproduce the label phenomena of Section 6.2.2:
/// per-label difficulty (ER: "equal" is harder than "non-equal") and
/// adjacent-label confusion (SA: "positive" is mistaken for "neutral" more
/// often than for "negative").
struct WorkerPoolSpec {
  int num_workers = 100;
  int num_labels = 2;
  /// Mean and spread of a worker's base accuracy (CM diagonal).
  double mean_accuracy = 0.75;
  double accuracy_stddev = 0.08;
  /// Accuracy is clamped into this range after sampling.
  double min_accuracy = 0.35;
  double max_accuracy = 0.97;
  /// Additive per-label offsets to the diagonal (size num_labels or empty).
  /// Negative values make a label harder to identify correctly.
  std::vector<double> label_difficulty;
  /// Fraction of the pool that is spammers: workers whose answers carry
  /// (almost) no signal — a mixture of uniform clicking and a random
  /// favourite label. Endemic on AMT; the differentiator for worker-aware
  /// assignment, which learns to stop routing valuable questions to them.
  double spammer_fraction = 0.0;
  /// Per-worker, per-label skill jitter: each worker's diagonal entry for
  /// each label gets an independent N(0, label_skill_stddev) offset. Real
  /// crowds have workers who are good at some labels and poor at others —
  /// structure only a confusion-matrix-aware policy (QASCA's Qw) can
  /// exploit when routing questions to the requesting worker.
  double label_skill_stddev = 0.0;
  /// In [0,1): how strongly off-diagonal error mass is biased toward
  /// adjacent label indices (0 = uniform errors).
  double adjacent_confusion_bias = 0.0;
};

/// Draws `spec.num_workers` workers with independent latent confusion
/// matrices from the pool distribution.
std::vector<SimulatedWorker> GenerateWorkerPool(const WorkerPoolSpec& spec,
                                                util::Rng& rng);

}  // namespace qasca

#endif  // QASCA_SIMULATION_SIMULATED_WORKER_H_
