#ifndef QASCA_CORE_METRICS_METRIC_H_
#define QASCA_CORE_METRICS_METRIC_H_

#include <memory>
#include <string>

#include "core/distribution_matrix.h"
#include "core/types.h"

namespace qasca {

/// An application-driven evaluation metric F (Section 3).
///
/// Each metric provides three views used throughout the paper:
///  * F(T, R)   — the classical definition against known ground truth;
///  * F*(Q, R)  — the generalisation to a distribution matrix Q;
///  * F(Q)      — the quality of Q itself, i.e. max_R F*(Q, R), together
///                with the optimal result vector R* attaining it.
class EvaluationMetric {
 public:
  virtual ~EvaluationMetric() = default;

  /// Human-readable name such as "Accuracy" or "F-score(alpha=0.50)".
  virtual std::string name() const = 0;

  /// The classical metric F(T, R) computed against ground truth.
  virtual double EvaluateAgainstTruth(const GroundTruthVector& truth,
                                      const ResultVector& result) const = 0;

  /// The distribution-based generalisation F*(Q, R) (Eq. 3 / Eq. 9).
  virtual double Evaluate(const DistributionMatrix& q,
                          const ResultVector& result) const = 0;

  /// The optimal result vector R* = argmax_R F*(Q, R) (Theorems 1 and 2).
  virtual ResultVector OptimalResult(const DistributionMatrix& q) const = 0;

  /// The quality of Q: F(Q) = F*(Q, R*). The default computes OptimalResult
  /// and evaluates it; subclasses may short-circuit.
  virtual double Quality(const DistributionMatrix& q) const {
    return Evaluate(q, OptimalResult(q));
  }
};

/// Identifies a metric in configuration structs; Make() instantiates it.
struct MetricSpec {
  enum class Kind {
    kAccuracy,
    kFScore,
    /// Cost-sensitive accuracy with a requester-supplied loss matrix — the
    /// library's instance of the paper's "more evaluation metrics" future
    /// work. Stays decomposable, so assignment reuses Top-K Benefit.
    kCostAccuracy,
  };

  Kind kind = Kind::kAccuracy;
  /// F-score emphasis parameter alpha in (0,1); ignored otherwise.
  double alpha = 0.5;
  /// Target label for F-score (the paper's L_1); ignored otherwise.
  LabelIndex target_label = 0;
  /// Row-major l*l loss matrix for kCostAccuracy (zero diagonal,
  /// non-negative entries); ignored otherwise.
  std::vector<double> costs;

  static MetricSpec Accuracy() { return {Kind::kAccuracy, 0.0, 0, {}}; }
  static MetricSpec FScore(double alpha, LabelIndex target_label = 0) {
    return {Kind::kFScore, alpha, target_label, {}};
  }
  static MetricSpec CostAccuracy(std::vector<double> costs) {
    return {Kind::kCostAccuracy, 0.0, 0, std::move(costs)};
  }

  /// Number of labels implied by `costs` (kCostAccuracy only).
  int CostLabels() const;

  /// Instantiates the metric this spec describes.
  std::unique_ptr<EvaluationMetric> Make() const;
};

}  // namespace qasca

#endif  // QASCA_CORE_METRICS_METRIC_H_
