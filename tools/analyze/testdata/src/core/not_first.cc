// include-hygiene fixture: a .cc whose companion header exists but is not
// the first include, so the header's self-containedness goes unexercised.

#include <vector>  // analyze:expect(include-hygiene)

#include "core/not_first.h"

int NotFirst() { return static_cast<int>(std::vector<int>{1}.size()); }
