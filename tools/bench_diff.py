#!/usr/bin/env python3
"""Compare two qasca bench result files (BENCH_*.json) for regressions.

Usage:
    python3 tools/bench_diff.py BASELINE.json CANDIDATE.json \
        [--threshold 0.25] [--fail-on-missing]

Reads two bench snapshots produced by tools/run_bench.sh (schema_version 3,
4 or 5 — sections present in only one file are skipped, so a v4 baseline
compares cleanly against a v5 candidate), matches rows by their workload
identity (n, thread count, refresh interval, apps, ...), and prints a
markdown table of every shared metric with its relative delta. Schema v5
adds the "serving" section (BENCH_PR10.json): the multi-app AppManager grid
with per-cell event throughput and per-app sliding-window p95 assignment
latency.

A metric is a REGRESSION when the candidate is worse than the baseline by
more than --threshold (a fraction: 0.25 = 25%) in the metric's bad
direction — higher for latencies, lower for throughputs. Improvements of
any size never fail. Micro-benchmark timings on shared CI machines are
noisy, so the default threshold is deliberately loose; it exists to catch
"someone made assignment 2x slower", not 5% jitter.

decision_hash differences are reported as a warning, not a failure: the
hash legitimately moves whenever the decision-relevant workload or
algorithm changes between PRs, and the determinism suite (not this tool)
owns hash stability within a build.

Exit codes: 0 clean (or warnings only), 1 regression found, 2 usage/parse
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Direction of "worse" per metric suffix.
LOWER_IS_BETTER = "lower"
HIGHER_IS_BETTER = "higher"

# section -> (identity keys, [(metric key, direction), ...]).
# Only sections listed here are compared; anything else (machine, workload,
# determinism booleans, nested telemetry dumps) is context, not a series.
SECTIONS = {
    "thread_scaling": (
        ("n", "threads"),
        [
            ("p50_assignment_seconds", LOWER_IS_BETTER),
            ("p95_assignment_seconds", LOWER_IS_BETTER),
            ("completions_per_second", HIGHER_IS_BETTER),
        ],
    ),
    "em_refresh": (
        ("n", "em_refresh_interval"),
        [("completions_per_second", HIGHER_IS_BETTER)],
    ),
    "fault_tolerance": (
        ("n", "abandon_rate"),
        [("completions_per_second", HIGHER_IS_BETTER)],
    ),
    "kernel_optimization": (
        ("n",),
        [
            ("optimized_p50_assignment_seconds", LOWER_IS_BETTER),
            ("optimized_qw_estimate_ms", LOWER_IS_BETTER),
            ("optimized_topk_scan_ms", LOWER_IS_BETTER),
        ],
    ),
    "serving": (
        ("apps", "worker_threads"),
        [
            ("events_per_second", HIGHER_IS_BETTER),
            ("p95_assignment_seconds", LOWER_IS_BETTER),
        ],
    ),
    "stage_breakdown": (
        ("metric", "n"),
        [
            ("em_refit_ms", LOWER_IS_BETTER),
            ("qw_estimate_ms", LOWER_IS_BETTER),
            ("topk_scan_ms", LOWER_IS_BETTER),
            ("fscore_online_ms", LOWER_IS_BETTER),
        ],
    ),
}


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc, dict) or "schema_version" not in doc:
        sys.exit(f"bench_diff: {path} is not a bench result file "
                 "(no schema_version)")
    return doc


def row_key(row: dict, identity: tuple) -> tuple:
    return tuple(row.get(k) for k in identity)


def describe_key(identity: tuple, key: tuple) -> str:
    return ", ".join(f"{name}={value}" for name, value in zip(identity, key))


def fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) < 0.001 or abs(value) >= 100000:
        return f"{value:.3e}"
    return f"{value:.4g}"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files for perf regressions")
    parser.add_argument("baseline", help="baseline bench JSON")
    parser.add_argument("candidate", help="candidate bench JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression tolerance as a fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="treat baseline rows missing from the candidate "
                             "as failures instead of notes")
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")

    base = load(args.baseline)
    cand = load(args.candidate)

    base_name = Path(args.baseline).name
    cand_name = Path(args.candidate).name
    print(f"## Bench diff: {base_name} (schema v{base['schema_version']}) -> "
          f"{cand_name} (schema v{cand['schema_version']})")
    print()

    rows_out = []
    regressions = []
    warnings = []
    notes = []
    compared = 0

    for section, (identity, metrics) in SECTIONS.items():
        base_rows = base.get(section)
        cand_rows = cand.get(section)
        if not isinstance(base_rows, list) or not isinstance(cand_rows, list):
            if (base_rows is None) != (cand_rows is None):
                only = base_name if cand_rows is None else cand_name
                notes.append(f"section `{section}` only in {only}; skipped")
            continue
        cand_by_key = {row_key(r, identity): r for r in cand_rows}
        for brow in base_rows:
            key = row_key(brow, identity)
            crow = cand_by_key.get(key)
            label = describe_key(identity, key)
            if crow is None:
                msg = f"{section} [{label}] missing from candidate"
                (regressions if args.fail_on_missing else notes).append(msg)
                continue
            if str(brow.get("decision_hash", "")) != \
                    str(crow.get("decision_hash", "")):
                warnings.append(
                    f"{section} [{label}] decision_hash changed "
                    f"{brow.get('decision_hash')} -> "
                    f"{crow.get('decision_hash')} (expected when the "
                    "workload or algorithm changed)")
            for metric, direction in metrics:
                if metric not in brow or metric not in crow:
                    continue
                bval = float(brow[metric])
                cval = float(crow[metric])
                if bval <= 0:
                    # A zero baseline (e.g. fscore_online_ms in an
                    # accuracy-only row) has no meaningful relative delta.
                    continue
                compared += 1
                delta = cval / bval - 1.0
                worse = delta if direction == LOWER_IS_BETTER else -delta
                if worse > args.threshold:
                    status = "**REGRESSION**"
                    regressions.append(
                        f"{section} [{label}] {metric}: {fmt(bval)} -> "
                        f"{fmt(cval)} ({delta:+.1%}, tolerance "
                        f"{args.threshold:.0%})")
                elif worse < -args.threshold:
                    status = "improved"
                else:
                    status = "ok"
                rows_out.append((section, label, metric, fmt(bval),
                                 fmt(cval), f"{delta:+.1%}", status))

    print("| section | config | metric | baseline | candidate | delta | "
          "status |")
    print("|---|---|---|---:|---:|---:|---|")
    for row in rows_out:
        print("| " + " | ".join(row) + " |")
    print()

    for note in notes:
        print(f"- note: {note}")
    for warning in warnings:
        print(f"- warning: {warning}")
    if compared == 0:
        print("- warning: no comparable metrics found between the two files")

    if regressions:
        print()
        print(f"### {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}")
        for regression in regressions:
            print(f"- {regression}")
        return 1
    print()
    print(f"No regressions beyond {args.threshold:.0%} across {compared} "
          "compared metrics.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
