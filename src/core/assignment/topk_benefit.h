#ifndef QASCA_CORE_ASSIGNMENT_TOPK_BENEFIT_H_
#define QASCA_CORE_ASSIGNMENT_TOPK_BENEFIT_H_

#include <functional>
#include <span>

#include "core/assignment/assignment.h"

namespace qasca {

/// Per-row quality of a decomposable metric: the best attainable
/// contribution of one question given its label distribution. For Accuracy*
/// this is max_j Q_{i,j}; CostAccuracyMetric::RowQuality is another
/// instance.
using RowQualityFn = std::function<double(std::span<const double>)>;

/// The Top-K Benefit Algorithm for Accuracy* (Section 4.1).
///
/// By Theorem 1 the optimal result of each question depends only on its own
/// row, so Accuracy*(Q^X, R^X) decomposes (Eq. 12) into a fixed term plus,
/// for each assigned question, the benefit
///   Benefit(q_i) = max_j Qw_{i,j} - max_j Qc_{i,j}.
/// The optimal HIT therefore consists of the k candidate questions with the
/// largest benefits, found here by linear-time selection — O(|S^w|) overall.
///
/// Returns the selected questions and the exact optimal objective
/// Accuracy*(Q^{X*}, R^{X*}).
AssignmentResult AssignTopKBenefit(const AssignmentRequest& request);

/// The same algorithm for *any* per-question-decomposable metric
/// F(Q) = (1/n) * sum_i row_quality(Q_i): optimal because Eq. 12's
/// decomposition only needs decomposability, not the specific argmax form.
/// Covers the future-work "more evaluation metrics" direction for the whole
/// decomposable family (e.g. cost-sensitive accuracy).
AssignmentResult AssignTopKBenefitDecomposable(const AssignmentRequest& request,
                                               const RowQualityFn& row_quality);

}  // namespace qasca

#endif  // QASCA_CORE_ASSIGNMENT_TOPK_BENEFIT_H_
