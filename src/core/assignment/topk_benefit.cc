#include "core/assignment/topk_benefit.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/assignment/qw_overlay.h"
#include "core/kernels/kernels.h"
#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"
#include "util/thread_pool.h"

namespace qasca {
namespace {

// Fixed chunk grain for the per-candidate benefit scan and the fixed-term
// objective sum; constant so the decomposition (and the chunk-ordered fold
// of the objective) is identical for every thread count.
constexpr int kBenefitScanGrain = 512;

// The selection's strict total order: larger benefit first, ties broken by
// question index for determinism. Strict and total because no two
// candidates share a question index.
inline bool BenefitGreater(const std::pair<double, QuestionIndex>& a,
                           const std::pair<double, QuestionIndex>& b) {
  return a.first > b.first || (a.first == b.first && a.second < b.second);
}

// The Top-K Benefit scan (Section 4.1, generalised to any decomposable row
// quality), templated on the two quality reads so concrete instantiations —
// the Accuracy* row max below, the generic RowQualityFn wrapper — inline
// them into the per-candidate loop instead of paying a type-erased call per
// row. `est_quality(i)` / `cur_quality(i)` are the qualities of question
// i's estimated and current rows.
//
// Selection is a streaming top-k: each chunk keeps its own k best
// candidates under BenefitGreater, and the serial chunk-ordered merge picks
// the global top-k from their union. Because the union always contains the
// global top-k and the order is strict and total, the selected *set* is
// exactly what nth_element over a full benefit vector would produce, for
// every thread count — without materialising (or re-scanning) an n-entry
// benefit vector per request.
template <typename EstQuality, typename CurQuality>
AssignmentResult ScanTopKBenefit(const AssignmentRequest& request,
                                 const EstQuality& est_quality,
                                 const CurQuality& cur_quality) {
  util::Span span(request.telemetry, util::tnames::kSpanTopkScan);
  const DistributionMatrix& current = *request.current;

  const int num_candidates = static_cast<int>(request.candidates.size());
  if (request.telemetry != nullptr) {
    request.telemetry->GetCounter(util::tnames::kTopkCandidatesScanned)
        ->Add(num_candidates);
  }
  const int k = request.k;
  const int num_chunks = util::NumChunks(0, num_candidates, kBenefitScanGrain);
  std::vector<std::pair<double, QuestionIndex>> local(
      static_cast<size_t>(num_chunks) * k);
  std::vector<int> local_counts(static_cast<size_t>(num_chunks), 0);
  util::ParallelFor(
      request.pool, 0, num_candidates, kBenefitScanGrain, [&](int cb, int ce) {
        const int chunk = util::ChunkIndex(0, cb, kBenefitScanGrain);
        auto* top = local.data() + static_cast<size_t>(chunk) * k;
        int count = 0;
        for (int c = cb; c < ce; ++c) {
          const QuestionIndex i = request.candidates[static_cast<size_t>(c)];
          const std::pair<double, QuestionIndex> candidate{
              est_quality(i) - cur_quality(i), i};
          // One predictable comparison per candidate once the chunk's
          // buffer is full; the bounded insertion below is rare.
          if (count == k && !BenefitGreater(candidate, top[count - 1])) {
            continue;
          }
          int pos = count < k ? count : k - 1;
          while (pos > 0 && BenefitGreater(candidate, top[pos - 1])) {
            top[pos] = top[pos - 1];
            --pos;
          }
          top[pos] = candidate;
          if (count < k) ++count;
        }
        local_counts[static_cast<size_t>(chunk)] = count;
      });

  // Serial merge in chunk order; after the sort, benefits[0..k) is the
  // global top-k in BenefitGreater order.
  std::vector<std::pair<double, QuestionIndex>> benefits;
  benefits.reserve(static_cast<size_t>(num_chunks) * k);
  for (int chunk = 0; chunk < num_chunks; ++chunk) {
    const auto* top = local.data() + static_cast<size_t>(chunk) * k;
    benefits.insert(benefits.end(), top,
                    top + local_counts[static_cast<size_t>(chunk)]);
  }
  std::sort(benefits.begin(), benefits.end(), BenefitGreater);

  AssignmentResult result;
  result.outer_iterations = 1;
  // The selection and its scores, reordered ascending by question index.
  // `benefits` itself stays in BenefitGreater order: the objective fold
  // below sums benefits[0..k) in that order, and reordering it would change
  // the floating-point association (the golden traces pin the exact bits).
  std::vector<std::pair<double, QuestionIndex>> topk(
      benefits.begin(), benefits.begin() + k);
  std::sort(topk.begin(), topk.end(),
            [](const std::pair<double, QuestionIndex>& a,
               const std::pair<double, QuestionIndex>& b) {
              return a.second < b.second;
            });
  result.selected.reserve(static_cast<size_t>(k));
  result.selected_scores.reserve(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    result.selected.push_back(topk[static_cast<size_t>(c)].second);
    result.selected_scores.push_back(topk[static_cast<size_t>(c)].first);
  }

  // Objective: the fixed term (quality of every current row) plus the
  // selected benefits, averaged (Eq. 12). Skipped when the caller only
  // consumes the selection — the fixed term is an O(n) sweep per request.
  if (request.compute_objective) {
    double total = util::ParallelSum(
        request.pool, 0, current.num_questions(), kBenefitScanGrain,
        [&](int cb, int ce) {
          double sum = 0.0;
          for (int i = cb; i < ce; ++i) sum += cur_quality(i);
          return sum;
        });
    // Seeded with the ParallelSum total so the benefit adds keep their
    // historical association (the golden traces pin the exact bits).
    total = util::DeterministicFold(
        total, 0, request.k,
        [&](double acc, int c) { return acc + benefits[c].first; });
    result.objective = total / current.num_questions();
  }
  QASCA_DCHECK_OK(invariants::CheckAssignment(result.selected, request.k,
                                              current.num_questions()));
  return result;
}

}  // namespace

AssignmentResult AssignTopKBenefitDecomposable(
    const AssignmentRequest& request, const RowQualityFn& row_quality) {
  ValidateRequest(request);
  const DistributionMatrix& current = *request.current;
  return ScanTopKBenefit(
      request,
      [&](QuestionIndex i) { return row_quality(request.EstimatedRow(i)); },
      [&](QuestionIndex i) { return row_quality(current.Row(i)); });
}

AssignmentResult AssignTopKBenefit(const AssignmentRequest& request) {
  ValidateRequest(request);
  // Accuracy row quality = max cell of the row (Eq. 12's max over labels).
  // The dispatch is hoisted to one RowMax pointer per scan, current rows
  // are read straight off the dense matrix, and when the Qw estimation
  // fused the row maxima into the overlay's quality channel the estimated
  // quality is a single contiguous load per candidate instead of a row
  // reduction.
  const DistributionMatrix& current = *request.current;
  const kernels::RowMaxFn row_max = kernels::ActiveRowMax();
  const int num_labels = current.num_labels();
  const double* current_base = current.Row(0).data();
  const QwOverlay* overlay = request.overlay;
  const bool fused_qualities = overlay != nullptr && overlay->has_qualities();
  if (num_labels == 2) {
    // Binary labels (every golden workload): the row max is one compare,
    // inlined instead of an indirect kernel call per candidate. Identical
    // value to RowMax — max is order-insensitive over NaN-free rows.
    return ScanTopKBenefit(
        request,
        [&, fused_qualities](QuestionIndex i) {
          if (fused_qualities) return overlay->Quality(i);
          const std::span<const double> row = request.EstimatedRow(i);
          return row[0] < row[1] ? row[1] : row[0];
        },
        [&](QuestionIndex i) {
          const double* row = current_base + static_cast<size_t>(i) * 2;
          return row[0] < row[1] ? row[1] : row[0];
        });
  }
  return ScanTopKBenefit(
      request,
      [&, fused_qualities](QuestionIndex i) {
        if (fused_qualities) return overlay->Quality(i);
        const std::span<const double> row = request.EstimatedRow(i);
        return row_max(row.data(), static_cast<int>(row.size()));
      },
      [&](QuestionIndex i) {
        return row_max(current_base + static_cast<size_t>(i) * num_labels,
                       num_labels);
      });
}

}  // namespace qasca
