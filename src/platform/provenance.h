#ifndef QASCA_PLATFORM_PROVENANCE_H_
#define QASCA_PLATFORM_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "util/attributes.h"
#include "util/status.h"

namespace qasca {

/// Why one HIT was assigned: the chosen questions with the benefit scores
/// that ranked them, the optimizer's diagnostics, and the engine state the
/// decision was made under (kernel ISA, overlay/cache usage, EM generation,
/// lease/journal sequencing). One record per successful RequestHit,
/// appended to the engine's ProvenanceLog and dumpable as JSONL for audit
/// and offline regret analysis (DESIGN.md §13).
///
/// All timing fields are virtual (engine ticks / journal sequence numbers)
/// — never wall-clock — so records replay bit-identically through crash
/// recovery.
///
/// Threading contract: a plain value type. The engine fills and appends
/// records on its single driving thread; readers consume them through
/// ProvenanceLog accessors under the engine's external-synchronization
/// contract (see engine.h).
struct DecisionProvenance {
  /// Record sequence within the owning log (assigned by Record()).
  uint64_t seq = 0;
  /// Request-scoped trace id; matches the "trace" args of the flight
  /// recorder's span events for the same request.
  uint64_t trace_id = 0;
  uint64_t hit_id = 0;
  WorkerId worker = 0;
  /// Chosen question ids, ascending (the HIT's contents).
  std::vector<QuestionIndex> questions;
  /// Per-question benefit scores parallel to `questions`: the quantity the
  /// optimizer ranked the question by (Accuracy*: Eq. 12 row-quality gain;
  /// F-score*: target-probability swing).
  std::vector<double> scores;
  /// The optimizer's converged objective (0 when the serving path skips
  /// the O(n) objective sweep; see AssignmentRequest::compute_objective).
  double objective = 0.0;
  int outer_iterations = 0;
  int inner_iterations = 0;
  /// Candidate-set size |S^w| the selection was drawn from.
  int candidates = 0;
  /// Qw rows materialised into the zero-copy overlay (0 on the legacy
  /// deep-copy path).
  int overlay_rows = 0;
  bool used_overlay = false;
  /// Whether the worker's likelihood table came from the per-worker cache.
  bool likelihood_cache_hit = false;
  /// Full-EM-refit generation the decision saw (Qc posterior vintage).
  uint64_t em_generation = 0;
  /// Numeric kernels::Isa the benefit/Qw kernels ran under (stable ints:
  /// 0 = scalar, 1 = sse2, 2 = avx2).
  int kernel_isa = 0;
  /// Index of the journal event recording this assignment (0 when the
  /// engine runs without persistence).
  uint64_t journal_seq = 0;
  /// Engine virtual clock at assignment, and the lease deadline granted.
  uint64_t now_ticks = 0;
  uint64_t lease_deadline = 0;
};

/// Fixed-capacity ring of DecisionProvenance records: the last `capacity`
/// assignments, overwritten oldest-first. Bounded memory regardless of
/// uptime, like the flight recorder — the ring answers "explain the recent
/// decisions", the JSONL dump persists them when the full history matters.
///
/// Threading contract: externally synchronized, same as the owning engine —
/// Record and the accessors must be serialized by the caller (the engine's
/// single driving thread).
class ProvenanceLog {
 public:
  explicit ProvenanceLog(int capacity);

  ProvenanceLog(const ProvenanceLog&) = delete;
  ProvenanceLog& operator=(const ProvenanceLog&) = delete;

  /// Records an entry, stamping `record.seq` with the lifetime append
  /// index; evicts the oldest record once full.
  void Record(DecisionProvenance record);

  int capacity() const noexcept { return capacity_; }
  /// Records currently retained (<= capacity).
  int size() const noexcept;
  /// Records appended over the log's lifetime (including evicted ones).
  int64_t total_appended() const noexcept { return total_; }
  /// Retained records oldest-first; `i` in [0, size()).
  const DecisionProvenance& at(int i) const;

  /// One JSON object per line, oldest record first.
  std::string ToJsonLines() const;

  /// Parses a ToJsonLines dump back into records (round-trip inverse;
  /// blank lines ignored). Used by audit tooling and the round-trip test.
  QASCA_NODISCARD static util::StatusOr<std::vector<DecisionProvenance>>
  ParseJsonLines(std::string_view text);

 private:
  int capacity_;
  int64_t total_ = 0;
  std::vector<DecisionProvenance> ring_;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_PROVENANCE_H_
