#!/usr/bin/env python3
"""Unified static analyzer for the QASCA tree — entry point.

Thin wrapper so the analyzer is runnable as `python3 tools/analyze.py`
without installing anything; the framework and the passes live in the
tools/analyze/ package (see tools/analyze/driver.py for usage and
DESIGN.md "Static analysis" for the pass catalogue and suppression
syntax). Replaces the retired tools/lint_invariants.py.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
