#ifndef QASCA_PLATFORM_QASCA_STRATEGY_H_
#define QASCA_PLATFORM_QASCA_STRATEGY_H_

#include <string>
#include <vector>

#include "core/assignment/qw_overlay.h"
#include "model/likelihood_cache.h"
#include "model/posterior.h"
#include "platform/strategy.h"

namespace qasca {

/// QASCA's own task-assignment policy (Sections 4–5): estimate Qw for the
/// requesting worker from Qc and the worker's fitted model, then solve the
/// online assignment problem exactly —
///  * Accuracy metric: the Top-K Benefit Algorithm (Section 4.1);
///  * F-score metric: the F-score Online Assignment Algorithm
///    (Section 4.2, Algorithms 2–3) with the delta'_init warm start.
///
/// Threading contract: inherits AssignmentStrategy's engine-thread-only
/// SelectQuestions discipline (kernels parallelise through context.pool
/// with const-read bodies). The instance owns reusable per-call scratch —
/// the zero-copy Qw overlay and a fallback likelihood table — so one
/// strategy must not serve two engines concurrently; scratch never carries
/// state between calls (the overlay is re-begun per selection).
class QascaStrategy final : public AssignmentStrategy {
 public:
  /// `qw_mode` selects the paper's sampled Qw estimation or the expected
  /// ablation variant (see QwMode).
  explicit QascaStrategy(QwMode qw_mode = QwMode::kSampled)
      : qw_mode_(qw_mode) {}

  std::string name() const override { return "QASCA"; }

  std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) override;

  /// Diagnostics of the most recent selection (for the Figure 4
  /// experiments).
  int last_outer_iterations() const { return last_outer_iterations_; }
  int last_inner_iterations() const { return last_inner_iterations_; }

 private:
  QwMode qw_mode_;
  int last_outer_iterations_ = 0;
  int last_inner_iterations_ = 0;
  /// Reusable zero-copy Qw scratch (candidate rows only; DESIGN.md §12).
  QwOverlay overlay_;
  /// Per-call likelihood table used when the context supplies no cache.
  WorkerLikelihoods scratch_likelihoods_;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_QASCA_STRATEGY_H_
