// Lifecycle stress harness (ISSUE 5 tentpole): drives the real engine with
// 1200+ seeded lifecycle events per configuration — HIT requests,
// completions, worker abandonment, duplicate completion callbacks, virtual
// clock ticks, and process crashes — under both worker models (CM, WP) and
// both metrics (Accuracy*, F-score*). The FaultPlan makes the schedule a
// pure function of the seed, so every run injects the identical fault
// sequence.
//
// After EVERY event the harness checks:
//  * open-HIT accounting balances: open_hit_count == assigned - completed,
//    and the engine's open set mirrors the harness's independent model of
//    which leases are live (including their deadlines);
//  * the lease/duplicate/late counters match the harness's expectations;
//  * every Qc row is still a normalized distribution.
//
// Each injected crash abandons the in-memory engine, recovers a fresh one
// from the lifecycle journal, and requires StateFingerprint() identity —
// answers, Qc bit patterns, open leases, the virtual clock and the result
// vector all replay exactly.
//
// A separate test proves the robustness layer is byte-identical while
// disarmed: an engine with leases + journaling enabled (but no fault ever
// firing) makes the same decisions, bit for bit, as one with the layer off.

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "platform/app_manager.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "simulation/fault_plan.h"
#include "simulation/serving_driver.h"
#include "util/invariants.h"

namespace qasca {
namespace {

// Deterministic pseudo-noisy worker (~25% wrong): the answer is a pure
// function of (worker, question, truth), so reruns and recovery replays see
// identical labels. Same scheme as the golden-trace test.
LabelIndex SimulatedAnswer(WorkerId worker, QuestionIndex question,
                           LabelIndex truth, int num_labels) {
  uint64_t h = (static_cast<uint64_t>(worker) * 1000003u +
                static_cast<uint64_t>(question) + 1) *
               0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  if (h % 100 < 25) {
    return static_cast<LabelIndex>(
        (static_cast<uint64_t>(truth) + 1 + h % (num_labels - 1)) %
        num_labels);
  }
  return truth;
}

struct StressCase {
  const char* name;
  bool fscore;
  WorkerModel::Kind kind;
  int threads;
  uint64_t seed;
};

constexpr StressCase kStressCases[] = {
    {"accuracy_cm", false, WorkerModel::Kind::kConfusionMatrix, 1, 11},
    {"accuracy_wp", false, WorkerModel::Kind::kWorkerProbability, 2, 12},
    {"fscore_cm", true, WorkerModel::Kind::kConfusionMatrix, 2, 13},
    {"fscore_wp", true, WorkerModel::Kind::kWorkerProbability, 1, 14},
};

constexpr int kNumQuestions = 60;
constexpr int kNumLabels = 2;
constexpr int kQuestionsPerHit = 3;
constexpr int kNumWorkers = 12;
constexpr int kSteps = 1200;
constexpr uint64_t kLeaseTimeout = 4;

AppConfig MakeConfig(const StressCase& c, const std::string& persistence) {
  AppConfig config;
  config.name = c.name;
  config.num_questions = kNumQuestions;
  config.num_labels = kNumLabels;
  config.questions_per_hit = kQuestionsPerHit;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 200;
  config.em.max_iterations = 8;
  config.em_refresh_interval = 6;
  config.worker_kind = c.kind;
  config.metric = c.fscore ? MetricSpec::FScore(0.6, 0) : MetricSpec::Accuracy();
  config.num_threads = c.threads;
  config.lease_timeout_ticks = kLeaseTimeout;
  config.persistence_path = persistence;
  // Heavy abandonment keeps contested questions sparse for longer, so a
  // refit can legitimately flip a posterior cell end to end; a cell is a
  // probability, so 1.0 still bounds it while disabling the abort.
  config.em_drift_tolerance = 1.0;
  // Decision provenance rides the whole storm (crashes included): recovery
  // must rebuild one record per assignment, exactly like the event trace.
  config.provenance_enabled = true;
  config.provenance_capacity = 4096;
  return config;
}

std::string FreshJournalPrefix(const std::string& name) {
  const std::string prefix =
      ::testing::TempDir() + "/qasca_lifecycle_" + name;
  std::remove((prefix + ".snapshot").c_str());
  std::remove((prefix + ".log").c_str());
  return prefix;
}

std::unique_ptr<TaskAssignmentEngine> MakeEngine(const AppConfig& config,
                                                 uint64_t seed) {
  return std::make_unique<TaskAssignmentEngine>(
      config, std::make_unique<QascaStrategy>(), seed);
}

class LifecycleStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(LifecycleStressTest, SeededEventStormHoldsInvariants) {
  const StressCase& c = GetParam();
  const std::string prefix = FreshJournalPrefix(c.name);
  const AppConfig config = MakeConfig(c, prefix);

  GroundTruthVector truth(kNumQuestions);
  for (int q = 0; q < kNumQuestions; ++q) truth[q] = q % kNumLabels;

  FaultPlanOptions fault_options;
  fault_options.abandon_rate = 0.06;
  fault_options.duplicate_rate = 0.05;
  fault_options.crash_rate = 0.02;
  fault_options.tick_rate = 0.30;
  fault_options.max_tick_advance = 2;
  FaultPlan plan(c.seed * 7919 + 17, fault_options);

  std::unique_ptr<TaskAssignmentEngine> engine = MakeEngine(config, c.seed);

  // The harness's independent model of the lifecycle, updated in lockstep
  // and compared against the engine after every event.
  struct OpenView {
    std::vector<QuestionIndex> questions;
    uint64_t deadline = 0;
  };
  std::map<WorkerId, OpenView> open;
  std::map<WorkerId, std::vector<LabelIndex>> last_labels;
  std::set<WorkerId> expired_waiting;
  int expected_expired = 0;
  int expected_requeued = 0;
  // Duplicate/late rejections are deliberately NOT journaled (they change
  // no state), so a recovery resets the engine's counters; these track the
  // engine's view since the last crash, the totals the whole run.
  int expected_duplicates = 0;
  int expected_late = 0;
  int total_duplicates = 0;
  int total_late = 0;
  int completions = 0;
  int assignments = 0;
  int crashes = 0;

  for (int step = 0; step < kSteps; ++step) {
    const WorkerId worker = step % kNumWorkers;
    const FaultPlan::Fault fault = plan.At(static_cast<uint64_t>(step));
    auto open_it = open.find(worker);
    if (fault == FaultPlan::Fault::kCrash) {
      // The process dies: all in-memory state is gone. A fresh engine must
      // replay the journal to the bit-identical decision state.
      const uint64_t fingerprint = engine->StateFingerprint();
      engine.reset();
      engine = MakeEngine(config, c.seed);
      util::Status recovered = engine->Recover();
      ASSERT_TRUE(recovered.ok()) << recovered.ToString();
      ASSERT_EQ(engine->StateFingerprint(), fingerprint)
          << c.name << ": recovery diverged at step " << step;
      expected_duplicates = engine->duplicates_dropped();  // always 0
      expected_late = engine->late_completions_rejected();
      ++crashes;
    } else if (open_it != open.end()) {
      if (fault == FaultPlan::Fault::kAbandon) {
        // The worker walks away: never deliver; ticks will expire the
        // lease and requeue the questions.
      } else {
        std::vector<LabelIndex> labels;
        labels.reserve(open_it->second.questions.size());
        for (QuestionIndex q : open_it->second.questions) {
          labels.push_back(SimulatedAnswer(worker, q, truth[q], kNumLabels));
        }
        util::Status status = engine->CompleteHit(worker, labels);
        ASSERT_TRUE(status.ok()) << status.ToString();
        last_labels[worker] = labels;
        open.erase(open_it);
        ++completions;
      }
    } else if (fault == FaultPlan::Fault::kDuplicate &&
               (last_labels.contains(worker) ||
                expired_waiting.contains(worker))) {
      if (expired_waiting.contains(worker)) {
        // Late delivery for the expired HIT. If the stale answers happen to
        // hash-match the worker's last *completed* HIT they are classified
        // as a duplicate instead; either way they must be rejected.
        std::vector<LabelIndex> stale(kQuestionsPerHit, 0);
        util::Status status = engine->CompleteHit(worker, stale);
        ASSERT_FALSE(status.ok());
        if (status.code() == util::StatusCode::kAlreadyExists) {
          ++expected_duplicates;
          ++total_duplicates;
        } else {
          ASSERT_EQ(status.code(), util::StatusCode::kFailedPrecondition)
              << status.ToString();
          ++expected_late;
          ++total_late;
        }
      } else {
        // The platform redelivers the last completion callback verbatim.
        util::Status status =
            engine->CompleteHit(worker, last_labels.at(worker));
        ASSERT_EQ(status.code(), util::StatusCode::kAlreadyExists)
            << status.ToString();
        ++expected_duplicates;
        ++total_duplicates;
      }
    } else {
      util::StatusOr<std::vector<QuestionIndex>> hit =
          engine->RequestHit(worker);
      if (hit.ok()) {
        open[worker] =
            OpenView{*hit, engine->now_ticks() + kLeaseTimeout};
        expired_waiting.erase(worker);
        ++assignments;
      } else {
        // Legitimate platform outcomes once the run saturates.
        ASSERT_TRUE(hit.status().code() ==
                        util::StatusCode::kResourceExhausted ||
                    hit.status().code() == util::StatusCode::kNotFound)
            << hit.status().ToString();
      }
    }

    const uint64_t advance = plan.TickAdvanceAt(static_cast<uint64_t>(step));
    if (advance > 0) {
      const uint64_t now = engine->now_ticks() + advance;
      int expiring = 0;
      for (auto it = open.begin(); it != open.end();) {
        if (it->second.deadline <= now) {
          expected_requeued += static_cast<int>(it->second.questions.size());
          expired_waiting.insert(it->first);
          it = open.erase(it);
          ++expiring;
        } else {
          ++it;
        }
      }
      expected_expired += expiring;
      ASSERT_EQ(engine->Tick(advance), expiring) << "at step " << step;
    }

    // --- invariants, after every single event --------------------------
    ASSERT_EQ(engine->open_hit_count(), static_cast<int>(open.size()));
    ASSERT_EQ(engine->assigned_hits() - engine->completed_hits(),
              engine->open_hit_count());
    ASSERT_EQ(engine->leases_expired(), expected_expired);
    ASSERT_EQ(engine->questions_requeued(), expected_requeued);
    ASSERT_EQ(engine->duplicates_dropped(), expected_duplicates);
    ASSERT_EQ(engine->late_completions_rejected(), expected_late);
    util::Status qc_ok =
        invariants::CheckDistributionMatrix(engine->database().current());
    ASSERT_TRUE(qc_ok.ok()) << "after step " << step << ": "
                            << qc_ok.ToString();
  }

  // Expiries are derived from journaled ticks, so the trace — rebuilt by
  // every recovery replay — must agree with the cumulative count.
  EXPECT_EQ(engine->trace().CountOf(EventTrace::Kind::kLeaseExpired),
            expected_expired);

  // One provenance record per assignment the surviving engine knows about:
  // replay re-derives the records the same way it rebuilds the trace, so
  // the counts agree across every crash/recovery boundary, and each record
  // carries a full HIT's worth of scored questions.
  ASSERT_NE(engine->provenance(), nullptr);
  EXPECT_EQ(engine->provenance()->total_appended(),
            engine->trace().CountOf(EventTrace::Kind::kHitAssigned));
  for (int i = 0; i < engine->provenance()->size(); ++i) {
    const DecisionProvenance& record = engine->provenance()->at(i);
    ASSERT_EQ(record.questions.size(),
              static_cast<size_t>(kQuestionsPerHit));
    ASSERT_EQ(record.scores.size(), record.questions.size());
  }

  // The storm must actually have exercised every failure mode.
  EXPECT_GE(completions, 100) << c.name;
  EXPECT_GE(assignments, completions);
  EXPECT_GT(expected_expired, 0) << c.name;
  EXPECT_GT(total_duplicates, 0) << c.name;
  EXPECT_GT(crashes, 0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, LifecycleStressTest, ::testing::ValuesIn(kStressCases),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return std::string(info.param.name);
    });

// With leases + journaling enabled but no fault ever firing, every decision
// must be byte-identical to an engine with the robustness layer off: same
// selections, same Qc bit patterns, same results. (The golden-trace test
// separately pins this behaviour against the pre-PR engine.)
TEST(LifecycleByteIdentityTest, DisarmedRobustnessLayerChangesNothing) {
  for (const bool fscore : {false, true}) {
    StressCase base{fscore ? "identity_fscore" : "identity_accuracy", fscore,
                    WorkerModel::Kind::kConfusionMatrix, 1, 21};
    AppConfig plain = MakeConfig(base, "");
    plain.lease_timeout_ticks = 0;
    AppConfig armed =
        MakeConfig(base, FreshJournalPrefix(base.name));  // leases + journal

    GroundTruthVector truth(kNumQuestions);
    for (int q = 0; q < kNumQuestions; ++q) truth[q] = q % kNumLabels;

    std::unique_ptr<TaskAssignmentEngine> reference =
        MakeEngine(plain, base.seed);
    std::unique_ptr<TaskAssignmentEngine> robust =
        MakeEngine(armed, base.seed);

    int round = 0;
    while (!reference->BudgetExhausted()) {
      const WorkerId worker = round++ % kNumWorkers;
      auto ref_hit = reference->RequestHit(worker);
      auto rob_hit = robust->RequestHit(worker);
      ASSERT_EQ(ref_hit.ok(), rob_hit.ok());
      if (!ref_hit.ok()) break;
      ASSERT_EQ(*ref_hit, *rob_hit) << "HIT " << round;
      std::vector<LabelIndex> labels;
      for (QuestionIndex q : *ref_hit) {
        labels.push_back(SimulatedAnswer(worker, q, truth[q], kNumLabels));
      }
      ASSERT_TRUE(reference->CompleteHit(worker, labels).ok());
      ASSERT_TRUE(robust->CompleteHit(worker, labels).ok());
      // Completing within the lease window: ticks pass but nothing expires.
      robust->Tick(1);
    }
    ASSERT_EQ(reference->CurrentResults(), robust->CurrentResults());
    const DistributionMatrix& ref_qc = reference->database().current();
    const DistributionMatrix& rob_qc = robust->database().current();
    for (int i = 0; i < ref_qc.num_questions(); ++i) {
      for (int j = 0; j < ref_qc.num_labels(); ++j) {
        ASSERT_EQ(ref_qc.At(i, j), rob_qc.At(i, j)) << i << "," << j;
      }
    }
  }
}

// The concurrent phase of the storm (ISSUE 10): the same lifecycle faults
// now arrive through the multi-app serving layer from racing worker
// threads, and every app periodically crashes and recovers from its journal
// MID-STORM while its siblings keep serving. The single-threaded replay of
// the identical schedule is the oracle: per-app decision hashes and state
// fingerprints must survive both the threads and the crashes bit for bit,
// and provenance must hold exactly one record per assignment the recovered
// engine knows about.
TEST(ConcurrentLifecycleStressTest, MidStormRecoveryUnderRacingSiblings) {
  ServingWorkloadOptions options;
  options.apps = 4;
  options.workers_per_app = 8;
  options.events_per_app = 150;
  options.num_questions = kNumQuestions;
  options.num_labels = kNumLabels;
  options.questions_per_hit = kQuestionsPerHit;
  options.em_refresh_interval = 6;
  options.lease_timeout_ticks = kLeaseTimeout;
  options.crash_every = 40;  // 3 crash+recover events per app, mid-storm
  options.provenance = true;
  options.persistence_dir = ::testing::TempDir();
  for (int app = 0; app < options.apps; ++app) {
    const std::string prefix =
        options.persistence_dir + "/journal.app" + std::to_string(app);
    std::remove((prefix + ".snapshot").c_str());
    std::remove((prefix + ".log").c_str());
  }
  const uint64_t seed = 77;
  const ServingSchedule schedule = ServingSchedule::Generate(options, seed);

  AppManager oracle;
  ASSERT_TRUE(BuildServingApps(oracle, options, seed).ok());
  const ServingRunResult serial =
      RunServingSchedule(oracle, schedule, options, 1);

  AppManager manager;
  for (int app = 0; app < options.apps; ++app) {
    const std::string prefix =
        options.persistence_dir + "/journal.app" + std::to_string(app);
    std::remove((prefix + ".snapshot").c_str());
    std::remove((prefix + ".log").c_str());
  }
  ASSERT_TRUE(BuildServingApps(manager, options, seed).ok());
  const ServingRunResult storm =
      RunServingSchedule(manager, schedule, options, 4);

  // The storm really was a storm: every failure mode fired, and every app
  // crashed and recovered while the other three kept serving.
  EXPECT_GE(storm.crash_recoveries, static_cast<int64_t>(options.apps));
  EXPECT_GT(storm.leases_expired, 0);
  EXPECT_GT(storm.completions, 0);
  EXPECT_GT(storm.rejects, 0);

  EXPECT_EQ(storm.decision_hashes, serial.decision_hashes);
  EXPECT_EQ(storm.fingerprints, serial.fingerprints);

  for (int app = 0; app < options.apps; ++app) {
    util::StatusOr<AppManager::AppStats> stats = manager.StatsFor(app);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats->completed_hits, 0) << "app " << app;
    // One provenance record per assignment the app's trace knows about —
    // recovery replay rebuilds the records exactly like the event trace,
    // so the identity holds across every crash boundary.
    util::Status inspected = manager.InspectApp(
        app, [app](const TaskAssignmentEngine& engine) {
          ASSERT_NE(engine.provenance(), nullptr);
          EXPECT_EQ(engine.provenance()->total_appended(),
                    engine.trace().CountOf(EventTrace::Kind::kHitAssigned))
              << "app " << app;
        });
    ASSERT_TRUE(inspected.ok()) << inspected.ToString();
  }
}

}  // namespace
}  // namespace qasca
