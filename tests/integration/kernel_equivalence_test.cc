// The kernel-equivalence suite (DESIGN.md §12): full engine runs must make
// byte-identical assignment decisions and reach a byte-identical final
// state under
//   * every kernel ISA this host supports (scalar / SSE2 / AVX2),
//   * the likelihood cache on or off (pure memoisation),
//   * the zero-copy Qw overlay on or off (representation change only).
// The decision sequence and Engine::StateFingerprint() are compared EXACTLY
// against a single reference run per scenario — this is the engine-level
// proof behind the per-kernel bitwise tests in tests/core/kernels_test.cc,
// and the reason the golden-trace hashes stay pinned across ISAs.
//
// tools/run_checks.sh additionally replays this binary under asan-ubsan
// with each QASCA_KERNEL_ISA override, covering the env-var dispatch path
// that SetIsaForTesting bypasses.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels/kernels.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "util/telemetry_names.h"

namespace qasca {
namespace {

using kernels::Isa;

// Same deterministic pseudo-noisy worker as the determinism suite: the
// answer depends only on (worker, question, truth), so every configuration
// replays an identical answer stream. ~25% wrong.
LabelIndex SimulatedAnswer(WorkerId worker, QuestionIndex question,
                           LabelIndex truth, int num_labels) {
  uint64_t h = (static_cast<uint64_t>(worker) * 1000003u +
                static_cast<uint64_t>(question) + 1) *
               0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  if (h % 100 < 25) {
    return static_cast<LabelIndex>(
        (static_cast<uint64_t>(truth) + 1 + h % (num_labels - 1)) %
        num_labels);
  }
  return truth;
}

struct Variant {
  Isa isa = Isa::kScalar;
  bool likelihood_cache = true;
  bool overlay = true;
  bool telemetry = false;
};

struct RunRecord {
  std::vector<QuestionIndex> selections;
  uint64_t fingerprint = 0;
  util::TelemetrySnapshot snapshot;
};

struct Scenario {
  std::string name;
  MetricSpec metric;
  WorkerModel::Kind kind;
};

std::vector<Scenario> Scenarios() {
  // One Top-K Benefit (accuracy) and one Dinkelbach (F-score) engine, with
  // the opposite worker-model kind each, so both assignment algorithms and
  // both model kinds cross the kernels.
  return {
      {"accuracy/cm", MetricSpec::Accuracy(),
       WorkerModel::Kind::kConfusionMatrix},
      {"fscore/wp", MetricSpec::FScore(0.5, 0),
       WorkerModel::Kind::kWorkerProbability},
  };
}

void RunEngine(const Scenario& s, const Variant& v, RunRecord* out) {
  kernels::SetIsaForTesting(v.isa);
  AppConfig config;
  config.name = "kernel-equivalence";
  config.num_questions = 36;
  config.num_labels = 2;
  config.questions_per_hit = 3;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 20;  // 20 HITs
  config.metric = s.metric;
  config.worker_kind = s.kind;
  config.em.max_iterations = 15;
  config.em_refresh_interval = 3;
  config.likelihood_cache_enabled = v.likelihood_cache;
  config.use_qw_overlay = v.overlay;
  config.telemetry_enabled = v.telemetry;

  GroundTruthVector truth(config.num_questions);
  for (int q = 0; q < config.num_questions; ++q) {
    truth[q] = q % config.num_labels;
  }

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/7);
  RunRecord record;
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 6;
    auto hit = engine.RequestHit(worker);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      record.selections.push_back(q);
      labels.push_back(SimulatedAnswer(worker, q, truth[q],
                                       config.num_labels));
    }
    ASSERT_TRUE(engine.CompleteHit(worker, labels).ok());
  }
  record.fingerprint = engine.StateFingerprint();
  record.snapshot = engine.TelemetrySnapshot();
  *out = std::move(record);
}

int64_t CounterValue(const util::TelemetrySnapshot& snapshot,
                     std::string_view name) {
  for (const util::CounterSnapshot& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return -1;
}

std::string VariantName(const Variant& v) {
  return std::string(kernels::IsaName(v.isa)) +
         (v.likelihood_cache ? "/cache" : "/nocache") +
         (v.overlay ? "/overlay" : "/legacy");
}

TEST(KernelEquivalenceIntegrationTest,
     EveryIsaCacheAndOverlayVariantIsByteIdentical) {
  const Isa saved = kernels::ActiveIsa();
  for (const Scenario& s : Scenarios()) {
    // Reference: scalar kernels, cache on, overlay on (engine defaults).
    RunRecord reference;
    RunEngine(s, Variant{Isa::kScalar, true, true}, &reference);
    ASSERT_FALSE(reference.selections.empty()) << s.name;
    ASSERT_NE(reference.fingerprint, 0u) << s.name;

    for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
      if (!kernels::IsaSupported(isa)) continue;
      for (bool cache : {true, false}) {
        for (bool overlay : {true, false}) {
          const Variant v{isa, cache, overlay};
          RunRecord record;
          RunEngine(s, v, &record);
          EXPECT_EQ(record.selections, reference.selections)
              << s.name << " " << VariantName(v) << ": selections diverged";
          EXPECT_EQ(record.fingerprint, reference.fingerprint)
              << s.name << " " << VariantName(v) << ": state fingerprint "
              << "diverged";
        }
      }
    }
  }
  kernels::SetIsaForTesting(saved);
}

TEST(KernelEquivalenceIntegrationTest, CacheTelemetryShowsHitsAndInvalidation) {
  const Isa saved = kernels::ActiveIsa();
  const Scenario s = Scenarios()[0];
  RunRecord record;
  RunEngine(s, Variant{kernels::ActiveIsa(), true, true, /*telemetry=*/true},
            &record);
  const int64_t hits =
      CounterValue(record.snapshot, util::tnames::kQwLikelihoodCacheHits);
  const int64_t misses =
      CounterValue(record.snapshot, util::tnames::kQwLikelihoodCacheMisses);
  // 20 HITs from 6 workers with a refit every 3rd completion: every Qw
  // request and incremental posterior refresh resolves through the cache,
  // and invalidation forces fresh misses after each refit — so both
  // counters must be active.
  EXPECT_GE(hits + misses, 20);
  EXPECT_GT(hits, 0);
  EXPECT_GT(misses, 0);
  // The overlay materialises exactly the candidate rows each request.
  EXPECT_GT(CounterValue(record.snapshot, util::tnames::kQwOverlayRows), 0);
  kernels::SetIsaForTesting(saved);
}

TEST(KernelEquivalenceIntegrationTest, KernelIsaGaugeReportsActiveDispatch) {
  const Isa saved = kernels::ActiveIsa();
  const Scenario s = Scenarios()[0];
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (!kernels::IsaSupported(isa)) continue;
    RunRecord record;
    RunEngine(s, Variant{isa, true, true, /*telemetry=*/true}, &record);
    double gauge = -1.0;
    for (const util::GaugeSnapshot& g : record.snapshot.gauges) {
      if (g.name == util::tnames::kKernelIsa) gauge = g.value;
    }
    EXPECT_EQ(gauge, static_cast<double>(static_cast<int>(isa)))
        << kernels::IsaName(isa);
  }
  kernels::SetIsaForTesting(saved);
}

TEST(KernelEquivalenceIntegrationTest, LegacyModeDrawsNoOverlayTelemetry) {
  const Isa saved = kernels::ActiveIsa();
  const Scenario s = Scenarios()[0];
  RunRecord record;
  RunEngine(s, Variant{kernels::ActiveIsa(), false, /*overlay=*/false,
                       /*telemetry=*/true},
            &record);
  // The legacy path never touches the overlay or the cache: the counters
  // stay at zero or were never registered at all (-1).
  EXPECT_LE(CounterValue(record.snapshot, util::tnames::kQwOverlayRows), 0);
  EXPECT_LE(CounterValue(record.snapshot,
                         util::tnames::kQwLikelihoodCacheHits), 0);
  EXPECT_LE(CounterValue(record.snapshot,
                         util::tnames::kQwLikelihoodCacheMisses), 0);
  kernels::SetIsaForTesting(saved);
}

}  // namespace
}  // namespace qasca
