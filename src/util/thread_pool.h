#ifndef QASCA_UTIL_THREAD_POOL_H_
#define QASCA_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qasca::util {

class Counter;
class MetricRegistry;

/// Fixed-size worker pool shared by the hot kernels (EM E-step, Qw
/// estimation, per-candidate benefit scans). Sized once from
/// AppConfig::num_threads and reused for the engine's lifetime so the
/// per-HIT cost is chunk dispatch, not thread creation.
///
/// Determinism contract (see DESIGN.md "Threading and incrementality"):
/// ParallelFor decomposes [begin, end) into chunks of `grain` indices, and
/// that decomposition depends only on (begin, end, grain) — never on the
/// pool size or on scheduling. Kernels write results indexed by chunk or by
/// element and fold reductions in chunk-index order, so every thread count
/// (including the serial num_threads == 1 path, which runs the same chunks
/// inline in order) produces bit-identical results.
class ThreadPool {
 public:
  /// `num_threads` >= 1. A pool of size 1 spawns no workers at all: every
  /// ParallelFor runs inline on the calling thread, chunk by chunk, which is
  /// the exact serial fallback.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const noexcept { return num_threads_; }

  /// Wires the pool's task counters (tnames::kPoolTasksQueued /
  /// kPoolTasksExecuted) into `registry`. Queued counts chunks handed to
  /// worker threads; executed counts every chunk run, including the inline
  /// serial path. Counting happens once per ParallelFor (not per chunk), on
  /// the dispatching thread. nullptr detaches.
  void AttachTelemetry(MetricRegistry* registry);

  /// Runs `fn(chunk_begin, chunk_end)` over every grain-sized chunk of
  /// [begin, end) and blocks until all chunks finish. `fn` must be safe to
  /// call concurrently from multiple threads and must not depend on chunk
  /// execution order; it must not call ParallelFor on the same pool
  /// (not reentrant). Aborting checks (QASCA_CHECK) inside `fn` terminate
  /// the process as they would on the calling thread.
  void ParallelFor(int begin, int end, int grain,
                   const std::function<void(int, int)>& fn)
      QASCA_EXCLUDES(mutex_);

 private:
  void WorkerLoop() QASCA_EXCLUDES(mutex_);

  const int num_threads_;
  // Counter is internally atomic; the pointers follow the same
  // write-once-before-concurrency protocol as MetricRegistry::recorder_
  // (AttachTelemetry is documented single-threaded setup).
  // analyze:allow(guarded-by-coverage) attach-before-use protocol
  Counter* tasks_queued_ = nullptr;    // chunks dispatched to workers
  // analyze:allow(guarded-by-coverage) attach-before-use protocol
  Counter* tasks_executed_ = nullptr;  // chunks run (inline or worker)
  // Populated in the ctor, joined in the dtor; workers never touch the
  // vector itself. analyze:allow(guarded-by-coverage) ctor/dtor confined
  std::vector<std::thread> workers_;
  Mutex mutex_{lock_ranks::kThreadPool};
  CondVar work_cv_;
  CondVar done_cv_;
  std::deque<std::function<void()>> queue_ QASCA_GUARDED_BY(mutex_);
  // Queued + currently-running jobs.
  int in_flight_ QASCA_GUARDED_BY(mutex_) = 0;
  bool stop_ QASCA_GUARDED_BY(mutex_) = false;
};

/// Number of grain-sized chunks ParallelFor will dispatch over [begin, end).
inline int NumChunks(int begin, int end, int grain) {
  return end > begin ? (end - begin + grain - 1) / grain : 0;
}

/// Chunk index of element `i` within the canonical decomposition; kernels
/// use it to address per-chunk partial-result slots.
inline int ChunkIndex(int begin, int i, int grain) {
  return (i - begin) / grain;
}

/// ParallelFor through an optional pool: `pool == nullptr` (or a pool of
/// size 1) runs the same chunks inline in chunk order. This is the form the
/// kernels call so that every caller that has no pool gets the serial path
/// with zero synchronisation cost.
void ParallelFor(ThreadPool* pool, int begin, int end, int grain,
                 const std::function<void(int, int)>& fn);

/// Deterministic chunked sum: `chunk_sum(chunk_begin, chunk_end)` returns
/// the serial sum over one chunk; the per-chunk partials are folded in
/// chunk-index order. Because the decomposition and fold order are fixed,
/// the result is bit-identical for every thread count — the serial path
/// folds the same partials in the same order.
double ParallelSum(ThreadPool* pool, int begin, int end, int grain,
                   const std::function<double(int, int)>& chunk_sum);

}  // namespace qasca::util

#endif  // QASCA_UTIL_THREAD_POOL_H_
