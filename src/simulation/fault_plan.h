#ifndef QASCA_SIMULATION_FAULT_PLAN_H_
#define QASCA_SIMULATION_FAULT_PLAN_H_

#include <cstdint>

namespace qasca {

/// Rates of the lifecycle failure modes a FaultPlan injects. The defaults
/// mirror the deployment failure mix the robustness layer targets
/// (DESIGN.md §11): abandonment dominates, redelivery is common, crashes
/// are rare. Rates must be non-negative and sum to at most 1.
struct FaultPlanOptions {
  /// Worker walks away from an assigned HIT; the lease must expire and
  /// requeue the questions.
  double abandon_rate = 0.05;
  /// The platform redelivers the completion callback; the duplicate must
  /// be dropped without double-counting.
  double duplicate_rate = 0.05;
  /// The process dies mid-run; a fresh engine must Recover() from the
  /// journal to the identical state.
  double crash_rate = 0.0;
  /// Probability that the virtual clock advances after a lifecycle step.
  double tick_rate = 0.25;
  /// Clock advances are uniform in [1, max_tick_advance] ticks.
  uint64_t max_tick_advance = 3;
};

/// Deterministic schedule of injected lifecycle faults, driving the stress
/// harness (tests/integration/lifecycle_stress_test.cc). Every decision is
/// a pure function of (seed, step) via a counter-based SplitMix64 stream —
/// no sequential RNG state — so a crash-recovery run can regenerate the
/// exact schedule from any step, and two harnesses with the same seed
/// inject byte-identical fault sequences.
///
/// Threading contract: immutable after construction; safe to share.
class FaultPlan {
 public:
  enum class Fault { kNone, kAbandon, kDuplicate, kCrash };

  FaultPlan(uint64_t seed, FaultPlanOptions options);

  /// The fault injected at lifecycle step `step`.
  Fault At(uint64_t step) const;

  /// Virtual-clock ticks to advance after step `step`; 0 = clock holds.
  uint64_t TickAdvanceAt(uint64_t step) const;

  const FaultPlanOptions& options() const { return options_; }

 private:
  uint64_t seed_;
  FaultPlanOptions options_;
};

}  // namespace qasca

#endif  // QASCA_SIMULATION_FAULT_PLAN_H_
