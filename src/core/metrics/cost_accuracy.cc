#include "core/metrics/cost_accuracy.h"

#include <algorithm>

#include "util/fold.h"
#include "util/logging.h"

namespace qasca {

CostAccuracyMetric::CostAccuracyMetric(std::vector<double> costs,
                                       int num_labels)
    : costs_(std::move(costs)), num_labels_(num_labels), max_cost_(0.0) {
  QASCA_CHECK_GT(num_labels, 0);
  QASCA_CHECK_EQ(costs_.size(), static_cast<size_t>(num_labels) * num_labels);
  for (int t = 0; t < num_labels; ++t) {
    QASCA_CHECK_EQ(costs_[static_cast<size_t>(t) * num_labels + t], 0.0)
        << "diagonal costs must be zero";
    for (int r = 0; r < num_labels; ++r) {
      double c = costs_[static_cast<size_t>(t) * num_labels + r];
      QASCA_CHECK_GE(c, 0.0) << "costs must be non-negative";
      max_cost_ = std::max(max_cost_, c);
    }
  }
  QASCA_CHECK_GT(max_cost_, 0.0) << "cost matrix must not be all zero";
}

CostAccuracyMetric CostAccuracyMetric::ZeroOne(int num_labels) {
  std::vector<double> costs(static_cast<size_t>(num_labels) * num_labels,
                            1.0);
  for (int t = 0; t < num_labels; ++t) {
    costs[static_cast<size_t>(t) * num_labels + t] = 0.0;
  }
  return CostAccuracyMetric(std::move(costs), num_labels);
}

double CostAccuracyMetric::CostOf(LabelIndex truth, LabelIndex returned) const {
  QASCA_CHECK_GE(truth, 0);
  QASCA_CHECK_LT(truth, num_labels_);
  QASCA_CHECK_GE(returned, 0);
  QASCA_CHECK_LT(returned, num_labels_);
  return costs_[static_cast<size_t>(truth) * num_labels_ + returned];
}

double CostAccuracyMetric::EvaluateAgainstTruth(
    const GroundTruthVector& truth, const ResultVector& result) const {
  QASCA_CHECK_EQ(truth.size(), result.size());
  QASCA_CHECK(!truth.empty());
  double total_cost = util::DeterministicSum(
      0, static_cast<int>(truth.size()), [&](int i) {
        return CostOf(truth[static_cast<size_t>(i)],
                      result[static_cast<size_t>(i)]) /
               max_cost_;
      });
  return 1.0 - total_cost / static_cast<double>(truth.size());
}

double CostAccuracyMetric::Evaluate(const DistributionMatrix& q,
                                    const ResultVector& result) const {
  QASCA_CHECK_EQ(static_cast<int>(result.size()), q.num_questions());
  QASCA_CHECK_EQ(q.num_labels(), num_labels_);
  QASCA_CHECK_GT(q.num_questions(), 0);
  double total_cost =
      util::DeterministicSum(0, q.num_questions(), [&](int i) {
        std::span<const double> row = q.Row(i);
        double expected = util::DeterministicSum(0, num_labels_, [&](int t) {
          return row[t] * CostOf(t, result[i]);
        });
        return expected / max_cost_;
      });
  return 1.0 - total_cost / q.num_questions();
}

ResultVector CostAccuracyMetric::OptimalResult(
    const DistributionMatrix& q) const {
  QASCA_CHECK_EQ(q.num_labels(), num_labels_);
  ResultVector result(q.num_questions());
  for (int i = 0; i < q.num_questions(); ++i) {
    std::span<const double> row = q.Row(i);
    double best_cost = 0.0;
    LabelIndex best = 0;
    for (int r = 0; r < num_labels_; ++r) {
      double expected = util::DeterministicSum(
          0, num_labels_, [&](int t) { return row[t] * CostOf(t, r); });
      if (r == 0 || expected < best_cost) {
        best_cost = expected;
        best = r;
      }
    }
    result[i] = best;
  }
  return result;
}

double CostAccuracyMetric::RowQuality(std::span<const double> row) const {
  QASCA_CHECK_EQ(static_cast<int>(row.size()), num_labels_);
  double best_cost = -1.0;
  for (int r = 0; r < num_labels_; ++r) {
    double expected = util::DeterministicSum(
        0, num_labels_, [&](int t) { return row[t] * CostOf(t, r); });
    if (best_cost < 0.0 || expected < best_cost) best_cost = expected;
  }
  return 1.0 - best_cost / max_cost_;
}

double CostAccuracyMetric::Quality(const DistributionMatrix& q) const {
  QASCA_CHECK_GT(q.num_questions(), 0);
  double total = util::DeterministicSum(
      0, q.num_questions(), [&](int i) { return RowQuality(q.Row(i)); });
  return total / q.num_questions();
}

}  // namespace qasca
