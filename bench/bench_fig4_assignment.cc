// Reproduces Figure 4(a)-(d): efficiency of the online assignment
// algorithms on randomly generated Qc/Qw (Section 6.1.3).

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "core/assignment/fscore_online.h"
#include "core/assignment/topk_benefit.h"
#include "util/stats.h"
#include "util/table.h"

namespace qasca {
namespace {

AssignmentRequest FullRequest(const DistributionMatrix& qc,
                              const DistributionMatrix& qw,
                              std::vector<QuestionIndex>& candidates, int k) {
  candidates.resize(qc.num_questions());
  std::iota(candidates.begin(), candidates.end(), 0);
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = candidates;
  request.k = k;
  return request;
}

void Figure4a() {
  util::PrintSection(
      "Figure 4(a) — assignment time vs alpha: delta_init=0 vs warm "
      "delta'_init=F(Qc), n=2000, k=20");
  util::Rng rng(401);
  const int n = 2000;
  const int kTrials = 20;
  util::Table table({"alpha", "basic init (s)", "warm init (s)"});
  for (int a = 1; a <= 19; a += 1) {
    double alpha = a / 20.0;
    double basic = 0.0;
    double warm = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      DistributionMatrix qc = bench::RandomBinaryMatrix(n, rng);
      DistributionMatrix qw = bench::DeriveEstimatedMatrix(qc, rng);
      std::vector<QuestionIndex> candidates;
      AssignmentRequest request = FullRequest(qc, qw, candidates, 20);
      FScoreAssignmentOptions options;
      options.alpha = alpha;
      options.warm_start = false;
      util::Stopwatch stopwatch;
      (void)AssignFScoreOnline(request, options);
      basic += stopwatch.ElapsedSeconds();
      options.warm_start = true;
      stopwatch.Reset();
      (void)AssignFScoreOnline(request, options);
      warm += stopwatch.ElapsedSeconds();
    }
    table.AddRow().Cell(alpha, 2).Cell(basic / kTrials, 6).Cell(warm / kTrials,
                                                                6);
  }
  table.Print();
  std::printf(
      "Expected shape: both fast; the basic init degrades at alpha >= 0.95\n"
      "(delta_init=0 is far from a Precision-dominated delta*), warm init "
      "stays flat.\n");
}

void Figure4b() {
  util::PrintSection("Figure 4(b) — assignment time vs k, n=2000, alpha=0.5");
  util::Rng rng(402);
  const int n = 2000;
  util::Table table({"k", "seconds/assignment"});
  for (int k = 5; k <= 50; k += 5) {
    double total = 0.0;
    const int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      DistributionMatrix qc = bench::RandomBinaryMatrix(n, rng);
      DistributionMatrix qw = bench::DeriveEstimatedMatrix(qc, rng);
      std::vector<QuestionIndex> candidates;
      AssignmentRequest request = FullRequest(qc, qw, candidates, k);
      FScoreAssignmentOptions options;
      options.alpha = 0.5;
      util::Stopwatch stopwatch;
      (void)AssignFScoreOnline(request, options);
      total += stopwatch.ElapsedSeconds();
    }
    table.AddRow().Cell(int64_t{k}).Cell(total / kTrials, 6);
  }
  table.Print();
  std::printf("Expected shape: invariant with k (the Dinkelbach update is "
              "selection-based).\n");
}

void Figure4c() {
  util::PrintSection(
      "Figure 4(c) — total Dinkelbach iterations u*v, n=2000 (alpha swept)");
  util::Rng rng(403);
  const int n = 2000;
  util::Histogram histogram(0.5, 20.5, 20);
  int max_uv = 0;
  for (int a = 0; a <= 10; ++a) {
    double alpha = std::clamp(a / 10.0, 0.05, 0.95);
    for (int t = 0; t < 50; ++t) {
      DistributionMatrix qc = bench::RandomBinaryMatrix(n, rng);
      DistributionMatrix qw = bench::DeriveEstimatedMatrix(qc, rng);
      std::vector<QuestionIndex> candidates;
      AssignmentRequest request = FullRequest(qc, qw, candidates, 20);
      FScoreAssignmentOptions options;
      options.alpha = alpha;
      options.warm_start = true;
      AssignmentResult result = AssignFScoreOnline(request, options);
      // u*v: outer Update calls times inner Dinkelbach steps; we report the
      // measured total of inner iterations across all updates.
      int uv = result.inner_iterations;
      histogram.Add(uv);
      max_uv = std::max(max_uv, uv);
    }
  }
  util::Table table({"u*v (total inner iterations)", "frequency"});
  for (int b = 0; b < histogram.buckets(); ++b) {
    if (histogram.count(b) == 0) continue;
    table.AddRow().Cell(int64_t{b + 1}).Cell(histogram.count(b));
  }
  table.Print();
  std::printf("max u*v observed = %d (paper: generally <= 10)\n", max_uv);
}

void Figure4d() {
  util::PrintSection(
      "Figure 4(d) — assignment time vs n for Accuracy* and F-score*, "
      "k=20, alpha=0.5");
  util::Rng rng(404);
  util::Table table({"n", "Accuracy* (s)", "F-score* (s)"});
  for (int n : {1000, 2000, 4000, 6000, 8000, 10000}) {
    const int kTrials = 10;
    double accuracy_time = 0.0;
    double fscore_time = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      DistributionMatrix qc = bench::RandomBinaryMatrix(n, rng);
      DistributionMatrix qw = bench::DeriveEstimatedMatrix(qc, rng);
      std::vector<QuestionIndex> candidates;
      AssignmentRequest request = FullRequest(qc, qw, candidates, 20);
      util::Stopwatch stopwatch;
      (void)AssignTopKBenefit(request);
      accuracy_time += stopwatch.ElapsedSeconds();
      FScoreAssignmentOptions options;
      options.alpha = 0.5;
      stopwatch.Reset();
      (void)AssignFScoreOnline(request, options);
      fscore_time += stopwatch.ElapsedSeconds();
    }
    table.AddRow()
        .Cell(int64_t{n})
        .Cell(accuracy_time / kTrials, 6)
        .Cell(fscore_time / kTrials, 6);
  }
  table.Print();
  std::printf(
      "Expected shape: both linear in n, F-score* with the larger constant;\n"
      "both well under 0.3s at n=10^4 (paper's bound).\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::Figure4a();
  qasca::Figure4b();
  qasca::Figure4c();
  qasca::Figure4d();
  return 0;
}
