#ifndef QASCA_CORE_ASSIGNMENT_BRUTE_FORCE_H_
#define QASCA_CORE_ASSIGNMENT_BRUTE_FORCE_H_

#include "core/assignment/assignment.h"
#include "core/metrics/metric.h"

namespace qasca {

/// Reference implementation of Definition 1 by exhaustive enumeration: for
/// every one of the C(|S^w|, k) feasible assignments X, build Q^X (Eq. 1),
/// compute F(Q^X) = max_R F*(Q^X, R) with the metric's optimal-result
/// algorithm, and return the maximiser.
///
/// Exponential in k; used only to validate the linear-time algorithms in
/// tests and to reproduce the paper's illustrative examples (Examples 4–5).
AssignmentResult AssignBruteForce(const AssignmentRequest& request,
                                  const EvaluationMetric& metric);

}  // namespace qasca

#endif  // QASCA_CORE_ASSIGNMENT_BRUTE_FORCE_H_
