#ifndef QASCA_UTIL_TELEMETRY_NAMES_H_
#define QASCA_UTIL_TELEMETRY_NAMES_H_

// Span-name registry for the fixture tree: the span-names pass reads
// kSpan* declarations from this exact path, mirroring the real
// src/util/telemetry_names.h.

namespace qasca::util::tnames {

inline constexpr char kSpanGood[] = "good_stage";

}  // namespace qasca::util::tnames

#endif  // QASCA_UTIL_TELEMETRY_NAMES_H_
