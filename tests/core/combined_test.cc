#include "core/metrics/combined.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace qasca {
namespace {

DistributionMatrix RandomBinary(int n, util::Rng& rng) {
  DistributionMatrix q(n, 2);
  for (int i = 0; i < n; ++i) {
    double p = rng.Uniform();
    q.SetRow(i, std::vector<double>{p, 1.0 - p});
  }
  return q;
}

TEST(CombinedMetricTest, EvaluateIsConvexCombination) {
  util::Rng rng(1);
  DistributionMatrix q = RandomBinary(10, rng);
  ResultVector r = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  CombinedMetric combined(0.3, 0.5);
  AccuracyMetric accuracy;
  FScoreMetric fscore(0.5);
  EXPECT_NEAR(combined.Evaluate(q, r),
              0.3 * accuracy.Evaluate(q, r) + 0.7 * fscore.Evaluate(q, r),
              1e-12);
}

TEST(CombinedMetricTest, BetaOneMatchesAccuracyOptimum) {
  util::Rng rng(2);
  AccuracyMetric accuracy;
  for (int trial = 0; trial < 10; ++trial) {
    DistributionMatrix q = RandomBinary(15, rng);
    CombinedMetric combined(1.0, 0.5);
    EXPECT_NEAR(combined.Evaluate(q, combined.OptimalResult(q)),
                accuracy.Quality(q), 1e-10);
  }
}

TEST(CombinedMetricTest, BetaZeroMatchesFScoreOptimum) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    DistributionMatrix q = RandomBinary(15, rng);
    double alpha = rng.Uniform(0.1, 0.9);
    CombinedMetric combined(0.0, alpha);
    FScoreMetric fscore(alpha);
    EXPECT_NEAR(combined.Evaluate(q, combined.OptimalResult(q)),
                fscore.Quality(q), 1e-10);
  }
}

class CombinedSweep : public ::testing::TestWithParam<int> {};

TEST_P(CombinedSweep, OptimalBeatsEnumeration) {
  util::Rng rng(7000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    int n = 2 + rng.UniformInt(8);  // 2..9
    DistributionMatrix q = RandomBinary(n, rng);
    double beta = rng.Uniform();
    double alpha = rng.Uniform(0.05, 0.95);
    CombinedMetric combined(beta, alpha);
    double claimed = combined.Evaluate(q, combined.OptimalResult(q));
    ResultVector r(n);
    double best = 0.0;
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      for (int i = 0; i < n; ++i) r[i] = (mask >> i) & 1u ? 0 : 1;
      best = std::max(best, combined.Evaluate(q, r));
    }
    EXPECT_NEAR(claimed, best, 1e-9)
        << "n=" << n << " beta=" << beta << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedSweep, ::testing::Range(0, 10));

TEST(CombinedMetricTest, ThreeLabelOptimalBeatsEnumeration) {
  util::Rng rng(4);
  std::vector<double> w(3);
  for (int trial = 0; trial < 10; ++trial) {
    DistributionMatrix q(5, 3);
    for (int i = 0; i < 5; ++i) {
      for (double& x : w) x = rng.Uniform(0.01, 1.0);
      q.SetRowNormalized(i, w);
    }
    CombinedMetric combined(0.5, 0.4, /*target_label=*/1);
    double claimed = combined.Evaluate(q, combined.OptimalResult(q));
    ResultVector r(5);
    double best = 0.0;
    for (int mask = 0; mask < 243; ++mask) {
      int m = mask;
      for (int i = 0; i < 5; ++i) {
        r[i] = m % 3;
        m /= 3;
      }
      best = std::max(best, combined.Evaluate(q, r));
    }
    EXPECT_NEAR(claimed, best, 1e-9) << "trial " << trial;
  }
}

TEST(CombinedMetricTest, GroundTruthCombination) {
  CombinedMetric combined(0.5, 0.5);
  GroundTruthVector truth = {0, 0, 1, 1};
  ResultVector result = {0, 1, 0, 1};
  AccuracyMetric accuracy;
  FScoreMetric fscore(0.5);
  EXPECT_NEAR(combined.EvaluateAgainstTruth(truth, result),
              0.5 * accuracy.EvaluateAgainstTruth(truth, result) +
                  0.5 * fscore.EvaluateAgainstTruth(truth, result),
              1e-12);
}

TEST(CombinedMetricTest, NameMentionsBothParameters) {
  EXPECT_EQ(CombinedMetric(0.25, 0.75).name(),
            "Combined(beta=0.25, alpha=0.75)");
}

TEST(CombinedMetricDeathTest, RejectsBetaOutOfRange) {
  EXPECT_DEATH(CombinedMetric(1.5, 0.5), "Check failed");
}

}  // namespace
}  // namespace qasca
